//! Proves the per-iteration analysis hot paths are allocation-free.
//!
//! The `metric_formulas/*` benches claim tens-of-nanoseconds cost, which
//! only holds if evaluating a metric from precomputed moments touches the
//! allocator zero times. This test swaps in a counting global allocator,
//! warms the paths up, then asserts the allocation count does not move
//! across many iterations of metric I, metric II, and the bounds.
//!
//! A second window covers the simulator's solver hot path: rewriting a
//! CSR matrix's values in place, re-running the sparse LDLᵀ numeric
//! factorization on the cached symbolic structure, and solving into
//! preallocated buffers — the exact per-`dt` sequence `SimWorkspace`
//! executes across horizon retries. All of it must be allocation-free
//! after warm-up for the refactor-reuse design to deliver.
//!
//! The windows also hammer disabled `xtalk_obs` probes (counter,
//! histogram, span) directly: the observability layer instruments these
//! same hot paths, and its contract is that the disabled fast path is
//! one relaxed atomic load with no allocation — this test keeps that
//! honest.
//!
//! This file holds exactly one `#[test]` — the counter is process-global,
//! and a sibling test allocating on another thread would false-positive.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use xtalk_circuit::signal::InputSignal;
use xtalk_circuit::{NetRole, NetworkBuilder};
use xtalk_core::{MetricOne, MetricTwo, NoiseAnalyzer};

/// Delegates to the system allocator, counting every alloc/realloc.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure delegation to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn coupled_pair() -> (xtalk_circuit::Network, xtalk_circuit::NetId) {
    let mut b = NetworkBuilder::new();
    let v = b.add_net("victim", NetRole::Victim);
    let a = b.add_net("agg", NetRole::Aggressor);
    let v0 = b.add_node(v, "v0");
    let v1 = b.add_node(v, "v1");
    let a0 = b.add_node(a, "a0");
    b.add_driver(v, v0, 250.0).expect("driver");
    b.add_driver(a, a0, 120.0).expect("driver");
    b.add_resistor(v0, v1, 80.0).expect("resistor");
    b.add_ground_cap(v0, 3e-15).expect("cap");
    b.add_ground_cap(v1, 6e-15).expect("cap");
    b.add_sink(v1, 10e-15).expect("sink");
    b.add_sink(a0, 8e-15).expect("sink");
    b.add_coupling_cap(a0, v1, 30e-15).expect("coupling");
    (b.build().expect("network builds"), a)
}

/// Runs `body` in up to two measured windows and asserts at least one is
/// allocation-free. A per-iteration allocation shows up in every window;
/// one-shot lazy inits that slipped past the warm-up (runtime/libstd
/// internals, not the code under test) only dirty the first.
fn assert_steady_state_alloc_free(label: &str, mut body: impl FnMut()) {
    let mut deltas = [0usize; 2];
    for delta in &mut deltas {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        body();
        *delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
        if *delta == 0 {
            return;
        }
    }
    panic!(
        "{label} allocated {}/{} time(s) over two measured windows",
        deltas[0], deltas[1]
    );
}

/// A 32-node RC-chain-like SPD matrix with one off-tree coupling entry.
fn spd_chain_with_coupling(n: usize) -> xtalk_linalg::sparse::Csr {
    let mut t = xtalk_linalg::sparse::Triplets::new(n, n);
    for i in 0..n {
        t.push(i, i, 3.0 + 0.01 * i as f64);
    }
    for i in 0..n - 1 {
        t.push(i, i + 1, -1.0);
        t.push(i + 1, i, -1.0);
    }
    t.push(1, n - 2, -0.25);
    t.push(n - 2, 1, -0.25);
    t.to_csr()
}

#[test]
fn metric_formulas_do_not_allocate() {
    let (network, aggressor) = coupled_pair();
    let analyzer = NoiseAnalyzer::new(&network).expect("analyzer builds");
    let input = InputSignal::rising_ramp(0.0, 100e-12);
    let moments = analyzer
        .output_moments(aggressor, &input)
        .expect("moments exist");
    let t_r = input.effective_rise_time();
    let metric_two = MetricTwo::default();
    // Observability must stay off for this test's guarantee to hold; the
    // probes below then exercise the disabled fast path.
    assert!(!xtalk_obs::metrics_enabled());

    // Warm-up: fault in any lazily allocated statics (panic machinery,
    // fmt buffers) before counting starts.
    for _ in 0..16 {
        black_box(MetricOne::estimate_auto(black_box(&moments), black_box(t_r)))
            .expect("metric I evaluates");
        black_box(metric_two.estimate_auto(black_box(&moments), black_box(t_r)))
            .expect("metric II evaluates");
        black_box(MetricOne::bounds(black_box(&moments))).expect("bounds evaluate");
    }

    assert_steady_state_alloc_free("metric formula hot paths (10k iterations)", || {
        for i in 0..10_000u64 {
            black_box(MetricOne::estimate_auto(black_box(&moments), black_box(t_r)))
                .expect("metric I evaluates");
            black_box(metric_two.estimate_auto(black_box(&moments), black_box(t_r)))
                .expect("metric II evaluates");
            black_box(MetricOne::bounds(black_box(&moments))).expect("bounds evaluate");
            // Disabled observability probes: must be inert no-ops.
            xtalk_obs::counter!("alloc_free.test.counter").add(black_box(1));
            xtalk_obs::histogram!("alloc_free.test.hist").record(black_box(i));
            drop(xtalk_obs::span!("alloc_free.test.stage"));
        }
    });

    // Solver hot path: in-place value rewrite → numeric refactor on the
    // cached symbolic structure → solve into preallocated buffers. This
    // is the per-`dt` sequence the simulator workspace runs on every
    // horizon retry; all warm-up allocations happen here, before the
    // measured windows.
    const N: usize = 32;
    let mut a = spd_chain_with_coupling(N);
    let symbolic = xtalk_linalg::LdlSymbolic::analyze(&a).expect("pattern analyzes");
    let mut factors = symbolic.factor(&a).expect("matrix factors");
    let b: Vec<f64> = (0..N).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut x = vec![0.0; N];
    let mut scratch = vec![0.0; N];
    for _ in 0..16 {
        for v in a.values_mut() {
            *v *= 1.000_000_1;
        }
        factors.refactor(&a).expect("refactor succeeds");
        factors
            .solve_into(&b, &mut x, &mut scratch)
            .expect("solve succeeds");
    }

    assert_steady_state_alloc_free("sparse LDL refactor + solve (2k iterations)", || {
        for _ in 0..2_000u32 {
            for v in a.values_mut() {
                *v *= black_box(1.000_000_1);
            }
            factors.refactor(black_box(&a)).expect("refactor succeeds");
            factors
                .solve_into(black_box(&b), &mut x, &mut scratch)
                .expect("solve succeeds");
            black_box(&x);
        }
    });
}
