//! Proves the per-iteration analysis hot paths are allocation-free.
//!
//! The `metric_formulas/*` benches claim tens-of-nanoseconds cost, which
//! only holds if evaluating a metric from precomputed moments touches the
//! allocator zero times. This test swaps in a counting global allocator,
//! warms the paths up, then asserts the allocation count does not move
//! across many iterations of metric I, metric II, and the bounds.
//!
//! The windows also hammer disabled `xtalk_obs` probes (counter,
//! histogram, span) directly: the observability layer instruments these
//! same hot paths, and its contract is that the disabled fast path is
//! one relaxed atomic load with no allocation — this test keeps that
//! honest.
//!
//! This file holds exactly one `#[test]` — the counter is process-global,
//! and a sibling test allocating on another thread would false-positive.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use xtalk_circuit::signal::InputSignal;
use xtalk_circuit::{NetRole, NetworkBuilder};
use xtalk_core::{MetricOne, MetricTwo, NoiseAnalyzer};

/// Delegates to the system allocator, counting every alloc/realloc.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure delegation to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn coupled_pair() -> (xtalk_circuit::Network, xtalk_circuit::NetId) {
    let mut b = NetworkBuilder::new();
    let v = b.add_net("victim", NetRole::Victim);
    let a = b.add_net("agg", NetRole::Aggressor);
    let v0 = b.add_node(v, "v0");
    let v1 = b.add_node(v, "v1");
    let a0 = b.add_node(a, "a0");
    b.add_driver(v, v0, 250.0).expect("driver");
    b.add_driver(a, a0, 120.0).expect("driver");
    b.add_resistor(v0, v1, 80.0).expect("resistor");
    b.add_ground_cap(v0, 3e-15).expect("cap");
    b.add_ground_cap(v1, 6e-15).expect("cap");
    b.add_sink(v1, 10e-15).expect("sink");
    b.add_sink(a0, 8e-15).expect("sink");
    b.add_coupling_cap(a0, v1, 30e-15).expect("coupling");
    (b.build().expect("network builds"), a)
}

#[test]
fn metric_formulas_do_not_allocate() {
    let (network, aggressor) = coupled_pair();
    let analyzer = NoiseAnalyzer::new(&network).expect("analyzer builds");
    let input = InputSignal::rising_ramp(0.0, 100e-12);
    let moments = analyzer
        .output_moments(aggressor, &input)
        .expect("moments exist");
    let t_r = input.effective_rise_time();
    let metric_two = MetricTwo::default();
    // Observability must stay off for this test's guarantee to hold; the
    // probes below then exercise the disabled fast path.
    assert!(!xtalk_obs::metrics_enabled());

    // Warm-up: fault in any lazily allocated statics (panic machinery,
    // fmt buffers) before counting starts.
    for _ in 0..16 {
        black_box(MetricOne::estimate_auto(black_box(&moments), black_box(t_r)))
            .expect("metric I evaluates");
        black_box(metric_two.estimate_auto(black_box(&moments), black_box(t_r)))
            .expect("metric II evaluates");
        black_box(MetricOne::bounds(black_box(&moments))).expect("bounds evaluate");
    }

    // A per-iteration allocation shows up in every window; one-shot lazy
    // inits that slipped past the warm-up (runtime/libstd internals, not
    // the formulas) only dirty the first. Measure up to twice and demand
    // a clean steady-state window.
    let mut deltas = [0usize; 2];
    for delta in &mut deltas {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for i in 0..10_000u64 {
            black_box(MetricOne::estimate_auto(black_box(&moments), black_box(t_r)))
                .expect("metric I evaluates");
            black_box(metric_two.estimate_auto(black_box(&moments), black_box(t_r)))
                .expect("metric II evaluates");
            black_box(MetricOne::bounds(black_box(&moments))).expect("bounds evaluate");
            // Disabled observability probes: must be inert no-ops.
            xtalk_obs::counter!("alloc_free.test.counter").add(black_box(1));
            xtalk_obs::histogram!("alloc_free.test.hist").record(black_box(i));
            drop(xtalk_obs::span!("alloc_free.test.stage"));
        }
        *delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
        if *delta == 0 {
            return;
        }
    }

    panic!(
        "metric formula hot paths allocated {}/{} time(s) over two 10k-iteration windows",
        deltas[0], deltas[1]
    );
}
