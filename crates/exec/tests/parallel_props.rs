//! Property tests: the parallel executor is observationally identical to
//! a serial map for every worker count, input size, and chunking shape.

use proptest::prelude::*;
use xtalk_exec::{par_map_indexed, par_map_indexed_with, Jobs};

proptest! {
    #[test]
    fn parallel_map_equals_serial_map(
        items in prop::collection::vec(-1.0e6..1.0e6f64, 0..200),
        workers in 1usize..9,
    ) {
        let f = |i: usize, x: &f64| (i as f64).mul_add(0.5, x.sin() * x);
        let serial: Vec<f64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        let parallel = par_map_indexed(&items, Jobs::Count(workers), f)
            .expect("pure map never fails");
        // Bit-for-bit, not approximately: same code on same inputs.
        prop_assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn worker_state_never_leaks_into_results(
        items in prop::collection::vec(0u64..1000, 1..120),
        workers in 1usize..9,
    ) {
        // Worker-local scratch (here: a counter) must affect only speed,
        // never output — the SimWorkspace contract in miniature.
        let out = par_map_indexed_with(
            &items,
            Jobs::Count(workers),
            || 0u64,
            |scratch, i, x| {
                *scratch += 1; // distinct per worker, order-dependent
                x * 3 + i as u64
            },
        )
        .expect("pure map never fails");
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, x)| x * 3 + i as u64).collect();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn single_fault_is_attributed_exactly(
        len in 2usize..64,
        bad_seed in 0usize..64,
        workers in 2usize..9,
    ) {
        // With exactly one faulty item, the abort flag can only be raised
        // by that item, so it is always observed and always the index the
        // error names — whatever the schedule.
        let bad = bad_seed % len;
        let items: Vec<usize> = (0..len).collect();
        let err = par_map_indexed(&items, Jobs::Count(workers), |i, _x| {
            if i == bad {
                panic!("boom at {i}");
            }
            i
        });
        match err {
            Err(xtalk_exec::ExecError::WorkerPanic { index, detail }) => {
                prop_assert_eq!(index, bad);
                prop_assert!(detail.contains("boom"), "{}", detail);
            }
            other => prop_assert!(false, "expected WorkerPanic, got {:?}", other.map(|_| ())),
        }
    }
}
