//! Deterministic parallel batch execution.
//!
//! Per-net crosstalk analysis is embarrassingly parallel: the paper's
//! table sweeps evaluate tens of thousands of independent cases, each
//! gated on a millisecond-scale golden transient simulation. This crate
//! provides the one primitive the rest of the workspace parallelizes
//! with — an order-preserving chunked work queue on
//! [`std::thread::scope`] — without any external dependency.
//!
//! Guarantees:
//!
//! * **Order preservation** — `par_map_indexed(items, …)[i]` is exactly
//!   `f(i, &items[i])`; the output order never depends on scheduling.
//! * **Determinism** — for a pure `f`, the result is bit-identical to
//!   the serial map, whatever the worker count (workers only decide
//!   *when* an item runs, never *what* it computes).
//! * **Structured panics** — a panicking worker does not tear down the
//!   process; the panic is caught and surfaced as
//!   [`ExecError::WorkerPanic`] for the *lowest* panicking index, so
//!   failure reports are stable run to run.
//! * **Auto-sizing** — [`Jobs::Auto`] uses [`std::thread::available_parallelism`],
//!   overridable with the `XTALK_JOBS` environment variable (the CLIs
//!   expose it as `--jobs`); `jobs = 1` is the serial path, with no
//!   threads spawned at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;

/// Worker-count policy for a parallel batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Jobs {
    /// Use `XTALK_JOBS` when set (and valid), else
    /// [`std::thread::available_parallelism`].
    #[default]
    Auto,
    /// Exactly this many workers (clamped to ≥ 1); `Count(1)` is the
    /// serial reference path.
    Count(usize),
}

impl Jobs {
    /// Parses a `--jobs` style value: `"auto"` or a positive integer.
    ///
    /// # Errors
    ///
    /// Returns a user-readable message for zero or non-numeric values.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s.eq_ignore_ascii_case("auto") {
            return Ok(Jobs::Auto);
        }
        match s.parse::<usize>() {
            Ok(0) => Err("--jobs must be at least 1 (or \"auto\")".to_string()),
            Ok(n) => Ok(Jobs::Count(n)),
            Err(_) => Err(format!("bad jobs value {s:?}; expected a count or \"auto\"")),
        }
    }

    /// The concrete worker count this policy resolves to on this host.
    ///
    /// `Auto` consults the `XTALK_JOBS` environment variable first
    /// (ignored when unset or malformed), then the hardware parallelism;
    /// on platforms where that is unavailable it falls back to 1.
    pub fn resolve(self) -> usize {
        match self {
            Jobs::Count(n) => n.max(1),
            Jobs::Auto => {
                if let Ok(v) = std::env::var("XTALK_JOBS") {
                    if let Ok(Jobs::Count(n)) = Jobs::parse(&v) {
                        return n;
                    }
                }
                thread::available_parallelism().map_or(1, |n| n.get())
            }
        }
    }
}

impl fmt::Display for Jobs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Jobs::Auto => write!(f, "auto({})", self.resolve()),
            Jobs::Count(n) => write!(f, "{n}"),
        }
    }
}

/// A batch execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A worker panicked while mapping one item. When several items
    /// panic in one batch, the lowest index is reported (stable across
    /// schedules).
    WorkerPanic {
        /// Index of the (first) panicking item.
        index: usize,
        /// The panic payload, when it was a string; `"non-string panic
        /// payload"` otherwise.
        detail: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::WorkerPanic { index, detail } => {
                write!(f, "worker panicked on item {index}: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Renders a `catch_unwind` payload as the human-readable panic message,
/// matching the `detail` wording of [`ExecError::WorkerPanic`]. Exposed
/// so other fault fences (the analysis daemon's worker pool) report
/// caught panics identically to this crate's parallel executor.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    panic_message(payload.as_ref())
}

/// Upper bound on a guided chunk. Sweep items are milliseconds each (a
/// golden transient sim), so even 64 of them amortize the claim many
/// thousandfold; a larger grab only risks parking a heavy run of cases
/// on one worker.
const GUIDED_CHUNK_CAP: usize = 64;

/// Chunk size under guided self-scheduling: half a worker's fair share
/// of the *remaining* queue, clamped to `[1, GUIDED_CHUNK_CAP]`. Early
/// chunks are large (claim amortization), tail chunks shrink to single
/// items so a run of heavy cases near the end — common in sweeps, where
/// case generators order by family and length — cannot serialize behind
/// one worker. The fixed `items/(workers·4)` grain this replaces lost
/// its whole parallel margin to exactly that tail imbalance.
fn guided_chunk(remaining: usize, workers: usize) -> usize {
    (remaining / (workers * 2)).clamp(1, GUIDED_CHUNK_CAP)
}

/// Claims the next guided chunk off the queue position `next`, returning
/// the `[start, end)` item range or `None` when the queue is drained.
/// The chunk size depends on how much is left, so the claim is a CAS
/// loop rather than a blind `fetch_add`.
fn claim_chunk(next: &AtomicUsize, n: usize, workers: usize) -> Option<(usize, usize)> {
    let mut start = next.load(Ordering::Relaxed);
    loop {
        if start >= n {
            return None;
        }
        let size = guided_chunk(n - start, workers);
        match next.compare_exchange_weak(
            start,
            start + size,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return Some((start, start + size)),
            Err(current) => start = current,
        }
    }
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Equivalent to `items.iter().enumerate().map(|(i, t)| f(i, t))` but
/// executed on up to [`Jobs::resolve`] worker threads. See the crate
/// docs for the determinism and panic contract.
///
/// # Errors
///
/// [`ExecError::WorkerPanic`] when `f` panicked on some item; the
/// lowest panicking index is reported and the remaining items may not
/// have run.
pub fn par_map_indexed<T, R, F>(items: &[T], jobs: Jobs, f: F) -> Result<Vec<R>, ExecError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_with(items, jobs, || (), |(), i, t| f(i, t))
}

/// Like [`par_map_indexed`], with a per-worker scratch state.
///
/// `init` runs once per worker (once total on the serial path) and the
/// resulting state is threaded through every call that worker makes —
/// the hook for reusing expensive buffers (e.g. a simulation workspace)
/// across items. `f` must not let the state influence its *result*,
/// only its speed, or determinism is lost.
///
/// # Errors
///
/// As [`par_map_indexed`].
pub fn par_map_indexed_with<S, T, R, I, F>(
    items: &[T],
    jobs: Jobs,
    init: I,
    f: F,
) -> Result<Vec<R>, ExecError>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.resolve().min(n);
    let _batch_span = xtalk_obs::span!("exec.par_map");
    // Workload counters are per-batch/per-item and thus identical at any
    // worker count; everything scheduling-dependent below is Perf class.
    xtalk_obs::counter!("exec.batches").add(1);
    xtalk_obs::counter!("exec.items.total").add(n as u64);
    // Sampled once per batch: probes inside the item loop stay free when
    // observability is off (no clock reads — the alloc-free test relies
    // on this path being inert).
    let observe = xtalk_obs::metrics_enabled();

    if workers <= 1 {
        // Serial reference path: no threads, no catch_unwind — a panic
        // unwinds normally, as a plain `map` would.
        let mut state = init();
        let mut out = Vec::with_capacity(n);
        for (i, item) in items.iter().enumerate() {
            out.push(f(&mut state, i, item));
        }
        return Ok(out);
    }
    xtalk_obs::counter!(perf: "exec.workers.spawned").add(workers as u64);

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    type WorkerLog<R> = Vec<(usize, Result<R, String>)>;

    let logs: Vec<WorkerLog<R>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local: WorkerLog<R> = Vec::with_capacity(n / workers + GUIDED_CHUNK_CAP);
                    // Merge-at-join telemetry: plain locals while the
                    // worker runs, flushed once into the global Perf
                    // histograms right before join. Zero cost when
                    // observability is disabled.
                    let worker_start = observe.then(std::time::Instant::now);
                    let mut busy_ns = 0u64;
                    let mut items_done = 0u64;
                    let mut chunks_claimed = 0u64;
                    'queue: while !abort.load(Ordering::Relaxed) {
                        let Some((start, end)) = claim_chunk(&next, n, workers) else {
                            break;
                        };
                        chunks_claimed += 1;
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            if abort.load(Ordering::Relaxed) {
                                break 'queue;
                            }
                            let item_start = observe.then(std::time::Instant::now);
                            match catch_unwind(AssertUnwindSafe(|| f(&mut state, i, item))) {
                                Ok(r) => local.push((i, Ok(r))),
                                Err(payload) => {
                                    local.push((i, Err(panic_detail(payload))));
                                    abort.store(true, Ordering::Relaxed);
                                    break 'queue;
                                }
                            }
                            if let Some(t0) = item_start {
                                busy_ns = busy_ns.saturating_add(
                                    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                                );
                            }
                            items_done += 1;
                        }
                    }
                    if let Some(t0) = worker_start {
                        let total_ns =
                            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        xtalk_obs::histogram!(perf: "exec.worker.busy_ns").record(busy_ns);
                        xtalk_obs::histogram!(perf: "exec.worker.wait_ns")
                            .record(total_ns.saturating_sub(busy_ns));
                        // Items/chunks per worker expose queue imbalance:
                        // a wide spread means the tail is serialized.
                        xtalk_obs::histogram!(perf: "exec.worker.items").record(items_done);
                        xtalk_obs::histogram!(perf: "exec.worker.chunks").record(chunks_claimed);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panics are caught inside the worker"))
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut first_panic: Option<(usize, String)> = None;
    for (i, entry) in logs.into_iter().flatten() {
        match entry {
            Ok(r) => slots[i] = Some(r),
            Err(detail) => {
                let lowest_so_far = match &first_panic {
                    None => true,
                    Some((j, _)) => i < *j,
                };
                if lowest_so_far {
                    first_panic = Some((i, detail));
                }
            }
        }
    }
    if let Some((index, detail)) = first_panic {
        return Err(ExecError::WorkerPanic { index, detail });
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("every index is claimed exactly once"))
        .collect())
}

/// Maps `f` over `items` in parallel, preserving order (no index).
///
/// # Errors
///
/// As [`par_map_indexed`].
pub fn par_map<T, R, F>(items: &[T], jobs: Jobs, f: F) -> Result<Vec<R>, ExecError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, jobs, |_, t| f(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for jobs in [Jobs::Count(1), Jobs::Count(3), Jobs::Count(8), Jobs::Auto] {
            let out = par_map_indexed(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * 2
            })
            .expect("no panics");
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = Vec::new();
        let out = par_map(&items, Jobs::Count(4), |x| *x).expect("no panics");
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [10, 20];
        let out = par_map(&items, Jobs::Count(64), |x| x + 1).expect("no panics");
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn panic_is_reported_with_lowest_index() {
        let items: Vec<usize> = (0..200).collect();
        let err = par_map_indexed(&items, Jobs::Count(4), |i, _| {
            if i >= 50 {
                panic!("boom at {i}");
            }
            i
        })
        .expect_err("must propagate the panic");
        match err {
            ExecError::WorkerPanic { index, detail } => {
                // Exactly which indices ran depends on scheduling, but the
                // reported one is the lowest that panicked, and no index
                // below 50 can panic at all.
                assert!(index >= 50, "index {index}");
                assert!(detail.contains("boom"), "{detail}");
            }
        }
    }

    #[test]
    fn serial_path_unwinds_like_a_plain_map() {
        let items = [1, 2, 3];
        let caught = std::panic::catch_unwind(|| {
            let _ = par_map(&items, Jobs::Count(1), |&x| {
                if x == 2 {
                    panic!("serial boom");
                }
                x
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        let items: Vec<usize> = (0..64).collect();
        // Each worker's scratch buffer grows once and is reused; results
        // stay independent of the state.
        let out = par_map_indexed_with(
            &items,
            Jobs::Count(3),
            Vec::<usize>::new,
            |scratch, i, &x| {
                scratch.push(i);
                x + 1
            },
        )
        .expect("no panics");
        assert_eq!(out, items.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_parse_and_resolve() {
        assert_eq!(Jobs::parse("auto").expect("auto parses"), Jobs::Auto);
        assert_eq!(Jobs::parse("4").expect("4 parses"), Jobs::Count(4));
        assert!(Jobs::parse("0").is_err());
        assert!(Jobs::parse("many").is_err());
        assert_eq!(Jobs::Count(7).resolve(), 7);
        assert!(Jobs::Auto.resolve() >= 1);
        assert_eq!(Jobs::Count(0).resolve(), 1);
    }

    #[test]
    fn guided_chunks_cover_all_items_and_shrink() {
        for n in [1usize, 2, 7, 63, 64, 65, 1000, 5000] {
            for workers in [1usize, 2, 5, 16] {
                let next = AtomicUsize::new(0);
                let mut covered = 0;
                let mut last = usize::MAX;
                while let Some((s, e)) = claim_chunk(&next, n, workers) {
                    assert_eq!(s, covered, "chunks must tile the range");
                    assert!(e > s && e <= n);
                    let size = e - s;
                    assert!(size <= GUIDED_CHUNK_CAP);
                    // Sequential claims never grow: the tail is always
                    // finer-grained than the head.
                    assert!(size <= last, "chunk grew from {last} to {size}");
                    last = size;
                    covered = e;
                }
                assert_eq!(covered, n, "queue must drain exactly");
                // The final chunk is a single item whenever more than one
                // chunk was claimed — the load-balancing property.
                if n > GUIDED_CHUNK_CAP {
                    assert_eq!(last, 1);
                }
            }
        }
    }
}
