//! Accuracy validation of the transient simulator against analytic
//! solutions — the evidence that the "HSPICE stand-in" substitution is
//! faithful.
//!
//! The symmetric two-node coupled pair is *exactly* a two-pole circuit, so
//! [`TwoPoleFit`] built from its exact Taylor coefficients gives the exact
//! analytic ramp response. The simulator must converge to it at the
//! trapezoidal rule's 2nd order.

use xtalk_circuit::{signal::InputSignal, NetId, NetRole, Network, NetworkBuilder};
use xtalk_moments::{MomentEngine, TwoPoleFit};
use xtalk_sim::{IntegrationMethod, SimOptions, TransientSim};

fn coupled_pair(rd: f64, cg: f64, cc: f64) -> (Network, NetId) {
    let mut b = NetworkBuilder::new();
    let v = b.add_net("v", NetRole::Victim);
    let a = b.add_net("a", NetRole::Aggressor);
    let vn = b.add_node(v, "v0");
    let an = b.add_node(a, "a0");
    b.add_driver(v, vn, rd).unwrap();
    b.add_driver(a, an, rd).unwrap();
    b.add_sink(vn, cg).unwrap();
    b.add_sink(an, cg).unwrap();
    b.add_coupling_cap(vn, an, cc).unwrap();
    let net = b.build().unwrap();
    let agg = net.aggressor_nets().next().unwrap().0;
    (net, agg)
}

/// Max |simulated − analytic| over the window for a given step.
fn max_error(net: &Network, agg: NetId, fit: &TwoPoleFit, dt: f64, tr: f64) -> f64 {
    let sim = TransientSim::new(net).unwrap();
    let opts = SimOptions {
        dt,
        t_stop: 40.0 * tr,
        method: IntegrationMethod::Trapezoidal,
        probes: vec![],
    };
    let stim = [(agg, InputSignal::rising_ramp(0.0, tr))];
    let res = sim.run(&stim, &opts).unwrap();
    let w = res.probe(net.victim_output()).unwrap();
    let mut err = 0.0_f64;
    for (k, &v) in w.samples().iter().enumerate() {
        let t = w.t_start() + k as f64 * w.dt();
        err = err.max((v - fit.ramp_response(t, tr)).abs());
    }
    err
}

#[test]
fn trapezoidal_matches_analytic_two_pole_response() {
    let (net, agg) = coupled_pair(200.0, 25e-15, 12e-15);
    let engine = MomentEngine::new(&net).unwrap();
    let h = engine.transfer_taylor(agg, net.victim_output(), 4).unwrap();
    let fit = TwoPoleFit::from_taylor(&h).unwrap();
    let tr = 100e-12;
    let err = max_error(&net, agg, &fit, tr / 400.0, tr);
    // Peak noise here is a few percent of Vdd; demand error orders below it.
    let peak = fit.ramp_peak(tr).unwrap().1;
    assert!(
        err < 1e-4 * peak.max(1e-6),
        "max error {err} vs peak {peak}"
    );
}

#[test]
fn trapezoidal_converges_at_second_order() {
    let (net, agg) = coupled_pair(300.0, 20e-15, 15e-15);
    let engine = MomentEngine::new(&net).unwrap();
    let h = engine.transfer_taylor(agg, net.victim_output(), 4).unwrap();
    let fit = TwoPoleFit::from_taylor(&h).unwrap();
    let tr = 80e-12;
    let e1 = max_error(&net, agg, &fit, tr / 25.0, tr);
    let e2 = max_error(&net, agg, &fit, tr / 50.0, tr);
    let e3 = max_error(&net, agg, &fit, tr / 100.0, tr);
    let r12 = e1 / e2;
    let r23 = e2 / e3;
    // 2nd order: halving dt should cut the error ~4x (allow 3x..6x).
    assert!(
        (3.0..6.0).contains(&r12),
        "e1/e2 = {r12} (e1={e1}, e2={e2})"
    );
    assert!(
        (3.0..6.0).contains(&r23),
        "e2/e3 = {r23} (e2={e2}, e3={e3})"
    );
}

#[test]
fn backward_euler_converges_at_first_order() {
    let (net, agg) = coupled_pair(300.0, 20e-15, 15e-15);
    let engine = MomentEngine::new(&net).unwrap();
    let h = engine.transfer_taylor(agg, net.victim_output(), 4).unwrap();
    let fit = TwoPoleFit::from_taylor(&h).unwrap();
    let tr = 80e-12;
    let sim = TransientSim::new(&net).unwrap();
    let stim = [(agg, InputSignal::rising_ramp(0.0, tr))];
    let mut errs = Vec::new();
    for &div in &[50.0, 100.0, 200.0] {
        let opts = SimOptions {
            dt: tr / div,
            t_stop: 40.0 * tr,
            method: IntegrationMethod::BackwardEuler,
            probes: vec![],
        };
        let res = sim.run(&stim, &opts).unwrap();
        let w = res.probe(net.victim_output()).unwrap();
        let mut err = 0.0_f64;
        for (k, &v) in w.samples().iter().enumerate() {
            let t = k as f64 * w.dt();
            err = err.max((v - fit.ramp_response(t, tr)).abs());
        }
        errs.push(err);
    }
    let r12 = errs[0] / errs[1];
    let r23 = errs[1] / errs[2];
    // 1st order: halving dt should cut the error ~2x (allow 1.5x..3x).
    assert!((1.5..3.0).contains(&r12), "ratio {r12}");
    assert!((1.5..3.0).contains(&r23), "ratio {r23}");
}

#[test]
fn simulated_pulse_area_equals_first_moment() {
    // ∫ noise dt = f1 = h1·g0 — charge conservation through the coupling.
    let (net, agg) = coupled_pair(250.0, 30e-15, 10e-15);
    let engine = MomentEngine::new(&net).unwrap();
    let h = engine.transfer_taylor(agg, net.victim_output(), 2).unwrap();
    let sim = TransientSim::new(&net).unwrap();
    let tr = 120e-12;
    let stim = [(agg, InputSignal::rising_ramp(0.0, tr))];
    let opts = SimOptions::auto(&net, &stim);
    let res = sim.run(&stim, &opts).unwrap();
    let w = res.probe(net.victim_output()).unwrap();
    assert!(
        (w.integral() - h[1]).abs() < 1e-3 * h[1].abs(),
        "area {} vs f1 {}",
        w.integral(),
        h[1]
    );
}

#[test]
fn exponential_input_produces_noise_pulse() {
    let (net, agg) = coupled_pair(400.0, 25e-15, 20e-15);
    let sim = TransientSim::new(&net).unwrap();
    let stim = [(agg, InputSignal::rising_exp(0.0, 150e-12))];
    let opts = SimOptions::auto(&net, &stim);
    let res = sim.run(&stim, &opts).unwrap();
    let params =
        xtalk_sim::measure_noise(res.probe(net.victim_output()).unwrap(), 1.0).unwrap();
    assert!(params.vp > 0.01);
    assert!(params.t1 > 0.0 && params.t2 > 0.0);
    assert!(params.tp > params.t0);
}
