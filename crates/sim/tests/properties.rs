//! Physical-invariant property tests for the transient engine on random
//! coupled networks:
//!
//! * **linearity** — the network is LTI, so the response to two aggressors
//!   switching together equals the sum of their individual responses;
//! * **passivity** — node voltages never leave the `[−Vdd, +Vdd]` range
//!   spanned by the sources (an RC network cannot amplify);
//! * **charge conservation** — the victim pulse area equals the first
//!   output moment, independent of the input shape.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xtalk_circuit::{signal::InputSignal, NetId, NetRole, Network, NetworkBuilder};
use xtalk_moments::MomentEngine;
use xtalk_sim::{SimOptions, TransientSim};

/// Random victim + two aggressors, all chains, couplings everywhere.
fn random_network(seed: u64) -> (Network, Vec<NetId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new();
    let v = b.add_net("v", NetRole::Victim);
    let a1 = b.add_net("a1", NetRole::Aggressor);
    let a2 = b.add_net("a2", NetRole::Aggressor);
    let segs = rng.random_range(2..5);

    let mut chain = |net: NetId, b: &mut NetworkBuilder, tag: &str| {
        let mut nodes = vec![b.add_node(net, format!("{tag}0"))];
        b.add_driver(net, nodes[0], rng.random_range(80.0..900.0))
            .unwrap();
        for i in 1..=segs {
            let n = b.add_node(net, format!("{tag}{i}"));
            b.add_resistor(nodes[i - 1], n, rng.random_range(10.0..90.0))
                .unwrap();
            b.add_ground_cap(n, rng.random_range(2e-15..12e-15)).unwrap();
            nodes.push(n);
        }
        b.add_sink(nodes[segs], rng.random_range(4e-15..25e-15))
            .unwrap();
        nodes
    };
    let vn = chain(v, &mut b, "v");
    let an1 = chain(a1, &mut b, "x");
    let an2 = chain(a2, &mut b, "y");
    b.set_victim_output(vn[segs]);
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xc0de);
    for i in 1..=segs {
        if rng2.random_bool(0.8) {
            b.add_coupling_cap(an1[i], vn[i], rng2.random_range(4e-15..25e-15))
                .unwrap();
        }
        if rng2.random_bool(0.8) {
            b.add_coupling_cap(an2[i], vn[i], rng2.random_range(4e-15..25e-15))
                .unwrap();
        }
    }
    (b.build().unwrap(), vec![a1, a2])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn superposition_linearity(seed in 0u64..1000, tr1 in 4e-11..3e-10f64, tr2 in 4e-11..3e-10f64) {
        let (net, aggs) = random_network(seed);
        let sim = TransientSim::new(&net).unwrap();
        let s1 = InputSignal::rising_ramp(0.0, tr1);
        let s2 = InputSignal::rising_ramp(2e-11, tr2);
        let both = [(aggs[0], s1), (aggs[1], s2)];
        let opts = SimOptions::auto(&net, &both);

        let w_both = sim.run(&both, &opts).unwrap();
        let w_1 = sim.run(&[(aggs[0], s1)], &opts).unwrap();
        let w_2 = sim.run(&[(aggs[1], s2)], &opts).unwrap();
        let out = net.victim_output();
        let (b, x, y) = (
            w_both.probe(out).unwrap(),
            w_1.probe(out).unwrap(),
            w_2.probe(out).unwrap(),
        );
        let scale = b.samples().iter().fold(1e-6_f64, |m, v| m.max(v.abs()));
        for k in 0..b.len() {
            let sum = x.samples()[k] + y.samples()[k];
            prop_assert!(
                (b.samples()[k] - sum).abs() < 1e-6 * scale,
                "sample {k}: {} vs {}",
                b.samples()[k],
                sum
            );
        }
    }

    #[test]
    fn passivity_bounds_node_voltages(seed in 0u64..1000, tr in 4e-11..3e-10f64) {
        // Note the correct invariant: with multiple sources, *driven* net
        // nodes may transiently exceed the supply by a small coupling
        // excursion (the recovering victim pushes charge back into an
        // already-high aggressor — real overshoot noise), so the global
        // bound is |v| ≤ 1 + 1 (superposition of unit-swing responses).
        // The quiet victim itself stays inside ±1.
        let (net, aggs) = random_network(seed);
        let sim = TransientSim::new(&net).unwrap();
        let stim = [
            (aggs[0], InputSignal::rising_ramp(0.0, tr)),
            (aggs[1], InputSignal::falling_ramp(1e-11, tr)),
        ];
        let mut opts = SimOptions::auto(&net, &stim);
        // Probe every node.
        opts.probes = net
            .nets()
            .flat_map(|(_, n)| n.nodes().iter().copied())
            .collect();
        let run = sim.run(&stim, &opts).unwrap();
        let victim_nodes = net.victim_net().nodes();
        for (node, w) in run.probes() {
            let bound = if victim_nodes.contains(node) { 1.0 } else { 2.0 };
            for &v in w.samples() {
                prop_assert!(
                    v.abs() <= bound + 1e-3,
                    "node {node} reached {v} (bound {bound})"
                );
            }
        }
    }

    #[test]
    fn pulse_area_equals_first_moment_for_any_shape(seed in 0u64..1000, tr in 5e-11..2e-10f64, exp_input in any::<bool>()) {
        let (net, aggs) = random_network(seed);
        let input = if exp_input {
            InputSignal::rising_exp(0.0, tr)
        } else {
            InputSignal::rising_ramp(0.0, tr)
        };
        let engine = MomentEngine::new(&net).unwrap();
        let h = engine.transfer_taylor(aggs[0], net.victim_output(), 2).unwrap();
        if h[1].abs() < 1e-16 {
            return Ok(()); // uncoupled draw
        }
        let sim = TransientSim::new(&net).unwrap();
        let stim = [(aggs[0], input)];
        let opts = SimOptions::auto(&net, &stim);
        let run = sim.run(&stim, &opts).unwrap();
        let area = run.probe(net.victim_output()).unwrap().integral();
        prop_assert!(
            (area - h[1]).abs() < 5e-3 * h[1].abs(),
            "area {area} vs f1 {}",
            h[1]
        );
    }
}
