//! Noise-waveform measurement — extraction of the paper's waveform
//! parameters from a simulated [`Waveform`].
//!
//! The conventions mirror the paper's Figure 2 and eq. (6):
//!
//! * `Vp` — peak value of the (polarity-normalized) noise pulse;
//! * `Tp` — time of the peak;
//! * `T1` — first (rising) transition time, measured 10%→90% and
//!   extrapolated to the full swing: `T1 = (t₉₀ − t₁₀)/0.8`;
//! * `T2` — second (falling) transition time, same convention on the
//!   decaying flank;
//! * `T0` — extrapolated arrival: `t₁₀ − 0.1·T1`;
//! * `Wn` — pulse width: the 10%-level width extrapolated to the full
//!   swing, `(t₁₀fall − t₁₀rise) + 0.1·(T1 + T2)`. For any two-flank pulse
//!   this equals `T1 + T2` exactly; for pulses with a flat top (slow input
//!   on a fast net) it correctly includes the plateau that the flank
//!   transition times alone would miss.

use crate::{SimError, Waveform};

/// Relative floor under which a pulse is considered absent (fraction of
/// full swing; normalized waveforms). Shared with the analytic fast tier
/// so both golden tiers agree on what "no pulse" means.
pub(crate) const PULSE_FLOOR: f64 = 1e-9;

/// Measured parameters of a noise pulse. All times in seconds; `vp`
/// normalized to the supply (always positive — the sign is carried by
/// `polarity`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseWaveformParams {
    /// Peak amplitude (positive).
    pub vp: f64,
    /// Peak-occurrence time.
    pub tp: f64,
    /// Extrapolated arrival time.
    pub t0: f64,
    /// First (rising) transition time, 10–90% extrapolated.
    pub t1: f64,
    /// Second (falling) transition time, 10–90% extrapolated.
    pub t2: f64,
    /// Pulse width `t1 + t2`.
    pub wn: f64,
    /// Area under the pulse, `∫v dt` (V·s) — the first moment `f1` of the
    /// output waveform, useful for cross-checks.
    pub area: f64,
    /// Sign of the raw pulse: `+1.0` (positive spike) or `−1.0`.
    pub polarity: f64,
}

/// Measures the noise pulse in `waveform`.
///
/// `polarity` is the expected sign of the pulse (`+1.0` for a rising
/// aggressor on a ground-quiet victim, `−1.0` for a falling one — see
/// [`xtalk_circuit::signal::InputSignal::noise_polarity`]); the waveform is
/// normalized by it before measurement.
///
/// # Errors
///
/// * [`SimError::NoPulse`] — the normalized waveform never rises above the
///   measurement floor, or has no rising flank.
/// * [`SimError::Truncated`] — the pulse has not decayed below 10% of its
///   peak by the end of the window; extend the simulation horizon.
///
/// # Examples
///
/// ```
/// use xtalk_sim::{measure_noise, Waveform};
///
/// // A triangular pulse: rise over 2 s, fall over 4 s.
/// let mut samples = vec![0.0; 200];
/// for (k, s) in samples.iter_mut().enumerate() {
///     let t = k as f64 * 0.1;
///     *s = if t < 2.0 { t / 2.0 } else { (1.0 - (t - 2.0) / 4.0).max(0.0) };
/// }
/// let params = measure_noise(&Waveform::new(0.0, 0.1, samples), 1.0)?;
/// assert!((params.vp - 1.0).abs() < 5e-3);
/// assert!((params.t1 - 2.0).abs() < 0.02);
/// assert!((params.t2 - 4.0).abs() < 0.02);
/// assert!((params.wn - 6.0).abs() < 0.04);
/// # Ok::<(), xtalk_sim::SimError>(())
/// ```
pub fn measure_noise(waveform: &Waveform, polarity: f64) -> Result<NoiseWaveformParams, SimError> {
    let w = if polarity < 0.0 {
        waveform.scaled(-1.0)
    } else {
        waveform.clone()
    };
    let (tp, vp) = w.max();
    if !(vp.is_finite() && vp > PULSE_FLOOR) {
        return Err(SimError::NoPulse);
    }

    let t10r = w
        .last_rising_crossing_before(tp, 0.1 * vp)
        .ok_or(SimError::NoPulse)?;
    let t90r = w
        .last_rising_crossing_before(tp, 0.9 * vp)
        .ok_or(SimError::NoPulse)?;
    let t90f = w
        .crossing_after(tp, 0.9 * vp, false)
        .ok_or(SimError::Truncated)?;
    let t10f = w
        .crossing_after(t90f, 0.1 * vp, false)
        .ok_or(SimError::Truncated)?;

    let t1 = (t90r - t10r) / 0.8;
    let t2 = (t10f - t90f) / 0.8;
    let t0 = t10r - 0.1 * t1;
    // 10%-level width extrapolated to the full swing; equals t1 + t2 for
    // two-flank pulses and includes any flat top.
    let wn = (t10f - t10r) + 0.1 * (t1 + t2);
    Ok(NoiseWaveformParams {
        vp,
        tp,
        t0,
        t1,
        t2,
        wn,
        area: w.integral(),
        polarity: if polarity < 0.0 { -1.0 } else { 1.0 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Samples an asymmetric triangle: rise t1, fall t2, peak vp, start t0.
    fn triangle(t0: f64, t1: f64, t2: f64, vp: f64, dt: f64, t_end: f64) -> Waveform {
        let n = (t_end / dt).ceil() as usize;
        let samples = (0..=n)
            .map(|k| {
                let t = k as f64 * dt;
                if t < t0 {
                    0.0
                } else if t < t0 + t1 {
                    vp * (t - t0) / t1
                } else {
                    (vp * (1.0 - (t - t0 - t1) / t2)).max(0.0)
                }
            })
            .collect();
        Waveform::new(0.0, dt, samples)
    }

    #[test]
    fn triangle_parameters_recovered() {
        let w = triangle(1.0, 2.0, 5.0, 0.4, 0.001, 12.0);
        let p = measure_noise(&w, 1.0).unwrap();
        assert!((p.vp - 0.4).abs() < 1e-3);
        assert!((p.tp - 3.0).abs() < 0.01);
        assert!((p.t1 - 2.0).abs() < 0.01);
        assert!((p.t2 - 5.0).abs() < 0.01);
        assert!((p.t0 - 1.0).abs() < 0.01);
        assert!((p.wn - 7.0).abs() < 0.02);
        assert!((p.area - 0.5 * 0.4 * 7.0).abs() < 1e-3);
        assert_eq!(p.polarity, 1.0);
    }

    #[test]
    fn negative_pulse_measured_with_polarity() {
        let w = triangle(1.0, 2.0, 5.0, 0.4, 0.001, 12.0).scaled(-1.0);
        let p = measure_noise(&w, -1.0).unwrap();
        assert!((p.vp - 0.4).abs() < 1e-3);
        assert_eq!(p.polarity, -1.0);
        // Measuring with the wrong polarity finds no pulse.
        assert!(matches!(measure_noise(&w, 1.0), Err(SimError::NoPulse)));
    }

    #[test]
    fn flat_waveform_has_no_pulse() {
        let w = Waveform::new(0.0, 1.0, vec![0.0; 10]);
        assert!(matches!(measure_noise(&w, 1.0), Err(SimError::NoPulse)));
    }

    #[test]
    fn truncated_pulse_detected() {
        // Rise completes but the window ends before decay below 10%.
        let w = triangle(1.0, 2.0, 50.0, 0.4, 0.01, 6.0);
        assert!(matches!(measure_noise(&w, 1.0), Err(SimError::Truncated)));
    }

    #[test]
    fn exponential_tail_matches_eq6_convention() {
        // v = exp-decay after instant rise … use linear rise (short) +
        // exponential tail with time constant tau: T2 should equal
        // ln(9)·1.25 … = λ·τ? No: the 10–90 extrapolated convention gives
        // T2 = (t10 − t90)/0.8 = τ·(ln10 − ln(10/9))/0.8 = τ·ln9/0.8.
        let tau = 2.0;
        let dt = 0.0005;
        let rise = 0.05;
        let n = (40.0 / dt) as usize;
        let samples: Vec<f64> = (0..=n)
            .map(|k| {
                let t = k as f64 * dt;
                if t < rise {
                    t / rise
                } else {
                    (-(t - rise) / tau).exp()
                }
            })
            .collect();
        let w = Waveform::new(0.0, dt, samples);
        let p = measure_noise(&w, 1.0).unwrap();
        let expect_t2 = tau * (9.0f64).ln() / 0.8;
        assert!(
            (p.t2 - expect_t2).abs() < 0.01 * expect_t2,
            "t2 = {}, expected {expect_t2}",
            p.t2
        );
    }
}
