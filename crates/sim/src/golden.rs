//! One-call golden measurement: simulate, measure, retry the horizon.
//!
//! Every consumer that wants a golden (simulated) waveform measurement —
//! the paper-table evaluation harness, the differential audit, ad-hoc
//! comparisons — needs the same three steps: build a [`TransientSim`],
//! run it with [`SimOptions::auto`], and extract the waveform parameters
//! with [`measure_noise`]. Slowly decaying tails need one extra wrinkle:
//! when the pulse has not fallen back below the 50% crossing by the end
//! of the auto horizon, [`measure_noise`] reports [`SimError::Truncated`]
//! and the horizon (and step, keeping the point count constant) must grow
//! until the tail fits. This module packages that loop so the retry
//! policy cannot drift between callers.

use crate::{measure_noise, NoiseWaveformParams, SimError, SimOptions, SimWorkspace, TransientSim};
use xtalk_circuit::{signal::InputSignal, NetId, Network, NodeId};

/// Longest horizon the retry loop grows to before giving up: 1 µs, three
/// orders of magnitude beyond any realistic on-chip noise tail. A pulse
/// still truncated at this horizon is reported as [`SimError::Truncated`].
pub const MAX_HORIZON: f64 = 1e-6;

/// Factor the horizon (and step) grow by on each truncation retry.
const HORIZON_GROWTH: f64 = 4.0;

/// Golden waveform parameters at the victim output for a single
/// aggressor, with a fresh workspace. See [`golden_noise_with`].
///
/// # Errors
///
/// As [`golden_noise_with`].
///
/// # Examples
///
/// ```
/// use xtalk_circuit::{signal::InputSignal, NetRole, NetworkBuilder};
/// use xtalk_sim::golden::golden_noise;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetworkBuilder::new();
/// let v = b.add_net("v", NetRole::Victim);
/// let a = b.add_net("a", NetRole::Aggressor);
/// let vn = b.add_node(v, "v0");
/// let an = b.add_node(a, "a0");
/// b.add_driver(v, vn, 1000.0)?;
/// b.add_driver(a, an, 1000.0)?;
/// b.add_sink(vn, 20e-15)?;
/// b.add_sink(an, 20e-15)?;
/// b.add_coupling_cap(vn, an, 40e-15)?;
/// let network = b.build()?;
///
/// let golden = golden_noise(&network, a, &InputSignal::rising_ramp(0.0, 1e-10))?;
/// assert!(golden.vp > 0.0 && golden.wn > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn golden_noise(
    network: &Network,
    aggressor: NetId,
    input: &InputSignal,
) -> Result<NoiseWaveformParams, SimError> {
    golden_noise_with(
        network,
        &[(aggressor, *input)],
        network.victim_output(),
        &mut SimWorkspace::new(),
    )
}

/// Golden waveform parameters at `node`, reusing a caller-provided
/// workspace (one per worker thread in batch flows; the retries within a
/// case recycle the factorization buffers).
///
/// The measured polarity is taken from the first stimulus — callers with
/// several simultaneous aggressors must switch them in the same
/// direction, which is the worst-case alignment the paper analyzes.
///
/// # Errors
///
/// Any [`SimError`] from setup, integration, or measurement.
/// [`SimError::Truncated`] is retried with a `4×` longer horizon (and
/// proportionally coarser step) until [`MAX_HORIZON`]; it escapes only
/// when even that horizon cannot contain the pulse.
pub fn golden_noise_with(
    network: &Network,
    stimuli: &[(NetId, InputSignal)],
    node: NodeId,
    workspace: &mut SimWorkspace,
) -> Result<NoiseWaveformParams, SimError> {
    let polarity = match stimuli.first() {
        Some((_, input)) => input.noise_polarity(),
        None => {
            return Err(SimError::BadOptions {
                detail: "golden measurement needs at least one stimulus".into(),
            })
        }
    };
    let _span = xtalk_obs::span!("sim.golden");
    xtalk_obs::counter!("sim.golden.runs").add(1);
    let sim = TransientSim::new(network)?;
    let mut opts = SimOptions::auto(network, stimuli);
    loop {
        let res = sim.run_with(stimuli, &opts, workspace)?;
        let waveform = res.probe(node).ok_or_else(|| SimError::BadOptions {
            detail: format!("probe node {node:?} is not part of the simulated network"),
        })?;
        match measure_noise(waveform, polarity) {
            Ok(params) => {
                // Step count = workload (horizon and dt are derived from
                // the circuit, not from scheduling), so it is Det class.
                xtalk_obs::histogram!("sim.golden.steps")
                    .record((opts.t_stop / opts.dt).max(0.0) as u64);
                return Ok(params);
            }
            Err(SimError::Truncated) if opts.t_stop < MAX_HORIZON => {
                xtalk_obs::counter!("sim.golden.horizon_retries").add(1);
                opts.t_stop *= HORIZON_GROWTH;
                opts.dt *= HORIZON_GROWTH;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_circuit::{NetRole, NetworkBuilder};

    fn coupled() -> (Network, NetId) {
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let vn = b.add_node(v, "v0");
        let an = b.add_node(a, "a0");
        b.add_driver(v, vn, 1000.0).unwrap();
        b.add_driver(a, an, 1000.0).unwrap();
        b.add_sink(vn, 20e-15).unwrap();
        b.add_sink(an, 20e-15).unwrap();
        b.add_coupling_cap(vn, an, 40e-15).unwrap();
        (b.build().unwrap(), a)
    }

    #[test]
    fn matches_the_manual_simulate_and_measure_path() {
        let (net, agg) = coupled();
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        let golden = golden_noise(&net, agg, &input).unwrap();

        let sim = TransientSim::new(&net).unwrap();
        let stim = [(agg, input)];
        let opts = SimOptions::auto(&net, &stim);
        let res = sim.run(&stim, &opts).unwrap();
        let manual =
            measure_noise(res.probe(net.victim_output()).unwrap(), 1.0).unwrap();
        assert_eq!(golden.vp, manual.vp);
        assert_eq!(golden.wn, manual.wn);
        assert_eq!(golden.tp, manual.tp);
    }

    #[test]
    fn empty_stimuli_is_a_structured_error() {
        let (net, _) = coupled();
        let err = golden_noise_with(
            &net,
            &[],
            net.victim_output(),
            &mut SimWorkspace::new(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::BadOptions { .. }));
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let (net, agg) = coupled();
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        let mut ws = SimWorkspace::new();
        let first = golden_noise_with(&net, &[(agg, input)], net.victim_output(), &mut ws).unwrap();
        let second =
            golden_noise_with(&net, &[(agg, input)], net.victim_output(), &mut ws).unwrap();
        assert_eq!(first.vp, second.vp);
        assert_eq!(first.t0, second.t0);
    }
}
