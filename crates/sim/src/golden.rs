//! One-call golden measurement: simulate, measure, retry the horizon.
//!
//! Every consumer that wants a golden (simulated) waveform measurement —
//! the paper-table evaluation harness, the differential audit, ad-hoc
//! comparisons — needs the same three steps: build a [`TransientSim`],
//! run it with [`SimOptions::auto`], and extract the waveform parameters
//! with [`measure_noise`]. Slowly decaying tails need one extra wrinkle:
//! when the pulse has not fallen back below the 50% crossing by the end
//! of the auto horizon, [`measure_noise`] reports [`SimError::Truncated`]
//! and the horizon (and step, keeping the point count constant) must grow
//! until the tail fits. This module packages that loop so the retry
//! policy cannot drift between callers.

use crate::{
    analytic, fast_tier, measure_noise, sim_mode, FastTier, NoiseWaveformParams, SimError, SimMode,
    SimOptions, SimWorkspace, TransientSim, Waveform,
};
use xtalk_circuit::{signal::InputSignal, NetId, Network, NodeId};

/// Longest horizon the retry loop grows to before giving up: 1 µs, three
/// orders of magnitude beyond any realistic on-chip noise tail. A pulse
/// still truncated at this horizon is reported as [`SimError::Truncated`].
pub const MAX_HORIZON: f64 = 1e-6;

/// Factor the horizon (and step) grow by on each truncation retry.
const HORIZON_GROWTH: f64 = 4.0;

/// Largest sample count the fixed-mode resume path lets the stitched
/// waveform grow to before giving up on the fine grid and re-running the
/// whole horizon coarsened (the pre-resume behaviour). Retries multiply
/// the sample count by [`HORIZON_GROWTH`], so this bounds memory at a
/// few tens of MB while covering every realistic tail.
const RESUME_SAMPLE_CAP: usize = 4_000_000;

/// Which golden tier produced a measurement — the provenance consumers
/// (serve's deadline stamp, the audit) record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenTier {
    /// Closed-form pole superposition ([`analytic::analytic_noise`]).
    Analytic,
    /// Transient time-stepping simulation (fixed or adaptive).
    Transient,
}

impl GoldenTier {
    /// Stable name for provenance stamps.
    pub fn as_str(self) -> &'static str {
        match self {
            GoldenTier::Analytic => "analytic",
            GoldenTier::Transient => "transient",
        }
    }
}

/// Per-call golden policy: stepping mode and fast-tier gate. The default
/// (`Fixed`/`Off`) is the historical behaviour;
/// [`GoldenOpts::from_globals`] picks up the process-wide `--sim` /
/// `--fast-tier` switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GoldenOpts {
    /// Time-marching strategy for the transient tier.
    pub mode: SimMode,
    /// Analytic fast-tier policy.
    pub tier: FastTier,
}

impl GoldenOpts {
    /// Resolves the process-wide flags/environment
    /// ([`crate::sim_mode`], [`crate::fast_tier`]).
    pub fn from_globals() -> Self {
        GoldenOpts {
            mode: sim_mode(),
            tier: fast_tier(),
        }
    }
}

/// Golden waveform parameters at the victim output for a single
/// aggressor, with a fresh workspace. See [`golden_noise_with`].
///
/// # Errors
///
/// As [`golden_noise_with`].
///
/// # Examples
///
/// ```
/// use xtalk_circuit::{signal::InputSignal, NetRole, NetworkBuilder};
/// use xtalk_sim::golden::golden_noise;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetworkBuilder::new();
/// let v = b.add_net("v", NetRole::Victim);
/// let a = b.add_net("a", NetRole::Aggressor);
/// let vn = b.add_node(v, "v0");
/// let an = b.add_node(a, "a0");
/// b.add_driver(v, vn, 1000.0)?;
/// b.add_driver(a, an, 1000.0)?;
/// b.add_sink(vn, 20e-15)?;
/// b.add_sink(an, 20e-15)?;
/// b.add_coupling_cap(vn, an, 40e-15)?;
/// let network = b.build()?;
///
/// let golden = golden_noise(&network, a, &InputSignal::rising_ramp(0.0, 1e-10))?;
/// assert!(golden.vp > 0.0 && golden.wn > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn golden_noise(
    network: &Network,
    aggressor: NetId,
    input: &InputSignal,
) -> Result<NoiseWaveformParams, SimError> {
    golden_noise_with(
        network,
        &[(aggressor, *input)],
        network.victim_output(),
        &mut SimWorkspace::new(),
    )
}

/// Golden waveform parameters at `node`, reusing a caller-provided
/// workspace (one per worker thread in batch flows; the retries within a
/// case recycle the factorization buffers).
///
/// The measured polarity is taken from the first stimulus — callers with
/// several simultaneous aggressors must switch them in the same
/// direction, which is the worst-case alignment the paper analyzes.
///
/// # Errors
///
/// Any [`SimError`] from setup, integration, or measurement.
/// [`SimError::Truncated`] is retried with a `4×` longer horizon (and
/// proportionally coarser step) until [`MAX_HORIZON`]; it escapes only
/// when even that horizon cannot contain the pulse.
pub fn golden_noise_with(
    network: &Network,
    stimuli: &[(NetId, InputSignal)],
    node: NodeId,
    workspace: &mut SimWorkspace,
) -> Result<NoiseWaveformParams, SimError> {
    golden_noise_tiered(network, stimuli, node, workspace, &GoldenOpts::from_globals())
        .map(|(params, _)| params)
}

/// [`golden_noise_with`] with an explicit [`GoldenOpts`] policy, also
/// reporting which tier produced the measurement.
///
/// With `tier != Off` the analytic fast tier is tried first; any
/// [`analytic::FastTierFallback`] falls through to the transient
/// simulator (counted per reason in `sim.fast_tier.fallback.*`). The
/// transient tier steps fixed or adaptive per `mode`; on truncation the
/// fixed march resumes from its final state over a 4× coarser extension
/// (no re-integration of the covered span), while the adaptive march —
/// whose settled tail costs only a handful of steps — simply re-runs
/// with the grown horizon.
///
/// # Errors
///
/// As [`golden_noise_with`].
pub fn golden_noise_tiered(
    network: &Network,
    stimuli: &[(NetId, InputSignal)],
    node: NodeId,
    workspace: &mut SimWorkspace,
    gopts: &GoldenOpts,
) -> Result<(NoiseWaveformParams, GoldenTier), SimError> {
    let polarity = match stimuli.first() {
        Some((_, input)) => input.noise_polarity(),
        None => {
            return Err(SimError::BadOptions {
                detail: "golden measurement needs at least one stimulus".into(),
            })
        }
    };
    let _span = xtalk_obs::span!("sim.golden");
    xtalk_obs::counter!("sim.golden.runs").add(1);

    if gopts.tier != FastTier::Off {
        match analytic::analytic_noise(network, stimuli, node, gopts.tier) {
            Ok(params) => {
                xtalk_obs::counter!(perf: "sim.fast_tier.hits").add(1);
                return Ok((params, GoldenTier::Analytic));
            }
            Err(reason) => {
                xtalk_obs::counter!(perf: "sim.fast_tier.fallback").add(1);
                reason.record();
            }
        }
    }

    let sim = TransientSim::new(network)?;
    let mut opts = SimOptions::auto(network, stimuli);
    // Det-class workload record on success: the final horizon in units of
    // the initial auto step — identical across stepping modes and resume
    // strategies by construction.
    let dt0 = opts.dt;
    let record_steps = |t_stop: f64| {
        xtalk_obs::histogram!("sim.golden.steps").record((t_stop / dt0).max(0.0) as u64);
    };
    let probe_err = || SimError::BadOptions {
        detail: format!("probe node {node:?} is not part of the simulated network"),
    };

    if gopts.mode == SimMode::Adaptive {
        // Adaptive tail steps are cheap, so truncation retries just
        // re-run with the grown horizon (and step, keeping the base-grid
        // point count constant).
        loop {
            let res = sim.run_adaptive_with(stimuli, &opts, workspace)?;
            let waveform = res.probe(node).ok_or_else(probe_err)?;
            match measure_noise(waveform, polarity) {
                Ok(params) => {
                    record_steps(opts.t_stop);
                    return Ok((params, GoldenTier::Transient));
                }
                Err(SimError::Truncated) if opts.t_stop < MAX_HORIZON => {
                    xtalk_obs::counter!("sim.golden.horizon_retries").add(1);
                    opts.t_stop *= HORIZON_GROWTH;
                    opts.dt *= HORIZON_GROWTH;
                }
                Err(e) => return Err(e),
            }
        }
    }

    // Fixed-step march. The first segment integrates from DC; a
    // truncated pulse is *resumed* from the segment's final state over a
    // coarser extension instead of re-paying the covered horizon.
    let res = sim.run_with(stimuli, &opts, workspace)?;
    let waveform = res.probe(node).ok_or_else(probe_err)?;
    match measure_noise(waveform, polarity) {
        Ok(params) => {
            record_steps(opts.t_stop);
            return Ok((params, GoldenTier::Transient));
        }
        Err(SimError::Truncated) if opts.t_stop < MAX_HORIZON => {}
        Err(e) => return Err(e),
    }

    // Resume state: the stitched uniform waveform so far and the node
    // voltages at its end.
    let mut samples: Vec<f64> = waveform.samples().to_vec();
    let mut cur_dt = opts.dt;
    let mut state: Vec<f64> = workspace.final_state().to_vec();
    let ratio = HORIZON_GROWTH as usize;
    loop {
        xtalk_obs::counter!("sim.golden.horizon_retries").add(1);
        if samples.len().saturating_mul(ratio) > RESUME_SAMPLE_CAP {
            // The stitched fine grid would outgrow the cap: fall back to
            // the coarsen-and-rerun policy for this and later retries.
            cur_dt *= HORIZON_GROWTH;
            opts.t_stop *= HORIZON_GROWTH;
            let full = SimOptions {
                dt: cur_dt,
                ..opts.clone()
            };
            let res = sim.run_with(stimuli, &full, workspace)?;
            samples = res.probe(node).ok_or_else(probe_err)?.samples().to_vec();
        } else {
            xtalk_obs::counter!("sim.golden.retry_resumes").add(1);
            // Extend from the exact end of the stitched grid with a 4×
            // coarser step (the tail is smooth), then upsample the
            // extension back onto the fine grid so the waveform stays
            // uniform.
            let t_end = (samples.len() - 1) as f64 * cur_dt;
            let ext = SimOptions {
                dt: cur_dt * HORIZON_GROWTH,
                t_stop: opts.t_stop * HORIZON_GROWTH,
                ..opts.clone()
            };
            let res = sim.run_span_with(stimuli, &ext, workspace, Some((t_end, &state)))?;
            let ext_wf = res.probe(node).ok_or_else(probe_err)?;
            for pair in ext_wf.samples().windows(2) {
                let (v0, v1) = (pair[0], pair[1]);
                for j in 1..=ratio {
                    let frac = j as f64 / ratio as f64;
                    samples.push(v0 + (v1 - v0) * frac);
                }
            }
            opts.t_stop *= HORIZON_GROWTH;
        }
        state.clear();
        state.extend_from_slice(workspace.final_state());
        let wave = Waveform::new(0.0, cur_dt, samples.clone());
        match measure_noise(&wave, polarity) {
            Ok(params) => {
                record_steps(opts.t_stop);
                return Ok((params, GoldenTier::Transient));
            }
            Err(SimError::Truncated) if opts.t_stop < MAX_HORIZON => {}
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_circuit::{NetRole, NetworkBuilder};

    fn coupled() -> (Network, NetId) {
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let vn = b.add_node(v, "v0");
        let an = b.add_node(a, "a0");
        b.add_driver(v, vn, 1000.0).unwrap();
        b.add_driver(a, an, 1000.0).unwrap();
        b.add_sink(vn, 20e-15).unwrap();
        b.add_sink(an, 20e-15).unwrap();
        b.add_coupling_cap(vn, an, 40e-15).unwrap();
        (b.build().unwrap(), a)
    }

    #[test]
    fn matches_the_manual_simulate_and_measure_path() {
        let (net, agg) = coupled();
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        let golden = golden_noise(&net, agg, &input).unwrap();

        let sim = TransientSim::new(&net).unwrap();
        let stim = [(agg, input)];
        let opts = SimOptions::auto(&net, &stim);
        let res = sim.run(&stim, &opts).unwrap();
        let manual =
            measure_noise(res.probe(net.victim_output()).unwrap(), 1.0).unwrap();
        assert_eq!(golden.vp, manual.vp);
        assert_eq!(golden.wn, manual.wn);
        assert_eq!(golden.tp, manual.tp);
    }

    #[test]
    fn empty_stimuli_is_a_structured_error() {
        let (net, _) = coupled();
        let err = golden_noise_with(
            &net,
            &[],
            net.victim_output(),
            &mut SimWorkspace::new(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::BadOptions { .. }));
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let (net, agg) = coupled();
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        let mut ws = SimWorkspace::new();
        let first = golden_noise_with(&net, &[(agg, input)], net.victim_output(), &mut ws).unwrap();
        let second =
            golden_noise_with(&net, &[(agg, input)], net.victim_output(), &mut ws).unwrap();
        assert_eq!(first.vp, second.vp);
        assert_eq!(first.t0, second.t0);
    }
}
