//! Transient simulation of coupled RC networks — the workspace's golden
//! reference ("HSPICE stand-in").
//!
//! The paper validates its closed-form metrics against HSPICE on the
//! *linearized* coupling circuit (drivers replaced by equivalent
//! resistances). On that circuit HSPICE integrates exactly the linear ODE
//! system
//!
//! ```text
//! C·dv/dt + G·v = B·u(t)
//! ```
//!
//! that [`TransientSim`] integrates here with the trapezoidal rule
//! (2nd-order accurate; backward Euler available for comparison), so the
//! substitution preserves the behaviour being validated. Accuracy is
//! controlled by the time step; the test suite verifies the expected
//! convergence order against analytic solutions.
//!
//! [`measure::measure_noise`] then extracts the paper's waveform
//! parameters (`Vp`, `Tp`, `T0`, `T1`, `T2`, `Wn`) from a simulated
//! [`Waveform`] using the 10–90% extrapolated-transition convention of
//! eq. (6).
//!
//! # Examples
//!
//! ```
//! use xtalk_circuit::{signal::InputSignal, NetRole, NetworkBuilder};
//! use xtalk_sim::{SimOptions, TransientSim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetworkBuilder::new();
//! let v = b.add_net("v", NetRole::Victim);
//! let a = b.add_net("a", NetRole::Aggressor);
//! let vn = b.add_node(v, "v0");
//! let an = b.add_node(a, "a0");
//! b.add_driver(v, vn, 1000.0)?;
//! b.add_driver(a, an, 1000.0)?;
//! b.add_sink(vn, 20e-15)?;
//! b.add_sink(an, 20e-15)?;
//! b.add_coupling_cap(vn, an, 40e-15)?;
//! let network = b.build()?;
//!
//! let sim = TransientSim::new(&network)?;
//! let stim = [(a, InputSignal::rising_ramp(0.0, 100e-12))];
//! let result = sim.run(&stim, &SimOptions::auto(&network, &stim))?;
//! let noise = result.probe(network.victim_output()).unwrap();
//! assert!(noise.max().1 > 0.0); // a positive noise spike appears
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
mod engine;
mod error;
pub mod golden;
pub mod measure;
mod waveform;

pub use analytic::{analytic_noise, FastTierFallback};
pub use engine::{
    fast_tier, set_fast_tier_override, set_sim_mode_override, set_solver_override, sim_mode,
    solver_kind, FastTier, IntegrationMethod, SimMode, SimOptions, SimResult, SimWorkspace,
    TransientSim,
};
pub use error::SimError;
pub use golden::{golden_noise, golden_noise_tiered, golden_noise_with, GoldenOpts, GoldenTier};
pub use measure::{measure_noise, NoiseWaveformParams};
pub use waveform::Waveform;
