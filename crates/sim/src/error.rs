use std::error::Error;
use std::fmt;
use xtalk_circuit::NetId;
use xtalk_linalg::LinalgError;

/// Errors raised by the transient simulator and waveform measurement.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The system matrix could not be factored (numerical pathology).
    Numerical(LinalgError),
    /// A stimulus was attached to a net that is not an aggressor.
    StimulusOnNonAggressor(NetId),
    /// Two stimuli target the same aggressor net.
    DuplicateStimulus(NetId),
    /// Simulation options are out of range (non-positive step or horizon).
    BadOptions {
        /// Explanation of the offending option.
        detail: String,
    },
    /// The waveform never rises meaningfully above zero: there is no noise
    /// pulse to measure.
    NoPulse,
    /// The noise pulse has not decayed below the measurement threshold by
    /// the end of the simulation window; re-run with a longer horizon.
    Truncated,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Numerical(e) => write!(f, "numerical failure in simulator: {e}"),
            SimError::StimulusOnNonAggressor(n) => {
                write!(f, "stimulus attached to non-aggressor net {n}")
            }
            SimError::DuplicateStimulus(n) => {
                write!(f, "multiple stimuli attached to aggressor net {n}")
            }
            SimError::BadOptions { detail } => write!(f, "bad simulation options: {detail}"),
            SimError::NoPulse => write!(f, "waveform contains no measurable noise pulse"),
            SimError::Truncated => {
                write!(f, "noise pulse truncated by simulation horizon; extend t_stop")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for SimError {
    fn from(e: LinalgError) -> Self {
        SimError::Numerical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        assert!(SimError::NoPulse.to_string().contains("no measurable"));
        assert!(SimError::Truncated.to_string().contains("t_stop"));
        let e = SimError::BadOptions {
            detail: "dt must be positive".into(),
        };
        assert!(e.to_string().contains("dt must be positive"));
    }
}
