/// A uniformly sampled waveform `v(t0 + k·dt)`.
///
/// Produced by the transient simulator; consumed by the measurement
/// routines and the evaluation harness. Linear interpolation is used
/// between samples.
///
/// # Examples
///
/// ```
/// use xtalk_sim::Waveform;
///
/// let w = Waveform::new(0.0, 0.5, vec![0.0, 1.0, 0.0]);
/// assert_eq!(w.value_at(0.25), 0.5);
/// assert_eq!(w.max(), (0.5, 1.0));
/// assert_eq!(w.duration(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    t0: f64,
    dt: f64,
    samples: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform from its start time, step and samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive or `samples` is empty.
    pub fn new(t0: f64, dt: f64, samples: Vec<f64>) -> Self {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive and finite");
        assert!(!samples.is_empty(), "waveform needs at least one sample");
        Waveform { t0, dt, samples }
    }

    /// Start time of the first sample.
    pub fn t_start(&self) -> f64 {
        self.t0
    }

    /// Sample period.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Sample values.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `false` always (construction requires at least one sample); present
    /// for the conventional `len`/`is_empty` pairing.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Time of sample `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of bounds.
    pub fn time(&self, k: usize) -> f64 {
        assert!(k < self.samples.len(), "sample index out of bounds");
        self.t0 + self.dt * k as f64
    }

    /// Time of the last sample.
    pub fn t_end(&self) -> f64 {
        self.time(self.samples.len() - 1)
    }

    /// Length of the sampled window.
    pub fn duration(&self) -> f64 {
        self.t_end() - self.t0
    }

    /// Linearly interpolated value at `t`, clamped to the end samples
    /// outside the window.
    pub fn value_at(&self, t: f64) -> f64 {
        let x = (t - self.t0) / self.dt;
        if x <= 0.0 {
            return self.samples[0];
        }
        let last = self.samples.len() - 1;
        if x >= last as f64 {
            return self.samples[last];
        }
        let k = x.floor() as usize;
        let frac = x - k as f64;
        self.samples[k] * (1.0 - frac) + self.samples[k + 1] * frac
    }

    /// `(time, value)` of the maximum sample, with parabolic refinement of
    /// the peak position when an interior maximum has usable neighbours.
    pub fn max(&self) -> (f64, f64) {
        let (mut k_best, mut v_best) = (0usize, f64::NEG_INFINITY);
        for (k, &v) in self.samples.iter().enumerate() {
            if v > v_best {
                v_best = v;
                k_best = k;
            }
        }
        if k_best == 0 || k_best + 1 >= self.samples.len() {
            return (self.time(k_best), v_best);
        }
        // Parabola through the three samples around the discrete peak.
        let (ym, y0, yp) = (
            self.samples[k_best - 1],
            self.samples[k_best],
            self.samples[k_best + 1],
        );
        let denom = ym - 2.0 * y0 + yp;
        if denom.abs() < 1e-300 {
            return (self.time(k_best), v_best);
        }
        let delta = 0.5 * (ym - yp) / denom;
        let delta = delta.clamp(-0.5, 0.5);
        let t = self.time(k_best) + delta * self.dt;
        let v = y0 - 0.25 * (ym - yp) * delta;
        (t, v)
    }

    /// Renders the waveform as two-column CSV (`time,value`, full float
    /// precision) for external plotting tools.
    ///
    /// # Examples
    ///
    /// ```
    /// use xtalk_sim::Waveform;
    /// let w = Waveform::new(0.0, 1.0, vec![0.0, 0.5]);
    /// let csv = w.to_csv();
    /// assert!(csv.starts_with("time,value\n0,0\n"));
    /// ```
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.samples.len() * 24 + 16);
        out.push_str("time,value\n");
        for (k, v) in self.samples.iter().enumerate() {
            let _ = writeln!(out, "{},{}", self.time(k), v);
        }
        out
    }

    /// Scales all samples by `factor` (e.g. polarity normalization).
    pub fn scaled(&self, factor: f64) -> Waveform {
        Waveform {
            t0: self.t0,
            dt: self.dt,
            samples: self.samples.iter().map(|v| v * factor).collect(),
        }
    }

    /// Trapezoidal integral of the waveform over its window.
    pub fn integral(&self) -> f64 {
        let mut acc = 0.0;
        for w in self.samples.windows(2) {
            acc += 0.5 * (w[0] + w[1]) * self.dt;
        }
        acc
    }

    /// First time, scanning left→right from `from`, at which the waveform
    /// crosses `level` in the given direction; linear interpolation between
    /// samples. Returns `None` if no crossing exists.
    pub fn crossing_after(&self, from: f64, level: f64, rising: bool) -> Option<f64> {
        let start = (((from - self.t0) / self.dt).ceil().max(0.0)) as usize;
        for k in start.max(1)..self.samples.len() {
            let (a, b) = (self.samples[k - 1], self.samples[k]);
            let hit = if rising {
                a < level && b >= level
            } else {
                a > level && b <= level
            };
            if hit {
                let frac = if (b - a).abs() < 1e-300 {
                    0.0
                } else {
                    (level - a) / (b - a)
                };
                return Some(self.time(k - 1) + frac * self.dt);
            }
        }
        None
    }

    /// Last time before `until` at which the waveform crosses `level`
    /// rising (scanning right→left). Returns `None` if no crossing exists.
    pub fn last_rising_crossing_before(&self, until: f64, level: f64) -> Option<f64> {
        let end = (((until - self.t0) / self.dt).floor() as isize)
            .clamp(0, self.samples.len() as isize - 1) as usize;
        for k in (1..=end).rev() {
            let (a, b) = (self.samples[k - 1], self.samples[k]);
            if a < level && b >= level {
                let frac = if (b - a).abs() < 1e-300 {
                    0.0
                } else {
                    (level - a) / (b - a)
                };
                return Some(self.time(k - 1) + frac * self.dt);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Waveform {
        // 0, .25, .5, .75, 1, .75, .5, .25, 0 at dt = 1
        let up = (0..=4).map(|k| k as f64 / 4.0);
        let down = (0..4).rev().map(|k| k as f64 / 4.0);
        Waveform::new(0.0, 1.0, up.chain(down).collect())
    }

    #[test]
    fn interpolation_is_linear() {
        let w = triangle();
        assert_eq!(w.value_at(0.5), 0.125);
        assert_eq!(w.value_at(4.0), 1.0);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(100.0), 0.0);
    }

    #[test]
    fn max_finds_peak_with_refinement() {
        let (t, v) = triangle().max();
        assert!((t - 4.0).abs() < 1e-12);
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parabolic_refinement_recovers_offgrid_peak() {
        // Sample a parabola peaking at t = 2.3 and check the refinement.
        let peak_t = 2.3;
        let samples: Vec<f64> = (0..8).map(|k| 1.0 - (k as f64 - peak_t).powi(2) * 0.1).collect();
        let (t, v) = Waveform::new(0.0, 1.0, samples).max();
        assert!((t - peak_t).abs() < 1e-9, "t = {t}");
        assert!((v - 1.0).abs() < 1e-9, "v = {v}");
    }

    #[test]
    fn integral_of_triangle_is_half_base_times_height() {
        assert!((triangle().integral() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn crossings_found_in_both_directions() {
        let w = triangle();
        let up = w.crossing_after(0.0, 0.5, true).unwrap();
        assert!((up - 2.0).abs() < 1e-12);
        let down = w.crossing_after(4.0, 0.5, false).unwrap();
        assert!((down - 6.0).abs() < 1e-12);
        let back = w.last_rising_crossing_before(4.0, 0.5).unwrap();
        assert!((back - 2.0).abs() < 1e-12);
        assert!(w.crossing_after(0.0, 2.0, true).is_none());
    }

    #[test]
    fn crossing_interpolates_between_samples() {
        let w = triangle();
        let t = w.crossing_after(0.0, 0.375, true).unwrap();
        assert!((t - 1.5).abs() < 1e-12);
    }

    #[test]
    fn csv_round_trips_numerically() {
        let w = triangle();
        let csv = w.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time,value"));
        for (k, line) in lines.enumerate() {
            let (t, v) = line.split_once(',').expect("two columns");
            assert_eq!(t.parse::<f64>().unwrap(), w.time(k));
            assert_eq!(v.parse::<f64>().unwrap(), w.samples()[k]);
        }
    }

    #[test]
    fn scaled_negates() {
        let w = triangle().scaled(-2.0);
        assert_eq!(w.max().1, 0.0); // peak of negated triangle is the flat ends
        assert_eq!(w.value_at(4.0), -2.0);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        Waveform::new(0.0, 0.0, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        Waveform::new(0.0, 1.0, vec![]);
    }
}
