#![allow(clippy::needless_range_loop)] // index loops mirror the matrix math
use crate::{SimError, Waveform};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use xtalk_circuit::{signal::InputSignal, NetId, NetRole, Network, NodeId};
use xtalk_linalg::sparse::{Csr, Triplets};
use xtalk_linalg::{LdlSymbolic, Matrix, Solver, SolverKind};
use xtalk_moments::tree;

/// Process-wide solver-backend override, set by the CLI `--solver` flag
/// (0 = unset, 1..=3 = [`SolverKind`] variants). Takes precedence over
/// the `XTALK_SOLVER` environment variable.
static SOLVER_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Cached parse of `XTALK_SOLVER` (read once; env lookups are not free
/// and the choice must be stable within a process).
static ENV_SOLVER: OnceLock<SolverKind> = OnceLock::new();

/// Forces the solver backend for every simulator constructed after the
/// call — the hook behind `xtalk --solver` and the dense/sparse
/// equivalence gates in CI. Prefer per-instance control via
/// [`TransientSim::new_with_solver`] in tests.
pub fn set_solver_override(kind: SolverKind) {
    let code = match kind {
        SolverKind::Auto => 1,
        SolverKind::Dense => 2,
        SolverKind::Sparse => 3,
    };
    SOLVER_OVERRIDE.store(code, Ordering::Relaxed);
}

/// Resolves the effective backend request: explicit override, then the
/// `XTALK_SOLVER` environment variable (`auto`/`dense`/`sparse`), then
/// [`SolverKind::Auto`].
pub fn solver_kind() -> SolverKind {
    match SOLVER_OVERRIDE.load(Ordering::Relaxed) {
        1 => SolverKind::Auto,
        2 => SolverKind::Dense,
        3 => SolverKind::Sparse,
        _ => *ENV_SOLVER.get_or_init(|| {
            std::env::var("XTALK_SOLVER")
                .ok()
                .and_then(|s| SolverKind::parse(&s))
                .unwrap_or_default()
        }),
    }
}

/// Time-marching strategy of the golden simulator: the historical
/// fixed-step march, or adaptive step doubling/halving on an embedded
/// local-truncation-error estimate. See [`TransientSim::run_adaptive_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Fixed-step march at `SimOptions::dt` (the default).
    #[default]
    Fixed,
    /// Step doubling/halving on the same base grid, driven by a
    /// trapezoidal-vs-backward-Euler error estimate; settled exponential
    /// tails take a handful of large steps instead of thousands.
    Adaptive,
}

impl SimMode {
    /// Parses the `--sim` flag / `XTALK_SIM` spelling (`fixed`/`adaptive`).
    pub fn parse(s: &str) -> Option<SimMode> {
        match s.to_ascii_lowercase().as_str() {
            "fixed" => Some(SimMode::Fixed),
            "adaptive" => Some(SimMode::Adaptive),
            _ => None,
        }
    }

    /// Canonical flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SimMode::Fixed => "fixed",
            SimMode::Adaptive => "adaptive",
        }
    }
}

/// Analytic fast-tier policy for the golden noise path: synthesize the
/// victim response from extracted poles (no time-stepping) when the fit
/// is trustworthy. See `golden::golden_noise_tiered`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FastTier {
    /// Never use the analytic tier (the default; always time-step).
    #[default]
    Off,
    /// Use the analytic tier whenever it is structurally possible
    /// (stable, well-behaved extracted poles), skipping the conditioning
    /// margins — for benchmarking the tier itself.
    On,
    /// Use the analytic tier only when the conditioning gate passes
    /// (pole separation and model-adequacy margins); otherwise fall back
    /// to the transient simulator.
    Auto,
}

impl FastTier {
    /// Parses the `--fast-tier` flag / `XTALK_FAST_TIER` spelling
    /// (`off`/`on`/`auto`).
    pub fn parse(s: &str) -> Option<FastTier> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Some(FastTier::Off),
            "on" => Some(FastTier::On),
            "auto" => Some(FastTier::Auto),
            _ => None,
        }
    }

    /// Canonical flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            FastTier::Off => "off",
            FastTier::On => "on",
            FastTier::Auto => "auto",
        }
    }
}

/// Process-wide stepping-mode override (`--sim`); 0 = unset.
static SIM_MODE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Cached parse of `XTALK_SIM` (read once, stable within a process).
static ENV_SIM_MODE: OnceLock<SimMode> = OnceLock::new();

/// Forces the golden stepping mode for the process — the hook behind
/// `xtalk --sim` and the fixed-vs-adaptive equivalence gates in CI.
pub fn set_sim_mode_override(mode: SimMode) {
    let code = match mode {
        SimMode::Fixed => 1,
        SimMode::Adaptive => 2,
    };
    SIM_MODE_OVERRIDE.store(code, Ordering::Relaxed);
}

/// Resolves the effective stepping mode: explicit override, then the
/// `XTALK_SIM` environment variable, then [`SimMode::Fixed`].
pub fn sim_mode() -> SimMode {
    match SIM_MODE_OVERRIDE.load(Ordering::Relaxed) {
        1 => SimMode::Fixed,
        2 => SimMode::Adaptive,
        _ => *ENV_SIM_MODE.get_or_init(|| {
            std::env::var("XTALK_SIM")
                .ok()
                .and_then(|s| SimMode::parse(&s))
                .unwrap_or_default()
        }),
    }
}

/// Process-wide fast-tier override (`--fast-tier`); 0 = unset.
static FAST_TIER_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Cached parse of `XTALK_FAST_TIER`.
static ENV_FAST_TIER: OnceLock<FastTier> = OnceLock::new();

/// Forces the analytic fast-tier policy for the process — the hook
/// behind `xtalk --fast-tier`.
pub fn set_fast_tier_override(tier: FastTier) {
    let code = match tier {
        FastTier::Off => 1,
        FastTier::On => 2,
        FastTier::Auto => 3,
    };
    FAST_TIER_OVERRIDE.store(code, Ordering::Relaxed);
}

/// Resolves the effective fast-tier policy: explicit override, then the
/// `XTALK_FAST_TIER` environment variable, then [`FastTier::Off`].
pub fn fast_tier() -> FastTier {
    match FAST_TIER_OVERRIDE.load(Ordering::Relaxed) {
        1 => FastTier::Off,
        2 => FastTier::On,
        3 => FastTier::Auto,
        _ => *ENV_FAST_TIER.get_or_init(|| {
            std::env::var("XTALK_FAST_TIER")
                .ok()
                .and_then(|s| FastTier::parse(&s))
                .unwrap_or_default()
        }),
    }
}

/// Time-integration scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrationMethod {
    /// Trapezoidal rule — 2nd-order accurate, A-stable; the default.
    #[default]
    Trapezoidal,
    /// Backward Euler — 1st-order, L-stable; useful to bound trapezoidal
    /// ringing artifacts in convergence studies.
    BackwardEuler,
}

/// Options controlling a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Fixed time step (s).
    pub dt: f64,
    /// Simulation horizon (s); samples cover `0 ..= t_stop`.
    pub t_stop: f64,
    /// Integration scheme.
    pub method: IntegrationMethod,
    /// Nodes to record; when empty, only the victim output is recorded.
    pub probes: Vec<NodeId>,
}

impl SimOptions {
    /// Picks a step and horizon from the circuit's time constants and the
    /// stimuli: `dt` resolves both the fastest input transition and the
    /// aggregate time constant `b1`; `t_stop` spans the latest arrival
    /// plus several `b1` for full pulse decay.
    ///
    /// The defaults aim at metric-validation accuracy (relative waveform
    /// errors well below the metric errors being measured) at modest cost.
    pub fn auto(network: &Network, stimuli: &[(NetId, InputSignal)]) -> Self {
        let b1 = tree::open_circuit_b1(network).max(1e-15);
        let min_tr = stimuli
            .iter()
            .map(|(_, s)| {
                if s.transition() > 0.0 {
                    s.transition()
                } else {
                    f64::INFINITY
                }
            })
            .fold(f64::INFINITY, f64::min);
        let max_end = stimuli
            .iter()
            .map(|(_, s)| s.arrival() + s.transition())
            .fold(0.0_f64, f64::max);
        let scale = if min_tr.is_finite() {
            min_tr.min(b1)
        } else {
            b1
        };
        let mut dt = scale / 200.0;
        let t_stop = max_end + 25.0 * b1;
        // Corner cases (fast input on a slow net, or vice versa) can push
        // the naive step count into the millions; cap it — 2nd-order
        // accuracy keeps waveform errors far below metric errors even at
        // the cap.
        const MAX_STEPS: f64 = 50_000.0;
        if t_stop / dt > MAX_STEPS {
            dt = t_stop / MAX_STEPS;
        }
        SimOptions {
            dt,
            t_stop,
            method: IntegrationMethod::Trapezoidal,
            probes: Vec::new(),
        }
    }

    /// Returns a copy with a different step (for convergence studies).
    pub fn with_dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Returns a copy with a different integration method.
    pub fn with_method(mut self, method: IntegrationMethod) -> Self {
        self.method = method;
        self
    }

    fn validate(&self) -> Result<(), SimError> {
        if !(self.dt.is_finite() && self.dt > 0.0) {
            return Err(SimError::BadOptions {
                detail: format!("dt = {} must be positive and finite", self.dt),
            });
        }
        if !(self.t_stop.is_finite() && self.t_stop > self.dt) {
            return Err(SimError::BadOptions {
                detail: format!(
                    "t_stop = {} must exceed one step dt = {}",
                    self.t_stop, self.dt
                ),
            });
        }
        if self.t_stop / self.dt > 5e7 {
            return Err(SimError::BadOptions {
                detail: format!(
                    "{} steps requested; refusing runs beyond 5e7 steps",
                    (self.t_stop / self.dt) as u64
                ),
            });
        }
        Ok(())
    }
}

/// Result of a transient run: recorded waveforms per probe node.
#[derive(Debug, Clone)]
pub struct SimResult {
    probes: Vec<(NodeId, Waveform)>,
}

impl SimResult {
    /// The waveform recorded at `node`, if it was probed.
    pub fn probe(&self, node: NodeId) -> Option<&Waveform> {
        self.probes
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, w)| w)
    }

    /// All recorded `(node, waveform)` pairs.
    pub fn probes(&self) -> &[(NodeId, Waveform)] {
        &self.probes
    }
}

/// Monotonic simulator identity, used to key [`SimWorkspace`] caches so a
/// workspace handed a *different* simulator never reuses a stale
/// factorization (addresses can recycle; these ids cannot).
static NEXT_SIM_ID: AtomicU64 = AtomicU64::new(0);

/// Cache key of a prepared stepping system: which simulator, which step,
/// which scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StepKey {
    sim_id: u64,
    dt_bits: u64,
    method: IntegrationMethod,
}

/// Reusable scratch state for transient runs.
///
/// [`TransientSim::run`] allocates right-hand-side/solution buffers and
/// factors the stepping matrix on every call. In batch workloads (table
/// sweeps, multi-aggressor screens) thousands of runs execute back to
/// back, so a worker thread keeps one `SimWorkspace` and passes it to
/// [`TransientSim::run_with`]: buffers are recycled across runs, and the
/// stepping factorization plus the sparse stepping matrix are reused
/// whenever consecutive runs share a simulator, step and scheme (e.g.
/// the horizon-retry loop of a sweep evaluation, or repeated runs with
/// different stimuli on one network).
///
/// A workspace never changes *what* is computed — only how much is
/// reallocated and re-factorized — so results are bit-identical with and
/// without one. Contents are invalidated automatically when the
/// simulator, `dt` or integration method changes.
#[derive(Debug, Default)]
pub struct SimWorkspace {
    key: Option<StepKey>,
    /// Which simulator's sparse structures (`lhs`/`step` patterns and the
    /// symbolic part of a sparse `solver`) the workspace currently holds.
    /// Unlike `key`, this survives a `dt`/method change on the *same*
    /// simulator — exactly the horizon-retry case, where the stepping
    /// values are rewritten in place and only the numeric factorization
    /// reruns.
    owner: Option<u64>,
    /// Factorization of the stepping LHS for `key` (dense LU or sparse
    /// LDLᵀ, per the simulator's backend).
    solver: Option<Solver>,
    /// Sparse-backend stepping LHS `(C + coeff·G)/dt` on the G∪C union
    /// pattern; values are rewritten in place per `dt`. Unused densely.
    lhs: Option<Csr>,
    /// Sparse stepping matrix: trapezoidal `(C/dt − G/2)`, or `C/dt` for
    /// backward Euler (the per-step matvec operand in either scheme).
    step: Option<Csr>,
    b_now: Vec<f64>,
    b_next: Vec<f64>,
    rhs: Vec<f64>,
    v: Vec<f64>,
    v_next: Vec<f64>,
    /// Second trial solution for the adaptive path (the embedded
    /// backward-Euler step the error estimate compares against).
    v_alt: Vec<f64>,
    /// Running per-component amplitude scale for the adaptive error
    /// norm (largest |v_i| seen this run).
    vscale: Vec<f64>,
    /// Solve scratch for the sparse backend (permuted intermediate).
    scratch: Vec<f64>,
}

impl SimWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        SimWorkspace::default()
    }

    /// Grows the per-node buffers to `n`, reusing prior capacity.
    fn resize(&mut self, n: usize) {
        for buf in [
            &mut self.b_now,
            &mut self.b_next,
            &mut self.rhs,
            &mut self.v,
            &mut self.v_next,
            &mut self.v_alt,
            &mut self.vscale,
            &mut self.scratch,
        ] {
            buf.clear();
            buf.resize(n, 0.0);
        }
    }

    /// Node voltages after the most recent run through this workspace —
    /// the state at the run's `t_stop`, for resuming a horizon extension
    /// without re-integrating from `t = 0`.
    pub(crate) fn final_state(&self) -> &[f64] {
        &self.v
    }
}

/// Factorization backend of one simulator: the stamped matrices in the
/// representation its solver consumes.
#[derive(Debug)]
enum Backend {
    /// Dense `G`/`C` with LU factorizations — small or structurally
    /// unsuitable systems.
    Dense { g: Matrix, c: Matrix },
    /// Sparse LDLᵀ over the union pattern of `G` and `C`: the stepping
    /// matrix `(C + coeff·G)/dt` lives on that pattern for every `dt`,
    /// so one symbolic analysis serves all timesteps and horizon
    /// retries.
    Sparse {
        /// Symbolic factorization (ordering, etree, fill) of the union
        /// pattern — computed once per simulator.
        symbolic: LdlSymbolic,
        /// The G∪C pattern with zero values; cloned into workspaces that
        /// rewrite the values per `dt`.
        pattern: Csr,
        /// `G` scattered onto the union pattern (zeros where absent).
        g_vals: Vec<f64>,
        /// `C` scattered onto the union pattern.
        c_vals: Vec<f64>,
    },
}

/// Fixed-step transient MNA simulator over a validated [`Network`].
///
/// Construction stamps `G` and `C` and factors `G` (for the DC initial
/// condition) once; each [`TransientSim::run`] factors the stepping
/// matrix for its `dt` and integrates — or reuses a [`SimWorkspace`] via
/// [`TransientSim::run_with`] to skip the per-run allocations and
/// repeated factorizations. See the [crate-level example](crate).
///
/// Two factorization backends exist behind one interface: sparse LDLᵀ
/// with a fill-reducing ordering (the default for the tree-like MNA
/// systems of RC interconnect, where factorization is O(nnz)) and dense
/// LU with partial pivoting (small or structurally unsuitable systems).
/// Selection is automatic per matrix; `XTALK_SOLVER`/[`set_solver_override`]
/// force a backend, and [`TransientSim::new_with_solver`] picks one per
/// instance.
#[derive(Debug)]
pub struct TransientSim<'a> {
    network: &'a Network,
    id: u64,
    backend: Backend,
    /// Factorization of `G`, reused for the DC initial condition of every
    /// run.
    dc: Solver,
}

impl<'a> TransientSim<'a> {
    /// Stamps the MNA matrices for `network`, selecting the solver
    /// backend per [`solver_kind`].
    ///
    /// # Errors
    ///
    /// [`SimError::Numerical`] when `G` cannot be factored (conditioning
    /// pathology; structurally impossible for a validated network).
    pub fn new(network: &'a Network) -> Result<Self, SimError> {
        Self::new_with_solver(network, solver_kind())
    }

    /// Stamps the sparse `G`/`C` triplets (same element order as the
    /// dense stamping, so merged entries accumulate identically).
    fn stamp_sparse(network: &Network) -> (Triplets, Triplets) {
        let n = network.node_count();
        let mut g = Triplets::new(n, n);
        let mut c = Triplets::new(n, n);
        for r in network.resistors() {
            let (a, b, cond) = (r.a.index(), r.b.index(), 1.0 / r.ohms);
            g.push(a, a, cond);
            g.push(b, b, cond);
            g.push(a, b, -cond);
            g.push(b, a, -cond);
        }
        for (_, net) in network.nets() {
            let d = net.driver();
            g.push(d.node.index(), d.node.index(), 1.0 / d.ohms);
            for s in net.sinks() {
                c.push(s.node.index(), s.node.index(), s.farads);
            }
        }
        for gc in network.ground_caps() {
            c.push(gc.node.index(), gc.node.index(), gc.farads);
        }
        for cc in network.coupling_caps() {
            let (a, b) = (cc.a.index(), cc.b.index());
            c.push(a, a, cc.farads);
            c.push(b, b, cc.farads);
            c.push(a, b, -cc.farads);
            c.push(b, a, -cc.farads);
        }
        (g, c)
    }

    /// Like [`TransientSim::new`] with an explicit backend request.
    /// `Auto` applies the size/density heuristic; `Sparse` uses LDLᵀ
    /// whenever the stamped system is structurally eligible (symmetric,
    /// positive `G` diagonal), falling back to dense otherwise — so a
    /// forced-sparse process never loses robustness on degenerate
    /// inputs.
    ///
    /// # Errors
    ///
    /// As [`TransientSim::new`].
    pub fn new_with_solver(network: &'a Network, kind: SolverKind) -> Result<Self, SimError> {
        let (g_t, c_t) = Self::stamp_sparse(network);
        let g_csr = g_t.to_csr();
        let c_csr = c_t.to_csr();
        let want_sparse = match kind {
            SolverKind::Dense => false,
            SolverKind::Sparse => {
                xtalk_linalg::sparse_eligible(&g_csr) && c_csr.is_symmetric()
            }
            SolverKind::Auto => {
                xtalk_linalg::prefer_sparse(&g_csr) && c_csr.is_symmetric()
            }
        };
        let id = NEXT_SIM_ID.fetch_add(1, Ordering::Relaxed);
        if want_sparse {
            let (pattern, g_pos, c_pos) =
                Csr::union_pattern(&g_csr, &c_csr).expect("same shape");
            let mut g_vals = vec![0.0; pattern.nnz()];
            for (k, &p) in g_pos.iter().enumerate() {
                g_vals[p] = g_csr.values()[k];
            }
            let mut c_vals = vec![0.0; pattern.nnz()];
            for (k, &p) in c_pos.iter().enumerate() {
                c_vals[p] = c_csr.values()[k];
            }
            let symbolic = LdlSymbolic::analyze(&pattern)?;
            // G on the union pattern (explicit zeros where only C has
            // entries) for the DC factorization.
            let mut g_union = pattern.clone();
            g_union.values_mut().copy_from_slice(&g_vals);
            // A numeric failure here means G is not positive-definite
            // after all; the pivoting dense path below handles it.
            if let Ok(dc) = symbolic.factor(&g_union) {
                xtalk_obs::counter!(perf: "sim.solve.path.sparse").add(1);
                return Ok(TransientSim {
                    network,
                    id,
                    backend: Backend::Sparse {
                        symbolic,
                        pattern,
                        g_vals,
                        c_vals,
                    },
                    dc: Solver::Sparse(Box::new(dc)),
                });
            }
        }
        // Dense fallback: stamp densely in the original element order so
        // this path reproduces the historical dense results bit-for-bit.
        let n = network.node_count();
        let mut g = Matrix::zeros(n, n);
        let mut c = Matrix::zeros(n, n);
        for r in network.resistors() {
            let (a, b, cond) = (r.a.index(), r.b.index(), 1.0 / r.ohms);
            g.add_at(a, a, cond);
            g.add_at(b, b, cond);
            g.add_at(a, b, -cond);
            g.add_at(b, a, -cond);
        }
        for (_, net) in network.nets() {
            let d = net.driver();
            g.add_at(d.node.index(), d.node.index(), 1.0 / d.ohms);
            for s in net.sinks() {
                c.add_at(s.node.index(), s.node.index(), s.farads);
            }
        }
        for gc in network.ground_caps() {
            c.add_at(gc.node.index(), gc.node.index(), gc.farads);
        }
        for cc in network.coupling_caps() {
            let (a, b) = (cc.a.index(), cc.b.index());
            c.add_at(a, a, cc.farads);
            c.add_at(b, b, cc.farads);
            c.add_at(a, b, -cc.farads);
            c.add_at(b, a, -cc.farads);
        }
        let g_lu = g.lu()?;
        xtalk_obs::counter!(perf: "sim.solve.path.dense").add(1);
        Ok(TransientSim {
            network,
            id,
            backend: Backend::Dense { g, c },
            dc: Solver::Dense(g_lu),
        })
    }

    /// `true` when this simulator runs on the sparse LDLᵀ backend.
    pub fn uses_sparse_solver(&self) -> bool {
        matches!(self.backend, Backend::Sparse { .. })
    }

    /// Integrates `C·dv/dt + G·v = B·u(t)` with the given stimuli and
    /// options. Aggressor nets without a stimulus are held quiet at 0; the
    /// victim source is always quiet (the noise-analysis convention).
    ///
    /// The initial state is the DC solution for the inputs at `t = 0`
    /// (falling inputs start their net at 1).
    ///
    /// # Errors
    ///
    /// * [`SimError::StimulusOnNonAggressor`] / [`SimError::DuplicateStimulus`]
    ///   — malformed stimulus list.
    /// * [`SimError::BadOptions`] — non-positive step/horizon or an
    ///   excessive step count.
    /// * [`SimError::Numerical`] — factorization failure.
    pub fn run(
        &self,
        stimuli: &[(NetId, InputSignal)],
        options: &SimOptions,
    ) -> Result<SimResult, SimError> {
        self.run_with(stimuli, options, &mut SimWorkspace::new())
    }

    /// Like [`TransientSim::run`], reusing `workspace` buffers and any
    /// still-valid stepping factorization — the batch-workload entry
    /// point (one workspace per worker thread).
    ///
    /// # Errors
    ///
    /// As [`TransientSim::run`].
    pub fn run_with(
        &self,
        stimuli: &[(NetId, InputSignal)],
        options: &SimOptions,
        workspace: &mut SimWorkspace,
    ) -> Result<SimResult, SimError> {
        for (net, _) in stimuli {
            if self.network.net(*net).role() != NetRole::Aggressor {
                return Err(SimError::StimulusOnNonAggressor(*net));
            }
        }
        self.run_full_with(stimuli, options, workspace)
    }

    /// Like [`TransientSim::run`], but any net — the victim included — may
    /// carry a stimulus. This is the entry point for *delay* analysis
    /// (victim switching while aggressors switch along or against it);
    /// the noise convention of [`TransientSim::run`] keeps the victim
    /// quiet.
    ///
    /// # Errors
    ///
    /// As [`TransientSim::run`], minus the role restriction.
    pub fn run_full(
        &self,
        stimuli: &[(NetId, InputSignal)],
        options: &SimOptions,
    ) -> Result<SimResult, SimError> {
        self.run_full_with(stimuli, options, &mut SimWorkspace::new())
    }

    /// Ensures `ws` holds the stepping factorization and sparse stepping
    /// matrix for `(self, dt, method)`, rebuilding them only on a cache
    /// miss, and sizes the per-node buffers.
    fn prepare(&self, options: &SimOptions, ws: &mut SimWorkspace) -> Result<(), SimError> {
        let key = StepKey {
            sim_id: self.id,
            dt_bits: options.dt.to_bits(),
            method: options.method,
        };
        if ws.key != Some(key) {
            ws.key = None; // stays invalid if a step below fails
            let dt = options.dt;
            match &self.backend {
                Backend::Dense { g, c } => {
                    let (lhs, step) = match options.method {
                        IntegrationMethod::Trapezoidal => {
                            // (C/dt + G/2) v1 = (C/dt - G/2) v0 + (b0 + b1)/2
                            let lhs = c.add_scaled(g, 0.5 * dt).expect("same shape");
                            let rhs = c.add_scaled(g, -0.5 * dt).expect("same shape");
                            (lhs.scaled(1.0 / dt), rhs.scaled(1.0 / dt))
                        }
                        IntegrationMethod::BackwardEuler => {
                            // (C/dt + G) v1 = (C/dt) v0 + b1
                            let lhs = c.add_scaled(g, dt).expect("same shape");
                            (lhs.scaled(1.0 / dt), c.scaled(1.0 / dt))
                        }
                    };
                    ws.solver = Some(Solver::Dense(lhs.lu()?));
                    // MNA stepping matrices of RC interconnect are sparse (a
                    // few entries per row); the per-step matvec runs over the
                    // stored entries only instead of the dense O(n²) row
                    // loops.
                    ws.step = Some(Csr::from_dense(&step));
                    ws.lhs = None;
                    ws.owner = None;
                }
                Backend::Sparse {
                    symbolic,
                    pattern,
                    g_vals,
                    c_vals,
                } => {
                    // Same elementwise formulas as the dense path —
                    // `(c + coeff·g)·(1/dt)` per entry — evaluated on the
                    // precomputed union pattern.
                    let (lhs_coeff, step_coeff) = match options.method {
                        IntegrationMethod::Trapezoidal => (0.5 * dt, -0.5 * dt),
                        IntegrationMethod::BackwardEuler => (dt, 0.0),
                    };
                    // Reuse the pattern clones and the symbolic half of the
                    // factorization whenever the workspace last served this
                    // simulator (the horizon-retry / dt-change case): only
                    // values are rewritten and the numeric factor reruns.
                    let reusable = ws.owner == Some(self.id)
                        && matches!(ws.solver, Some(Solver::Sparse(_)))
                        && ws.lhs.is_some()
                        && ws.step.is_some();
                    if !reusable {
                        ws.owner = None;
                        ws.lhs = Some(pattern.clone());
                        ws.step = Some(pattern.clone());
                        ws.solver = None;
                    }
                    let inv_dt = 1.0 / dt;
                    let lhs = ws.lhs.as_mut().expect("set above");
                    for ((dst, gv), cv) in
                        lhs.values_mut().iter_mut().zip(g_vals).zip(c_vals)
                    {
                        *dst = (cv + lhs_coeff * gv) * inv_dt;
                    }
                    let step = ws.step.as_mut().expect("set above");
                    for ((dst, gv), cv) in
                        step.values_mut().iter_mut().zip(g_vals).zip(c_vals)
                    {
                        *dst = (cv + step_coeff * gv) * inv_dt;
                    }
                    match ws.solver.as_mut() {
                        Some(Solver::Sparse(f)) => f.refactor(lhs)?,
                        _ => ws.solver = Some(Solver::Sparse(Box::new(symbolic.factor(lhs)?))),
                    }
                    ws.owner = Some(self.id);
                }
            }
            ws.key = Some(key);
        }
        ws.resize(self.network.node_count());
        Ok(())
    }

    /// Like [`TransientSim::run_full`], reusing `workspace` (see
    /// [`SimWorkspace`]).
    ///
    /// # Errors
    ///
    /// As [`TransientSim::run_full`].
    pub fn run_full_with(
        &self,
        stimuli: &[(NetId, InputSignal)],
        options: &SimOptions,
        workspace: &mut SimWorkspace,
    ) -> Result<SimResult, SimError> {
        self.run_span_with(stimuli, options, workspace, None)
    }

    /// Checks a stimulus list for duplicate nets.
    fn check_duplicates(stimuli: &[(NetId, InputSignal)]) -> Result<(), SimError> {
        let mut seen: HashSet<NetId> = HashSet::with_capacity(stimuli.len());
        for (net, _) in stimuli {
            if !seen.insert(*net) {
                return Err(SimError::DuplicateStimulus(*net));
            }
        }
        Ok(())
    }

    /// Resolves stimuli to `(driver node, 1/Rd, signal)` source entries.
    fn resolve_sources(&self, stimuli: &[(NetId, InputSignal)]) -> Vec<(usize, f64, InputSignal)> {
        stimuli
            .iter()
            .map(|(net, sig)| {
                let d = self.network.net(*net).driver();
                (d.node.index(), 1.0 / d.ohms, *sig)
            })
            .collect()
    }

    /// Resolves the probe set (victim output when unspecified).
    fn resolve_probes(&self, options: &SimOptions) -> Vec<NodeId> {
        if options.probes.is_empty() {
            vec![self.network.victim_output()]
        } else {
            options.probes.clone()
        }
    }

    /// The fixed-step integration core behind [`TransientSim::run_full_with`]
    /// and the golden horizon-resume path. With `resume = None` this is the
    /// historical run from a DC initial condition at `t = 0`; with
    /// `resume = Some((t0, v0))` integration starts from state `v0` at `t0`
    /// and samples cover `t0 ..= t_stop` (the first sample repeats `v0`).
    pub(crate) fn run_span_with(
        &self,
        stimuli: &[(NetId, InputSignal)],
        options: &SimOptions,
        workspace: &mut SimWorkspace,
        resume: Option<(f64, &[f64])>,
    ) -> Result<SimResult, SimError> {
        let t0 = resume.map_or(0.0, |(t, _)| t);
        // Validate the span actually integrated, not the absolute horizon.
        SimOptions {
            t_stop: options.t_stop - t0,
            ..options.clone()
        }
        .validate()?;
        Self::check_duplicates(stimuli)?;

        let dt = options.dt;
        let steps = ((options.t_stop - t0) / dt).ceil() as usize;

        // Source conductance vector entries: input u_j enters as
        // (1/Rd_j)·u_j at the driver node.
        let sources = self.resolve_sources(stimuli);
        let rhs_inputs = |t: f64, out: &mut [f64]| {
            out.fill(0.0);
            for (node, cond, sig) in &sources {
                out[*node] += cond * sig.value(t);
            }
        };

        self.prepare(options, workspace)?;
        let ws = workspace;
        let solver = ws.solver.as_ref().expect("prepared above");
        let step = ws.step.as_ref().expect("prepared above");

        // Initial condition: the resumed state, or the DC solution at
        // t = 0 (G factored once at construction).
        rhs_inputs(t0, &mut ws.b_now);
        match resume {
            Some((_, v0)) => {
                if v0.len() != ws.v.len() {
                    return Err(SimError::BadOptions {
                        detail: format!(
                            "resume state has {} entries, network has {} nodes",
                            v0.len(),
                            ws.v.len()
                        ),
                    });
                }
                ws.v.copy_from_slice(v0);
            }
            None => self.dc.solve_into(&ws.b_now, &mut ws.v, &mut ws.scratch)?,
        }

        // Probe bookkeeping: resolve the probe set and reserve every
        // trace to its final length up front, before the stepping loop.
        let probe_nodes = self.resolve_probes(options);
        let mut traces: Vec<Vec<f64>> = Vec::with_capacity(probe_nodes.len());
        for node in &probe_nodes {
            let mut t = Vec::with_capacity(steps + 1);
            t.push(ws.v[node.index()]);
            traces.push(t);
        }

        for k in 0..steps {
            let t1 = t0 + (k + 1) as f64 * dt;
            rhs_inputs(t1, &mut ws.b_next);
            // rhs = step·v (+ input terms); `step` already carries the
            // 1/dt scaling in either scheme.
            step.mul_vec_into(&ws.v, &mut ws.rhs)?;
            match options.method {
                IntegrationMethod::Trapezoidal => {
                    for (r, (b0, b1)) in ws.rhs.iter_mut().zip(ws.b_now.iter().zip(&ws.b_next)) {
                        *r += 0.5 * (b0 + b1);
                    }
                }
                IntegrationMethod::BackwardEuler => {
                    for (r, b1) in ws.rhs.iter_mut().zip(&ws.b_next) {
                        *r += b1;
                    }
                }
            }
            solver.solve_into(&ws.rhs, &mut ws.v_next, &mut ws.scratch)?;
            std::mem::swap(&mut ws.v, &mut ws.v_next);
            std::mem::swap(&mut ws.b_now, &mut ws.b_next);
            for (trace, node) in traces.iter_mut().zip(&probe_nodes) {
                trace.push(ws.v[node.index()]);
            }
        }

        let probes = probe_nodes
            .into_iter()
            .zip(traces)
            .map(|(node, samples)| (node, Waveform::new(t0, dt, samples)))
            .collect();
        Ok(SimResult { probes })
    }

    /// Builds the trapezoidal + backward-Euler stepping systems for one
    /// adaptive level (step `dt`). The sparse backend reuses the one-time
    /// symbolic analysis of the G∪C union pattern, so each level costs
    /// only a value rewrite plus a numeric factorization.
    fn build_level(&self, dt: f64) -> Result<LevelSystem, SimError> {
        match &self.backend {
            Backend::Dense { g, c } => {
                let lhs_tr = c.add_scaled(g, 0.5 * dt).expect("same shape");
                let step_tr = c.add_scaled(g, -0.5 * dt).expect("same shape");
                let lhs_be = c.add_scaled(g, dt).expect("same shape");
                Ok(LevelSystem {
                    step_trap: Csr::from_dense(&step_tr.scaled(1.0 / dt)),
                    solver_trap: Solver::Dense(lhs_tr.scaled(1.0 / dt).lu()?),
                    step_be: Csr::from_dense(&c.scaled(1.0 / dt)),
                    solver_be: Solver::Dense(lhs_be.scaled(1.0 / dt).lu()?),
                })
            }
            Backend::Sparse {
                symbolic,
                pattern,
                g_vals,
                c_vals,
            } => {
                let inv_dt = 1.0 / dt;
                let fill = |coeff: f64| {
                    let mut m = pattern.clone();
                    for ((dst, gv), cv) in m.values_mut().iter_mut().zip(g_vals).zip(c_vals) {
                        *dst = (cv + coeff * gv) * inv_dt;
                    }
                    m
                };
                let lhs_trap = fill(0.5 * dt);
                let lhs_be = fill(dt);
                Ok(LevelSystem {
                    step_trap: fill(-0.5 * dt),
                    solver_trap: Solver::Sparse(Box::new(symbolic.factor(&lhs_trap)?)),
                    step_be: fill(0.0),
                    solver_be: Solver::Sparse(Box::new(symbolic.factor(&lhs_be)?)),
                })
            }
        }
    }

    /// Adaptive-timestep transient run: integrates on the same base grid
    /// as the fixed path (`options.dt`, `options.t_stop`) but doubles the
    /// step over quiescent spans and halves it back when the embedded
    /// error estimate objects, then resamples the accepted trajectory
    /// onto the uniform base grid by linear interpolation — so every
    /// consumer (probe waveforms, noise measurement) sees exactly the
    /// sample layout the fixed path produces.
    ///
    /// Each accepted step advances with the trapezoidal solution; a
    /// backward-Euler companion step from the same state provides the
    /// local-truncation-error estimate (their difference bounds the
    /// lower-order error). Steps never reject at the base level, so the
    /// accuracy floor is the fixed-step march itself. `options.method` is
    /// ignored — the scheme pair is fixed by the estimator.
    ///
    /// # Errors
    ///
    /// As [`TransientSim::run`].
    pub fn run_adaptive_with(
        &self,
        stimuli: &[(NetId, InputSignal)],
        options: &SimOptions,
        workspace: &mut SimWorkspace,
    ) -> Result<SimResult, SimError> {
        for (net, _) in stimuli {
            if self.network.net(*net).role() != NetRole::Aggressor {
                return Err(SimError::StimulusOnNonAggressor(*net));
            }
        }
        self.run_adaptive_full_with(stimuli, options, workspace)
    }

    /// [`TransientSim::run_adaptive_with`] without the aggressor-only
    /// stimulus restriction (the delay-analysis convention).
    ///
    /// # Errors
    ///
    /// As [`TransientSim::run_full`].
    pub fn run_adaptive_full_with(
        &self,
        stimuli: &[(NetId, InputSignal)],
        options: &SimOptions,
        workspace: &mut SimWorkspace,
    ) -> Result<SimResult, SimError> {
        options.validate()?;
        Self::check_duplicates(stimuli)?;

        let dt = options.dt;
        let n_base = (options.t_stop / dt).ceil() as usize;

        let sources = self.resolve_sources(stimuli);
        let rhs_inputs = |t: f64, out: &mut [f64]| {
            out.fill(0.0);
            for (node, cond, sig) in &sources {
                out[*node] += cond * sig.value(t);
            }
        };
        // Inputs stop slewing (ramps saturate, exponentials go smooth)
        // after the last arrival + transition; until then the step is
        // pinned to the base grid so no kink is ever stepped over.
        let active_end = stimuli
            .iter()
            .map(|(_, s)| s.arrival() + s.transition())
            .fold(0.0_f64, f64::max);
        let active_idx = ((active_end / dt).ceil() as usize).min(n_base);

        // Deepest doubling level: strides stay within a quarter of the
        // horizon (and a hard cap keeps level systems bounded).
        let mut max_k = 0usize;
        while max_k < 14 && (1usize << (max_k + 1)) <= n_base.max(4) / 4 {
            max_k += 1;
        }

        // Per-level stepping systems, built on first use. Level 0 (the
        // base step) reproduces the fixed-path trapezoidal numbers
        // bit-for-bit.
        let mut levels: Vec<Option<LevelSystem>> = Vec::new();
        levels.resize_with(max_k + 1, || None);

        workspace.resize(self.network.node_count());
        // The adaptive path owns its level factorizations; invalidate any
        // cached fixed-path stepping system so a later fixed run rebuilds.
        workspace.key = None;
        let ws = workspace;

        // Initial condition: DC solution at t = 0.
        rhs_inputs(0.0, &mut ws.b_now);
        self.dc.solve_into(&ws.b_now, &mut ws.v, &mut ws.scratch)?;
        for (s, v) in ws.vscale.iter_mut().zip(&ws.v) {
            *s = v.abs();
        }

        let probe_nodes = self.resolve_probes(options);
        let mut traces: Vec<Vec<f64>> = Vec::with_capacity(probe_nodes.len());
        for node in &probe_nodes {
            let mut t = Vec::with_capacity(n_base + 1);
            t.push(ws.v[node.index()]);
            traces.push(t);
        }

        // Error-norm knobs: the estimate divides the trapezoidal-vs-BE
        // difference by `ATOL + RTOL·scale_i` per component, where
        // `scale_i` is the largest |v_i| seen. RTOL is set so accumulated
        // waveform error stays well below the closed-form metric errors
        // the golden tier exists to measure; ATOL sits below the
        // measurable pulse floor.
        const RTOL: f64 = 2e-4;
        const ATOL: f64 = 1e-9;
        /// Grow the step only when the estimate is comfortably inside
        /// the acceptance region.
        const GROW_THRESHOLD: f64 = 0.25;

        let mut idx = 0usize; // current base-grid index
        let mut k = 0usize; // current doubling level
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        while idx < n_base {
            while k > 0 && (idx < active_idx || idx + (1usize << k) > n_base) {
                k -= 1;
            }
            let stride = 1usize << k;
            if levels[k].is_none() {
                levels[k] = Some(self.build_level(dt * stride as f64)?);
            }
            let sys = levels[k].as_ref().expect("built above");
            let t1 = (idx + stride) as f64 * dt;
            rhs_inputs(t1, &mut ws.b_next);
            // Trapezoidal trial step into v_next.
            sys.step_trap.mul_vec_into(&ws.v, &mut ws.rhs)?;
            for (r, (b0, b1)) in ws.rhs.iter_mut().zip(ws.b_now.iter().zip(&ws.b_next)) {
                *r += 0.5 * (b0 + b1);
            }
            sys.solver_trap
                .solve_into(&ws.rhs, &mut ws.v_next, &mut ws.scratch)?;
            // Backward-Euler companion from the same state into v_alt.
            sys.step_be.mul_vec_into(&ws.v, &mut ws.rhs)?;
            for (r, b1) in ws.rhs.iter_mut().zip(&ws.b_next) {
                *r += b1;
            }
            sys.solver_be
                .solve_into(&ws.rhs, &mut ws.v_alt, &mut ws.scratch)?;
            // Scaled max-norm of the scheme difference.
            let mut err = 0.0_f64;
            for ((trap, be), scale) in ws.v_next.iter().zip(&ws.v_alt).zip(&ws.vscale) {
                let tol = ATOL + RTOL * scale.max(trap.abs());
                err = err.max((trap - be).abs() / tol);
            }
            if err <= 1.0 || k == 0 {
                // Accept: fill the skipped base-grid samples by linear
                // interpolation between the endpoint states.
                accepted += 1;
                for (trace, node) in traces.iter_mut().zip(&probe_nodes) {
                    let v0 = ws.v[node.index()];
                    let v1 = ws.v_next[node.index()];
                    for j in 1..=stride {
                        let frac = j as f64 / stride as f64;
                        trace.push(v0 + (v1 - v0) * frac);
                    }
                }
                std::mem::swap(&mut ws.v, &mut ws.v_next);
                std::mem::swap(&mut ws.b_now, &mut ws.b_next);
                for (s, v) in ws.vscale.iter_mut().zip(&ws.v) {
                    *s = s.max(v.abs());
                }
                idx += stride;
                if err < GROW_THRESHOLD && k < max_k && idx >= active_idx {
                    k += 1;
                }
            } else {
                rejected += 1;
                k -= 1; // err > 1 implies k > 0 here
            }
        }

        xtalk_obs::counter!(perf: "sim.adaptive.runs").add(1);
        xtalk_obs::histogram!(perf: "sim.adaptive.steps").record(accepted + rejected);
        xtalk_obs::counter!(perf: "sim.adaptive.steps_saved")
            .add((n_base as u64).saturating_sub(accepted + rejected));

        let probes = probe_nodes
            .into_iter()
            .zip(traces)
            .map(|(node, samples)| (node, Waveform::new(0.0, dt, samples)))
            .collect();
        Ok(SimResult { probes })
    }
}

/// Prepared stepping systems (trapezoidal + embedded backward Euler) for
/// one adaptive doubling level.
struct LevelSystem {
    /// Trapezoidal stepping matrix `(C/dt − G/2)` at this level's step.
    step_trap: Csr,
    /// Factorization of the trapezoidal LHS `(C/dt + G/2)`.
    solver_trap: Solver,
    /// Backward-Euler stepping matrix `C/dt`.
    step_be: Csr,
    /// Factorization of the backward-Euler LHS `(C/dt + G)`.
    solver_be: Solver,
}


#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_circuit::NetworkBuilder;

    /// Lumped RC victim driven by one coupled aggressor node.
    fn coupled_pair(rd: f64, cg: f64, cc: f64) -> (Network, NetId) {
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let vn = b.add_node(v, "v0");
        let an = b.add_node(a, "a0");
        b.add_driver(v, vn, rd).unwrap();
        b.add_driver(a, an, rd).unwrap();
        b.add_sink(vn, cg).unwrap();
        b.add_sink(an, cg).unwrap();
        b.add_coupling_cap(vn, an, cc).unwrap();
        let net = b.build().unwrap();
        let agg = net.aggressor_nets().next().unwrap().0;
        (net, agg)
    }

    #[test]
    fn quiet_network_stays_at_zero() {
        let (net, _) = coupled_pair(100.0, 10e-15, 5e-15);
        let sim = TransientSim::new(&net).unwrap();
        let opts = SimOptions {
            dt: 1e-12,
            t_stop: 1e-10,
            method: IntegrationMethod::Trapezoidal,
            probes: vec![],
        };
        let res = sim.run(&[], &opts).unwrap();
        let w = res.probe(net.victim_output()).unwrap();
        assert!(w.samples().iter().all(|&v| v.abs() < 1e-15));
    }

    #[test]
    fn falling_input_starts_aggressor_high() {
        let (net, agg) = coupled_pair(100.0, 10e-15, 5e-15);
        let sim = TransientSim::new(&net).unwrap();
        let agg_node = net.net(agg).driver().node;
        let opts = SimOptions {
            dt: 1e-13,
            t_stop: 2e-9,
            method: IntegrationMethod::Trapezoidal,
            probes: vec![agg_node, net.victim_output()],
        };
        let stim = [(agg, InputSignal::falling_ramp(1e-10, 1e-10))];
        let res = sim.run(&stim, &opts).unwrap();
        let wa = res.probe(agg_node).unwrap();
        assert!((wa.samples()[0] - 1.0).abs() < 1e-9);
        // Aggressor ends low; victim noise is negative-going.
        assert!(wa.samples().last().unwrap().abs() < 1e-3);
        let wv = res.probe(net.victim_output()).unwrap();
        let min = wv.samples().iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min < -1e-3, "expected negative noise, min = {min}");
    }

    #[test]
    fn stimulus_validation() {
        let (net, agg) = coupled_pair(100.0, 10e-15, 5e-15);
        let sim = TransientSim::new(&net).unwrap();
        let opts = SimOptions {
            dt: 1e-12,
            t_stop: 1e-10,
            method: IntegrationMethod::Trapezoidal,
            probes: vec![],
        };
        let sig = InputSignal::rising_ramp(0.0, 1e-10);
        assert!(matches!(
            sim.run(&[(net.victim(), sig)], &opts),
            Err(SimError::StimulusOnNonAggressor(_))
        ));
        assert!(matches!(
            sim.run(&[(agg, sig), (agg, sig)], &opts),
            Err(SimError::DuplicateStimulus(_))
        ));
    }

    #[test]
    fn options_validation() {
        let (net, agg) = coupled_pair(100.0, 10e-15, 5e-15);
        let sim = TransientSim::new(&net).unwrap();
        let sig = InputSignal::rising_ramp(0.0, 1e-10);
        for bad in [
            SimOptions {
                dt: 0.0,
                t_stop: 1e-10,
                method: IntegrationMethod::Trapezoidal,
                probes: vec![],
            },
            SimOptions {
                dt: 1e-12,
                t_stop: 1e-13,
                method: IntegrationMethod::Trapezoidal,
                probes: vec![],
            },
            SimOptions {
                dt: 1e-22,
                t_stop: 1.0,
                method: IntegrationMethod::Trapezoidal,
                probes: vec![],
            },
        ] {
            assert!(matches!(
                sim.run(&[(agg, sig)], &bad),
                Err(SimError::BadOptions { .. })
            ));
        }
    }

    #[test]
    fn workspace_reuse_is_bit_identical_across_runs_and_networks() {
        // One workspace threaded through runs on two different networks
        // and two different steps must reproduce the fresh-workspace
        // samples exactly: the cache key has to invalidate on any change
        // of simulator or options.
        let (net_a, agg_a) = coupled_pair(100.0, 10e-15, 5e-15);
        let (net_b, agg_b) = coupled_pair(350.0, 22e-15, 9e-15);
        let sim_a = TransientSim::new(&net_a).unwrap();
        let sim_b = TransientSim::new(&net_b).unwrap();
        let stim_a = [(agg_a, InputSignal::rising_ramp(0.0, 1e-10))];
        let stim_b = [(agg_b, InputSignal::falling_ramp(5e-11, 2e-10))];
        let opts = SimOptions {
            dt: 1e-12,
            t_stop: 1e-9,
            method: IntegrationMethod::Trapezoidal,
            probes: vec![],
        };
        let opts_coarse = opts.clone().with_dt(4e-12);
        let opts_be = opts.clone().with_method(IntegrationMethod::BackwardEuler);

        let mut ws = SimWorkspace::new();
        for (sim, net, stim, o) in [
            (&sim_a, &net_a, &stim_a[..], &opts),
            (&sim_b, &net_b, &stim_b[..], &opts),
            (&sim_a, &net_a, &stim_a[..], &opts_coarse),
            (&sim_a, &net_a, &stim_a[..], &opts),
            (&sim_a, &net_a, &stim_a[..], &opts_be),
        ] {
            let reused = sim.run_with(stim, o, &mut ws).unwrap();
            let fresh = sim.run(stim, o).unwrap();
            let out = net.victim_output();
            assert_eq!(
                reused.probe(out).unwrap().samples(),
                fresh.probe(out).unwrap().samples(),
            );
        }
    }

    /// Distributed RC ladder pair (victim + aggressor, `segs` segments
    /// each) with coupling caps along the span — large enough to engage
    /// the sparse LDLᵀ backend under `Auto`.
    fn coupled_ladder(segs: usize) -> (Network, NetId) {
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let mut prev_v = b.add_node(v, "v0");
        let mut prev_a = b.add_node(a, "a0");
        b.add_driver(v, prev_v, 120.0).unwrap();
        b.add_driver(a, prev_a, 90.0).unwrap();
        for i in 1..=segs {
            let nv = b.add_node(v, format!("v{i}"));
            let na = b.add_node(a, format!("a{i}"));
            b.add_resistor(prev_v, nv, 15.0).unwrap();
            b.add_resistor(prev_a, na, 12.0).unwrap();
            b.add_ground_cap(nv, 2e-15).unwrap();
            b.add_ground_cap(na, 2e-15).unwrap();
            if i % 2 == 0 {
                b.add_coupling_cap(nv, na, 4e-15).unwrap();
            }
            prev_v = nv;
            prev_a = na;
        }
        b.add_sink(prev_v, 8e-15).unwrap();
        b.add_sink(prev_a, 6e-15).unwrap();
        let net = b.build().unwrap();
        let agg = net.aggressor_nets().next().unwrap().0;
        (net, agg)
    }

    #[test]
    fn auto_selects_sparse_for_ladders_and_dense_for_lumped() {
        let (ladder, _) = coupled_ladder(12);
        let sim = TransientSim::new_with_solver(&ladder, SolverKind::Auto).unwrap();
        assert!(sim.uses_sparse_solver());
        let (lumped, _) = coupled_pair(100.0, 10e-15, 5e-15);
        let sim = TransientSim::new_with_solver(&lumped, SolverKind::Auto).unwrap();
        assert!(!sim.uses_sparse_solver());
        // A forced-sparse request still engages on the tiny system …
        let sim = TransientSim::new_with_solver(&lumped, SolverKind::Sparse).unwrap();
        assert!(sim.uses_sparse_solver());
        // … and a forced-dense request overrides the ladder heuristic.
        let sim = TransientSim::new_with_solver(&ladder, SolverKind::Dense).unwrap();
        assert!(!sim.uses_sparse_solver());
    }

    #[test]
    fn sparse_and_dense_backends_agree() {
        let (net, agg) = coupled_ladder(16);
        let stim = [(agg, InputSignal::rising_ramp(5e-11, 1.2e-10))];
        let opts = SimOptions::auto(&net, &stim);
        let dense = TransientSim::new_with_solver(&net, SolverKind::Dense).unwrap();
        let sparse = TransientSim::new_with_solver(&net, SolverKind::Sparse).unwrap();
        assert!(sparse.uses_sparse_solver());
        for o in [&opts, &opts.clone().with_method(IntegrationMethod::BackwardEuler)] {
            let rd = dense.run(&stim, o).unwrap();
            let rs = sparse.run(&stim, o).unwrap();
            let out = net.victim_output();
            let (wd, ws) = (rd.probe(out).unwrap(), rs.probe(out).unwrap());
            assert_eq!(wd.samples().len(), ws.samples().len());
            // Peak noise is well above 1e-3; per-sample agreement to
            // 1e-10 makes the backends interchangeable for every metric
            // the sweep derives from the waveform.
            for (d, s) in wd.samples().iter().zip(ws.samples()) {
                assert!(
                    (d - s).abs() < 1e-10,
                    "dense {d} vs sparse {s} diverged"
                );
            }
        }
    }

    #[test]
    fn sparse_workspace_reuse_is_bit_identical() {
        // The in-place value rewrite + numeric refactor across dt and
        // method changes must reproduce fresh-workspace samples exactly,
        // including when the workspace hops between backends and
        // simulators.
        let (net, agg) = coupled_ladder(14);
        let (lumped, agg_l) = coupled_pair(100.0, 10e-15, 5e-15);
        let sparse = TransientSim::new_with_solver(&net, SolverKind::Sparse).unwrap();
        let dense = TransientSim::new_with_solver(&lumped, SolverKind::Dense).unwrap();
        let stim = [(agg, InputSignal::rising_ramp(0.0, 1e-10))];
        let stim_l = [(agg_l, InputSignal::rising_ramp(0.0, 1e-10))];
        let opts = SimOptions {
            dt: 2e-12,
            t_stop: 1.5e-9,
            method: IntegrationMethod::Trapezoidal,
            probes: vec![],
        };
        let opts_coarse = opts.clone().with_dt(8e-12);
        let opts_be = opts.clone().with_method(IntegrationMethod::BackwardEuler);
        let mut ws = SimWorkspace::new();
        for (sim, net, stim, o) in [
            (&sparse, &net, &stim[..], &opts),
            (&sparse, &net, &stim[..], &opts_coarse), // refactor-in-place path
            (&dense, &lumped, &stim_l[..], &opts),    // backend hop
            (&sparse, &net, &stim[..], &opts_be),     // rebuild after hop
            (&sparse, &net, &stim[..], &opts),
        ] {
            let reused = sim.run_with(stim, o, &mut ws).unwrap();
            let fresh = sim.run(stim, o).unwrap();
            let out = net.victim_output();
            assert_eq!(
                reused.probe(out).unwrap().samples(),
                fresh.probe(out).unwrap().samples(),
            );
        }
    }

    #[test]
    fn adaptive_matches_fixed_waveform_closely() {
        // Same base grid, same sample count; the adaptive march with its
        // error control must stay within a small fraction of the peak of
        // the fixed march everywhere, on both backends.
        for (net, agg) in [coupled_pair(500.0, 20e-15, 10e-15), coupled_ladder(16)] {
            let stim = [(agg, InputSignal::rising_ramp(2e-11, 1.2e-10))];
            let opts = SimOptions::auto(&net, &stim);
            let sim = TransientSim::new(&net).unwrap();
            let fixed = sim.run(&stim, &opts).unwrap();
            let adaptive = sim
                .run_adaptive_with(&stim, &opts, &mut SimWorkspace::new())
                .unwrap();
            let out = net.victim_output();
            let wf = fixed.probe(out).unwrap();
            let wa = adaptive.probe(out).unwrap();
            assert_eq!(wf.samples().len(), wa.samples().len());
            let vp = wf.max().1;
            assert!(vp > 1e-3);
            for (f, a) in wf.samples().iter().zip(wa.samples()) {
                assert!(
                    (f - a).abs() < 2e-3 * vp,
                    "fixed {f} vs adaptive {a} (vp {vp})"
                );
            }
        }
    }

    #[test]
    fn adaptive_validates_like_fixed() {
        let (net, agg) = coupled_pair(100.0, 10e-15, 5e-15);
        let sim = TransientSim::new(&net).unwrap();
        let sig = InputSignal::rising_ramp(0.0, 1e-10);
        let bad = SimOptions {
            dt: 0.0,
            t_stop: 1e-10,
            method: IntegrationMethod::Trapezoidal,
            probes: vec![],
        };
        assert!(matches!(
            sim.run_adaptive_with(&[(agg, sig)], &bad, &mut SimWorkspace::new()),
            Err(SimError::BadOptions { .. })
        ));
        assert!(matches!(
            sim.run_adaptive_with(
                &[(net.victim(), sig)],
                &SimOptions::auto(&net, &[(agg, sig)]),
                &mut SimWorkspace::new()
            ),
            Err(SimError::StimulusOnNonAggressor(_))
        ));
    }

    #[test]
    fn span_resume_continues_the_fixed_march() {
        // Integrating [0, T] in one go vs [0, T/2] + resume [T/2, T] at
        // the same dt must agree to integration rounding: the resumed
        // segment replays the identical recurrence from the saved state.
        let (net, agg) = coupled_ladder(12);
        let stim = [(agg, InputSignal::rising_ramp(0.0, 1e-10))];
        let sim = TransientSim::new(&net).unwrap();
        let dt = 2e-12;
        let full_opts = SimOptions {
            dt,
            t_stop: 2e-9,
            method: IntegrationMethod::Trapezoidal,
            probes: vec![],
        };
        let full = sim.run(&stim, &full_opts).unwrap();
        let out = net.victim_output();
        let wf = full.probe(out).unwrap();

        let half_opts = full_opts.clone().with_dt(dt); // same dt, half span
        let half_opts = SimOptions {
            t_stop: 1e-9,
            ..half_opts
        };
        let mut ws = SimWorkspace::new();
        let first = sim.run_with(&stim, &half_opts, &mut ws).unwrap();
        let first_wf = first.probe(out).unwrap();
        let n_half = first_wf.samples().len();
        let t_end = (n_half - 1) as f64 * dt;
        let state: Vec<f64> = ws.final_state().to_vec();
        let second = sim
            .run_span_with(&stim, &full_opts, &mut ws, Some((t_end, &state)))
            .unwrap();
        let second_wf = second.probe(out).unwrap();
        assert_eq!(second_wf.samples()[0], *first_wf.samples().last().unwrap());

        // Stitch and compare against the one-shot run.
        let stitched: Vec<f64> = first_wf
            .samples()
            .iter()
            .chain(&second_wf.samples()[1..])
            .copied()
            .collect();
        assert_eq!(stitched.len(), wf.samples().len());
        for (s, f) in stitched.iter().zip(wf.samples()) {
            assert!((s - f).abs() < 1e-12, "stitched {s} vs full {f}");
        }
    }

    #[test]
    fn mode_and_tier_flags_parse() {
        assert_eq!(SimMode::parse("fixed"), Some(SimMode::Fixed));
        assert_eq!(SimMode::parse("ADAPTIVE"), Some(SimMode::Adaptive));
        assert_eq!(SimMode::parse("nope"), None);
        assert_eq!(SimMode::Adaptive.as_str(), "adaptive");
        assert_eq!(FastTier::parse("off"), Some(FastTier::Off));
        assert_eq!(FastTier::parse("On"), Some(FastTier::On));
        assert_eq!(FastTier::parse("auto"), Some(FastTier::Auto));
        assert_eq!(FastTier::parse(""), None);
        assert_eq!(FastTier::Auto.as_str(), "auto");
        assert_eq!(SimMode::default(), SimMode::Fixed);
        assert_eq!(FastTier::default(), FastTier::Off);
    }

    #[test]
    fn auto_options_cover_the_pulse() {
        let (net, agg) = coupled_pair(500.0, 20e-15, 10e-15);
        let stim = [(agg, InputSignal::rising_ramp(2e-10, 1e-10))];
        let opts = SimOptions::auto(&net, &stim);
        assert!(opts.t_stop > 3e-10);
        assert!(opts.dt < 1e-11);
        let sim = TransientSim::new(&net).unwrap();
        let res = sim.run(&stim, &opts).unwrap();
        let w = res.probe(net.victim_output()).unwrap();
        // Pulse decays by the end of the window.
        let (_, vp) = w.max();
        assert!(vp > 0.0);
        assert!(w.samples().last().unwrap().abs() < 1e-3 * vp);
    }
}
