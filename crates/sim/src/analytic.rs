//! Analytic golden fast tier — closed-form pole-superposition waveforms.
//!
//! When the two-pole Padé extraction of the victim transfer function
//! yields stable, well-behaved real poles, the victim noise response to a
//! ramp or step aggressor is an explicit superposition of exponentials
//! (see [`TwoPoleFit::step_response`] / [`TwoPoleFit::ramp_response`]).
//! This module measures the paper's waveform parameters (`Vp`, `Tp`,
//! `T0`, `T1`, `T2`, `Wn`) directly on that closed form — no
//! time-stepping at all — using the same 10–90% extrapolated-transition
//! conventions as [`crate::measure::measure_noise`], so a fast-tier
//! result is interchangeable with a transient one wherever the model is
//! adequate.
//!
//! The tier is *gated*: a reduced-order model is only trusted when
//!
//! 1. the case is structurally representable (single aggressor, ramp or
//!    step shape),
//! 2. the extracted poles are real and stable, and
//! 3. under [`FastTier::Auto`], the conditioning margins hold — pole
//!    separation below [`STIFF_POLE_RATIO`] and the model's own fourth
//!    Taylor coefficient within [`MODEL_ADEQUACY_TOL`] of the circuit's
//!    (a cheap proxy for "the truncated higher-order poles do not
//!    matter"; exact for genuinely second-order circuits).
//!
//! Every rejection returns a [`FastTierFallback`] reason so the caller
//! can fall back to the transient simulator and account for the miss.

use crate::measure::PULSE_FLOOR;
use crate::{FastTier, NoiseWaveformParams};
use xtalk_circuit::{signal::InputSignal, signal::Waveshape, NetId, Network, NodeId};
use xtalk_moments::{MomentEngine, PoleKind, TwoPoleFit};

/// Largest `|p2/p1|` pole-separation ratio the [`FastTier::Auto`] gate
/// accepts. Beyond this the fast pole's dynamics are numerically
/// negligible in the closed form yet dominate the crossing bisections'
/// conditioning; the transient path handles such stiffness natively.
pub const STIFF_POLE_RATIO: f64 = 1e6;

/// Relative tolerance of the [`FastTier::Auto`] model-adequacy check:
/// the circuit's fourth Taylor coefficient `h4` must match the two-pole
/// model's own `h4 = a1·(2·b1·b2 − b1³)` to this fraction. Second-order
/// circuits match to rounding; the margin admits nets whose higher-order
/// poles are far enough out to not move the measured pulse.
pub const MODEL_ADEQUACY_TOL: f64 = 0.02;

/// Why the analytic fast tier declined a case and the transient
/// simulator must run instead. The taxonomy is stable (documented in
/// DESIGN.md §11) and each variant increments its own
/// `sim.fast_tier.fallback.*` performance counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastTierFallback {
    /// The tier is switched off ([`FastTier::Off`]).
    Disabled,
    /// More than one stimulus — superposed aggressors are not reduced to
    /// a single two-pole response.
    MultiAggressor,
    /// Exponential input shapes (and steps into a single-pole model,
    /// whose instantaneous rise has no measurable 10–90% flank).
    UnsupportedShape,
    /// Moment extraction or the Padé fit itself failed (no coupling,
    /// non-finite coefficients).
    DegenerateFit,
    /// The fit's poles are complex, unstable, or carry a non-positive
    /// gain — closed-form evaluation would be meaningless.
    IllConditionedPoles,
    /// Pole separation beyond [`STIFF_POLE_RATIO`] (auto gate only).
    Stiff,
    /// The circuit's `h4` disagrees with the model's (auto gate only):
    /// truncated higher-order poles are load-bearing.
    ModelMismatch,
    /// The closed form predicts no measurable pulse; the transient path
    /// owns that verdict.
    NoPulse,
    /// The peak/crossing search on the closed form failed to bracket.
    MeasureFailed,
}

impl FastTierFallback {
    /// Stable snake-case name (metric suffixes, logs, docs).
    pub fn as_str(self) -> &'static str {
        match self {
            FastTierFallback::Disabled => "disabled",
            FastTierFallback::MultiAggressor => "multi_aggressor",
            FastTierFallback::UnsupportedShape => "unsupported_shape",
            FastTierFallback::DegenerateFit => "degenerate_fit",
            FastTierFallback::IllConditionedPoles => "ill_conditioned_poles",
            FastTierFallback::Stiff => "stiff",
            FastTierFallback::ModelMismatch => "model_mismatch",
            FastTierFallback::NoPulse => "no_pulse",
            FastTierFallback::MeasureFailed => "measure_failed",
        }
    }

    /// Increments this reason's `sim.fast_tier.fallback.*` Perf counter.
    pub(crate) fn record(self) {
        match self {
            FastTierFallback::Disabled => {
                xtalk_obs::counter!(perf: "sim.fast_tier.fallback.disabled").add(1)
            }
            FastTierFallback::MultiAggressor => {
                xtalk_obs::counter!(perf: "sim.fast_tier.fallback.multi_aggressor").add(1)
            }
            FastTierFallback::UnsupportedShape => {
                xtalk_obs::counter!(perf: "sim.fast_tier.fallback.unsupported_shape").add(1)
            }
            FastTierFallback::DegenerateFit => {
                xtalk_obs::counter!(perf: "sim.fast_tier.fallback.degenerate_fit").add(1)
            }
            FastTierFallback::IllConditionedPoles => {
                xtalk_obs::counter!(perf: "sim.fast_tier.fallback.ill_conditioned_poles").add(1)
            }
            FastTierFallback::Stiff => {
                xtalk_obs::counter!(perf: "sim.fast_tier.fallback.stiff").add(1)
            }
            FastTierFallback::ModelMismatch => {
                xtalk_obs::counter!(perf: "sim.fast_tier.fallback.model_mismatch").add(1)
            }
            FastTierFallback::NoPulse => {
                xtalk_obs::counter!(perf: "sim.fast_tier.fallback.no_pulse").add(1)
            }
            FastTierFallback::MeasureFailed => {
                xtalk_obs::counter!(perf: "sim.fast_tier.fallback.measure_failed").add(1)
            }
        }
    }
}

/// Measures the noise pulse at `node` on the closed-form two-pole
/// response, or explains why the transient simulator must run instead.
///
/// On success the returned parameters follow exactly the conventions of
/// [`crate::measure::measure_noise`] (peak, 10–90% extrapolated
/// transitions, extrapolated width, polarity normalization, area =
/// `∫v dt`), evaluated on the continuous model instead of a sampled
/// waveform.
///
/// # Errors
///
/// A [`FastTierFallback`] describing which gate declined the case.
pub fn analytic_noise(
    network: &Network,
    stimuli: &[(NetId, InputSignal)],
    node: NodeId,
    tier: FastTier,
) -> Result<NoiseWaveformParams, FastTierFallback> {
    if tier == FastTier::Off {
        return Err(FastTierFallback::Disabled);
    }
    let (net, input) = match stimuli {
        [(net, input)] => (*net, *input),
        _ => return Err(FastTierFallback::MultiAggressor),
    };
    let step_input = match input.shape() {
        Waveshape::Step => true,
        Waveshape::RisingRamp | Waveshape::FallingRamp => false,
        Waveshape::RisingExp | Waveshape::FallingExp => {
            return Err(FastTierFallback::UnsupportedShape)
        }
    };

    // Transfer-function Taylor coefficients h0..h4 at the observed node
    // (h4 feeds the model-adequacy margin).
    let engine = MomentEngine::new(network).map_err(|_| FastTierFallback::DegenerateFit)?;
    let h = engine
        .transfer_taylor(net, node, 5)
        .map_err(|_| FastTierFallback::DegenerateFit)?;
    let fit = TwoPoleFit::from_taylor(&h[..4]).map_err(|_| FastTierFallback::DegenerateFit)?;
    if !fit.poles().is_well_behaved() {
        return Err(FastTierFallback::IllConditionedPoles);
    }
    if !(fit.a1().is_finite() && fit.a1() > 0.0 && fit.b1().is_finite() && fit.b2().is_finite()) {
        return Err(FastTierFallback::IllConditionedPoles);
    }
    if tier == FastTier::Auto {
        if let PoleKind::RealStable { p1, p2 } = fit.poles() {
            if (p2 / p1).abs() > STIFF_POLE_RATIO {
                return Err(FastTierFallback::Stiff);
            }
        }
        let h4_model = fit.a1() * (2.0 * fit.b1() * fit.b2() - fit.b1().powi(3));
        let h4 = h[4];
        let scale = h4.abs().max(h4_model.abs());
        if scale > 0.0 && (h4 - h4_model).abs() > MODEL_ADEQUACY_TOL * scale {
            return Err(FastTierFallback::ModelMismatch);
        }
    }

    // Slowest model time constant, for bracketing the decay tail.
    let slowest = match fit.poles() {
        PoleKind::SingleReal { p } | PoleKind::RealDouble { p } => -1.0 / p,
        PoleKind::RealStable { p1, p2 } => (-1.0 / p1).max(-1.0 / p2),
        _ => return Err(FastTierFallback::IllConditionedPoles),
    };

    let tr = input.transition();
    // Peak of the (rising-equivalent) response, relative to the input
    // arrival.
    let (tp_rel, vp) = if step_input {
        match fit.poles() {
            // `y'(t*) = 0` in closed form for the two-real-pole shapes.
            PoleKind::RealStable { p1, p2 } => {
                let t_star = (p2 / p1).ln() / (p1 - p2);
                (t_star, fit.step_response(t_star))
            }
            PoleKind::RealDouble { p } => (-1.0 / p, fit.step_response(-1.0 / p)),
            // A single-pole step response jumps at t = 0: no rising
            // flank exists under the 10–90% convention.
            _ => return Err(FastTierFallback::UnsupportedShape),
        }
    } else {
        fit.ramp_peak(tr)
            .ok_or(FastTierFallback::IllConditionedPoles)?
    };
    if !(vp.is_finite() && vp > PULSE_FLOOR && tp_rel.is_finite() && tp_rel >= 0.0) {
        return Err(FastTierFallback::NoPulse);
    }

    let resp = |t: f64| {
        if step_input {
            fit.step_response(t)
        } else {
            fit.ramp_response(t, tr)
        }
    };

    // The response is unimodal: monotone rise on [0, tp], monotone decay
    // after. Level crossings come from bisection on each flank.
    let t10r = bisect(&resp, 0.0, tp_rel, 0.1 * vp, true);
    let t90r = bisect(&resp, 0.0, tp_rel, 0.9 * vp, true);
    // Bracket the tail below the 10% level by doubling out from the peak.
    let mut t_hi = tp_rel + slowest.max(tr).max(tp_rel).max(f64::MIN_POSITIVE);
    let mut doublings = 0;
    while resp(t_hi) >= 0.1 * vp {
        t_hi = tp_rel + (t_hi - tp_rel) * 2.0;
        doublings += 1;
        if doublings > 200 || !t_hi.is_finite() {
            return Err(FastTierFallback::MeasureFailed);
        }
    }
    let t90f = bisect(&resp, tp_rel, t_hi, 0.9 * vp, false);
    let t10f = bisect(&resp, t90f, t_hi, 0.1 * vp, false);

    // Same parameter algebra as `measure_noise` (eq. 6 conventions).
    let t1 = (t90r - t10r) / 0.8;
    let t2 = (t10f - t90f) / 0.8;
    let t0 = t10r - 0.1 * t1;
    let wn = (t10f - t10r) + 0.1 * (t1 + t2);
    let arrival = input.arrival();
    let params = NoiseWaveformParams {
        vp,
        tp: arrival + tp_rel,
        t0: arrival + t0,
        t1,
        t2,
        wn,
        // ∫y dt over the whole pulse is exactly a1 for both shapes.
        area: fit.a1(),
        polarity: input.noise_polarity(),
    };
    let finite = params.vp.is_finite()
        && params.tp.is_finite()
        && params.t0.is_finite()
        && params.t1.is_finite()
        && params.t2.is_finite()
        && params.wn.is_finite();
    if !(finite && params.t1 > 0.0 && params.t2 > 0.0 && params.wn > 0.0) {
        return Err(FastTierFallback::MeasureFailed);
    }
    Ok(params)
}

/// Bisects for the time where monotone `f` crosses `level` inside
/// `[lo, hi]`: `rising = true` for the increasing flank (crossing from
/// below), `false` for the decreasing one.
fn bisect(f: &impl Fn(f64) -> f64, mut lo: f64, mut hi: f64, level: f64, rising: bool) -> f64 {
    for _ in 0..128 {
        let mid = 0.5 * (lo + hi);
        if (f(mid) < level) == rising {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::golden_noise;
    use xtalk_circuit::{NetRole, NetworkBuilder};

    /// Lumped two-node coupled pair — a genuinely second-order circuit,
    /// so the two-pole model is exact up to rounding.
    fn coupled_pair() -> (Network, NetId) {
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let vn = b.add_node(v, "v0");
        let an = b.add_node(a, "a0");
        b.add_driver(v, vn, 1000.0).unwrap();
        b.add_driver(a, an, 800.0).unwrap();
        b.add_sink(vn, 20e-15).unwrap();
        b.add_sink(an, 25e-15).unwrap();
        b.add_coupling_cap(vn, an, 40e-15).unwrap();
        let net = b.build().unwrap();
        let agg = net.aggressor_nets().next().unwrap().0;
        (net, agg)
    }

    #[test]
    fn matches_transient_golden_on_second_order_circuit() {
        let (net, agg) = coupled_pair();
        for input in [
            InputSignal::rising_ramp(0.0, 1e-10),
            InputSignal::rising_ramp(5e-11, 2.5e-10),
            InputSignal::falling_ramp(2e-11, 8e-11),
        ] {
            let stim = [(agg, input)];
            let fast =
                analytic_noise(&net, &stim, net.victim_output(), FastTier::Auto).unwrap();
            let slow = golden_noise(&net, agg, &input).unwrap();
            let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-30);
            assert!(rel(fast.vp, slow.vp) < 5e-3, "vp {} vs {}", fast.vp, slow.vp);
            assert!(rel(fast.tp, slow.tp) < 2e-2, "tp {} vs {}", fast.tp, slow.tp);
            assert!(rel(fast.wn, slow.wn) < 2e-2, "wn {} vs {}", fast.wn, slow.wn);
            assert!(rel(fast.t1, slow.t1) < 5e-2, "t1 {} vs {}", fast.t1, slow.t1);
            assert_eq!(fast.polarity, input.noise_polarity());
        }
    }

    #[test]
    fn area_matches_first_output_moment() {
        let (net, agg) = coupled_pair();
        let stim = [(agg, InputSignal::rising_ramp(0.0, 1e-10))];
        let fast = analytic_noise(&net, &stim, net.victim_output(), FastTier::Auto).unwrap();
        let slow = golden_noise(&net, agg, &stim[0].1).unwrap();
        assert!(
            (fast.area - slow.area).abs() < 2e-2 * slow.area.abs(),
            "area {} vs {}",
            fast.area,
            slow.area
        );
    }

    #[test]
    fn off_and_exponential_shapes_decline() {
        let (net, agg) = coupled_pair();
        let out = net.victim_output();
        let ramp = [(agg, InputSignal::rising_ramp(0.0, 1e-10))];
        assert_eq!(
            analytic_noise(&net, &ramp, out, FastTier::Off),
            Err(FastTierFallback::Disabled)
        );
        let exp = [(agg, InputSignal::rising_exp(0.0, 1e-10))];
        assert_eq!(
            analytic_noise(&net, &exp, out, FastTier::Auto),
            Err(FastTierFallback::UnsupportedShape)
        );
        assert_eq!(
            analytic_noise(&net, &[], out, FastTier::Auto),
            Err(FastTierFallback::MultiAggressor)
        );
    }

    #[test]
    fn step_input_measured_in_closed_form() {
        let (net, agg) = coupled_pair();
        let input = InputSignal::step(3e-11);
        let stim = [(agg, input)];
        let fast = analytic_noise(&net, &stim, net.victim_output(), FastTier::Auto).unwrap();
        let slow = golden_noise(&net, agg, &input).unwrap();
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-30);
        // The sampled transient rise of a step is resolution-limited, so
        // the flank tolerance is looser than the ramp case.
        assert!(rel(fast.vp, slow.vp) < 2e-2, "vp {} vs {}", fast.vp, slow.vp);
        assert!(rel(fast.wn, slow.wn) < 5e-2, "wn {} vs {}", fast.wn, slow.wn);
    }
}
