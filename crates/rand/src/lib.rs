//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *subset* of the `rand 0.9` API that its sweep
//! generators and tests actually use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`] over half-open
//! ranges, and [`Rng::random_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction family the real `StdRng` has used — so sequences are
//! deterministic per seed, statistically solid for test-case generation,
//! and bit-reproducible across platforms. It is **not** the upstream
//! implementation: seeds do not produce the same streams as the real
//! crate, and no cryptographic properties are claimed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly between two bounds, mirroring
/// `rand::distr::uniform::SampleUniform`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_uniform!(f32, f64);

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Sampling a value of type `T` from a range, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(start, end, true, rng)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (`lo..hi` for floats and integers,
    /// `lo..=hi` for integers).
    ///
    /// # Panics
    ///
    /// Panics on an empty range, like the real `rand`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0.0..1.0f64).to_bits(),
                b.random_range(0.0..1.0f64).to_bits()
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.random_range(2.5..9.5f64);
            assert!((2.5..9.5).contains(&f));
            let u = rng.random_range(3usize..12);
            assert!((3..12).contains(&u));
            let i = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn bool_probability_is_roughly_honored() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!StdRng::seed_from_u64(1).random_bool(0.0));
        assert!(StdRng::seed_from_u64(1).random_bool(1.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random_range(0u64..1000) == b.random_range(0u64..1000))
            .count();
        assert!(same < 16);
    }
}
