//! Cross-validation of the closed-form tree formulas against the exact
//! MNA moment engine on randomized coupled RC trees.
//!
//! These are the identities the paper's FrontEnd flow rests on:
//!
//! * `a1` (closed form, ref. \[13\]) equals the exact `h1` Taylor
//!   coefficient of each aggressor→victim transfer function;
//! * `b1` (sum of open-circuit time constants, ref. \[11\]) equals the exact
//!   `tr(G⁻¹C)`;
//! * the two-pole Padé fit built from exact Taylor coefficients reproduces
//!   those coefficients (moment matching is exact by construction).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xtalk_circuit::{NetId, NetRole, Network, NetworkBuilder, NodeId};
use xtalk_moments::{tree, MomentEngine, TwoPoleFit};

/// Builds a random coupled network: a victim tree with `branches` branch
/// points and 1–2 aggressors, each a random chain, with couplings at
/// random victim nodes.
fn random_network(rng: &mut StdRng) -> (Network, Vec<NetId>) {
    let mut b = NetworkBuilder::new();
    let v = b.add_net("vic", NetRole::Victim);

    // Victim: random tree grown node by node.
    let n_victim = rng.random_range(3..10);
    let mut victim_nodes: Vec<NodeId> = Vec::new();
    let root = b.add_node(v, "v0");
    victim_nodes.push(root);
    b.add_driver(v, root, rng.random_range(20.0..2000.0)).unwrap();
    for i in 1..n_victim {
        let parent = victim_nodes[rng.random_range(0..victim_nodes.len())];
        let node = b.add_node(v, format!("v{i}"));
        b.add_resistor(parent, node, rng.random_range(1.0..200.0))
            .unwrap();
        b.add_ground_cap(node, rng.random_range(0.5e-15..30e-15))
            .unwrap();
        victim_nodes.push(node);
    }
    let out = victim_nodes[victim_nodes.len() - 1];
    b.add_sink(out, rng.random_range(1e-15..50e-15)).unwrap();
    b.set_victim_output(out);

    // Aggressors: chains with couplings into random victim nodes.
    let n_agg = rng.random_range(1..3);
    let mut agg_ids = Vec::new();
    for a in 0..n_agg {
        let agg = b.add_net(format!("agg{a}"), NetRole::Aggressor);
        agg_ids.push(agg);
        let len = rng.random_range(2..6);
        let mut prev = b.add_node(agg, format!("a{a}_0"));
        b.add_driver(agg, prev, rng.random_range(20.0..2000.0))
            .unwrap();
        for i in 1..len {
            let node = b.add_node(agg, format!("a{a}_{i}"));
            b.add_resistor(prev, node, rng.random_range(1.0..200.0))
                .unwrap();
            b.add_ground_cap(node, rng.random_range(0.5e-15..30e-15))
                .unwrap();
            // Random coupling to a victim node.
            if rng.random_bool(0.6) {
                let vn = victim_nodes[rng.random_range(0..victim_nodes.len())];
                b.add_coupling_cap(node, vn, rng.random_range(1e-15..80e-15))
                    .unwrap();
            }
            prev = node;
        }
        b.add_sink(prev, rng.random_range(1e-15..50e-15)).unwrap();
    }
    (b.build().unwrap(), agg_ids)
}

#[test]
fn closed_form_a1_equals_exact_h1_over_many_random_trees() {
    let mut rng = StdRng::seed_from_u64(0x1d_a1);
    for case in 0..200 {
        let (net, aggs) = random_network(&mut rng);
        let engine = MomentEngine::new(&net).unwrap();
        for &agg in &aggs {
            let h = engine.transfer_taylor(agg, net.victim_output(), 2).unwrap();
            let a1 = tree::coupling_a1(&net, agg, net.victim_output());
            assert!(
                (h[1] - a1).abs() <= 1e-9 * a1.abs().max(1e-30),
                "case {case}: exact h1 = {}, closed-form a1 = {a1}",
                h[1]
            );
        }
    }
}

#[test]
fn closed_form_b1_and_b2_equal_matrix_invariants_over_many_random_trees() {
    let mut rng = StdRng::seed_from_u64(0xb1);
    for case in 0..200 {
        let (net, _) = random_network(&mut rng);
        let engine = MomentEngine::new(&net).unwrap();
        let (b1_exact, b2_exact) = engine.denominator().unwrap();
        let b1_tree = tree::open_circuit_b1(&net);
        assert!(
            (b1_exact - b1_tree).abs() <= 1e-9 * b1_exact.abs(),
            "case {case}: trace b1 = {b1_exact}, closed-form b1 = {b1_tree}"
        );
        // b2 of a passive RC network is positive (real poles exist).
        assert!(b2_exact > 0.0, "case {case}: b2 = {b2_exact}");
        // Pairwise open/short-circuit time-constant form (ref. [11]).
        let b2_tree = tree::short_circuit_b2(&net);
        assert!(
            (b2_exact - b2_tree).abs() <= 1e-9 * b2_exact.abs(),
            "case {case}: invariant b2 = {b2_exact}, closed-form b2 = {b2_tree}"
        );
    }
}

#[test]
fn pade_fit_reproduces_exact_taylor_coefficients() {
    let mut rng = StdRng::seed_from_u64(0xfade);
    for case in 0..100 {
        let (net, aggs) = random_network(&mut rng);
        let engine = MomentEngine::new(&net).unwrap();
        for &agg in &aggs {
            let h = engine.transfer_taylor(agg, net.victim_output(), 4).unwrap();
            if h[1].abs() < 1e-30 {
                continue; // uncoupled aggressor: nothing to fit
            }
            let fit = TwoPoleFit::from_taylor(&h).unwrap();
            let back = fit.taylor();
            for k in 1..4 {
                assert!(
                    (back[k] - h[k]).abs() <= 1e-9 * h[k].abs().max(1e-40),
                    "case {case}: h[{k}] = {}, refit = {}",
                    h[k],
                    back[k]
                );
            }
        }
    }
}

#[test]
fn victim_elmore_delay_equals_negated_first_moment_when_uncoupled() {
    // With no aggressors at all, -h1 of the victim's own transfer at a node
    // equals the Elmore delay there.
    let mut b = NetworkBuilder::new();
    let v = b.add_net("v", NetRole::Victim);
    let n0 = b.add_node(v, "n0");
    let n1 = b.add_node(v, "n1");
    let n2 = b.add_node(v, "n2");
    b.add_driver(v, n0, 120.0).unwrap();
    b.add_resistor(n0, n1, 40.0).unwrap();
    b.add_resistor(n1, n2, 60.0).unwrap();
    b.add_ground_cap(n1, 10e-15).unwrap();
    b.add_sink(n2, 20e-15).unwrap();
    let net = b.build().unwrap();
    let engine = MomentEngine::new(&net).unwrap();
    let h = engine.transfer_taylor(net.victim(), n2, 2).unwrap();
    let elmore = tree::elmore_delay(&net, n2);
    assert!((h[0] - 1.0).abs() < 1e-12);
    assert!(
        (-h[1] - elmore).abs() < 1e-9 * elmore,
        "-h1 = {}, elmore = {elmore}",
        -h[1]
    );
}

#[test]
fn moments_alternate_in_sign_for_monotone_rc_networks() {
    // For an RC tree driven at the root, node-voltage Taylor coefficients
    // alternate in sign: m0 > 0, m1 < 0, m2 > 0 … (completely monotone
    // impulse response). Spot-check on random victims.
    let mut rng = StdRng::seed_from_u64(0x5160);
    for _ in 0..50 {
        let (net, _) = random_network(&mut rng);
        let engine = MomentEngine::new(&net).unwrap();
        let h = engine.transfer_taylor(net.victim(), net.victim_output(), 5).unwrap();
        for (k, hk) in h.iter().enumerate() {
            let expect_sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            assert!(
                hk * expect_sign > 0.0,
                "victim transfer h[{k}] = {hk} has unexpected sign"
            );
        }
    }
}
