//! Property tests for the two-pole fit over randomized stable pole pairs.

use proptest::prelude::*;
use xtalk_moments::{PoleKind, TwoPoleFit};

/// Strategy: stable fits from random time constants and areas.
fn stable_fit() -> impl Strategy<Value = TwoPoleFit> {
    (1e-12..1e-9f64, 1e-12..1e-9f64, 1e-13..1e-10f64).prop_map(|(t1, t2, a1)| {
        TwoPoleFit::from_coeffs(a1, t1 + t2, t1 * t2)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn stable_taus_classify_as_well_behaved(fit in stable_fit()) {
        prop_assert!(fit.poles().is_well_behaved(), "{:?}", fit.poles());
    }

    #[test]
    fn step_response_is_nonnegative_and_decays(fit in stable_fit()) {
        let slowest = match fit.poles() {
            PoleKind::SingleReal { p } | PoleKind::RealDouble { p } => -1.0 / p,
            PoleKind::RealStable { p1, .. } => -1.0 / p1,
            other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
        };
        let mut last_tail = f64::INFINITY;
        for k in 1..=40 {
            let t = slowest * k as f64;
            let y = fit.step_response(t);
            prop_assert!(y >= -1e-18, "negative response {y} at {t}");
            if k > 20 {
                prop_assert!(y <= last_tail * (1.0 + 1e-9), "tail not decaying");
                last_tail = y;
            }
        }
        prop_assert!(fit.step_response(slowest * 200.0) < 1e-9 * fit.a1() / slowest);
    }

    #[test]
    fn step_integral_is_monotone_and_saturates_at_a1(fit in stable_fit()) {
        let slowest = match fit.poles() {
            PoleKind::SingleReal { p } | PoleKind::RealDouble { p } => -1.0 / p,
            PoleKind::RealStable { p1, .. } => -1.0 / p1,
            other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
        };
        let mut prev = 0.0;
        for k in 1..=50 {
            let s = fit.step_integral(slowest * k as f64 * 0.5);
            prop_assert!(s >= prev - 1e-24, "integral decreased");
            prev = s;
        }
        let s_inf = fit.step_integral(slowest * 100.0);
        prop_assert!((s_inf - fit.a1()).abs() < 1e-6 * fit.a1(),
            "integral {s_inf} vs a1 {}", fit.a1());
    }

    #[test]
    fn ramp_peak_below_step_peak_and_shrinks_with_slower_ramps(fit in stable_fit(), tr in 1e-12..1e-9f64) {
        let (tp1, vp1) = fit.ramp_peak(tr).expect("stable fit has a peak");
        let (tp2, vp2) = fit.ramp_peak(tr * 4.0).expect("stable fit has a peak");
        prop_assert!(vp1 > 0.0 && tp1 > 0.0);
        // Slower input, smaller and later peak.
        prop_assert!(vp2 <= vp1 * (1.0 + 1e-6), "{vp2} vs {vp1}");
        prop_assert!(tp2 >= tp1 * (1.0 - 1e-6));
    }

    #[test]
    fn taylor_inverse_of_from_taylor(fit in stable_fit()) {
        let h = fit.taylor();
        let refit = TwoPoleFit::from_taylor(&h).unwrap();
        prop_assert!((refit.a1() - fit.a1()).abs() <= 1e-9 * fit.a1().abs());
        prop_assert!((refit.b1() - fit.b1()).abs() <= 1e-9 * fit.b1().abs());
        prop_assert!((refit.b2() - fit.b2()).abs() <= 1e-6 * fit.b2().abs());
    }
}
