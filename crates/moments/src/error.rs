use std::error::Error;
use std::fmt;
use xtalk_circuit::{NetId, NetRole};
use xtalk_linalg::LinalgError;

/// Errors raised by the moment engines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MomentError {
    /// The MNA conductance matrix could not be factored. With validated
    /// networks (every net grounded through its driver) this indicates a
    /// pathological conditioning problem, not a structural one.
    Numerical(LinalgError),
    /// The requested net does not have the expected role (e.g. transfer
    /// moments requested *from* the victim's own source with an
    /// aggressor-only API).
    WrongRole {
        /// The net in question.
        net: NetId,
        /// Role the operation needed.
        expected: NetRole,
    },
    /// A Taylor order of zero was requested; at least `h0` is required.
    ZeroOrder,
    /// The first-order coefficient vanished, so no two-pole fit exists
    /// (the aggressor is not coupled to the observation node).
    DegenerateFit,
}

impl fmt::Display for MomentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MomentError::Numerical(e) => write!(f, "numerical failure in moment engine: {e}"),
            MomentError::WrongRole { net, expected } => {
                write!(f, "net {net} does not have the required role {expected:?}")
            }
            MomentError::ZeroOrder => write!(f, "taylor order must be at least 1"),
            MomentError::DegenerateFit => {
                write!(f, "first moment is zero: no coupling to the observation node")
            }
        }
    }
}

impl Error for MomentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MomentError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for MomentError {
    fn from(e: LinalgError) -> Self {
        MomentError::Numerical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MomentError::ZeroOrder;
        assert!(e.to_string().contains("at least 1"));
        let e = MomentError::Numerical(LinalgError::Singular { pivot: 3 });
        assert!(e.to_string().contains("singular"));
    }
}
