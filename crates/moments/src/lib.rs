//! Moment computation for coupled distributed-RC trees.
//!
//! This crate is the *FrontEnd* of the crosstalk-noise flow in
//! Chen & Marek-Sadowska (DATE 2002): it turns a validated
//! [`xtalk_circuit::Network`] into the Laplace-domain quantities the
//! closed-form metrics consume —
//!
//! * **exact transfer-function Taylor coefficients** `h_k` from any
//!   aggressor source to any victim node via the MNA moment recursion
//!   `G·m_k = −C·m_{k−1}` ([`MomentEngine`]);
//! * **closed-form tree formulas** for the dominant coefficients — the
//!   numerator coefficient `a1` (paper ref. \[13\]) and the denominator
//!   coefficient `b1` as the sum of open-circuit time constants (paper
//!   ref. \[11\]) — in [`tree`];
//! * **two-pole Padé fits** with pole extraction, stability
//!   classification and time-domain response evaluation ([`TwoPoleFit`]),
//!   used by the Yu-style baseline metrics and for the paper's remark that
//!   two-pole models can go unstable.
//!
//! # Conventions
//!
//! We work with Taylor coefficients of the transfer function around
//! `s = 0`: `H(s) = h0 + h1·s + h2·s² + …`. For an aggressor→victim
//! transfer, `h0 = 0` (no DC path) and `h1 = a1` of the paper. (The paper's
//! probabilistic "moments" `m_p = (−1)^p p!·h_p` differ only by bookkeeping.)
//!
//! # Examples
//!
//! ```
//! use xtalk_circuit::{NetRole, NetworkBuilder};
//! use xtalk_moments::MomentEngine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One coupling cap between two single-node nets.
//! let mut b = NetworkBuilder::new();
//! let v = b.add_net("v", NetRole::Victim);
//! let a = b.add_net("a", NetRole::Aggressor);
//! let vn = b.add_node(v, "v0");
//! let an = b.add_node(a, "a0");
//! b.add_driver(v, vn, 100.0)?;
//! b.add_driver(a, an, 100.0)?;
//! b.add_sink(vn, 10e-15)?;
//! b.add_sink(an, 10e-15)?;
//! b.add_coupling_cap(vn, an, 20e-15)?;
//! let network = b.build()?;
//!
//! let engine = MomentEngine::new(&network)?;
//! let h = engine.transfer_taylor(a, network.victim_output(), 4)?;
//! assert_eq!(h[0], 0.0);                 // no DC path
//! assert!((h[1] - 20e-15 * 100.0).abs() < 1e-18); // a1 = Cc * Rd_victim
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
pub mod incr;
mod pade;
pub mod three_pole;
pub mod tree;
mod tree_engine;

pub use engine::MomentEngine;
pub use error::MomentError;
pub use incr::{IncrStats, IncrTreeEngine};
pub use pade::{PoleKind, TwoPoleFit};
pub use three_pole::{CubicRoots, ThreePoleFit};
pub use tree_engine::TreeMomentEngine;
