//! Incrementally-repairable tree moment engine.
//!
//! [`TreeMomentEngine`](crate::TreeMomentEngine) recomputes every moment
//! vector from scratch on each call — `O(order · (n + k))` over the whole
//! network. Inside a what-if loop (move one wire, resize one driver) that
//! is pure waste: the conductance matrix is block-diagonal per net, so a
//! value change on net *B* can only perturb
//!
//! * the `G`-solve of *B*'s own block (driver or wire resistance), and
//! * the `−C·m_{k−1}` right-hand sides whose *rows* live on *B* (its own
//!   capacitors), which in turn feed nets coupled to *B* at the next
//!   moment order.
//!
//! [`IncrTreeEngine`] owns the traversal structures, caches the full
//! moment vectors per driven (source) net, and on [`IncrTreeEngine::refresh`]
//! diffs element *values* against the network (topology is frozen —
//! the [`xtalk_circuit::Delta`] contract). A subsequent query repairs
//! only the dirty blocks per moment order using the propagation
//!
//! ```text
//! dirty₀ = {src} if the source driver changed, else ∅
//! dirtyₖ = dirtyₖ₋₁ ∪ N(dirtyₖ₋₁) ∪ gdirty ∪ cdirty      (k ≥ 1)
//! ```
//!
//! where `N(·)` is coupling adjacency, `gdirty` marks nets whose
//! conductances changed and `cdirty` nets whose capacitor rows changed.
//! Clean blocks are reused verbatim.
//!
//! **Bit-identity.** The per-block kernels perform *exactly* the same
//! floating-point operations in the same order as the global kernels:
//! `solve_g`'s two passes never cross nets (parent links stay within a
//! net, and the global order lists each net contiguously), and the rhs
//! accumulation preserves the per-row relative order of `C` entries. So
//! a repaired cache is bit-identical to a from-scratch recompute — the
//! property the `incremental` audit family enforces end to end. The
//! dirty sets are conservative supersets; recomputing a block whose
//! inputs did not change reproduces the identical bits.

use crate::MomentError;
use std::collections::HashMap;
use xtalk_circuit::{NetId, Network, NodeId};

/// Moment-block repair statistics for one engine (monotonic totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrStats {
    /// Per-net moment blocks recomputed (full builds and repairs).
    pub blocks_recomputed: u64,
    /// Per-net moment blocks reused verbatim from cache during repair.
    pub blocks_reused: u64,
    /// `refresh` calls that found at least one changed value.
    pub refreshes_dirty: u64,
    /// `refresh` calls that found nothing changed.
    pub refreshes_clean: u64,
}

/// Owned, cache-carrying variant of [`crate::TreeMomentEngine`] that
/// repairs its moment vectors after value-only network edits instead of
/// recomputing them (see the [module docs](self) for the invalidation
/// rule and the bit-identity argument).
///
/// # Examples
///
/// ```
/// use xtalk_circuit::{Delta, NetRole, NetworkBuilder};
/// use xtalk_moments::{IncrTreeEngine, TreeMomentEngine};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetworkBuilder::new();
/// let v = b.add_net("v", NetRole::Victim);
/// let a = b.add_net("a", NetRole::Aggressor);
/// let vn = b.add_node(v, "v0");
/// let an = b.add_node(a, "a0");
/// b.add_driver(v, vn, 100.0)?;
/// b.add_driver(a, an, 100.0)?;
/// b.add_sink(vn, 10e-15)?;
/// b.add_sink(an, 10e-15)?;
/// b.add_coupling_cap(vn, an, 20e-15)?;
/// let mut network = b.build()?;
///
/// let mut incr = IncrTreeEngine::new(&network, 4);
/// let before = incr.transfer_taylor(a, network.victim_output())?;
///
/// network.apply_delta(&Delta::SetCouplingCap { index: 0, farads: 30e-15 })?;
/// incr.refresh(&network);
/// let after = incr.transfer_taylor(a, network.victim_output())?;
///
/// // Repaired answer is bit-identical to a from-scratch recompute.
/// let full = TreeMomentEngine::new(&network)
///     .transfer_taylor(a, network.victim_output(), 4)?;
/// assert!(after.iter().zip(&full).all(|(x, y)| x.to_bits() == y.to_bits()));
/// assert!(before[1] < after[1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct IncrTreeEngine {
    n: usize,
    num_nets: usize,
    moment_order: usize,
    /// Per node: resistance to its tree parent (0 for roots).
    parent_res: Vec<f64>,
    /// Per node: parent index, usize::MAX for roots.
    parent: Vec<usize>,
    /// Per node: its net's driver resistance if it is the root, else 0.
    root_res: Vec<f64>,
    /// Global traversal order, each net contiguous, roots first.
    order: Vec<usize>,
    /// Per net: its `[start, end)` slice of `order`.
    net_ranges: Vec<(usize, usize)>,
    /// Per net: owning-net index of each node.
    node_net: Vec<usize>,
    /// Per net: driver attachment node and resistance.
    driver_node: Vec<usize>,
    driver_ohms: Vec<f64>,
    /// Capacitance triplets in the reference construction order
    /// (ground caps, sinks per net, coupling caps ×4) — the diff target.
    c_entries: Vec<(usize, usize, f64)>,
    /// The same triplets grouped by *row* net, relative order preserved.
    net_c_entries: Vec<Vec<(usize, usize, f64)>>,
    /// Coupling adjacency over nets (sorted, deduplicated).
    net_neighbors: Vec<Vec<usize>>,
    /// Cached moment vectors per driven (source) net.
    cache: HashMap<usize, Vec<Vec<f64>>>,
    /// Nets whose conductances (driver or wire R) changed since repair.
    gdirty: Vec<bool>,
    cdirty: Vec<bool>,
    any_dirty: bool,
    stats: IncrStats,
}

impl IncrTreeEngine {
    /// Builds the traversal structures; no moments are computed until
    /// the first query (demand-driven).
    ///
    /// # Panics
    ///
    /// Panics when `moment_order == 0`; at least `h0` is required.
    #[must_use]
    pub fn new(network: &Network, moment_order: usize) -> Self {
        assert!(moment_order > 0, "taylor order must be at least 1");
        let _span = xtalk_obs::span!("moments.incr_build");
        let n = network.node_count();
        let num_nets = network.nets().count();
        let mut parent_res = vec![0.0; n];
        let mut parent = vec![usize::MAX; n];
        let mut root_res = vec![0.0; n];
        let mut node_net = vec![0usize; n];
        let mut order = Vec::with_capacity(n);
        let mut net_ranges = Vec::with_capacity(num_nets);
        let mut driver_node = Vec::with_capacity(num_nets);
        let mut driver_ohms = Vec::with_capacity(num_nets);
        for (id, net) in network.nets() {
            let tree = network.tree(id);
            let start = order.len();
            root_res[tree.root().index()] = net.driver().ohms;
            driver_node.push(net.driver().node.index());
            driver_ohms.push(net.driver().ohms);
            for &node in tree.order() {
                node_net[node.index()] = id.index();
                order.push(node.index());
                if let Some((p, r)) = tree.parent(node) {
                    parent[node.index()] = p.index();
                    parent_res[node.index()] = r;
                }
            }
            net_ranges.push((start, order.len()));
        }

        // Reference construction order — must match TreeMomentEngine so
        // the per-row relative order (and hence every floating-point
        // accumulation) is identical.
        let mut c_entries = Vec::new();
        for gc in network.ground_caps() {
            c_entries.push((gc.node.index(), gc.node.index(), gc.farads));
        }
        for (_, net) in network.nets() {
            for s in net.sinks() {
                c_entries.push((s.node.index(), s.node.index(), s.farads));
            }
        }
        for cc in network.coupling_caps() {
            let (a, b) = (cc.a.index(), cc.b.index());
            c_entries.push((a, a, cc.farads));
            c_entries.push((b, b, cc.farads));
            c_entries.push((a, b, -cc.farads));
            c_entries.push((b, a, -cc.farads));
        }
        let mut net_c_entries = vec![Vec::new(); num_nets];
        for &(i, j, c) in &c_entries {
            net_c_entries[node_net[i]].push((i, j, c));
        }

        let mut net_neighbors = vec![Vec::new(); num_nets];
        for cc in network.coupling_caps() {
            let (na, nb) = (node_net[cc.a.index()], node_net[cc.b.index()]);
            if na != nb {
                net_neighbors[na].push(nb);
                net_neighbors[nb].push(na);
            }
        }
        for nb in &mut net_neighbors {
            nb.sort_unstable();
            nb.dedup();
        }

        IncrTreeEngine {
            n,
            num_nets,
            moment_order,
            parent_res,
            parent,
            root_res,
            order,
            net_ranges,
            node_net,
            driver_node,
            driver_ohms,
            c_entries,
            net_c_entries,
            net_neighbors,
            cache: HashMap::new(),
            gdirty: vec![false; num_nets],
            cdirty: vec![false; num_nets],
            any_dirty: false,
            stats: IncrStats::default(),
        }
    }

    /// Diffs element values against `network` (same topology — the
    /// [`xtalk_circuit::Delta`] contract) and marks the touched nets
    /// dirty. Cached moments are repaired lazily on the next query.
    /// Returns `true` when at least one value changed.
    ///
    /// # Panics
    ///
    /// Panics if the network's node or net count differs from the one
    /// the engine was built on (a topology change, which deltas never
    /// produce).
    pub fn refresh(&mut self, network: &Network) -> bool {
        assert_eq!(network.node_count(), self.n, "topology changed under engine");
        assert_eq!(network.nets().count(), self.num_nets);
        let mut changed = false;
        for (id, net) in network.nets() {
            let k = id.index();
            let ohms = net.driver().ohms;
            if ohms.to_bits() != self.driver_ohms[k].to_bits() {
                self.driver_ohms[k] = ohms;
                self.root_res[self.driver_node[k]] = ohms;
                self.gdirty[k] = true;
                changed = true;
            }
            let tree = network.tree(id);
            for &node in tree.order() {
                if let Some((_, r)) = tree.parent(node) {
                    if r.to_bits() != self.parent_res[node.index()].to_bits() {
                        self.parent_res[node.index()] = r;
                        self.gdirty[k] = true;
                        changed = true;
                    }
                }
            }
        }

        // Walk the C triplets in their construction order against the
        // network's current values.
        let mut idx = 0usize;
        let mut diff_c = |entries: &mut [(usize, usize, f64)],
                          cdirty: &mut [bool],
                          node_net: &[usize],
                          value: f64| {
            let (row, _, stored) = &mut entries[idx];
            if value.to_bits() != stored.to_bits() {
                *stored = value;
                cdirty[node_net[*row]] = true;
                changed = true;
            }
            idx += 1;
        };
        for gc in network.ground_caps() {
            diff_c(&mut self.c_entries, &mut self.cdirty, &self.node_net, gc.farads);
        }
        for (_, net) in network.nets() {
            for s in net.sinks() {
                diff_c(&mut self.c_entries, &mut self.cdirty, &self.node_net, s.farads);
            }
        }
        for cc in network.coupling_caps() {
            diff_c(&mut self.c_entries, &mut self.cdirty, &self.node_net, cc.farads);
            diff_c(&mut self.c_entries, &mut self.cdirty, &self.node_net, cc.farads);
            diff_c(&mut self.c_entries, &mut self.cdirty, &self.node_net, -cc.farads);
            diff_c(&mut self.c_entries, &mut self.cdirty, &self.node_net, -cc.farads);
        }
        assert_eq!(idx, self.c_entries.len(), "capacitor table changed shape");

        if changed {
            // Regroup only the rows of nets whose C values moved.
            for k in 0..self.num_nets {
                if self.cdirty[k] {
                    self.net_c_entries[k].clear();
                }
            }
            for &(i, j, c) in &self.c_entries {
                if self.cdirty[self.node_net[i]] {
                    self.net_c_entries[self.node_net[i]].push((i, j, c));
                }
            }
            self.any_dirty = true;
            self.stats.refreshes_dirty += 1;
        } else {
            self.stats.refreshes_clean += 1;
        }
        changed
    }

    /// Taylor coefficients `h_0 … h_{order−1}` of the transfer function
    /// from the source of `net` to `output`, served from the
    /// per-source-net cache (repaired first when dirty).
    ///
    /// # Errors
    ///
    /// Currently infallible for validated networks; the `Result` mirrors
    /// [`crate::TreeMomentEngine::transfer_taylor`] so callers can treat
    /// the engines interchangeably.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of bounds.
    pub fn transfer_taylor(
        &mut self,
        net: NetId,
        output: NodeId,
    ) -> Result<Vec<f64>, MomentError> {
        let vectors = self.moment_vectors(net)?;
        Ok(vectors.iter().map(|m| m[output.index()]).collect())
    }

    /// The cached moment vectors for driven net `net`, computing or
    /// repairing as needed. Same contract as
    /// [`crate::TreeMomentEngine::moment_vectors`] at the order fixed in
    /// [`IncrTreeEngine::new`].
    ///
    /// # Errors
    ///
    /// Currently infallible for validated networks (see
    /// [`IncrTreeEngine::transfer_taylor`]).
    pub fn moment_vectors(&mut self, net: NetId) -> Result<&[Vec<f64>], MomentError> {
        if self.any_dirty {
            self.repair_all();
        }
        let src = net.index();
        if !self.cache.contains_key(&src) {
            let vectors = self.full_compute(src);
            self.stats.blocks_recomputed += (self.moment_order * self.num_nets) as u64;
            self.cache.insert(src, vectors);
        }
        Ok(self.cache.get(&src).expect("just inserted"))
    }

    /// Monotonic repair statistics.
    #[must_use]
    pub fn stats(&self) -> IncrStats {
        self.stats
    }

    /// Repairs every cached source net against the accumulated dirty
    /// flags, then clears them.
    fn repair_all(&mut self) {
        let _span = xtalk_obs::span!("moments.incr_repair");
        let sources: Vec<usize> = self.cache.keys().copied().collect();
        let mut recomputed = 0u64;
        let mut reused = 0u64;
        for src in sources {
            let mut vectors = self.cache.remove(&src).expect("listed source");
            // m0 depends only on the source net's driver (R·(1/R) is not
            // always exactly 1.0), so its sole non-zero block is dirty
            // iff that net's conductances changed.
            let mut dirty_prev = vec![false; self.num_nets];
            if self.gdirty[src] {
                let mut rhs = vec![0.0; self.n];
                rhs[self.driver_node[src]] = 1.0 / self.driver_ohms[src];
                self.solve_block(src, &rhs, &mut vectors[0]);
                dirty_prev[src] = true;
                recomputed += 1;
                reused += (self.num_nets - 1) as u64;
            } else {
                reused += self.num_nets as u64;
            }
            let mut rhs = vec![0.0; self.n];
            for k in 1..self.moment_order {
                let mut dirty = self.gdirty.clone();
                for b in 0..self.num_nets {
                    if self.cdirty[b] || dirty_prev[b] {
                        dirty[b] = true;
                    }
                    if dirty_prev[b] {
                        for &nb in &self.net_neighbors[b] {
                            dirty[nb] = true;
                        }
                    }
                }
                let (prev, rest) = vectors.split_at_mut(k);
                let prev = &prev[k - 1];
                let cur = &mut rest[0];
                #[allow(clippy::needless_range_loop)]
                for b in 0..self.num_nets {
                    if !dirty[b] {
                        reused += 1;
                        continue;
                    }
                    recomputed += 1;
                    let (s, e) = self.net_ranges[b];
                    for &node in &self.order[s..e] {
                        rhs[node] = 0.0;
                    }
                    for &(i, j, c) in &self.net_c_entries[b] {
                        rhs[i] -= c * prev[j];
                    }
                    self.solve_block(b, &rhs, cur);
                }
                dirty_prev = dirty;
            }
            self.cache.insert(src, vectors);
        }
        self.stats.blocks_recomputed += recomputed;
        self.stats.blocks_reused += reused;
        xtalk_obs::counter!(perf: "incr.moments.blocks.recomputed").add(recomputed);
        xtalk_obs::counter!(perf: "incr.moments.blocks.reused").add(reused);
        self.gdirty.fill(false);
        self.cdirty.fill(false);
        self.any_dirty = false;
    }

    /// Per-net `G`-solve: the global two-pass kernel restricted to one
    /// net's contiguous slice of the traversal order. Writes the block's
    /// voltages into `out`; other entries are untouched.
    fn solve_block(&self, b: usize, rhs: &[f64], out: &mut [f64]) {
        let (s, e) = self.net_ranges[b];
        let block = &self.order[s..e];
        let mut subtree = vec![0.0; block.len()];
        // Local slot of each node is its position in the block; parents
        // precede children, so a reverse pass accumulates subtree sums.
        let mut slot = HashMap::with_capacity(block.len());
        for (i, &node) in block.iter().enumerate() {
            slot.insert(node, i);
            subtree[i] = rhs[node];
        }
        for i in (0..block.len()).rev() {
            let p = self.parent[block[i]];
            if p != usize::MAX {
                let pi = slot[&p];
                subtree[pi] += subtree[i];
            }
        }
        for (i, &node) in block.iter().enumerate() {
            let p = self.parent[node];
            if p == usize::MAX {
                out[node] = self.root_res[node] * subtree[i];
            } else {
                out[node] = out[p] + self.parent_res[node] * subtree[i];
            }
        }
    }

    /// From-scratch moment computation for one source net — the exact
    /// global kernel of [`crate::TreeMomentEngine::moment_vectors`], so
    /// fresh caches are bit-identical to the reference engine.
    fn full_compute(&self, src: usize) -> Vec<Vec<f64>> {
        let mut rhs = vec![0.0; self.n];
        rhs[self.driver_node[src]] = 1.0 / self.driver_ohms[src];
        let mut out = vec![self.solve_g(&rhs)];
        for _ in 1..self.moment_order {
            let prev = out.last().expect("at least m0");
            rhs.fill(0.0);
            for &(i, j, c) in &self.c_entries {
                rhs[i] -= c * prev[j];
            }
            out.push(self.solve_g(&rhs));
        }
        out
    }

    fn solve_g(&self, b: &[f64]) -> Vec<f64> {
        let n = b.len();
        let mut subtree = b.to_vec();
        for &node in self.order.iter().rev() {
            let p = self.parent[node];
            if p != usize::MAX {
                subtree[p] += subtree[node];
            }
        }
        let mut v = vec![0.0; n];
        for &node in &self.order {
            let p = self.parent[node];
            if p == usize::MAX {
                v[node] = self.root_res[node] * subtree[node];
            } else {
                v[node] = v[p] + self.parent_res[node] * subtree[node];
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeMomentEngine;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use xtalk_circuit::{Delta, NetRole, NetworkBuilder};

    /// A chain-coupled cluster: `lanes` parallel wires of `segs` RC
    /// segments each, lane 0 the victim, each lane coupled to the next.
    fn chain_cluster(lanes: usize, segs: usize) -> Network {
        let mut b = NetworkBuilder::new();
        let mut last = Vec::new();
        let mut lane_nodes = Vec::new();
        for l in 0..lanes {
            let role = if l == 0 { NetRole::Victim } else { NetRole::Aggressor };
            let net = b.add_net(format!("n{l}"), role);
            let mut prev = b.add_node(net, format!("l{l}_0"));
            b.add_driver(net, prev, 80.0 + 7.0 * l as f64).unwrap();
            let mut nodes = vec![prev];
            for i in 1..=segs {
                let node = b.add_node(net, format!("l{l}_{i}"));
                b.add_resistor(prev, node, 12.0 + i as f64).unwrap();
                b.add_ground_cap(node, (3.0 + 0.1 * i as f64) * 1e-15).unwrap();
                nodes.push(node);
                prev = node;
            }
            b.add_sink(prev, 9e-15).unwrap();
            if l == 0 {
                b.set_victim_output(prev);
            }
            last.push(prev);
            lane_nodes.push(nodes);
        }
        for l in 1..lanes {
            #[allow(clippy::needless_range_loop)]
            for i in 1..=segs {
                b.add_coupling_cap(lane_nodes[l - 1][i], lane_nodes[l][i], 5e-15)
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len());
        for (k, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: h[{k}] differs: {x:e} vs {y:e}"
            );
        }
    }

    #[test]
    fn fresh_compute_is_bit_identical_to_tree_engine() {
        for (lanes, segs) in [(2, 3), (4, 5), (6, 2)] {
            let net = chain_cluster(lanes, segs);
            let reference = TreeMomentEngine::new(&net);
            let mut incr = IncrTreeEngine::new(&net, 4);
            for (src, _) in net.nets() {
                let hr = reference
                    .transfer_taylor(src, net.victim_output(), 4)
                    .unwrap();
                let hi = incr.transfer_taylor(src, net.victim_output()).unwrap();
                assert_bits_eq(&hr, &hi, "fresh");
            }
        }
    }

    #[test]
    fn repair_after_each_delta_kind_is_bit_identical_to_full() {
        let mut net = chain_cluster(4, 4);
        let victim = net.victim();
        let sink_node = net.net(victim).sinks()[0].node;
        let mut incr = IncrTreeEngine::new(&net, 4);
        let sources: Vec<_> = net.nets().map(|(id, _)| id).collect();
        for &s in &sources {
            incr.transfer_taylor(s, net.victim_output()).unwrap();
        }
        let deltas = [
            Delta::ResizeDriver { net: victim, ohms: 133.0 },
            Delta::SetSinkCap { node: sink_node, farads: 11e-15 },
            Delta::SetCouplingCap { index: 2, farads: 8e-15 },
            Delta::SetResistor { index: 5, ohms: 44.0 },
            Delta::SetGroundCap { index: 3, farads: 2e-15 },
        ];
        for d in deltas {
            net.apply_delta(&d).unwrap();
            assert!(incr.refresh(&net), "{d} should dirty the engine");
            let reference = TreeMomentEngine::new(&net);
            for &s in &sources {
                let hr = reference
                    .transfer_taylor(s, net.victim_output(), 4)
                    .unwrap();
                let hi = incr.transfer_taylor(s, net.victim_output()).unwrap();
                assert_bits_eq(&hr, &hi, "after delta");
            }
        }
    }

    #[test]
    fn random_delta_revert_sequences_stay_bit_identical() {
        let mut rng = StdRng::seed_from_u64(0x1234);
        let mut net = chain_cluster(5, 3);
        let mut incr = IncrTreeEngine::new(&net, 4);
        let sources: Vec<_> = net.nets().map(|(id, _)| id).collect();
        let mut undo = Vec::new();
        for step in 0..60 {
            if !undo.is_empty() && rng.random_bool(0.3) {
                let d: Delta = undo.pop().unwrap();
                net.apply_delta(&d).unwrap();
            } else {
                let d = match rng.random_range(0..3) {
                    0 => Delta::ResizeDriver {
                        net: sources[rng.random_range(0..sources.len())],
                        ohms: rng.random_range(40.0..400.0),
                    },
                    1 => Delta::SetCouplingCap {
                        index: rng.random_range(0..net.coupling_caps().len()),
                        farads: rng.random_range(1e-15..20e-15),
                    },
                    _ => Delta::SetResistor {
                        index: rng.random_range(0..net.resistors().len()),
                        ohms: rng.random_range(5.0..80.0),
                    },
                };
                undo.push(net.apply_delta(&d).unwrap());
            }
            incr.refresh(&net);
            let reference = TreeMomentEngine::new(&net);
            for &s in &sources {
                let hr = reference
                    .transfer_taylor(s, net.victim_output(), 4)
                    .unwrap();
                let hi = incr.transfer_taylor(s, net.victim_output()).unwrap();
                assert_bits_eq(&hr, &hi, &format!("step {step}"));
            }
        }
    }

    #[test]
    fn distant_edit_reuses_most_blocks() {
        // 8-lane chain: an edit on lane 7's driver cannot reach lane 0's
        // block before moment order runs out, so most blocks are reused.
        let mut net = chain_cluster(8, 3);
        let far = net.nets().last().unwrap().0;
        let mut incr = IncrTreeEngine::new(&net, 4);
        let victim = net.victim();
        incr.transfer_taylor(victim, net.victim_output()).unwrap();
        let before = incr.stats();
        net.apply_delta(&Delta::ResizeDriver { net: far, ohms: 500.0 }).unwrap();
        incr.refresh(&net);
        incr.transfer_taylor(victim, net.victim_output()).unwrap();
        let after = incr.stats();
        let recomputed = after.blocks_recomputed - before.blocks_recomputed;
        let reused = after.blocks_reused - before.blocks_reused;
        assert!(reused > recomputed, "reused {reused} vs recomputed {recomputed}");
        // Lane 7 dirty at k=1 spreads one lane per order: blocks 7,{6,7},{5..7}
        // plus m0's reuse of all 8 — well under half recomputed.
        assert!(recomputed <= 7, "recomputed {recomputed}");
    }

    #[test]
    fn clean_refresh_touches_nothing() {
        let net = chain_cluster(3, 3);
        let mut incr = IncrTreeEngine::new(&net, 4);
        incr.transfer_taylor(net.victim(), net.victim_output()).unwrap();
        let before = incr.stats();
        assert!(!incr.refresh(&net));
        incr.transfer_taylor(net.victim(), net.victim_output()).unwrap();
        let after = incr.stats();
        assert_eq!(before.blocks_recomputed, after.blocks_recomputed);
        assert_eq!(after.refreshes_clean, before.refreshes_clean + 1);
    }

    #[test]
    #[should_panic(expected = "taylor order must be at least 1")]
    fn zero_order_panics() {
        let net = chain_cluster(2, 2);
        let _ = IncrTreeEngine::new(&net, 0);
    }
}
