use crate::MomentError;
use xtalk_circuit::{NetId, Network, NodeId};

/// Linear-time moment engine exploiting the tree structure.
///
/// The conductance matrix of a coupled-tree network is block-diagonal per
/// net (nets are resistively disjoint), and each block is tree-structured,
/// so `G·x = b` solves in two `O(n)` passes per net:
///
/// 1. leaves→root: accumulate the subtree injection sums `S_i`;
/// 2. top-down: `V_root = R_drv·S_root`, then `V_i = V_parent + r_i·S_i`.
///
/// The capacitance matvec in the moment recursion `G·m_k = −C·m_{k−1}` is
/// `O(#caps)`, so the whole transfer-function evaluation is
/// `O(order · (n + k))` — against `O(n³)` for the dense
/// [`crate::MomentEngine`], with bit-identical mathematics (both are
/// exact; they are cross-checked on randomized networks in the tests).
/// Use this engine for large extracted nets; the dense engine remains the
/// reference and additionally offers the characteristic-polynomial
/// invariants.
///
/// # Examples
///
/// ```
/// use xtalk_circuit::{NetRole, NetworkBuilder};
/// use xtalk_moments::TreeMomentEngine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetworkBuilder::new();
/// let v = b.add_net("v", NetRole::Victim);
/// let a = b.add_net("a", NetRole::Aggressor);
/// let vn = b.add_node(v, "v0");
/// let an = b.add_node(a, "a0");
/// b.add_driver(v, vn, 100.0)?;
/// b.add_driver(a, an, 100.0)?;
/// b.add_sink(vn, 10e-15)?;
/// b.add_sink(an, 10e-15)?;
/// b.add_coupling_cap(vn, an, 20e-15)?;
/// let network = b.build()?;
///
/// let engine = TreeMomentEngine::new(&network);
/// let h = engine.transfer_taylor(a, network.victim_output(), 4)?;
/// assert!((h[1] - 20e-15 * 100.0).abs() < 1e-18); // a1 = Cc·Rd
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TreeMomentEngine<'a> {
    network: &'a Network,
    /// Per node: resistance to its tree parent (0 for roots).
    parent_res: Vec<f64>,
    /// Per node: parent index, usize::MAX for roots.
    parent: Vec<usize>,
    /// Global traversal order, roots first within each net.
    order: Vec<usize>,
    /// Per node: its net's driver resistance if it is the root, else 0.
    root_res: Vec<f64>,
    /// Capacitance matrix as (row, col, value) triplets.
    c_entries: Vec<(usize, usize, f64)>,
}

impl<'a> TreeMomentEngine<'a> {
    /// Builds the traversal structures (no factorization — `O(n + k)`).
    pub fn new(network: &'a Network) -> Self {
        let _span = xtalk_obs::span!("moments.tree_build");
        xtalk_obs::counter!("moments.tree.builds").add(1);
        let n = network.node_count();
        let mut parent_res = vec![0.0; n];
        let mut parent = vec![usize::MAX; n];
        let mut root_res = vec![0.0; n];
        let mut order = Vec::with_capacity(n);
        for (id, net) in network.nets() {
            let tree = network.tree(id);
            root_res[tree.root().index()] = net.driver().ohms;
            for &node in tree.order() {
                order.push(node.index());
                if let Some((p, r)) = tree.parent(node) {
                    parent[node.index()] = p.index();
                    parent_res[node.index()] = r;
                }
            }
        }

        let mut c_entries = Vec::new();
        for gc in network.ground_caps() {
            c_entries.push((gc.node.index(), gc.node.index(), gc.farads));
        }
        for (_, net) in network.nets() {
            for s in net.sinks() {
                c_entries.push((s.node.index(), s.node.index(), s.farads));
            }
        }
        for cc in network.coupling_caps() {
            let (a, b) = (cc.a.index(), cc.b.index());
            c_entries.push((a, a, cc.farads));
            c_entries.push((b, b, cc.farads));
            c_entries.push((a, b, -cc.farads));
            c_entries.push((b, a, -cc.farads));
        }

        TreeMomentEngine {
            network,
            parent_res,
            parent,
            order,
            root_res,
            c_entries,
        }
    }

    /// Solves `G·x = b` over the whole network in `O(n)` (per-net tree
    /// passes).
    fn solve_g(&self, b: &[f64]) -> Vec<f64> {
        let n = b.len();
        // Pass 1: subtree injection sums, children before parents.
        let mut subtree = b.to_vec();
        for &node in self.order.iter().rev() {
            let p = self.parent[node];
            if p != usize::MAX {
                subtree[p] += subtree[node];
            }
        }
        // Pass 2: voltages, parents before children.
        let mut v = vec![0.0; n];
        for &node in &self.order {
            let p = self.parent[node];
            if p == usize::MAX {
                v[node] = self.root_res[node] * subtree[node];
            } else {
                v[node] = v[p] + self.parent_res[node] * subtree[node];
            }
        }
        v
    }

    /// Taylor-coefficient vectors `m_0 … m_{order−1}` for a unit input at
    /// the source of `net` — same contract as
    /// [`crate::MomentEngine::moment_vectors`].
    ///
    /// # Errors
    ///
    /// [`MomentError::ZeroOrder`] when `order == 0`.
    pub fn moment_vectors(&self, net: NetId, order: usize) -> Result<Vec<Vec<f64>>, MomentError> {
        if order == 0 {
            return Err(MomentError::ZeroOrder);
        }
        xtalk_obs::counter!("moments.tree.moment_vectors").add(1);
        let n = self.network.node_count();
        let driver = self.network.net(net).driver();
        let mut rhs = vec![0.0; n];
        rhs[driver.node.index()] = 1.0 / driver.ohms;
        let mut out = vec![self.solve_g(&rhs)];
        for _ in 1..order {
            let prev = out.last().expect("at least m0");
            rhs.fill(0.0);
            for &(i, j, c) in &self.c_entries {
                rhs[i] -= c * prev[j];
            }
            out.push(self.solve_g(&rhs));
        }
        Ok(out)
    }

    /// Taylor coefficients `h_0 … h_{order−1}` of the transfer function
    /// from the source of `net` to `output`.
    ///
    /// # Errors
    ///
    /// [`MomentError::ZeroOrder`] when `order == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of bounds.
    pub fn transfer_taylor(
        &self,
        net: NetId,
        output: NodeId,
        order: usize,
    ) -> Result<Vec<f64>, MomentError> {
        let vectors = self.moment_vectors(net, order)?;
        Ok(vectors.iter().map(|m| m[output.index()]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MomentEngine;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use xtalk_circuit::{NetRole, NetworkBuilder};

    fn random_coupled_tree(rng: &mut StdRng) -> Network {
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let n_victim = rng.random_range(3..12);
        let mut vnodes = vec![b.add_node(v, "v0")];
        b.add_driver(v, vnodes[0], rng.random_range(50.0..1000.0)).unwrap();
        for i in 1..n_victim {
            let parent = vnodes[rng.random_range(0..vnodes.len())];
            let node = b.add_node(v, format!("v{i}"));
            b.add_resistor(parent, node, rng.random_range(2.0..150.0)).unwrap();
            b.add_ground_cap(node, rng.random_range(1e-15..20e-15)).unwrap();
            vnodes.push(node);
        }
        b.add_sink(*vnodes.last().unwrap(), rng.random_range(2e-15..30e-15)).unwrap();
        b.set_victim_output(*vnodes.last().unwrap());

        let mut ap = b.add_node(a, "a0");
        b.add_driver(a, ap, rng.random_range(50.0..1000.0)).unwrap();
        for i in 1..rng.random_range(2..8) {
            let node = b.add_node(a, format!("a{i}"));
            b.add_resistor(ap, node, rng.random_range(2.0..150.0)).unwrap();
            b.add_ground_cap(node, rng.random_range(1e-15..20e-15)).unwrap();
            if rng.random_bool(0.7) {
                let vn = vnodes[rng.random_range(0..vnodes.len())];
                b.add_coupling_cap(node, vn, rng.random_range(2e-15..40e-15)).unwrap();
            }
            ap = node;
        }
        b.add_sink(ap, rng.random_range(2e-15..30e-15)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn matches_dense_engine_on_random_networks() {
        let mut rng = StdRng::seed_from_u64(0x7e3e);
        for case in 0..100 {
            let net = random_coupled_tree(&mut rng);
            let dense = MomentEngine::new(&net).unwrap();
            let fast = TreeMomentEngine::new(&net);
            for (src, _) in net.nets() {
                let hd = dense.transfer_taylor(src, net.victim_output(), 5).unwrap();
                let hf = fast.transfer_taylor(src, net.victim_output(), 5).unwrap();
                for k in 0..5 {
                    assert!(
                        (hd[k] - hf[k]).abs() <= 1e-9 * hd[k].abs().max(1e-40),
                        "case {case} h[{k}]: dense {} vs tree {}",
                        hd[k],
                        hf[k]
                    );
                }
            }
        }
    }

    #[test]
    fn dc_solution_is_indicator_of_driven_net() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = random_coupled_tree(&mut rng);
        let fast = TreeMomentEngine::new(&net);
        let agg = net.aggressor_nets().next().unwrap().0;
        let m = fast.moment_vectors(agg, 1).unwrap();
        for (id, info) in net.nets() {
            let expect = if id == agg { 1.0 } else { 0.0 };
            for &node in info.nodes() {
                assert!(
                    (m[0][node.index()] - expect).abs() < 1e-12,
                    "node {node} of {id}"
                );
            }
        }
    }

    #[test]
    fn zero_order_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = random_coupled_tree(&mut rng);
        let fast = TreeMomentEngine::new(&net);
        assert!(matches!(
            fast.moment_vectors(net.victim(), 0),
            Err(MomentError::ZeroOrder)
        ));
    }

    #[test]
    fn scales_to_thousands_of_nodes() {
        // A 4000-node pair of coupled chains: far beyond what the dense
        // engine could factor in reasonable test time.
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let mut vp = b.add_node(v, "v0");
        let mut ap = b.add_node(a, "a0");
        b.add_driver(v, vp, 200.0).unwrap();
        b.add_driver(a, ap, 200.0).unwrap();
        let n = 2000;
        for i in 1..=n {
            let vn = b.add_node(v, format!("v{i}"));
            let an = b.add_node(a, format!("a{i}"));
            b.add_resistor(vp, vn, 1.0).unwrap();
            b.add_resistor(ap, an, 1.0).unwrap();
            b.add_ground_cap(vn, 0.5e-15).unwrap();
            b.add_ground_cap(an, 0.5e-15).unwrap();
            b.add_coupling_cap(an, vn, 0.8e-15).unwrap();
            vp = vn;
            ap = an;
        }
        b.add_sink(vp, 10e-15).unwrap();
        b.add_sink(ap, 10e-15).unwrap();
        b.set_victim_output(vp);
        let net = b.build().unwrap();

        let fast = TreeMomentEngine::new(&net);
        let agg = net.aggressor_nets().next().unwrap().0;
        let h = fast.transfer_taylor(agg, net.victim_output(), 4).unwrap();
        // a1 equals the closed form on this monster too.
        let a1 = crate::tree::coupling_a1(&net, agg, net.victim_output());
        assert!((h[1] - a1).abs() < 1e-9 * a1);
    }
}
