#![allow(clippy::needless_range_loop)] // index loops mirror the matrix math
use crate::MomentError;
use xtalk_circuit::{NetId, NetRole, Network, NodeId};
use xtalk_linalg::sparse::Csr;
use xtalk_linalg::{LuFactors, Matrix};

/// Exact MNA moment engine for a coupled RC network.
///
/// Builds the nodal conductance matrix `G` (wire resistors plus driver
/// conductances; ideal sources are folded into the right-hand side) and
/// capacitance matrix `C` (grounded wire caps, sink loads, coupling caps),
/// factors `G` once, and evaluates the moment recursion
///
/// ```text
/// G·m0 = B_j        (unit DC excitation of source j)
/// G·m_k = −C·m_{k−1}
/// ```
///
/// where `m_k` is the vector of `k`-th Taylor coefficients of all node
/// voltages for a unit input at source `j`. The Taylor coefficients of the
/// transfer function to node `o` are `h_k = m_k[o]`; they are **exact** for
/// the linearized network (no model-order reduction involved).
///
/// Construction is `O(n³)` once; each additional moment order or source is
/// an `O(n²)` solve.
#[derive(Debug)]
pub struct MomentEngine {
    n: usize,
    lu: LuFactors,
    c: Matrix,
    /// Sparse view of `c` for the recursion matvec `−C·m_{k−1}` — C has
    /// only a few entries per row, so the per-order cost drops from
    /// O(n²) to O(nnz).
    c_csr: Csr,
    /// Per net: (driver node index, driver conductance).
    driver: Vec<(usize, f64)>,
    roles: Vec<NetRole>,
}

impl MomentEngine {
    /// Builds and factors the MNA system for `network`.
    ///
    /// # Errors
    ///
    /// Returns [`MomentError::Numerical`] if `G` cannot be factored
    /// (conditioning pathology; structurally impossible for a validated
    /// network).
    pub fn new(network: &Network) -> Result<Self, MomentError> {
        let _span = xtalk_obs::span!("moments.mna_build");
        xtalk_obs::counter!("moments.mna.builds").add(1);
        let n = network.node_count();
        let mut g = Matrix::zeros(n, n);
        let mut c = Matrix::zeros(n, n);

        for r in network.resistors() {
            let (a, b, cond) = (r.a.index(), r.b.index(), 1.0 / r.ohms);
            g.add_at(a, a, cond);
            g.add_at(b, b, cond);
            g.add_at(a, b, -cond);
            g.add_at(b, a, -cond);
        }
        let mut driver = Vec::with_capacity(network.net_count());
        let mut roles = Vec::with_capacity(network.net_count());
        for (_, net) in network.nets() {
            let d = net.driver();
            let cond = 1.0 / d.ohms;
            g.add_at(d.node.index(), d.node.index(), cond);
            driver.push((d.node.index(), cond));
            roles.push(net.role());
        }
        for gc in network.ground_caps() {
            c.add_at(gc.node.index(), gc.node.index(), gc.farads);
        }
        for (_, net) in network.nets() {
            for s in net.sinks() {
                c.add_at(s.node.index(), s.node.index(), s.farads);
            }
        }
        for cc in network.coupling_caps() {
            let (a, b) = (cc.a.index(), cc.b.index());
            c.add_at(a, a, cc.farads);
            c.add_at(b, b, cc.farads);
            c.add_at(a, b, -cc.farads);
            c.add_at(b, a, -cc.farads);
        }

        let lu = g.lu()?;
        let c_csr = Csr::from_dense(&c);
        Ok(MomentEngine {
            n,
            lu,
            c,
            c_csr,
            driver,
            roles,
        })
    }

    /// Number of nodes in the underlying network.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// DC node-voltage vector for a unit input at the source of `net`
    /// (all other sources quiet): 1 on that net's nodes, 0 elsewhere.
    ///
    /// # Errors
    ///
    /// Propagates numerical failures.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of bounds for the engine's network.
    pub fn dc_response(&self, net: NetId) -> Result<Vec<f64>, MomentError> {
        let (node, cond) = self.driver[net.index()];
        let mut b = vec![0.0; self.n];
        b[node] = cond;
        Ok(self.lu.solve(&b)?)
    }

    /// Taylor-coefficient vectors `m_0 … m_{order−1}` of all node voltages
    /// for a unit input at the source of `net`.
    ///
    /// # Errors
    ///
    /// [`MomentError::ZeroOrder`] when `order == 0`; numerical failures
    /// otherwise.
    pub fn moment_vectors(&self, net: NetId, order: usize) -> Result<Vec<Vec<f64>>, MomentError> {
        if order == 0 {
            return Err(MomentError::ZeroOrder);
        }
        xtalk_obs::counter!("moments.mna.moment_vectors").add(1);
        let mut out = Vec::with_capacity(order);
        out.push(self.dc_response(net)?);
        // One reusable rhs buffer across all orders; each m_k is solved
        // directly into its own (returned) vector.
        let mut rhs = vec![0.0; self.n];
        for _ in 1..order {
            let prev = out.last().expect("at least m0 present");
            // rhs = -C * prev, over the stored entries of sparse C.
            self.c_csr.mul_vec_into(prev, &mut rhs)?;
            for r in &mut rhs {
                *r = -*r;
            }
            let mut next = vec![0.0; self.n];
            self.lu.solve_into(&rhs, &mut next)?;
            out.push(next);
        }
        Ok(out)
    }

    /// Taylor coefficients `h_0 … h_{order−1}` of the transfer function
    /// from the source of `net` to node `output`.
    ///
    /// For an aggressor source and a victim observation node, `h0 = 0`
    /// and `h1` is the paper's `a1` coefficient.
    ///
    /// # Errors
    ///
    /// [`MomentError::ZeroOrder`] when `order == 0`; numerical failures
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of bounds.
    pub fn transfer_taylor(
        &self,
        net: NetId,
        output: NodeId,
        order: usize,
    ) -> Result<Vec<f64>, MomentError> {
        let vectors = self.moment_vectors(net, order)?;
        Ok(vectors.iter().map(|m| m[output.index()]).collect())
    }

    /// Shared denominator coefficients `(b1, b2)` of the network's
    /// characteristic polynomial `det(I + s·G⁻¹C) = 1 + b1·s + b2·s² + …`,
    /// computed exactly from the matrix invariants of `A = G⁻¹C`:
    /// `b1 = tr A`, `b2 = (tr²A − tr A²)/2`.
    ///
    /// All transfer functions of the circuit share this denominator; the
    /// paper takes `b1` from the sum of open-circuit time constants
    /// (ref. \[11\]) — see [`crate::tree::open_circuit_b1`], which this
    /// method cross-validates.
    ///
    /// # Errors
    ///
    /// Propagates numerical failures.
    pub fn denominator(&self) -> Result<(f64, f64), MomentError> {
        // A = G^{-1} C, built column by column (C is dense here).
        let n = self.n;
        let mut a = Matrix::zeros(n, n);
        let mut col = vec![0.0; n];
        let mut sol = vec![0.0; n];
        for j in 0..n {
            for i in 0..n {
                col[i] = self.c[(i, j)];
            }
            self.lu.solve_into(&col, &mut sol)?;
            for i in 0..n {
                a[(i, j)] = sol[i];
            }
        }
        let mut tr = 0.0;
        for i in 0..n {
            tr += a[(i, i)];
        }
        let mut tr_sq = 0.0;
        for i in 0..n {
            for j in 0..n {
                tr_sq += a[(i, j)] * a[(j, i)];
            }
        }
        Ok((tr, 0.5 * (tr * tr - tr_sq)))
    }

    /// Role of a net, as recorded at construction.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of bounds.
    pub fn role(&self, net: NetId) -> NetRole {
        self.roles[net.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_circuit::{NetworkBuilder, NodeId};

    /// Single-net lumped RC: driver Rd into one node with cap C.
    /// H(s) from own source = 1/(1 + s·Rd·C).
    fn lumped_rc(rd: f64, cap: f64) -> (Network, NodeId) {
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let n0 = b.add_node(v, "n0");
        b.add_driver(v, n0, rd).unwrap();
        b.add_sink(n0, cap).unwrap();
        (b.build().unwrap(), n0)
    }

    /// Two single-node nets coupled by Cc; each net Rd, Cg.
    fn coupled_pair(rd: f64, cg: f64, cc: f64) -> Network {
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let vn = b.add_node(v, "v0");
        let an = b.add_node(a, "a0");
        b.add_driver(v, vn, rd).unwrap();
        b.add_driver(a, an, rd).unwrap();
        b.add_sink(vn, cg).unwrap();
        b.add_sink(an, cg).unwrap();
        b.add_coupling_cap(vn, an, cc).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dc_response_is_indicator_of_driven_net() {
        let net = coupled_pair(100.0, 10e-15, 5e-15);
        let engine = MomentEngine::new(&net).unwrap();
        let agg = net.aggressor_nets().next().unwrap().0;
        let dc = engine.dc_response(agg).unwrap();
        let vic_node = net.victim_output().index();
        let agg_node = net.net(agg).driver().node.index();
        assert!((dc[agg_node] - 1.0).abs() < 1e-12);
        assert!(dc[vic_node].abs() < 1e-12);
    }

    #[test]
    fn lumped_rc_taylor_matches_analytic_geometric_series() {
        // H(s) = 1/(1+s*tau): h_k = (-tau)^k.
        let (net, n0) = lumped_rc(200.0, 50e-15);
        let tau: f64 = 200.0 * 50e-15;
        let engine = MomentEngine::new(&net).unwrap();
        let h = engine.transfer_taylor(net.victim(), n0, 5).unwrap();
        for (k, hk) in h.iter().enumerate() {
            let expect = (-tau).powi(k as i32);
            assert!(
                (hk - expect).abs() < 1e-12 * expect.abs().max(1e-30),
                "h[{k}] = {hk}, expected {expect}"
            );
        }
    }

    #[test]
    fn coupled_pair_matches_analytic_transfer() {
        // Symmetric coupled pair. Let tau_g = Rd*Cg, tau_c = Rd*Cc.
        // Aggressor->victim transfer: H(s) = s*tau_c /
        //   ((1 + s(tau_g+tau_c))^2 - (s*tau_c)^2).
        // Expand: denominator D(s) = 1 + 2(tau_g+tau_c)s + (tau_g^2 + 2*tau_g*tau_c)s^2.
        let (rd, cg, cc) = (150.0, 20e-15, 8e-15);
        let (tg, tc) = (rd * cg, rd * cc);
        let net = coupled_pair(rd, cg, cc);
        let engine = MomentEngine::new(&net).unwrap();
        let agg = net.aggressor_nets().next().unwrap().0;
        let h = engine
            .transfer_taylor(agg, net.victim_output(), 4)
            .unwrap();
        // Analytic Taylor coefficients of s*tc/D(s):
        let d1 = 2.0 * (tg + tc);
        let d2 = tg * tg + 2.0 * tg * tc;
        let h1 = tc;
        let h2 = -tc * d1;
        let h3 = tc * (d1 * d1 - d2);
        assert!(h[0].abs() < 1e-20);
        assert!((h[1] - h1).abs() < 1e-12 * h1.abs());
        assert!((h[2] - h2).abs() < 1e-12 * h2.abs());
        assert!((h[3] - h3).abs() < 1e-12 * h3.abs());
    }

    #[test]
    fn denominator_matches_analytic_for_coupled_pair() {
        let (rd, cg, cc) = (100.0, 15e-15, 6e-15);
        let (tg, tc) = (rd * cg, rd * cc);
        let net = coupled_pair(rd, cg, cc);
        let engine = MomentEngine::new(&net).unwrap();
        let (b1, b2) = engine.denominator().unwrap();
        assert!((b1 - 2.0 * (tg + tc)).abs() < 1e-12 * b1);
        let b2_expect = tg * tg + 2.0 * tg * tc;
        assert!((b2 - b2_expect).abs() < 1e-12 * b2);
    }

    #[test]
    fn zero_order_rejected() {
        let (net, _) = lumped_rc(100.0, 1e-15);
        let engine = MomentEngine::new(&net).unwrap();
        assert!(matches!(
            engine.moment_vectors(net.victim(), 0),
            Err(MomentError::ZeroOrder)
        ));
    }

    #[test]
    fn roles_are_recorded() {
        let net = coupled_pair(100.0, 1e-15, 1e-15);
        let engine = MomentEngine::new(&net).unwrap();
        assert_eq!(engine.role(net.victim()), NetRole::Victim);
        let agg = net.aggressor_nets().next().unwrap().0;
        assert_eq!(engine.role(agg), NetRole::Aggressor);
        assert_eq!(engine.node_count(), 2);
    }
}
