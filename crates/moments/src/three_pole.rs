//! Third-order Padé fits — the model class the paper rules out for
//! closed-form metrics.
//!
//! §2.1.2: "In general, any approximation with more than two poles cannot
//! produce closed-form expressions for delay and noise. Therefore, second
//! order Padé Approximation is preferred in fast crosstalk noise
//! evaluations." This module makes that trade-off concrete: the
//! *fit itself* is still closed-form (the cubic's roots come from
//! Cardano's formula), but everything downstream — peak, width, crossing
//! times — requires numerical evaluation of a three-exponential waveform,
//! exactly the cost the paper's metrics avoid.
//!
//! [`ThreePoleFit`] exists for model-accuracy studies and as a stronger
//! reduced-order baseline; the production path stays two-pole.

use crate::MomentError;

/// Roots of a real cubic `x³ + p·x² + q·x + r = 0` (Cardano/trigonometric
/// forms). Returns 1–3 real roots; complex pairs are reported via
/// [`CubicRoots::ComplexPair`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CubicRoots {
    /// Three real roots (possibly repeated), unordered.
    ThreeReal(f64, f64, f64),
    /// One real root and a complex-conjugate pair `re ± j·im`.
    ComplexPair {
        /// The real root.
        real: f64,
        /// Real part of the pair.
        re: f64,
        /// Imaginary part of the pair (positive).
        im: f64,
    },
}

/// Solves the monic cubic `x³ + a·x² + b·x + c = 0`.
///
/// # Examples
///
/// ```
/// use xtalk_moments::three_pole::{solve_cubic, CubicRoots};
/// // (x-1)(x-2)(x-3): x³ -6x² +11x -6
/// match solve_cubic(-6.0, 11.0, -6.0) {
///     CubicRoots::ThreeReal(r1, r2, r3) => {
///         let mut rs = [r1, r2, r3];
///         rs.sort_by(f64::total_cmp);
///         assert!((rs[0] - 1.0).abs() < 1e-9);
///         assert!((rs[2] - 3.0).abs() < 1e-9);
///     }
///     other => panic!("expected three real roots, got {other:?}"),
/// }
/// ```
pub fn solve_cubic(a: f64, b: f64, c: f64) -> CubicRoots {
    // Depressed cubic t³ + p t + q with x = t − a/3.
    let shift = a / 3.0;
    let p = b - a * a / 3.0;
    let q = 2.0 * a * a * a / 27.0 - a * b / 3.0 + c;
    let disc = (q / 2.0) * (q / 2.0) + (p / 3.0) * (p / 3.0) * (p / 3.0);
    if disc > 0.0 {
        // One real root (Cardano), complex pair from the quadratic factor.
        let sq = disc.sqrt();
        let u = (-q / 2.0 + sq).cbrt();
        let v = (-q / 2.0 - sq).cbrt();
        let t1 = u + v;
        let real = t1 - shift;
        // Remaining quadratic: t² + t1·t + (t1² + p), roots
        // −t1/2 ± j·√(3t1²/4 + p).
        let re = -t1 / 2.0 - shift;
        let im = (0.75 * t1 * t1 + p).max(0.0).sqrt();
        CubicRoots::ComplexPair { real, re, im }
    } else {
        // Three real roots (trigonometric form).
        let m = 2.0 * (-p / 3.0).max(0.0).sqrt();
        let arg = if m.abs() < 1e-300 {
            0.0
        } else {
            (3.0 * q / (p * m)).clamp(-1.0, 1.0)
        };
        let theta = arg.acos() / 3.0;
        let two_pi_3 = 2.0 * std::f64::consts::PI / 3.0;
        CubicRoots::ThreeReal(
            m * theta.cos() - shift,
            m * (theta - two_pi_3).cos() - shift,
            m * (theta + two_pi_3).cos() - shift,
        )
    }
}

/// Third-order Padé model `H(s) = (a1·s + a2·s²)/(1 + b1·s + b2·s² + b3·s³)`
/// of a noise transfer, fit to the first five Taylor coefficients.
///
/// Matching `h1..h5` against the five unknowns gives a linear system in
/// `(b1, b2, b3)` (the last three equations) followed by back-substitution
/// for `(a1, a2)`. Pole extraction reduces to a cubic, solved in closed
/// form by [`solve_cubic`]; stability requires all three real parts
/// negative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreePoleFit {
    a1: f64,
    a2: f64,
    b: [f64; 3],
    roots: CubicRoots,
}

impl ThreePoleFit {
    /// Fits from Taylor coefficients `h = [h0, h1, …, h5]` (`h0` must be a
    /// DC-free noise transfer).
    ///
    /// # Errors
    ///
    /// [`MomentError::ZeroOrder`] with fewer than six coefficients;
    /// [`MomentError::DegenerateFit`] when the moment matrix is singular
    /// (uncoupled aggressor or insufficient order in the data).
    pub fn from_taylor(h: &[f64]) -> Result<Self, MomentError> {
        if h.len() < 6 {
            return Err(MomentError::ZeroOrder);
        }
        // Matching (1 + b1 s + b2 s² + b3 s³)(h1 s + h2 s² + …) = a1 s + a2 s²:
        //   s³: h3 + b1 h2 + b2 h1 = 0
        //   s⁴: h4 + b1 h3 + b2 h2 + b3 h1 = 0
        //   s⁵: h5 + b1 h4 + b2 h3 + b3 h2 = 0
        let m = xtalk_linalg::Matrix::from_rows(&[
            &[h[2], h[1], 0.0],
            &[h[3], h[2], h[1]],
            &[h[4], h[3], h[2]],
        ])
        .expect("3x3 shape");
        let rhs = [-h[3], -h[4], -h[5]];
        let b = m.solve(&rhs).map_err(|_| MomentError::DegenerateFit)?;
        let (b1, b2, b3) = (b[0], b[1], b[2]);
        let a1 = h[1];
        let a2 = h[2] + b1 * h[1];
        // Poles: roots of b3 s³ + b2 s² + b1 s + 1 = 0 (monic form).
        if b3.abs() < 1e-300 {
            return Err(MomentError::DegenerateFit);
        }
        let roots = solve_cubic(b2 / b3, b1 / b3, 1.0 / b3);
        Ok(ThreePoleFit {
            a1,
            a2,
            b: [b1, b2, b3],
            roots,
        })
    }

    /// Numerator coefficients `(a1, a2)`.
    pub fn numerator(&self) -> (f64, f64) {
        (self.a1, self.a2)
    }

    /// Denominator coefficients `[b1, b2, b3]`.
    pub fn denominator(&self) -> [f64; 3] {
        self.b
    }

    /// The pole structure (closed-form cubic roots).
    pub fn roots(&self) -> CubicRoots {
        self.roots
    }

    /// `true` when all poles are strictly in the left half-plane.
    pub fn is_stable(&self) -> bool {
        match self.roots {
            CubicRoots::ThreeReal(r1, r2, r3) => r1 < 0.0 && r2 < 0.0 && r3 < 0.0,
            CubicRoots::ComplexPair { real, re, .. } => real < 0.0 && re < 0.0,
        }
    }

    /// Taylor coefficients `[0, h1, …, h5]` reproduced by the model (for
    /// round-trip checks).
    pub fn taylor(&self) -> [f64; 6] {
        // Long division of (a1 s + a2 s²) by (1 + b1 s + b2 s² + b3 s³).
        let [b1, b2, b3] = self.b;
        let mut hh = [0.0; 6];
        hh[1] = self.a1;
        hh[2] = self.a2 - b1 * hh[1];
        hh[3] = -(b1 * hh[2] + b2 * hh[1]);
        hh[4] = -(b1 * hh[3] + b2 * hh[2] + b3 * hh[1]);
        hh[5] = -(b1 * hh[4] + b2 * hh[3] + b3 * hh[2]);
        hh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_with_double_root() {
        // (x-1)²(x+2) = x³ - 3x + 2
        match solve_cubic(0.0, -3.0, 2.0) {
            CubicRoots::ThreeReal(r1, r2, r3) => {
                let mut rs = [r1, r2, r3];
                rs.sort_by(f64::total_cmp);
                assert!((rs[0] + 2.0).abs() < 1e-6);
                assert!((rs[1] - 1.0).abs() < 1e-6);
                assert!((rs[2] - 1.0).abs() < 1e-6);
            }
            other => panic!("expected three real, got {other:?}"),
        }
    }

    #[test]
    fn cubic_with_complex_pair() {
        // (x+1)(x² + x + 1): x³ + 2x² + 2x + 1, pair at -1/2 ± j√3/2.
        match solve_cubic(2.0, 2.0, 1.0) {
            CubicRoots::ComplexPair { real, re, im } => {
                assert!((real + 1.0).abs() < 1e-9);
                assert!((re + 0.5).abs() < 1e-9);
                assert!((im - 3.0f64.sqrt() / 2.0).abs() < 1e-9);
            }
            other => panic!("expected complex pair, got {other:?}"),
        }
    }

    /// Taylor coefficients of a synthetic three-pole transfer with known
    /// poles −1/τᵢ and numerator a1·s.
    fn synthetic(a1: f64, taus: [f64; 3]) -> [f64; 6] {
        let b1 = taus.iter().sum::<f64>();
        let b2 = taus[0] * taus[1] + taus[0] * taus[2] + taus[1] * taus[2];
        let b3 = taus[0] * taus[1] * taus[2];
        let mut h = [0.0; 6];
        h[1] = a1;
        h[2] = -b1 * h[1];
        h[3] = -(b1 * h[2] + b2 * h[1]);
        h[4] = -(b1 * h[3] + b2 * h[2] + b3 * h[1]);
        h[5] = -(b1 * h[4] + b2 * h[3] + b3 * h[2]);
        h
    }

    #[test]
    fn recovers_synthetic_three_pole_system() {
        let taus = [3e-10, 1e-10, 0.4e-10];
        let h = synthetic(2e-11, taus);
        let fit = ThreePoleFit::from_taylor(&h).unwrap();
        assert!(fit.is_stable());
        let (a1, a2) = fit.numerator();
        assert!((a1 - 2e-11).abs() < 1e-20);
        assert!(a2.abs() < 1e-9 * a1 * taus[0], "spurious a2 = {a2}");
        match fit.roots() {
            CubicRoots::ThreeReal(r1, r2, r3) => {
                let mut got = [-1.0 / r1, -1.0 / r2, -1.0 / r3];
                got.sort_by(f64::total_cmp);
                let mut want = taus;
                want.sort_by(f64::total_cmp);
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-6 * w, "{g} vs {w}");
                }
            }
            other => panic!("expected three real poles, got {other:?}"),
        }
    }

    #[test]
    fn taylor_round_trip() {
        let h = synthetic(1e-11, [2e-10, 0.9e-10, 0.3e-10]);
        let fit = ThreePoleFit::from_taylor(&h).unwrap();
        let back = fit.taylor();
        for k in 1..6 {
            assert!(
                (back[k] - h[k]).abs() <= 1e-6 * h[k].abs(),
                "h[{k}]: {} vs {}",
                h[k],
                back[k]
            );
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(matches!(
            ThreePoleFit::from_taylor(&[0.0, 1.0, 2.0]),
            Err(MomentError::ZeroOrder)
        ));
        // All-zero moments: singular system.
        assert!(matches!(
            ThreePoleFit::from_taylor(&[0.0; 6]),
            Err(MomentError::DegenerateFit)
        ));
    }

    #[test]
    fn fits_exact_circuit_moments_better_than_two_poles() {
        // A genuine 3-time-constant system: the 3-pole fit reproduces h4
        // and h5, which the 2-pole fit misses.
        let h = synthetic(1e-11, [4e-10, 1.2e-10, 0.5e-10]);
        let three = ThreePoleFit::from_taylor(&h).unwrap();
        let two = crate::TwoPoleFit::from_taylor(&h[..4]).unwrap();
        let t3 = three.taylor();
        // Two-pole extrapolation of h4: a1(b1³ - 2 b1 b2) … compute via
        // the recurrence with its own (b1, b2):
        let h4_two = -(two.b1() * two.taylor()[3] + two.b2() * two.taylor()[2]);
        let err_two = (h4_two - h[4]).abs() / h[4].abs();
        let err_three = (t3[4] - h[4]).abs() / h[4].abs();
        assert!(err_three < 1e-6, "three-pole h4 error {err_three}");
        assert!(err_two > 1e-3, "two-pole should miss h4: {err_two}");
    }
}
