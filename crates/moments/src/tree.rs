//! Closed-form tree formulas for the dominant transfer-function
//! coefficients.
//!
//! These are the `O(n)` path-tracing expressions the paper cites instead of
//! running a full moment recursion:
//!
//! * [`coupling_a1`] — the numerator coefficient `a1` of the
//!   aggressor→victim transfer function (paper ref. \[13\]): every coupling
//!   capacitor `Cc` injects its charge at its victim-side node, and the
//!   victim tree carries it to the output through the transfer resistance
//!   (driver resistance + common-path resistance);
//! * [`open_circuit_b1`] — the denominator coefficient `b1` as the sum of
//!   open-circuit time constants over *all* capacitors of the coupled
//!   network (paper ref. \[11\]);
//! * [`elmore_delay`] — the classical Elmore delay of a net node with all
//!   coupling capacitance grounded (the lumped-aggressor convention).
//!
//! All three are validated against the exact [`crate::MomentEngine`] in
//! this crate's integration tests.

use crate::TwoPoleFit;
use xtalk_circuit::{NetId, Network, NodeId};

/// The paper's fully closed-form FrontEnd: a two-pole model of the
/// aggressor→victim transfer assembled **without any matrix solve** —
/// `a1` from [`coupling_a1`] (ref. \[13\]), `b1` from [`open_circuit_b1`]
/// and `b2` from [`short_circuit_b2`] (ref. \[11\]).
///
/// Relative to [`crate::MomentEngine`]'s exact Taylor coefficients this
/// truncates the numerator at first order (the `a2`, `a3` terms the paper
/// also drops, §2.1.2), trading a few percent of accuracy for `O(n + k²)`
/// evaluation with the five basic operations only — the configuration the
/// paper actually proposes for optimization inner loops.
///
/// # Panics
///
/// Panics if `output` is not on the victim net or `aggressor` is out of
/// bounds.
pub fn closed_form_fit(network: &Network, aggressor: NetId, output: NodeId) -> TwoPoleFit {
    TwoPoleFit::from_coeffs(
        coupling_a1(network, aggressor, output),
        open_circuit_b1(network),
        short_circuit_b2(network),
    )
}

/// Closed-form `a1` coefficient of the transfer function from `aggressor`'s
/// source to the victim node `output`:
///
/// ```text
/// a1 = Σ_cc  Cc · ( Rd_victim + R_common(victim_node(cc), output) )
/// ```
///
/// where the sum runs over coupling capacitors between `aggressor` and the
/// victim, and `R_common` is the victim-tree common-path resistance.
/// Equals the exact `h1` Taylor coefficient (first moment) of the transfer
/// function.
///
/// # Panics
///
/// Panics if `output` is not on the victim net or `aggressor` is out of
/// bounds.
pub fn coupling_a1(network: &Network, aggressor: NetId, output: NodeId) -> f64 {
    let victim = network.victim();
    let rd = network.victim_net().driver().ohms;
    let tree = network.tree(victim);
    network
        .couplings_between(aggressor, victim)
        .map(|(_, victim_node, farads)| {
            farads * (rd + tree.common_path_resistance(victim_node, output))
        })
        .sum()
}

/// Closed-form shared-denominator coefficient `b1`: the sum of
/// open-circuit time constants of every capacitor in the coupled network.
///
/// For a grounded capacitor `C` at node `i` the open-circuit resistance is
/// `Rd + R_path(i)`; for a coupling capacitor between nodes `i` and `j` of
/// two different nets it is the sum of both sides' resistances (the nets
/// are resistively disjoint, so the cross term vanishes). Equals the exact
/// `tr(G⁻¹C)` computed by [`crate::MomentEngine::denominator`].
pub fn open_circuit_b1(network: &Network) -> f64 {
    let mut b1 = 0.0;
    let r_to_ground = |node: NodeId| -> f64 {
        let net = network.node_net(node);
        network.net(net).driver().ohms + network.tree(net).path_resistance(node)
    };
    for gc in network.ground_caps() {
        b1 += gc.farads * r_to_ground(gc.node);
    }
    for (_, net) in network.nets() {
        for s in net.sinks() {
            b1 += s.farads * r_to_ground(s.node);
        }
    }
    for cc in network.coupling_caps() {
        b1 += cc.farads * (r_to_ground(cc.a) + r_to_ground(cc.b));
    }
    b1
}

/// Closed-form shared-denominator coefficient `b2`: the sum over cap
/// pairs of products of open-circuit and short-circuit time constants
/// (paper ref. \[11\], Millman & Grabel).
///
/// For RC networks the classical pairwise form reduces to
///
/// ```text
/// b2 = Σ_{i<j}  C_i·C_j · ( R_ii·R_jj − R_ij² )
/// ```
///
/// where `R_ii` is cap `i`'s open-circuit driving-point resistance and
/// `R_ij` the transfer resistance between the two caps' terminal pairs
/// (`R_jj − R_ij²/R_ii` being exactly cap `j`'s time constant with cap `i`
/// shorted). On resistively-disjoint coupled trees every `R` term is a
/// driver resistance plus a common-path resistance, so the whole
/// coefficient is closed-form — together with [`coupling_a1`] and
/// [`open_circuit_b1`] this gives the paper's entire FrontEnd without a
/// matrix solve. Equals the exact second invariant computed by
/// [`crate::MomentEngine::denominator`].
///
/// Complexity: `O(k²)` over the `k` capacitors.
pub fn short_circuit_b2(network: &Network) -> f64 {
    // Each capacitor as a terminal pair (positive node, optional negative
    // node; None = ground).
    struct CapTerm {
        p: NodeId,
        q: Option<NodeId>,
        farads: f64,
    }
    let mut caps: Vec<CapTerm> = Vec::new();
    for gc in network.ground_caps() {
        caps.push(CapTerm {
            p: gc.node,
            q: None,
            farads: gc.farads,
        });
    }
    for (_, net) in network.nets() {
        for s in net.sinks() {
            caps.push(CapTerm {
                p: s.node,
                q: None,
                farads: s.farads,
            });
        }
    }
    for cc in network.coupling_caps() {
        caps.push(CapTerm {
            p: cc.a,
            q: Some(cc.b),
            farads: cc.farads,
        });
    }

    // Node-pair resistance R(x, y) = u_xᵀ G⁻¹ u_y for unit injections:
    // driver resistance + common-path resistance when x and y share a
    // net, zero across nets (nets are resistively disjoint).
    let r_nodes = |x: NodeId, y: NodeId| -> f64 {
        let nx = network.node_net(x);
        if nx != network.node_net(y) {
            return 0.0;
        }
        network.net(nx).driver().ohms + network.tree(nx).common_path_resistance(x, y)
    };
    // Generalized resistance between two capacitor terminal pairs.
    let r_caps = |a: &CapTerm, b: &CapTerm| -> f64 {
        let mut r = r_nodes(a.p, b.p);
        if let Some(bq) = b.q {
            r -= r_nodes(a.p, bq);
        }
        if let Some(aq) = a.q {
            r -= r_nodes(aq, b.p);
            if let Some(bq) = b.q {
                r += r_nodes(aq, bq);
            }
        }
        r
    };

    let r_self: Vec<f64> = caps.iter().map(|c| r_caps(c, c)).collect();
    let mut b2 = 0.0;
    for i in 0..caps.len() {
        for j in (i + 1)..caps.len() {
            let r_ij = r_caps(&caps[i], &caps[j]);
            b2 += caps[i].farads * caps[j].farads * (r_self[i] * r_self[j] - r_ij * r_ij);
        }
    }
    b2
}

/// Elmore delay (first moment of the impulse response, negated) at `node`
/// of its own net, with every coupling capacitor treated as grounded:
///
/// ```text
/// T_elmore(node) = Σ_k C_k · ( Rd + R_common(node, k) )
/// ```
///
/// summed over all capacitance `C_k` on the net (wire, sink and coupling).
/// This is the standard conservative delay metric used to size the victim
/// net before any noise analysis.
///
/// # Panics
///
/// Panics if `node` is out of bounds.
pub fn elmore_delay(network: &Network, node: NodeId) -> f64 {
    let net = network.node_net(node);
    let rd = network.net(net).driver().ohms;
    let tree = network.tree(net);
    let mut delay = 0.0;
    let mut add = |at: NodeId, farads: f64| {
        delay += farads * (rd + tree.common_path_resistance(node, at));
    };
    for gc in network.ground_caps() {
        if network.node_net(gc.node) == net {
            add(gc.node, gc.farads);
        }
    }
    for s in network.net(net).sinks() {
        add(s.node, s.farads);
    }
    for cc in network.coupling_caps() {
        if network.node_net(cc.a) == net {
            add(cc.a, cc.farads);
        } else if network.node_net(cc.b) == net {
            add(cc.b, cc.farads);
        }
    }
    delay
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_circuit::{NetRole, NetworkBuilder};

    /// Victim: root -10Ω- v1 -20Ω- v2(out, 5fF); cap 3fF at v1.
    /// Aggressor: a0 -15Ω- a1 (4fF sink); couplings a1-v1 (6fF), a1-v2 (2fF).
    fn sample() -> (Network, [NodeId; 5]) {
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let v0 = b.add_node(v, "v0");
        let v1 = b.add_node(v, "v1");
        let v2 = b.add_node(v, "v2");
        let a0 = b.add_node(a, "a0");
        let a1 = b.add_node(a, "a1");
        b.add_driver(v, v0, 100.0).unwrap();
        b.add_driver(a, a0, 50.0).unwrap();
        b.add_resistor(v0, v1, 10.0).unwrap();
        b.add_resistor(v1, v2, 20.0).unwrap();
        b.add_resistor(a0, a1, 15.0).unwrap();
        b.add_ground_cap(v1, 3e-15).unwrap();
        b.add_sink(v2, 5e-15).unwrap();
        b.add_sink(a1, 4e-15).unwrap();
        b.add_coupling_cap(a1, v1, 6e-15).unwrap();
        b.add_coupling_cap(a1, v2, 2e-15).unwrap();
        (b.build().unwrap(), [v0, v1, v2, a0, a1])
    }

    #[test]
    fn a1_sums_injections_times_transfer_resistance() {
        let (net, [_, _, v2, _, _]) = sample();
        let agg = net.aggressor_nets().next().unwrap().0;
        // cc at v1: R = 100 + 10; cc at v2: R = 100 + 30.
        let expect = 6e-15 * 110.0 + 2e-15 * 130.0;
        let got = coupling_a1(&net, agg, v2);
        assert!((got - expect).abs() < 1e-18 * expect.abs().max(1.0));
    }

    #[test]
    fn a1_at_intermediate_node_uses_common_path() {
        let (net, [_, v1, _, _, _]) = sample();
        let agg = net.aggressor_nets().next().unwrap().0;
        // Observation at v1: both couplings see R_common = 110.
        let expect = 6e-15 * 110.0 + 2e-15 * 110.0;
        assert!((coupling_a1(&net, agg, v1) - expect).abs() < 1e-25);
    }

    #[test]
    fn b2_matches_analytic_coupled_pair() {
        // Symmetric pair: b2 = Rd²(Cg² + 2·Cg·Cc) (see engine tests).
        let (rd, cg, cc) = (120.0, 18e-15, 7e-15);
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let vn = b.add_node(v, "v0");
        let an = b.add_node(a, "a0");
        b.add_driver(v, vn, rd).unwrap();
        b.add_driver(a, an, rd).unwrap();
        b.add_sink(vn, cg).unwrap();
        b.add_sink(an, cg).unwrap();
        b.add_coupling_cap(vn, an, cc).unwrap();
        let net = b.build().unwrap();
        let expect = rd * rd * (cg * cg + 2.0 * cg * cc);
        let got = short_circuit_b2(&net);
        assert!((got - expect).abs() < 1e-9 * expect, "{got} vs {expect}");
    }

    #[test]
    fn b1_sums_open_circuit_time_constants() {
        let (net, _) = sample();
        let expect = 3e-15 * 110.0    // v1 wire cap
            + 5e-15 * 130.0           // v2 sink
            + 4e-15 * 65.0            // a1 sink
            + 6e-15 * (65.0 + 110.0)  // coupling a1-v1
            + 2e-15 * (65.0 + 130.0); // coupling a1-v2
        let got = open_circuit_b1(&net);
        assert!((got - expect).abs() < 1e-25, "{got} vs {expect}");
    }

    #[test]
    fn elmore_delay_grounds_coupling_caps() {
        let (net, [_, _, v2, _, _]) = sample();
        // At v2: wire cap v1 (3f, R=110), sink v2 (5f, R=130),
        // couplings at v1 (6f, R=110) and v2 (2f, R=130).
        let expect = 3e-15 * 110.0 + 5e-15 * 130.0 + 6e-15 * 110.0 + 2e-15 * 130.0;
        let got = elmore_delay(&net, v2);
        assert!((got - expect).abs() < 1e-25, "{got} vs {expect}");
    }

    #[test]
    fn aggressor_elmore_counts_its_side() {
        let (net, [.., a1]) = sample();
        // At a1: sink (4f, R=65) + couplings at a1 (6f+2f, R=65).
        let expect = 12e-15 * 65.0;
        assert!((elmore_delay(&net, a1) - expect).abs() < 1e-25);
    }
}
