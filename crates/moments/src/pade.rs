use crate::MomentError;

/// How close to zero `h1` may be before a fit is considered degenerate.
const DEGENERATE_H1: f64 = 1e-300;

/// Pole structure of a two-pole fit, in the `s` plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PoleKind {
    /// One effective pole (`b2 ≈ 0`); `p < 0`.
    SingleReal {
        /// The pole (1/s).
        p: f64,
    },
    /// Two distinct negative real poles — the well-behaved case.
    RealStable {
        /// Dominant (slower, smaller magnitude) pole.
        p1: f64,
        /// Faster pole.
        p2: f64,
    },
    /// Two equal negative real poles.
    RealDouble {
        /// The repeated pole.
        p: f64,
    },
    /// Complex-conjugate pair `σ ± jω` — the fit is oscillatory; the
    /// paper notes two-pole matching "suffers from instability and may not
    /// offer a solution for some circuits".
    Complex {
        /// Real part.
        re: f64,
        /// Imaginary part (positive).
        im: f64,
    },
    /// At least one pole is non-negative: the reduced model is unstable
    /// even though the underlying RC circuit is passive.
    Unstable {
        /// First pole.
        p1: f64,
        /// Second pole.
        p2: f64,
    },
}

impl PoleKind {
    /// `true` when time-domain evaluation of the fit is meaningful
    /// (strictly decaying, non-oscillatory).
    pub fn is_well_behaved(&self) -> bool {
        matches!(
            self,
            PoleKind::SingleReal { .. } | PoleKind::RealStable { .. } | PoleKind::RealDouble { .. }
        )
    }
}

/// Two-pole Padé model of a noise transfer function,
/// `H(s) = a1·s / (1 + b1·s + b2·s²)`, fit to the first three Taylor
/// coefficients.
///
/// This is the model class behind the paper's eqs. (11)–(18) and the Yu
/// baseline metrics. Besides the fit itself it provides exact time-domain
/// step/ramp responses (which *do* use exponentials — only the paper's new
/// metrics avoid them) and a peak search for well-behaved pole structures.
///
/// # Examples
///
/// ```
/// use xtalk_moments::{PoleKind, TwoPoleFit};
///
/// // H(s) = s·1e-11 / (1 + 2e-10·s + 0.5e-20·s²) — two real poles.
/// let fit = TwoPoleFit::from_taylor(&[0.0, 1e-11, -2e-21, 3.75e-31]).unwrap();
/// assert!((fit.b1() - 2e-10).abs() < 1e-22);
/// assert!(matches!(fit.poles(), PoleKind::RealStable { .. }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPoleFit {
    a1: f64,
    b1: f64,
    b2: f64,
    poles: PoleKind,
}

impl TwoPoleFit {
    /// Fits from Taylor coefficients `h = [h0, h1, h2, h3]` (only indices
    /// 1–3 are used; `h0` must describe a DC-free transfer, i.e. noise):
    /// `a1 = h1`, `b1 = −h2/h1`, `b2 = b1² − h3/h1`.
    ///
    /// # Errors
    ///
    /// [`MomentError::ZeroOrder`] when fewer than four coefficients are
    /// supplied; [`MomentError::DegenerateFit`] when `h1 ≈ 0` (no coupling
    /// to the observed node) or any coefficient is non-finite (a NaN `h2`
    /// would otherwise poison `b1`/`b2` silently).
    pub fn from_taylor(h: &[f64]) -> Result<Self, MomentError> {
        if h.len() < 4 {
            xtalk_obs::counter!("moments.pade.rejections").add(1);
            return Err(MomentError::ZeroOrder);
        }
        let (h1, h2, h3) = (h[1], h[2], h[3]);
        if h1.abs() < DEGENERATE_H1 || !(h1.is_finite() && h2.is_finite() && h3.is_finite()) {
            xtalk_obs::counter!("moments.pade.rejections").add(1);
            return Err(MomentError::DegenerateFit);
        }
        xtalk_obs::counter!("moments.pade.fits").add(1);
        let b1 = -h2 / h1;
        let b2 = b1 * b1 - h3 / h1;
        Ok(Self::from_coeffs(h1, b1, b2))
    }

    /// Builds directly from model coefficients (e.g. closed-form `a1`,
    /// `b1`, `b2` from the tree formulas).
    pub fn from_coeffs(a1: f64, b1: f64, b2: f64) -> Self {
        let poles = classify_poles(b1, b2);
        TwoPoleFit { a1, b1, b2, poles }
    }

    /// Numerator coefficient `a1`.
    pub fn a1(&self) -> f64 {
        self.a1
    }

    /// Denominator coefficient `b1` (sum of time constants).
    pub fn b1(&self) -> f64 {
        self.b1
    }

    /// Denominator coefficient `b2`.
    pub fn b2(&self) -> f64 {
        self.b2
    }

    /// Pole structure.
    pub fn poles(&self) -> PoleKind {
        self.poles
    }

    /// Taylor coefficients `[0, h1, h2, h3]` reproduced by the model —
    /// the inverse of [`TwoPoleFit::from_taylor`] (eqs. 11–14 of the paper
    /// with `g = [1, 0, 0, 0]`).
    pub fn taylor(&self) -> [f64; 4] {
        [
            0.0,
            self.a1,
            -self.a1 * self.b1,
            self.a1 * (self.b1 * self.b1 - self.b2),
        ]
    }

    /// Unit-step response `y(t)` of the fit (response of the victim output
    /// when the aggressor input steps 0→1 at `t = 0`); `0` for `t ≤ 0`.
    ///
    /// Uses exponentials — intended for baseline metrics and validation,
    /// not for the closed-form flow.
    pub fn step_response(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        match self.poles {
            PoleKind::SingleReal { p } => self.a1 * (-p) * (p * t).exp(),
            PoleKind::RealStable { p1, p2 } | PoleKind::Unstable { p1, p2 } => {
                self.a1 / (self.b2 * (p1 - p2)) * ((p1 * t).exp() - (p2 * t).exp())
            }
            PoleKind::RealDouble { p } => self.a1 / self.b2 * t * (p * t).exp(),
            PoleKind::Complex { re, im } => {
                self.a1 / (self.b2 * im) * (re * t).exp() * (im * t).sin()
            }
        }
    }

    /// Integral of the step response, `S(t) = ∫₀ᵗ y(τ) dτ`; `0` for
    /// `t ≤ 0`. The ramp response is `(S(t) − S(t − t_r))/t_r`.
    pub fn step_integral(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        match self.poles {
            PoleKind::SingleReal { p } => self.a1 * (1.0 - (p * t).exp()),
            PoleKind::RealStable { p1, p2 } | PoleKind::Unstable { p1, p2 } => {
                self.a1 / (self.b2 * (p1 - p2))
                    * (((p1 * t).exp() - 1.0) / p1 - ((p2 * t).exp() - 1.0) / p2)
            }
            PoleKind::RealDouble { p } => {
                self.a1 / self.b2
                    * ((p * t).exp() * (t / p - 1.0 / (p * p)) + 1.0 / (p * p))
            }
            PoleKind::Complex { re, im } => {
                let denom = re * re + im * im;
                self.a1 / (self.b2 * im)
                    * (((re * t).exp() * (re * (im * t).sin() - im * (im * t).cos()) + im)
                        / denom)
            }
        }
    }

    /// Response to a saturated ramp 0→1 with transition time `tr`
    /// arriving at `t = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `tr` is not positive.
    pub fn ramp_response(&self, t: f64, tr: f64) -> f64 {
        assert!(tr > 0.0, "ramp transition time must be positive");
        (self.step_integral(t) - self.step_integral(t - tr)) / tr
    }

    /// Peak `(t_p, v_p)` of the ramp response, or `None` when the pole
    /// structure is not well-behaved (complex or unstable fit — the
    /// failure mode the paper attributes to two-pole matching).
    ///
    /// # Panics
    ///
    /// Panics if `tr` is not positive.
    pub fn ramp_peak(&self, tr: f64) -> Option<(f64, f64)> {
        if !self.poles.is_well_behaved() {
            return None;
        }
        assert!(tr > 0.0, "ramp transition time must be positive");
        let slowest = match self.poles {
            PoleKind::SingleReal { p } | PoleKind::RealDouble { p } => -1.0 / p,
            PoleKind::RealStable { p1, p2 } => (-1.0 / p1).max(-1.0 / p2),
            _ => unreachable!("filtered above"),
        };
        // The ramp response is unimodal (difference of shifted unimodal
        // step responses): coarse bracket, then ternary refinement.
        let t_max = tr + 30.0 * slowest;
        let coarse: usize = 512;
        let mut best_i: usize = 0;
        let mut best_v = f64::NEG_INFINITY;
        for i in 0..=coarse {
            let t = t_max * i as f64 / coarse as f64;
            let v = self.ramp_response(t, tr);
            if v > best_v {
                best_v = v;
                best_i = i;
            }
        }
        let mut lo = t_max * best_i.saturating_sub(1) as f64 / coarse as f64;
        let mut hi = t_max * (best_i + 1).min(coarse) as f64 / coarse as f64;
        for _ in 0..100 {
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            if self.ramp_response(m1, tr) < self.ramp_response(m2, tr) {
                lo = m1;
            } else {
                hi = m2;
            }
        }
        let tp = 0.5 * (lo + hi);
        Some((tp, self.ramp_response(tp, tr)))
    }
}

/// Classifies the roots of `b2·s² + b1·s + 1 = 0`.
fn classify_poles(b1: f64, b2: f64) -> PoleKind {
    // Relative threshold: b2 negligible vs b1² means one pole escaped to -∞.
    if b2.abs() <= 1e-12 * b1 * b1 || b2 == 0.0 {
        let p = -1.0 / b1;
        return if p < 0.0 {
            PoleKind::SingleReal { p }
        } else {
            PoleKind::Unstable { p1: p, p2: p }
        };
    }
    let disc = b1 * b1 - 4.0 * b2;
    // Rounding can push a true double root a few ulps either side of zero;
    // treat a vanishing discriminant (relative to its terms) as a double pole.
    if disc.abs() <= 1e-9 * (b1 * b1).max(4.0 * b2.abs()) {
        let p = -b1 / (2.0 * b2);
        return if p < 0.0 {
            PoleKind::RealDouble { p }
        } else {
            PoleKind::Unstable { p1: p, p2: p }
        };
    }
    if disc < 0.0 {
        PoleKind::Complex {
            re: -b1 / (2.0 * b2),
            im: (-disc).sqrt() / (2.0 * b2.abs()),
        }
    } else {
        let sq = disc.sqrt();
        let r1 = (-b1 + sq) / (2.0 * b2);
        let r2 = (-b1 - sq) / (2.0 * b2);
        // Order by magnitude: dominant (slow) pole first.
        let (p1, p2) = if r1.abs() <= r2.abs() { (r1, r2) } else { (r2, r1) };
        if p1 < 0.0 && p2 < 0.0 {
            PoleKind::RealStable { p1, p2 }
        } else {
            PoleKind::Unstable { p1, p2 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fit with poles at -1/τ1, -1/τ2: b1 = τ1+τ2, b2 = τ1·τ2.
    fn fit_from_taus(a1: f64, tau1: f64, tau2: f64) -> TwoPoleFit {
        TwoPoleFit::from_coeffs(a1, tau1 + tau2, tau1 * tau2)
    }

    #[test]
    fn taylor_round_trip() {
        let fit = fit_from_taus(2e-11, 1e-10, 3e-11);
        let h = fit.taylor();
        let refit = TwoPoleFit::from_taylor(&h).unwrap();
        assert!((refit.a1() - fit.a1()).abs() < 1e-24);
        assert!((refit.b1() - fit.b1()).abs() < 1e-22);
        assert!((refit.b2() - fit.b2()).abs() < 1e-32);
    }

    #[test]
    fn poles_recovered_from_time_constants() {
        let fit = fit_from_taus(1e-11, 2e-10, 5e-11);
        match fit.poles() {
            PoleKind::RealStable { p1, p2 } => {
                assert!((p1 + 1.0 / 2e-10).abs() < 1e-3 / 2e-10);
                assert!((p2 + 1.0 / 5e-11).abs() < 1e-3 / 5e-11);
            }
            other => panic!("expected RealStable, got {other:?}"),
        }
    }

    #[test]
    fn complex_poles_detected() {
        // b1² < 4 b2.
        let fit = TwoPoleFit::from_coeffs(1e-11, 1e-10, 1e-19);
        assert!(matches!(fit.poles(), PoleKind::Complex { .. }));
        assert!(!fit.poles().is_well_behaved());
        assert!(fit.ramp_peak(1e-10).is_none());
    }

    #[test]
    fn negative_b2_is_unstable() {
        let fit = TwoPoleFit::from_coeffs(1e-11, 1e-10, -1e-20);
        assert!(matches!(fit.poles(), PoleKind::Unstable { .. }));
    }

    #[test]
    fn degenerate_fit_rejected() {
        assert!(matches!(
            TwoPoleFit::from_taylor(&[0.0, 0.0, 1e-21, 0.0]),
            Err(MomentError::DegenerateFit)
        ));
        assert!(matches!(
            TwoPoleFit::from_taylor(&[0.0, 1.0]),
            Err(MomentError::ZeroOrder)
        ));
    }

    #[test]
    fn non_finite_taylor_coefficients_rejected() {
        // A NaN h2 with a healthy h1 would silently poison b1 = −h2/h1.
        for bad in [
            [0.0, f64::NAN, -2e-21, 3.75e-31],
            [0.0, 1e-11, f64::NAN, 3.75e-31],
            [0.0, 1e-11, -2e-21, f64::INFINITY],
        ] {
            assert!(matches!(
                TwoPoleFit::from_taylor(&bad),
                Err(MomentError::DegenerateFit)
            ));
        }
    }

    #[test]
    fn step_response_matches_quadrature_of_integral() {
        let fit = fit_from_taus(1e-11, 2e-10, 7e-11);
        // dS/dt == y(t) via central differences.
        for &t in &[1e-11, 5e-11, 2e-10, 8e-10] {
            let h = t * 1e-6;
            let deriv = (fit.step_integral(t + h) - fit.step_integral(t - h)) / (2.0 * h);
            let y = fit.step_response(t);
            assert!(
                (deriv - y).abs() < 1e-6 * y.abs().max(1e-12),
                "t={t}: {deriv} vs {y}"
            );
        }
    }

    #[test]
    fn step_integral_saturates_at_a1() {
        // ∫0^∞ y = lim_{s→0} H(s)/s = a1.
        let fit = fit_from_taus(3e-11, 1e-10, 4e-11);
        let s_inf = fit.step_integral(1e-7);
        assert!((s_inf - 3e-11).abs() < 1e-16);
    }

    #[test]
    fn double_pole_square_endpoint() {
        let fit = TwoPoleFit::from_coeffs(1e-11, 2e-10, 1e-20); // (1 + 1e-10 s)^2
        assert!(matches!(fit.poles(), PoleKind::RealDouble { .. }));
        // y(t) = a1/b2 * t e^{-t/1e-10}; check at t = 1e-10.
        let y = fit.step_response(1e-10);
        let expect = 1e-11 / 1e-20 * 1e-10 * (-1.0f64).exp();
        assert!((y - expect).abs() < 1e-9 * expect.abs());
        // Integral saturates at a1 as well.
        assert!((fit.step_integral(1e-7) - 1e-11).abs() < 1e-16);
    }

    #[test]
    fn single_pole_ramp_peak_is_at_tr() {
        // One-pole noise: peak of the ramp response occurs exactly at t = tr.
        let tau = 1e-10;
        let fit = TwoPoleFit::from_coeffs(2e-11, tau, 0.0);
        assert!(matches!(fit.poles(), PoleKind::SingleReal { .. }));
        let tr = 2e-10;
        let (tp, vp) = fit.ramp_peak(tr).unwrap();
        assert!((tp - tr).abs() < 1e-3 * tr, "tp = {tp}");
        // Analytic peak: (a1/tr)(1 - e^{-tr/tau}).
        let expect = 2e-11 / tr * (1.0 - (-tr / tau).exp());
        assert!((vp - expect).abs() < 1e-4 * expect);
    }

    #[test]
    fn two_pole_ramp_peak_bounded_by_step_peak() {
        let fit = fit_from_taus(1e-11, 2e-10, 6e-11);
        let (tp, vp) = fit.ramp_peak(1e-10).unwrap();
        // Step-response peak (analytic argmax of k(e^{p1 t} - e^{p2 t})).
        let (p1, p2) = match fit.poles() {
            PoleKind::RealStable { p1, p2 } => (p1, p2),
            other => panic!("unexpected {other:?}"),
        };
        // Argmax of e^{p1 t} - e^{p2 t}: p1 e^{p1 t*} = p2 e^{p2 t*}.
        let t_star = (p2 / p1).ln() / (p1 - p2);
        let v_star = fit.step_response(t_star);
        assert!(vp <= v_star + 1e-15);
        assert!(vp > 0.0);
        assert!(tp > 0.0);
    }

    #[test]
    fn ramp_response_converges_to_step_as_tr_shrinks() {
        let fit = fit_from_taus(1e-11, 2e-10, 6e-11);
        let t = 1.5e-10;
        let fast = fit.ramp_response(t, 1e-14);
        let step = fit.step_response(t);
        assert!((fast - step).abs() < 1e-3 * step.abs());
    }
}
