//! Property-based tests for the what-if session: any random sequence of
//! deltas and reverts yields reports bit-identical to a from-scratch
//! rebuild, and the query accounting always adds up.

#![allow(clippy::unwrap_used)] // test code; helpers sit outside #[test] fns

use proptest::prelude::*;
use xtalk_circuit::{Delta, Network};
use xtalk_incr::{WhatIf, WhatIfConfig};
use xtalk_tech::{ClusterSpec, Technology};

/// One step of a session script, with targets as fractions of the
/// respective element-table sizes so any script fits any cluster.
#[derive(Debug, Clone)]
enum Step {
    Driver { lane_frac: f64, ohms: f64 },
    Coupling { idx_frac: f64, farads: f64 },
    Resistor { idx_frac: f64, ohms: f64 },
    GroundCap { idx_frac: f64, farads: f64 },
    Revert,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0.0..1.0f64, 40.0..500.0f64).prop_map(|(lane_frac, ohms)| Step::Driver { lane_frac, ohms }),
        (0.0..1.0f64, 1e-15..3e-14f64)
            .prop_map(|(idx_frac, farads)| Step::Coupling { idx_frac, farads }),
        (0.0..1.0f64, 2.0..120.0f64).prop_map(|(idx_frac, ohms)| Step::Resistor { idx_frac, ohms }),
        (0.0..1.0f64, 5e-16..1e-14f64)
            .prop_map(|(idx_frac, farads)| Step::GroundCap { idx_frac, farads }),
        Just(Step::Revert),
    ]
}

fn pick(frac: f64, len: usize) -> usize {
    ((frac * len as f64) as usize).min(len - 1)
}

fn as_delta(step: &Step, net: &Network) -> Option<Delta> {
    Some(match *step {
        Step::Driver { lane_frac, ohms } => {
            let nets: Vec<_> = net.nets().map(|(id, _)| id).collect();
            Delta::ResizeDriver { net: nets[pick(lane_frac, nets.len())], ohms }
        }
        Step::Coupling { idx_frac, farads } => Delta::SetCouplingCap {
            index: pick(idx_frac, net.coupling_caps().len()),
            farads,
        },
        Step::Resistor { idx_frac, ohms } => Delta::SetResistor {
            index: pick(idx_frac, net.resistors().len()),
            ohms,
        },
        Step::GroundCap { idx_frac, farads } => Delta::SetGroundCap {
            index: pick(idx_frac, net.ground_caps().len()),
            farads,
        },
        Step::Revert => return None,
    })
}

fn small_cluster(lanes: usize) -> Network {
    let spec = ClusterSpec {
        lanes,
        length: 0.5e-3,
        driver: 150.0,
        driver_stagger: 20.0,
        load: 15e-15,
        segments_per_mm: 4,
    };
    spec.build(&Technology::p25()).unwrap().0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole contract: after every step of an arbitrary
    /// delta/revert script, the session's report is byte-identical to a
    /// fresh session built from scratch on the current network state.
    #[test]
    fn session_matches_from_scratch_rebuild(
        lanes in 3usize..7,
        script in prop::collection::vec(step(), 1..12),
    ) {
        let base = small_cluster(lanes);
        let mut session = WhatIf::new(base, WhatIfConfig::default()).unwrap();
        prop_assert_eq!(
            session.report().to_json(),
            WhatIf::new(session.base().clone(), WhatIfConfig::default())
                .unwrap()
                .report()
                .to_json()
        );
        for s in &script {
            let report = match as_delta(s, session.base()) {
                Some(d) => session.apply(&d).unwrap(),
                None => match session.revert().unwrap() {
                    Some(r) => r,
                    None => continue, // empty undo stack: nothing to check
                },
            };
            let scratch = WhatIf::new(session.base().clone(), WhatIfConfig::default())
                .unwrap()
                .report();
            prop_assert_eq!(report.to_json(), scratch.to_json());
        }
    }

    /// Accounting invariants: `queries == hits + misses` for both the
    /// session and the metric memo, and reverting everything restores
    /// the initial report bytes.
    #[test]
    fn accounting_holds_and_full_revert_restores(
        lanes in 3usize..6,
        script in prop::collection::vec(step(), 1..10),
    ) {
        let base = small_cluster(lanes);
        let mut session = WhatIf::new(base, WhatIfConfig::default()).unwrap();
        let initial = session.report().to_json();
        for s in &script {
            match as_delta(s, session.base()) {
                Some(d) => { session.apply(&d).unwrap(); }
                None => { session.revert().unwrap(); }
            }
            let st = session.stats();
            prop_assert_eq!(st.queries, st.hits + st.misses);
            let m = session.memo_stats();
            prop_assert_eq!(m.queries(), m.hits + m.misses);
        }
        while session.undo_depth() > 0 {
            session.revert().unwrap();
        }
        prop_assert_eq!(session.report().to_json(), initial);
        let st = session.stats();
        prop_assert_eq!(st.queries, st.hits + st.misses);
        prop_assert!(st.hits > 0, "repeat queries must hit the cache");
    }
}
