//! Incremental what-if engine over coupled-net clusters.
//!
//! The paper's target application is a router moving **one wire at a
//! time**: metrics cheap enough for an optimization inner loop. The
//! static pipeline (`moments` → `core`) recomputes everything per call;
//! this crate makes single-edit queries nearly free by memoizing every
//! pipeline stage and invalidating by dependency:
//!
//! * **Views** — each net is analyzed as the victim of a truncated view
//!   holding only its 1-hop coupled neighbours, so an edit's blast
//!   radius is a neighbourhood, not the cluster.
//! * **Moments** — each view runs an
//!   [`xtalk_moments::IncrTreeEngine`], which repairs only the dirty
//!   per-net moment blocks after a value edit.
//! * **Metrics** — Metric I/II estimates and bounds are memoized behind
//!   bit-pattern keys ([`xtalk_core::memo::StageMemo`]); unchanged
//!   victim–aggressor pairs replay stored results verbatim.
//!
//! The contract throughout is **bit-identity**: an incremental report
//! equals a from-scratch rebuild of the same edited network byte for
//! byte. Conservative recomputation is allowed (same inputs → same
//! bits); approximation is not.
//!
//! Entry point: [`WhatIf`] — `apply(Delta) → NoiseReport`, `revert()`,
//! with `incr.query.{hit,miss,invalidated}` Perf counters wired through
//! `xtalk-obs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod session;
mod view;

pub use session::{
    NetNoise, NoiseReport, SessionStats, WhatIf, WhatIfConfig, WhatIfError,
};
