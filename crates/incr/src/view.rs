//! Per-net truncated analysis views and base→view delta translation.
//!
//! A [`View`] re-roles one base net as the victim and keeps only its
//! *directly coupled* neighbours as aggressors — the paper's locality
//! assumption made structural: noise is injected exclusively through
//! coupling capacitors, and second-hop nets perturb the victim only
//! through their (small) loading of the first-hop aggressors. Truncating
//! at one hop makes each view O(neighbourhood) instead of O(cluster),
//! which is where the incremental engine's asymptotic win comes from on
//! chain-coupled clusters that form one giant coupling island.
//!
//! Each view carries translation tables from base element identifiers to
//! view identifiers, built once during construction. Translating a
//! [`Delta`] answers two questions at once: *does this edit affect the
//! view at all* (exact invalidation — `None` means provably untouched),
//! and *what is the equivalent edit inside the view*.

use xtalk_circuit::{CircuitError, Delta, NetId, NetRole, Network, NetworkBuilder, NodeId};
use xtalk_moments::IncrTreeEngine;

/// Taylor order the noise pipeline consumes (`h0..h3`).
pub(crate) const MOMENT_ORDER: usize = 4;

/// One net's truncated analysis view: the re-roled victim, its 1-hop
/// aggressors, an incremental moment engine over the view network, and
/// the base→view translation tables.
#[derive(Debug)]
pub(crate) struct View {
    /// The base net this view analyzes as victim.
    pub target: NetId,
    /// The truncated network (victim + direct neighbours).
    pub network: Network,
    /// Incrementally-repairable moment engine over `network`.
    pub engine: IncrTreeEngine,
    /// Base net index → view net id (None: net not in this view).
    net_map: Vec<Option<NetId>>,
    /// Base node index → view node id (None: node not in this view).
    node_map: Vec<Option<NodeId>>,
    /// Base resistor index → view resistor index.
    res_map: Vec<Option<usize>>,
    /// Base ground-cap index → view ground-cap index.
    gc_map: Vec<Option<usize>>,
    /// Base coupling-cap index → view coupling-cap index.
    cc_map: Vec<Option<usize>>,
}

impl View {
    /// Builds the view of `target` over `base`. Element iteration follows
    /// the base table order throughout, so two builds of the same view
    /// are identical and the translation tables are index-stable.
    pub fn build(base: &Network, target: NetId) -> Result<View, CircuitError> {
        let mut included = vec![false; base.net_count()];
        included[target.index()] = true;
        for cc in base.coupling_caps() {
            let (na, nb) = (base.node_net(cc.a), base.node_net(cc.b));
            if na == target {
                included[nb.index()] = true;
            }
            if nb == target {
                included[na.index()] = true;
            }
        }

        let mut b = NetworkBuilder::new();
        let mut net_map = vec![None; base.net_count()];
        let mut node_map = vec![None; base.node_count()];
        for (id, net) in base.nets() {
            if !included[id.index()] {
                continue;
            }
            let role = if id == target {
                NetRole::Victim
            } else {
                NetRole::Aggressor
            };
            let view_net = b.add_net(net.name(), role);
            net_map[id.index()] = Some(view_net);
            for &node in net.nodes() {
                node_map[node.index()] = Some(b.add_node(view_net, base.node_name(node)));
            }
            let driver = net.driver();
            let dnode = node_map[driver.node.index()].expect("driver node just added");
            b.add_driver(view_net, dnode, driver.ohms)?;
            for s in net.sinks() {
                let snode = node_map[s.node.index()].expect("sink node just added");
                b.add_sink(snode, s.farads)?;
            }
        }

        let mut res_map = vec![None; base.resistors().len()];
        let mut res_next = 0usize;
        for (i, r) in base.resistors().iter().enumerate() {
            if let (Some(a), Some(bb)) = (node_map[r.a.index()], node_map[r.b.index()]) {
                res_map[i] = Some(res_next);
                res_next += 1;
                b.add_resistor(a, bb, r.ohms)?;
            }
        }
        let mut gc_map = vec![None; base.ground_caps().len()];
        let mut gc_next = 0usize;
        for (i, gc) in base.ground_caps().iter().enumerate() {
            if let Some(node) = node_map[gc.node.index()] {
                gc_map[i] = Some(gc_next);
                gc_next += 1;
                b.add_ground_cap(node, gc.farads)?;
            }
        }
        let mut cc_map = vec![None; base.coupling_caps().len()];
        let mut cc_next = 0usize;
        for (i, cc) in base.coupling_caps().iter().enumerate() {
            if let (Some(a), Some(bb)) = (node_map[cc.a.index()], node_map[cc.b.index()]) {
                cc_map[i] = Some(cc_next);
                cc_next += 1;
                b.add_coupling_cap(a, bb, cc.farads)?;
            }
        }

        if target == base.victim() {
            if let Some(out) = node_map[base.victim_output().index()] {
                b.set_victim_output(out);
            }
        }
        // Re-roled nets observe at the builder default: the victim's
        // first sink — the same convention the screening views use.

        let network = b.build()?;
        let engine = IncrTreeEngine::new(&network, MOMENT_ORDER);
        Ok(View {
            target,
            network,
            engine,
            net_map,
            node_map,
            res_map,
            gc_map,
            cc_map,
        })
    }

    /// Translates a base-network delta into this view, or `None` when the
    /// delta provably cannot affect it (its target is outside the view).
    ///
    /// `None` is *exact*, not conservative: every element a delta can
    /// name (a net's driver, a sink node, a resistor, a capacitor) is
    /// either present in the view — and then its value is shared with the
    /// base — or absent, and then no quantity of this view depends on it.
    pub fn translate(&self, delta: &Delta) -> Option<Delta> {
        match *delta {
            Delta::ResizeDriver { net, ohms } => self.net_map[net.index()]
                .map(|net| Delta::ResizeDriver { net, ohms }),
            Delta::SetSinkCap { node, farads } => self.node_map[node.index()]
                .map(|node| Delta::SetSinkCap { node, farads }),
            Delta::SetResistor { index, ohms } => {
                self.res_map[index].map(|index| Delta::SetResistor { index, ohms })
            }
            Delta::SetGroundCap { index, farads } => {
                self.gc_map[index].map(|index| Delta::SetGroundCap { index, farads })
            }
            Delta::SetCouplingCap { index, farads } => {
                self.cc_map[index].map(|index| Delta::SetCouplingCap { index, farads })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_tech::{ClusterSpec, Technology};

    fn cluster(lanes: usize) -> (Network, Vec<NetId>) {
        ClusterSpec::figure4_family(lanes)
            .build(&Technology::p25())
            .unwrap()
    }

    #[test]
    fn view_keeps_only_one_hop_neighbours() {
        let (base, lanes) = cluster(6);
        let v = View::build(&base, lanes[2]).unwrap();
        // Lane 2 couples to lanes 1 and 3 only.
        assert_eq!(v.network.net_count(), 3);
        assert_eq!(v.network.victim_net().name(), base.net(lanes[2]).name());
        let end = View::build(&base, lanes[0]).unwrap();
        assert_eq!(end.network.net_count(), 2);
    }

    #[test]
    fn view_of_base_victim_preserves_output_node() {
        let (base, _) = cluster(4);
        let v = View::build(&base, base.victim()).unwrap();
        assert_eq!(
            v.network.node_name(v.network.victim_output()),
            base.node_name(base.victim_output())
        );
    }

    #[test]
    fn translation_is_exact_per_element() {
        let (base, lanes) = cluster(6);
        let v = View::build(&base, lanes[0]).unwrap();
        // Lane 0's view contains lanes 0 and 1.
        assert!(v
            .translate(&Delta::ResizeDriver { net: lanes[1], ohms: 50.0 })
            .is_some());
        assert!(v
            .translate(&Delta::ResizeDriver { net: lanes[2], ohms: 50.0 })
            .is_none());
        // Couplings between lanes 0-1 are the first `segments` caps.
        let segs = base.couplings_between(lanes[0], lanes[1]).count();
        assert!(v
            .translate(&Delta::SetCouplingCap { index: 0, farads: 1e-15 })
            .is_some());
        assert!(v
            .translate(&Delta::SetCouplingCap { index: segs, farads: 1e-15 })
            .is_none(), "lane 1-2 coupling is outside lane 0's view");
    }

    #[test]
    fn translated_delta_applies_with_matching_values() {
        let (mut base, lanes) = cluster(4);
        let mut v = View::build(&base, lanes[1]).unwrap();
        let d = Delta::SetResistor { index: 3, ohms: 99.0 };
        let vd = v.translate(&d).expect("lane 1's own resistor is in view");
        base.apply_delta(&d).unwrap();
        v.network.apply_delta(&vd).unwrap();
        // The translated resistor carries the same new value.
        let Delta::SetResistor { index, .. } = vd else { unreachable!() };
        assert_eq!(v.network.resistors()[index].ohms, 99.0);
        assert_eq!(base.resistors()[3].ohms, 99.0);
        // And a rebuild of the view from the edited base matches element
        // for element.
        let fresh = View::build(&base, lanes[1]).unwrap();
        assert_eq!(fresh.network.resistors(), v.network.resistors());
        assert_eq!(fresh.network.coupling_caps(), v.network.coupling_caps());
    }
}
