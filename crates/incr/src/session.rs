//! The [`WhatIf`] session: apply/revert deltas, query memoized reports.

use crate::view::View;
use std::fmt;
use xtalk_circuit::{signal::InputSignal, CircuitError, Delta, DeltaError, NetId, Network};
use xtalk_core::memo::{MemoStats, StageMemo};
use xtalk_core::superpose::{worst_case, TimingWindow};
use xtalk_core::{MetricKind, OutputMoments};
use xtalk_exec::{ExecError, Jobs};

/// Session parameters: the aggressor input shape and which metric ranks
/// the nets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhatIfConfig {
    /// Aggressor input transition time (s) — a rising ramp at `arrival`.
    pub slew: f64,
    /// Aggressor switching time (s).
    pub arrival: f64,
    /// Metric evaluated per victim–aggressor pair.
    pub kind: MetricKind,
    /// Worker count for the initial view construction (the per-delta
    /// path is serial — its work is a handful of views by design).
    pub jobs: Jobs,
}

impl Default for WhatIfConfig {
    fn default() -> Self {
        WhatIfConfig {
            slew: 100e-12,
            arrival: 0.0,
            kind: MetricKind::Two,
            jobs: Jobs::Count(1),
        }
    }
}

/// Session failures.
#[derive(Debug)]
pub enum WhatIfError {
    /// A view failed to build from the base network.
    Build(CircuitError),
    /// A delta was rejected by the base network.
    Delta(DeltaError),
    /// The parallel view-construction pool failed.
    Exec(ExecError),
}

impl fmt::Display for WhatIfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhatIfError::Build(e) => write!(f, "failed to build analysis view: {e}"),
            WhatIfError::Delta(e) => write!(f, "delta rejected: {e}"),
            WhatIfError::Exec(e) => write!(f, "view construction pool failed: {e}"),
        }
    }
}

impl std::error::Error for WhatIfError {}

impl From<CircuitError> for WhatIfError {
    fn from(e: CircuitError) -> Self {
        WhatIfError::Build(e)
    }
}

impl From<DeltaError> for WhatIfError {
    fn from(e: DeltaError) -> Self {
        WhatIfError::Delta(e)
    }
}

/// Worst-case noise summary of one net analyzed as the victim of its
/// truncated view.
#[derive(Debug, Clone, PartialEq)]
pub struct NetNoise {
    /// Base net index.
    pub index: usize,
    /// Net name.
    pub net: String,
    /// Worst-case combined peak over all aggressors (× `Vdd`).
    pub vp: f64,
    /// Observation time of the combined worst case (s).
    pub at: f64,
    /// Aggressors aligned at full peak in the worst case.
    pub aligned: usize,
    /// Largest single-aggressor peak (× `Vdd`).
    pub worst_single: f64,
    /// Largest Metric-I upper bound on any single-aggressor peak.
    pub bound_hi: f64,
    /// Aggressors contributing noise.
    pub aggressors: usize,
    /// Aggressors whose metric evaluation failed (degraded coverage).
    pub skipped: usize,
}

/// Ranked per-net noise of the whole cluster at the session's current
/// network state.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseReport {
    /// Per-net summaries, ranked by combined `vp` descending (ties by
    /// base net index ascending).
    pub nets: Vec<NetNoise>,
}

impl NoiseReport {
    /// The noisiest net, if any net produced noise.
    #[must_use]
    pub fn worst(&self) -> Option<&NetNoise> {
        self.nets.first()
    }

    /// Deterministic JSON rendering: shortest-round-trip float formatting
    /// and fixed key order, so two byte-identical reports imply (and are
    /// implied by) bit-identical analysis results.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"xtalk-incr-report-v1\",\"nets\":[");
        for (i, n) in self.nets.iter().enumerate() {
            out.push_str(&format!(
                "{{\"net\":{},\"index\":{},\"vp\":{},\"at\":{},\"aligned\":{},\
                 \"worst_single\":{},\"bound_hi\":{},\"aggressors\":{},\"skipped\":{}}}{}",
                json_str(&n.net),
                n.index,
                json_num(n.vp),
                json_num(n.at),
                n.aligned,
                json_num(n.worst_single),
                json_num(n.bound_hi),
                n.aggressors,
                n.skipped,
                comma(i, self.nets.len())
            ));
        }
        out.push_str("],\"worst\":");
        match self.worst() {
            Some(w) => out.push_str(&format!(
                "{{\"net\":{},\"vp\":{}}}",
                json_str(&w.net),
                json_num(w.vp)
            )),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

/// Query/invalidation accounting for one session (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Per-net noise queries issued by [`WhatIf::report`].
    pub queries: u64,
    /// Queries answered from a clean cached view.
    pub hits: u64,
    /// Queries that recomputed the view.
    pub misses: u64,
    /// Cached view results invalidated by deltas.
    pub invalidated: u64,
    /// Deltas applied (excluding reverts).
    pub deltas: u64,
    /// Reverts applied.
    pub reverts: u64,
}

/// Incremental what-if session over a coupled cluster.
///
/// Holds the base [`Network`] plus one truncated [view](crate::view) per
/// net (the net re-roled as victim with its 1-hop coupled neighbours).
/// [`WhatIf::apply`] pushes a value-only [`Delta`] through the base and
/// into exactly the views it touches — dependency-tracked invalidation —
/// and [`WhatIf::report`] recomputes only the dirty views, each via an
/// incrementally-repaired moment engine and a bit-pattern-keyed metric
/// memo. Reports are **bit-identical** to a from-scratch session on the
/// same edited network (the `incremental` audit family enforces this).
///
/// # Examples
///
/// ```
/// use xtalk_circuit::Delta;
/// use xtalk_incr::{WhatIf, WhatIfConfig};
/// use xtalk_tech::{ClusterSpec, Technology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (network, lanes) = ClusterSpec::figure4_family(8).build(&Technology::p25())?;
/// let mut session = WhatIf::new(network, WhatIfConfig::default())?;
/// let first = session.report();
/// let (worst_lane, before) = { let w = first.worst().unwrap(); (w.index, w.vp) };
///
/// // Strengthen the noisiest net's own driver and re-query: only that
/// // net's neighbourhood recomputes, and its noise drops.
/// let report = session.apply(&Delta::ResizeDriver { net: lanes[worst_lane], ohms: 60.0 })?;
/// let after = report.nets.iter().find(|n| n.index == worst_lane).unwrap().vp;
/// assert!(after < before);
/// assert!(session.stats().hits > 0);
///
/// // Undo restores the previous report exactly.
/// let restored = session.revert()?.unwrap();
/// assert_eq!(restored.worst().unwrap().vp, before);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct WhatIf {
    base: Network,
    views: Vec<View>,
    noise: Vec<Option<NetNoise>>,
    dirty: Vec<bool>,
    memo: StageMemo,
    undo: Vec<Delta>,
    input: InputSignal,
    kind: MetricKind,
    stats: SessionStats,
}

impl WhatIf {
    /// Builds a session over `base`: one truncated view per net
    /// (constructed in parallel under `config.jobs`; results are
    /// order-preserving, so the session is identical for any job count).
    ///
    /// # Errors
    ///
    /// [`WhatIfError::Build`] when a view network fails validation.
    pub fn new(base: Network, config: WhatIfConfig) -> Result<Self, WhatIfError> {
        let _span = xtalk_obs::span!("incr.session_build");
        let targets: Vec<NetId> = base.nets().map(|(id, _)| id).collect();
        let built = xtalk_exec::par_map_indexed(&targets, config.jobs, |_, &target| {
            View::build(&base, target)
        })
        .map_err(WhatIfError::Exec)?;
        let mut views = Vec::with_capacity(built.len());
        for v in built {
            views.push(v?);
        }
        let n = views.len();
        Ok(WhatIf {
            base,
            views,
            noise: vec![None; n],
            dirty: vec![false; n],
            memo: StageMemo::new(),
            undo: Vec::new(),
            input: InputSignal::rising_ramp(config.arrival, config.slew),
            kind: config.kind,
            stats: SessionStats::default(),
        })
    }

    /// The session's base network at its current (edited) state.
    #[must_use]
    pub fn base(&self) -> &Network {
        &self.base
    }

    /// Number of deltas that can still be reverted.
    #[must_use]
    pub fn undo_depth(&self) -> usize {
        self.undo.len()
    }

    /// Session accounting. `queries == hits + misses` always holds.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Metric-stage memo accounting (hits across *all* views).
    #[must_use]
    pub fn memo_stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Applies a value-only delta to the base network, invalidates
    /// exactly the views it touches, and returns the fresh report.
    ///
    /// # Errors
    ///
    /// [`WhatIfError::Delta`] when the base network rejects the delta
    /// (unknown target or bad value); the session is unchanged then.
    pub fn apply(&mut self, delta: &Delta) -> Result<NoiseReport, WhatIfError> {
        let inverse = self.push_delta(delta)?;
        self.undo.push(inverse);
        self.stats.deltas += 1;
        Ok(self.report())
    }

    /// Undoes the most recent [`WhatIf::apply`] and returns the fresh
    /// report, or `None` when there is nothing to revert.
    ///
    /// # Errors
    ///
    /// Never fails in practice: the inverse of an accepted delta is
    /// itself valid.
    pub fn revert(&mut self) -> Result<Option<NoiseReport>, WhatIfError> {
        let Some(inverse) = self.undo.pop() else {
            return Ok(None);
        };
        self.push_delta(&inverse)?;
        self.stats.reverts += 1;
        Ok(Some(self.report()))
    }

    /// The ranked noise report at the current network state, recomputing
    /// only dirty views.
    pub fn report(&mut self) -> NoiseReport {
        let _span = xtalk_obs::span!("incr.report");
        let mut hits = 0u64;
        let mut misses = 0u64;
        for (i, view) in self.views.iter_mut().enumerate() {
            self.stats.queries += 1;
            if self.dirty[i] || self.noise[i].is_none() {
                self.noise[i] = Some(compute_view(view, &self.input, self.kind, &mut self.memo));
                self.dirty[i] = false;
                misses += 1;
            } else {
                hits += 1;
            }
        }
        self.stats.hits += hits;
        self.stats.misses += misses;
        xtalk_obs::counter!(perf: "incr.query.hit").add(hits);
        xtalk_obs::counter!(perf: "incr.query.miss").add(misses);
        let mut nets: Vec<NetNoise> = self.noise.iter().flatten().cloned().collect();
        nets.sort_by(|a, b| {
            b.vp.partial_cmp(&a.vp)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        NoiseReport { nets }
    }

    /// Validates the delta on the base, then forwards it into every view
    /// it translates into. Returns the inverse delta.
    fn push_delta(&mut self, delta: &Delta) -> Result<Delta, WhatIfError> {
        let inverse = self.base.apply_delta(delta)?;
        let mut invalidated = 0u64;
        for (i, view) in self.views.iter_mut().enumerate() {
            let Some(view_delta) = view.translate(delta) else {
                continue;
            };
            view.network
                .apply_delta(&view_delta)
                .expect("a delta accepted by the base is valid in every view");
            view.engine.refresh(&view.network);
            if !self.dirty[i] {
                self.dirty[i] = true;
                if self.noise[i].is_some() {
                    invalidated += 1;
                }
            }
        }
        self.stats.invalidated += invalidated;
        xtalk_obs::counter!(perf: "incr.query.invalidated").add(invalidated);
        Ok(inverse)
    }
}

/// Noise of one view's victim: per-aggressor transfer moments through the
/// incremental engine, memoized metric + bounds, worst-case pinned
/// superposition. Pure function of the view state — recomputing a view
/// with unchanged inputs reproduces identical bits.
fn compute_view(
    view: &mut View,
    input: &InputSignal,
    kind: MetricKind,
    memo: &mut StageMemo,
) -> NetNoise {
    let index = view.target.index();
    let network = &view.network;
    let engine = &mut view.engine;
    let out = network.victim_output();
    let t_r = input.effective_rise_time();
    let mut contributions = Vec::new();
    let mut worst_single = 0.0f64;
    let mut bound_hi = 0.0f64;
    let mut aggressors = 0usize;
    let mut skipped = 0usize;
    for (agg, _) in network.aggressor_nets() {
        let h = match engine.transfer_taylor(agg, out) {
            Ok(h) => h,
            Err(_) => {
                skipped += 1;
                continue;
            }
        };
        let f = match OutputMoments::from_transfer(&h, input) {
            Ok(f) => f,
            // No coupling into the observation node: not a contributor.
            Err(_) => continue,
        };
        let (estimate, _) = memo.estimate(&f, t_r, kind);
        match estimate {
            Ok(e) => {
                worst_single = worst_single.max(e.vp);
                contributions.push((e, TimingWindow::pinned()));
                aggressors += 1;
            }
            Err(_) => {
                skipped += 1;
                continue;
            }
        }
        if let (Ok(b), _) = memo.bounds(&f) {
            bound_hi = bound_hi.max(b.vp.1);
        }
    }
    let combined = worst_case(&contributions);
    NetNoise {
        index,
        net: network.victim_net().name().to_string(),
        vp: combined.vp,
        at: combined.at,
        aligned: combined.aligned,
        worst_single,
        bound_hi,
        aggressors,
        skipped,
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// JSON number: finite floats print via Rust's shortest-round-trip
/// `Display` (deterministic); non-finite values become quoted strings.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "\"NaN\"".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_tech::{ClusterSpec, Technology};

    fn session(lanes: usize) -> (WhatIf, Vec<NetId>) {
        let (network, ids) = ClusterSpec::figure4_family(lanes)
            .build(&Technology::p25())
            .unwrap();
        (
            WhatIf::new(network, WhatIfConfig::default()).unwrap(),
            ids,
        )
    }

    /// From-scratch reference: a fresh session over `base`'s clone — any
    /// stale-cache bug shows up as a byte difference against this.
    fn full_recompute(base: &Network) -> NoiseReport {
        WhatIf::new(base.clone(), WhatIfConfig::default())
            .unwrap()
            .report()
    }

    #[test]
    fn first_report_ranks_interior_nets_noisiest() {
        let (mut s, _) = session(8);
        let report = s.report();
        assert_eq!(report.nets.len(), 8);
        let worst = report.worst().unwrap();
        assert!(worst.vp > 0.0);
        // Interior lanes see two full-strength neighbours; edge lanes one.
        assert!((1..7).contains(&worst.index), "worst = {}", worst.net);
        let edge = report.nets.iter().find(|n| n.index == 0).unwrap();
        assert!(edge.vp < worst.vp);
        assert_eq!(s.stats().queries, 8);
        assert_eq!(s.stats().misses, 8);
    }

    #[test]
    fn delta_invalidates_only_the_neighbourhood() {
        let (mut s, lanes) = session(8);
        s.report();
        // Resize an edge driver: touches views of lanes 0 and 1 only.
        s.apply(&Delta::ResizeDriver { net: lanes[0], ohms: 90.0 })
            .unwrap();
        let st = s.stats();
        assert_eq!(st.invalidated, 2);
        assert_eq!(st.misses, 8 + 2);
        assert_eq!(st.hits, 6);
        assert_eq!(st.queries, st.hits + st.misses);
    }

    #[test]
    fn reports_are_bit_identical_to_full_recompute() {
        let (mut s, lanes) = session(8);
        let deltas = [
            Delta::ResizeDriver { net: lanes[3], ohms: 120.0 },
            Delta::SetCouplingCap { index: 7, farads: 9e-15 },
            Delta::SetResistor { index: 11, ohms: 30.0 },
            Delta::SetGroundCap { index: 4, farads: 1e-15 },
        ];
        for d in deltas {
            let incremental = s.apply(&d).unwrap();
            let scratch = full_recompute(s.base());
            assert_eq!(
                incremental.to_json(),
                scratch.to_json(),
                "after {d}: incremental report must match from-scratch bytes"
            );
        }
        while let Some(reverted) = s.revert().unwrap() {
            assert_eq!(reverted.to_json(), full_recompute(s.base()).to_json());
        }
        assert_eq!(s.undo_depth(), 0);
        assert!(s.revert().unwrap().is_none());
    }

    #[test]
    fn rejected_delta_leaves_session_untouched() {
        let (mut s, lanes) = session(4);
        let before = s.report().to_json();
        let err = s.apply(&Delta::ResizeDriver { net: lanes[0], ohms: -5.0 });
        assert!(matches!(err, Err(WhatIfError::Delta(_))));
        assert_eq!(s.undo_depth(), 0);
        assert_eq!(s.report().to_json(), before);
    }

    #[test]
    fn job_count_does_not_change_the_session() {
        let (network, _) = ClusterSpec::figure4_family(6)
            .build(&Technology::p25())
            .unwrap();
        let mut one = WhatIf::new(
            network.clone(),
            WhatIfConfig { jobs: Jobs::Count(1), ..WhatIfConfig::default() },
        )
        .unwrap();
        let mut two = WhatIf::new(
            network,
            WhatIfConfig { jobs: Jobs::Count(2), ..WhatIfConfig::default() },
        )
        .unwrap();
        assert_eq!(one.report().to_json(), two.report().to_json());
    }

    #[test]
    fn memo_accounting_adds_up() {
        let (mut s, lanes) = session(6);
        s.report();
        s.apply(&Delta::SetCouplingCap { index: 0, farads: 6e-15 }).unwrap();
        s.apply(&Delta::ResizeDriver { net: lanes[5], ohms: 77.0 }).unwrap();
        let m = s.memo_stats();
        assert_eq!(m.queries(), m.hits + m.misses);
        assert!(m.misses > 0);
        let st = s.stats();
        assert_eq!(st.queries, st.hits + st.misses);
    }

    #[test]
    fn report_json_is_valid_and_ranked() {
        let (mut s, _) = session(4);
        let report = s.report();
        let json = report.to_json();
        assert!(json.starts_with("{\"schema\":\"xtalk-incr-report-v1\""));
        assert!(json.ends_with('}'));
        for w in report.nets.windows(2) {
            assert!(w[0].vp >= w[1].vp, "ranking must be descending");
        }
    }
}
