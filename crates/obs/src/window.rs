//! Windowed metric aggregation: rates and quantiles over "the last N
//! seconds" instead of "since boot".
//!
//! Cumulative counters are the right primitive for determinism (sums
//! commute), but a daemon that has served requests for three days cannot
//! answer "what is the p99 *right now*" from a since-boot histogram. A
//! [`WindowRing`] closes that gap without touching the hot path: a
//! telemetry thread calls [`WindowRing::tick`] once per interval, which
//! takes one registry snapshot and stores the *delta* against the
//! previous tick in a fixed-capacity ring. [`WindowRing::windowed`]
//! merges the buffered deltas — plus the live partial interval since the
//! last tick, so a window is never blind to in-flight work — back into
//! one [`Snapshot`] covering the window, on which the usual rate / mean /
//! [`HistogramSnap::quantile`] machinery applies unchanged.
//!
//! Recording threads never see the ring; its cost is one snapshot and
//! one delta per interval, on the telemetry thread only.
//!
//! [`HistogramSnap::quantile`]: crate::HistogramSnap::quantile

use crate::snapshot::{snapshot, Snapshot};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// One closed interval's worth of metric movement.
struct Interval {
    /// Deltas recorded during this interval.
    delta: Snapshot,
    /// Wall-clock length of the interval.
    elapsed: Duration,
}

/// A ring of per-interval metric deltas (see the module docs).
pub struct WindowRing {
    /// Closed intervals, oldest first; at most `capacity` retained.
    intervals: VecDeque<Interval>,
    /// Maximum number of closed intervals kept.
    capacity: usize,
    /// Cumulative snapshot taken at the last tick (delta baseline).
    base: Snapshot,
    /// When `base` was taken.
    base_at: Instant,
}

/// A merged view over the most recent intervals.
pub struct WindowView {
    /// Summed deltas across the window (live partial interval included).
    pub delta: Snapshot,
    /// Wall-clock span the deltas cover.
    pub elapsed: Duration,
    /// Closed intervals merged in (the live partial adds on top).
    pub intervals: usize,
}

impl WindowView {
    /// Events per second for a counter over the window, 0.0 when the
    /// counter did not move or no time has passed.
    #[must_use]
    pub fn rate(&self, counter: &str) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.delta.counter(counter).unwrap_or(0) as f64 / secs
    }
}

impl WindowRing {
    /// Creates a ring retaining at most `capacity` closed intervals
    /// (minimum 1). The current registry state becomes the baseline, so
    /// pre-existing cumulative totals never leak into a window.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            intervals: VecDeque::new(),
            capacity: capacity.max(1),
            base: snapshot(),
            base_at: Instant::now(),
        }
    }

    /// Closes the current interval: snapshots the registry, stores the
    /// delta since the previous tick, and starts the next interval.
    /// Oldest intervals fall off past the ring's capacity.
    pub fn tick(&mut self) {
        let now_snap = snapshot();
        let now = Instant::now();
        let delta = now_snap.delta_since(&self.base);
        self.intervals.push_back(Interval {
            delta,
            elapsed: now.saturating_duration_since(self.base_at),
        });
        while self.intervals.len() > self.capacity {
            self.intervals.pop_front();
        }
        self.base = now_snap;
        self.base_at = now;
    }

    /// Merges the newest `max_intervals` closed intervals plus the live
    /// partial interval since the last tick into one view. Asking for
    /// more intervals than the ring holds yields whatever is there; with
    /// zero closed intervals the view is the live partial alone.
    #[must_use]
    pub fn windowed(&self, max_intervals: usize) -> WindowView {
        let take = max_intervals.min(self.intervals.len());
        let mut delta = Snapshot::default();
        let mut elapsed = Duration::ZERO;
        for interval in self.intervals.iter().rev().take(take) {
            delta.merge_from(&interval.delta);
            elapsed += interval.elapsed;
        }
        // The live partial interval: work since the last tick.
        let live = snapshot().delta_since(&self.base);
        delta.merge_from(&live);
        elapsed += Instant::now().saturating_duration_since(self.base_at);
        WindowView {
            delta,
            elapsed,
            intervals: take,
        }
    }

    /// Number of closed intervals currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// `true` when no interval has been closed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}
