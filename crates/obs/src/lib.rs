//! First-party observability for the `xtalk` analysis stack.
//!
//! The closed-form metrics exist to be cheap enough for router inner
//! loops (DATE 2002, §1), which means the pipeline around them — moment
//! extraction, the fallback chain, the parallel sweep executor, the
//! golden simulator — must be *measurable* without becoming slower. This
//! crate is the workspace's hand-rolled, zero-dependency telemetry layer:
//!
//! * **Metrics registry** ([`counter!`], [`histogram!`]): named atomic
//!   counters and fixed-bucket (power-of-two) histograms, registered
//!   lazily on first touch. Every metric carries a [`Class`]:
//!   [`Class::Det`] metrics count *work* (fallback rungs, clamp events,
//!   cases generated, Padé rejections) and are byte-identical for a given
//!   workload regardless of thread count; [`Class::Perf`] metrics count
//!   *performance* (wall-clock spans, queue wait, chunk imbalance) and
//!   legitimately vary run to run. [`Snapshot::to_json`] serializes only
//!   the deterministic class, so a metrics file diff is a semantic diff.
//! * **Spans** ([`span!`]): guard-based wall-time measurement per
//!   pipeline stage, recorded into a `span.<name>.ns` histogram and —
//!   when tracing is enabled — into an in-memory event buffer exported as
//!   Chrome-trace-format JSON ([`take_trace_json`]) for `chrome://tracing`
//!   / Perfetto flamegraph viewing.
//! * **Warning sink** ([`warn!`]): counted (`warnings.total`) and
//!   silenceable ([`set_quiet`]) replacement for ad-hoc `eprintln!`
//!   warnings, so degraded-mode noise is observable instead of scrolling
//!   away.
//!
//! # Cost model
//!
//! Observability is **off by default** at runtime. Every probe starts
//! with one relaxed atomic load; disabled, that is the entire cost — no
//! clock reads, no registration, no allocation (the `alloc_free` test in
//! `xtalk-exec` pins this down). Enabled, counters are one relaxed
//! `fetch_add`, histograms three, spans two `Instant` reads. Compiling
//! the crate with `--no-default-features` (no `probe` feature) turns
//! `metrics_enabled()` into a constant `false` and every probe compiles
//! out entirely.
//!
//! # Determinism
//!
//! Counters and histograms are commutative sums, so parallel workers can
//! feed one global registry and still produce thread-count-independent
//! totals; per-worker measurements (queue wait, items per worker) are
//! accumulated thread-locally by the executor and flushed once at join.
//! [`snapshot`] sorts metrics by name and merges duplicates, so the JSON
//! byte stream depends only on the workload, never on registration order
//! or scheduling.
//!
//! # Examples
//!
//! ```
//! xtalk_obs::enable_metrics();
//! {
//!     let _span = xtalk_obs::span!("demo.stage");
//!     xtalk_obs::counter!("demo.events").add(3);
//!     xtalk_obs::histogram!("demo.sizes").record(1024);
//! }
//! let snap = xtalk_obs::snapshot();
//! if xtalk_obs::metrics_enabled() { // false when built without `probe`
//!     assert_eq!(snap.counter("demo.events"), Some(3));
//!     assert!(snap.to_json().contains("\"demo.events\": 3"));
//! }
//! # xtalk_obs::reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod registry;
mod snapshot;
mod span;
mod window;

pub use hist::{bucket_index, bucket_lower_bound, bucket_upper_bound, BUCKETS, OVERFLOW_BUCKET};
pub use registry::{LazyCounter, LazyHistogram};
pub use snapshot::{snapshot, CounterSnap, HistogramSnap, QuantileBound, Snapshot};
pub use span::{
    current_request_ctx, push_request_ctx, set_trace_capacity, start_span, take_trace_json,
    trace_event_count, CtxGuard, SpanGuard, DEFAULT_TRACE_CAPACITY,
};
pub use window::{WindowRing, WindowView};

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Determinism class of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// Counts *work*: identical for a given workload whatever the worker
    /// count or scheduling. Serialized by [`Snapshot::to_json`].
    Det,
    /// Counts *performance*: wall-clock times, queue waits, per-worker
    /// load. Varies run to run; excluded from the deterministic JSON and
    /// surfaced via [`Snapshot::to_json_full`], the stats table and the
    /// trace export instead.
    Perf,
}

static METRICS: AtomicBool = AtomicBool::new(false);
static TRACING: AtomicBool = AtomicBool::new(false);
static QUIET: AtomicBool = AtomicBool::new(false);

/// `true` when metric recording is on. This is the single branch every
/// probe takes first; with the `probe` feature off it is a constant
/// `false` and probes compile out.
#[inline(always)]
#[must_use]
pub fn metrics_enabled() -> bool {
    cfg!(feature = "probe") && METRICS.load(Ordering::Relaxed)
}

/// Turns metric recording on (process-wide, sticky). A no-op without the
/// `probe` feature.
pub fn enable_metrics() {
    METRICS.store(true, Ordering::SeqCst);
}

/// `true` when span tracing is on.
#[inline(always)]
#[must_use]
pub fn tracing_enabled() -> bool {
    cfg!(feature = "probe") && TRACING.load(Ordering::Relaxed)
}

/// Turns span tracing on (process-wide) and pins the trace epoch, so
/// event timestamps are relative to this call. A no-op without the
/// `probe` feature.
pub fn enable_tracing() {
    span::init_epoch();
    TRACING.store(true, Ordering::SeqCst);
}

/// `true` when the warning sink is silenced.
#[inline]
#[must_use]
pub fn quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// Silences (or un-silences) the [`warn!`] sink. Warnings are still
/// *counted* while quiet; only the stderr line is suppressed.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::SeqCst);
}

/// Zeroes every registered counter and histogram and drops any buffered
/// trace events. Metric/tracing/quiet flags are left as they are.
///
/// Intended for tests and long-lived processes that report in intervals;
/// the registry itself (names, classes) survives, so a snapshot taken
/// after a reset still lists every metric, at zero.
pub fn reset() {
    registry::reset_values();
    span::clear_trace();
}

static WARNINGS_TOTAL: LazyCounter = LazyCounter::new("warnings.total", Class::Det);

/// The function behind [`warn!`]: counts the warning in `warnings.total`
/// and writes `warning: <message>` to stderr unless [`quiet`].
pub fn warn_fmt(args: fmt::Arguments<'_>) {
    WARNINGS_TOTAL.add(1);
    if !quiet() {
        eprintln!("warning: {args}");
    }
}

/// Emits a counted, silenceable warning (see [`warn_fmt`]).
///
/// ```
/// xtalk_obs::warn!("sweep degraded: {} of {} cases failed", 2, 500);
/// ```
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::warn_fmt(::core::format_args!($($arg)*))
    };
}

/// A named atomic counter, registered on first touch.
///
/// Expands to a `&'static LazyCounter` backed by a per-call-site static,
/// so the hot path is a relaxed load plus a relaxed `fetch_add` — no
/// lookup, no lock. `counter!("name")` is deterministic class;
/// `counter!(perf: "name")` is performance class.
///
/// ```
/// xtalk_obs::counter!("resilience.timing_clamps").add(1);
/// xtalk_obs::counter!(perf: "exec.chunks.claimed").add(1);
/// ```
#[macro_export]
macro_rules! counter {
    (perf: $name:expr) => {{
        static __XTALK_OBS_COUNTER: $crate::LazyCounter =
            $crate::LazyCounter::new($name, $crate::Class::Perf);
        &__XTALK_OBS_COUNTER
    }};
    ($name:expr) => {{
        static __XTALK_OBS_COUNTER: $crate::LazyCounter =
            $crate::LazyCounter::new($name, $crate::Class::Det);
        &__XTALK_OBS_COUNTER
    }};
}

/// A named fixed-bucket histogram, registered on first touch.
///
/// Buckets are powers of two (see [`bucket_index`]); each record is three
/// relaxed `fetch_add`s. `histogram!("name")` is deterministic class;
/// `histogram!(perf: "name")` is performance class (wall-clock values).
///
/// ```
/// xtalk_obs::histogram!("sim.golden.steps").record(4096);
/// ```
#[macro_export]
macro_rules! histogram {
    (perf: $name:expr) => {{
        static __XTALK_OBS_HIST: $crate::LazyHistogram =
            $crate::LazyHistogram::new($name, $crate::Class::Perf);
        &__XTALK_OBS_HIST
    }};
    ($name:expr) => {{
        static __XTALK_OBS_HIST: $crate::LazyHistogram =
            $crate::LazyHistogram::new($name, $crate::Class::Det);
        &__XTALK_OBS_HIST
    }};
}

/// Starts a wall-time span over the enclosing scope.
///
/// Returns a [`SpanGuard`]; on drop the elapsed time lands in the
/// `span.<name>.ns` performance histogram and, when tracing is enabled,
/// in the Chrome-trace event buffer. Disabled, the guard is inert and no
/// clock is read.
///
/// ```
/// let _span = xtalk_obs::span!("moments.pade");
/// // ... stage body ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __XTALK_OBS_SPAN_HIST: $crate::LazyHistogram = $crate::LazyHistogram::new(
            ::core::concat!("span.", $name, ".ns"),
            $crate::Class::Perf,
        );
        $crate::start_span($name, &__XTALK_OBS_SPAN_HIST)
    }};
}
