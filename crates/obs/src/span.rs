//! Guard-based wall-time spans and the Chrome-trace event buffer.
//!
//! [`crate::span!`] hands out a [`SpanGuard`]; on drop, the elapsed time
//! is recorded into the span's `span.<name>.ns` histogram and — when
//! tracing is on — appended to a global event buffer as a Chrome-trace
//! "complete" (`"ph": "X"`) event. [`take_trace_json`] drains that buffer
//! into the JSON format `chrome://tracing` and Perfetto load directly.
//!
//! The buffer is a bounded ring ([`set_trace_capacity`], default 2^18
//! events ≈ 12 MiB): when full, the *oldest* events are evicted — a
//! long-running daemon keeps the most recent history — and each eviction
//! is counted in the `trace.events.dropped` performance counter so the
//! stats table shows when a trace file is a suffix, not the whole run.
//!
//! Timestamps are relative to the epoch pinned by
//! [`crate::enable_tracing`]; thread ids are small dense integers
//! assigned in thread-creation order, so worker lanes render compactly.
//!
//! # Request context
//!
//! A server thread can pin a request id on itself with
//! [`push_request_ctx`]; every span that *drops* on that thread while the
//! guard is alive is stamped with the id and exported as
//! `"args": {"req": N}` in the trace, attributing engine → eval → sim
//! spans to the request that caused them without threading an id through
//! every signature. Guards nest and restore the previous context on drop.

use crate::registry::{LazyCounter, LazyHistogram};
use crate::snapshot::escape_json;
use crate::Class;
use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Default event-buffer capacity: 2^18 events.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 18;

static EPOCH: OnceLock<Instant> = OnceLock::new();
static TRACE: Mutex<VecDeque<TraceEvent>> = Mutex::new(VecDeque::new());
static TRACE_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_TRACE_CAPACITY);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static TRACE_DROPPED: LazyCounter = LazyCounter::new("trace.events.dropped", Class::Perf);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static REQUEST_CTX: Cell<u64> = const { Cell::new(0) };
}

struct TraceEvent {
    name: &'static str,
    ts_ns: u128,
    dur_ns: u128,
    tid: u64,
    /// Request id active on the recording thread, 0 when none.
    ctx: u64,
}

pub(crate) fn init_epoch() {
    let _ = EPOCH.get_or_init(Instant::now);
}

pub(crate) fn clear_trace() {
    TRACE
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Number of buffered trace events (for tests and the stats footer).
#[must_use]
pub fn trace_event_count() -> usize {
    TRACE.lock().unwrap_or_else(PoisonError::into_inner).len()
}

/// Caps the in-memory trace buffer at `capacity` events (minimum 1).
///
/// When the buffer is full the oldest events are evicted and counted in
/// `trace.events.dropped`; a smaller cap takes effect on the next push,
/// trimming eagerly. The default is [`DEFAULT_TRACE_CAPACITY`].
pub fn set_trace_capacity(capacity: usize) {
    TRACE_CAPACITY.store(capacity.max(1), Ordering::SeqCst);
}

/// Marks the current thread as working on request `id` until the guard
/// drops; spans recorded on this thread meanwhile carry the id in their
/// trace `args`. Nested guards stack — the previous context is restored
/// on drop. An `id` of 0 means "no request".
#[must_use = "the context lasts only while the guard is alive"]
pub fn push_request_ctx(id: u64) -> CtxGuard {
    let prev = REQUEST_CTX.with(|c| c.replace(id));
    CtxGuard { prev }
}

/// The request id pinned on this thread, or 0 when none.
#[must_use]
pub fn current_request_ctx() -> u64 {
    REQUEST_CTX.with(Cell::get)
}

/// Restores the previous request context when dropped. Created by
/// [`push_request_ctx`].
pub struct CtxGuard {
    prev: u64,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        REQUEST_CTX.with(|c| c.set(self.prev));
    }
}

/// Scope guard created by [`crate::span!`]. Inert (no clock read, no
/// allocation) while both metrics and tracing are disabled.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    hist: &'static LazyHistogram,
    start: Instant,
}

/// Starts a span; prefer the [`crate::span!`] macro, which supplies the
/// per-call-site histogram.
#[inline]
pub fn start_span(name: &'static str, hist: &'static LazyHistogram) -> SpanGuard {
    if !crate::metrics_enabled() && !crate::tracing_enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            hist,
            start: Instant::now(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else {
            return;
        };
        let elapsed = span.start.elapsed();
        span.hist.record_duration(elapsed);
        if crate::tracing_enabled() {
            let epoch = *EPOCH.get_or_init(Instant::now);
            let ts_ns = span.start.saturating_duration_since(epoch).as_nanos();
            let event = TraceEvent {
                name: span.name,
                ts_ns,
                dur_ns: elapsed.as_nanos(),
                tid: TID.with(|t| *t),
                ctx: current_request_ctx(),
            };
            let capacity = TRACE_CAPACITY.load(Ordering::Relaxed);
            let mut guard = TRACE.lock().unwrap_or_else(PoisonError::into_inner);
            let mut dropped = 0u64;
            while guard.len() >= capacity {
                guard.pop_front();
                dropped += 1;
            }
            guard.push_back(event);
            drop(guard);
            if dropped > 0 {
                TRACE_DROPPED.add(dropped);
            }
        }
    }
}

/// Drains the trace buffer into Chrome-trace-format JSON.
///
/// The output is a single object with a `traceEvents` array of complete
/// (`"ph": "X"`) events, timestamps and durations in microseconds —
/// loadable as-is in `chrome://tracing` or <https://ui.perfetto.dev>.
/// Events are sorted by timestamp (then thread, then name) so the file
/// does not depend on the order worker threads reached the buffer.
/// Events recorded under [`push_request_ctx`] carry `"args": {"req": N}`.
#[must_use]
pub fn take_trace_json() -> String {
    let mut events: Vec<TraceEvent> = {
        let mut guard = TRACE.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut *guard).into_iter().collect()
    };
    events.sort_by(|a, b| {
        a.ts_ns
            .cmp(&b.ts_ns)
            .then(a.tid.cmp(&b.tid))
            .then(a.name.cmp(b.name))
    });

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    out.push_str(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"xtalk\"}}",
    );
    for e in &events {
        let _ = write!(
            out,
            ",\n{{\"name\": \"{}\", \"cat\": \"xtalk\", \"ph\": \"X\", \
             \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}",
            escape_json(e.name),
            e.ts_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
            e.tid,
        );
        if e.ctx != 0 {
            let _ = write!(out, ", \"args\": {{\"req\": {}}}", e.ctx);
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}
