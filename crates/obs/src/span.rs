//! Guard-based wall-time spans and the Chrome-trace event buffer.
//!
//! [`crate::span!`] hands out a [`SpanGuard`]; on drop, the elapsed time
//! is recorded into the span's `span.<name>.ns` histogram and — when
//! tracing is on — appended to a global event buffer as a Chrome-trace
//! "complete" (`"ph": "X"`) event. [`take_trace_json`] drains that buffer
//! into the JSON format `chrome://tracing` and Perfetto load directly.
//!
//! Timestamps are relative to the epoch pinned by
//! [`crate::enable_tracing`]; thread ids are small dense integers
//! assigned in thread-creation order, so worker lanes render compactly.

use crate::registry::LazyHistogram;
use crate::snapshot::escape_json;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();
static TRACE: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

struct TraceEvent {
    name: &'static str,
    ts_ns: u128,
    dur_ns: u128,
    tid: u64,
}

pub(crate) fn init_epoch() {
    let _ = EPOCH.get_or_init(Instant::now);
}

pub(crate) fn clear_trace() {
    TRACE
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Number of buffered trace events (for tests and the stats footer).
#[must_use]
pub fn trace_event_count() -> usize {
    TRACE.lock().unwrap_or_else(PoisonError::into_inner).len()
}

/// Scope guard created by [`crate::span!`]. Inert (no clock read, no
/// allocation) while both metrics and tracing are disabled.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    hist: &'static LazyHistogram,
    start: Instant,
}

/// Starts a span; prefer the [`crate::span!`] macro, which supplies the
/// per-call-site histogram.
#[inline]
pub fn start_span(name: &'static str, hist: &'static LazyHistogram) -> SpanGuard {
    if !crate::metrics_enabled() && !crate::tracing_enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            hist,
            start: Instant::now(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else {
            return;
        };
        let elapsed = span.start.elapsed();
        span.hist.record_duration(elapsed);
        if crate::tracing_enabled() {
            let epoch = *EPOCH.get_or_init(Instant::now);
            let ts_ns = span.start.saturating_duration_since(epoch).as_nanos();
            let event = TraceEvent {
                name: span.name,
                ts_ns,
                dur_ns: elapsed.as_nanos(),
                tid: TID.with(|t| *t),
            };
            TRACE
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(event);
        }
    }
}

/// Drains the trace buffer into Chrome-trace-format JSON.
///
/// The output is a single object with a `traceEvents` array of complete
/// (`"ph": "X"`) events, timestamps and durations in microseconds —
/// loadable as-is in `chrome://tracing` or <https://ui.perfetto.dev>.
/// Events are sorted by timestamp (then thread, then name) so the file
/// does not depend on the order worker threads reached the buffer.
#[must_use]
pub fn take_trace_json() -> String {
    let mut events = {
        let mut guard = TRACE.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut *guard)
    };
    events.sort_by(|a, b| {
        a.ts_ns
            .cmp(&b.ts_ns)
            .then(a.tid.cmp(&b.tid))
            .then(a.name.cmp(b.name))
    });

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    out.push_str(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"xtalk\"}}",
    );
    for e in &events {
        let _ = write!(
            out,
            ",\n{{\"name\": \"{}\", \"cat\": \"xtalk\", \"ph\": \"X\", \
             \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}}}",
            escape_json(e.name),
            e.ts_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
            e.tid,
        );
    }
    out.push_str("\n]}\n");
    out
}
