//! Point-in-time metric snapshots and their serialized forms.
//!
//! A [`Snapshot`] is an owned copy of every registered metric, sorted by
//! name and merged across duplicate registrations, so its serializations
//! depend only on recorded values — never on registration order, thread
//! scheduling, or worker count. [`Snapshot::to_json`] keeps only
//! [`Class::Det`] metrics and is therefore byte-identical for a given
//! workload at any `--jobs`; the stats table and [`Snapshot::to_json_full`]
//! add the performance-class metrics for humans and profiling.

use crate::hist::{bucket_lower_bound, bucket_upper_bound, BUCKETS, OVERFLOW_BUCKET};
use crate::registry::{with_registry, MetricRef};
use crate::Class;
use std::fmt::Write as _;

/// An approximate quantile read off a log2 histogram.
///
/// Closed buckets yield an inclusive upper bound; when the quantile
/// lands in the open-ended overflow bucket, the best available statement
/// is a lower bound (`≥ 2^38`), and reporting must say so rather than
/// blank the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantileBound {
    /// The quantile is at most this value (closed bucket's upper edge).
    UpperBound(u64),
    /// The quantile fell in the overflow bucket; it is at least this
    /// value (the overflow bucket's lower edge, `2^38`).
    OverflowAtLeast(u64),
}

impl QuantileBound {
    /// The bound's numeric value, losing the direction marker.
    #[must_use]
    pub fn value(self) -> u64 {
        match self {
            Self::UpperBound(v) | Self::OverflowAtLeast(v) => v,
        }
    }

    /// `"≤"` for closed buckets, `"≥"` for the overflow bucket.
    #[must_use]
    pub fn marker(self) -> &'static str {
        match self {
            Self::UpperBound(_) => "≤",
            Self::OverflowAtLeast(_) => "≥",
        }
    }
}

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnap {
    /// Metric name.
    pub name: String,
    /// Determinism class.
    pub class: Class,
    /// Accumulated value.
    pub value: u64,
}

/// One histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnap {
    /// Metric name.
    pub name: String,
    /// Determinism class.
    pub class: Class,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (exact, for means).
    pub sum: u64,
    /// Sparse `(bucket_index, count)` pairs, ascending, zero counts
    /// omitted. Bucket semantics are defined by [`crate::bucket_index`].
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnap {
    /// Mean of recorded values, or 0 for an empty histogram.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the bucket edge bracketing the first bucket
    /// whose cumulative count reaches `q * count`, or `None` when the
    /// histogram is empty. A quantile landing in the open-ended overflow
    /// bucket yields [`QuantileBound::OverflowAtLeast`] with the bucket's
    /// lower edge instead of vanishing.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<QuantileBound> {
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        let mut last_index = 0usize;
        for &(index, count) in &self.buckets {
            cumulative += count;
            last_index = index;
            if cumulative >= target {
                return Some(match bucket_upper_bound(index) {
                    Some(hi) => QuantileBound::UpperBound(hi),
                    None => QuantileBound::OverflowAtLeast(bucket_lower_bound(index)),
                });
            }
        }
        // count > 0 but the walk fell through (inconsistent sparse
        // buckets); answer with the highest populated bucket.
        Some(match bucket_upper_bound(last_index) {
            Some(hi) => QuantileBound::UpperBound(hi),
            None => QuantileBound::OverflowAtLeast(bucket_lower_bound(last_index)),
        })
    }

    /// Numeric form of [`HistogramSnap::quantile`]: `None` only when the
    /// histogram is empty. A quantile in the overflow bucket reports the
    /// bucket's lower edge (`2^38`) — callers that care about direction
    /// should use [`HistogramSnap::quantile`] for the `≥` marker.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        self.quantile(q).map(QuantileBound::value)
    }
}

/// An owned, sorted, merge-deduplicated copy of all registered metrics.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnap>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnap>,
}

/// Captures the current state of every registered metric.
#[must_use]
pub fn snapshot() -> Snapshot {
    let (mut counters, mut histograms) = with_registry(|metrics| {
        let mut counters = Vec::new();
        let mut histograms = Vec::new();
        for metric in metrics {
            match metric {
                MetricRef::Counter(c) => counters.push(CounterSnap {
                    name: c.name().to_owned(),
                    class: c.class(),
                    value: c.get(),
                }),
                MetricRef::Histogram(h) => {
                    let (count, sum, raw) = h.read();
                    let buckets = raw
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n > 0)
                        .map(|(i, &n)| (i, n))
                        .collect();
                    histograms.push(HistogramSnap {
                        name: h.name().to_owned(),
                        class: h.class(),
                        count,
                        sum,
                        buckets,
                    });
                }
            }
        }
        (counters, histograms)
    });

    counters.sort_by(|a, b| a.name.cmp(&b.name));
    counters.dedup_by(|dup, keep| {
        if dup.name == keep.name {
            keep.value += dup.value;
            true
        } else {
            false
        }
    });

    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    histograms.dedup_by(|dup, keep| {
        if dup.name != keep.name {
            return false;
        }
        keep.count += dup.count;
        keep.sum += dup.sum;
        let mut merged = [0u64; BUCKETS];
        for &(i, n) in keep.buckets.iter().chain(dup.buckets.iter()) {
            merged[i.min(OVERFLOW_BUCKET)] += n;
        }
        keep.buckets = merged
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect();
        true
    });

    Snapshot {
        counters,
        histograms,
    }
}

impl Snapshot {
    /// Looks up a counter's value by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnap> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// All counters whose name starts with `prefix`, in name order
    /// (the snapshot is already sorted). Used by commands that surface
    /// one subsystem's counters — e.g. everything under `incr.` — as a
    /// block without naming each counter individually.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .iter()
            .filter(move |c| c.name.starts_with(prefix))
            .map(|c| (c.name.as_str(), c.value))
    }

    /// What happened between `base` and `self`: per-counter and
    /// per-bucket saturating differences. Metrics absent from `base`
    /// (registered later) keep their full value; entries whose delta is
    /// zero are dropped, so interval deltas stay sparse. Both snapshots
    /// must come from [`snapshot`] (sorted, deduplicated) — the walk
    /// relies on name order.
    #[must_use]
    pub fn delta_since(&self, base: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|c| {
                let before = base
                    .counters
                    .binary_search_by(|b| b.name.as_str().cmp(&c.name))
                    .map_or(0, |i| base.counters[i].value);
                let value = c.value.saturating_sub(before);
                (value > 0).then(|| CounterSnap {
                    name: c.name.clone(),
                    class: c.class,
                    value,
                })
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|h| {
                let mut dense = [0u64; BUCKETS];
                for &(i, n) in &h.buckets {
                    dense[i.min(OVERFLOW_BUCKET)] = n;
                }
                let mut count = h.count;
                let mut sum = h.sum;
                if let Ok(i) = base
                    .histograms
                    .binary_search_by(|b| b.name.as_str().cmp(&h.name))
                {
                    let before = &base.histograms[i];
                    count = count.saturating_sub(before.count);
                    sum = sum.saturating_sub(before.sum);
                    for &(i, n) in &before.buckets {
                        let slot = &mut dense[i.min(OVERFLOW_BUCKET)];
                        *slot = slot.saturating_sub(n);
                    }
                }
                (count > 0).then(|| HistogramSnap {
                    name: h.name.clone(),
                    class: h.class,
                    count,
                    sum,
                    buckets: dense
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n > 0)
                        .map(|(i, &n)| (i, n))
                        .collect(),
                })
            })
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }

    /// Accumulates `other` into `self` by metric name (counters add,
    /// histogram counts/sums/buckets add). Used to merge a window's
    /// interval deltas back into one reportable snapshot; keeps the
    /// sorted-by-name invariant.
    pub fn merge_from(&mut self, other: &Snapshot) {
        for c in &other.counters {
            match self
                .counters
                .binary_search_by(|s| s.name.as_str().cmp(&c.name))
            {
                Ok(i) => self.counters[i].value += c.value,
                Err(i) => self.counters.insert(i, c.clone()),
            }
        }
        for h in &other.histograms {
            match self
                .histograms
                .binary_search_by(|s| s.name.as_str().cmp(&h.name))
            {
                Ok(i) => {
                    let mine = &mut self.histograms[i];
                    mine.count += h.count;
                    mine.sum += h.sum;
                    let mut dense = [0u64; BUCKETS];
                    for &(b, n) in mine.buckets.iter().chain(h.buckets.iter()) {
                        dense[b.min(OVERFLOW_BUCKET)] += n;
                    }
                    mine.buckets = dense
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n > 0)
                        .map(|(i, &n)| (i, n))
                        .collect();
                }
                Err(i) => self.histograms.insert(i, h.clone()),
            }
        }
    }

    /// Deterministic JSON: [`Class::Det`] metrics only, sorted by name.
    /// For a fixed workload this is byte-identical at any worker count.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.render_json(false)
    }

    /// Full JSON including performance-class metrics (wall-clock spans,
    /// per-worker load). Not stable across runs — for profiling, not
    /// diffing.
    #[must_use]
    pub fn to_json_full(&self) -> String {
        self.render_json(true)
    }

    fn render_json(&self, include_perf: bool) -> String {
        let keep = |class: Class| include_perf || class == Class::Det;
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        let counters: Vec<&CounterSnap> =
            self.counters.iter().filter(|c| keep(c.class)).collect();
        for (i, c) in counters.iter().enumerate() {
            let sep = if i + 1 < counters.len() { "," } else { "" };
            let _ = write!(out, "\n    \"{}\": {}{sep}", escape_json(&c.name), c.value);
        }
        if counters.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str("\n  },\n");
        }
        out.push_str("  \"histograms\": {");
        let histograms: Vec<&HistogramSnap> =
            self.histograms.iter().filter(|h| keep(h.class)).collect();
        for (i, h) in histograms.iter().enumerate() {
            let sep = if i + 1 < histograms.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                escape_json(&h.name),
                h.count,
                h.sum
            );
            for (j, (index, count)) in h.buckets.iter().enumerate() {
                let bsep = if j + 1 < h.buckets.len() { ", " } else { "" };
                let _ = write!(out, "[{index}, {count}]{bsep}");
            }
            let _ = write!(out, "]}}{sep}");
        }
        if histograms.is_empty() {
            out.push_str("}\n}\n");
        } else {
            out.push_str("\n  }\n}\n");
        }
        out
    }

    /// Human-readable summary table (all classes) for `--stats` output.
    #[must_use]
    pub fn stats_table(&self) -> String {
        let mut out = String::new();
        let name_width = self
            .counters
            .iter()
            .map(|c| c.name.len())
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(0)
            .max(20);

        out.push_str("── xtalk stats ──\n");
        let det: Vec<&CounterSnap> = self
            .counters
            .iter()
            .filter(|c| c.class == Class::Det)
            .collect();
        if !det.is_empty() {
            out.push_str("counters (deterministic):\n");
            for c in det {
                let _ = writeln!(out, "  {:<name_width$}  {}", c.name, c.value);
            }
        }
        let perf: Vec<&CounterSnap> = self
            .counters
            .iter()
            .filter(|c| c.class == Class::Perf)
            .collect();
        if !perf.is_empty() {
            out.push_str("counters (perf):\n");
            for c in perf {
                let _ = writeln!(out, "  {:<name_width$}  {}", c.name, c.value);
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("distributions:\n");
            for h in &self.histograms {
                let is_ns = h.name.ends_with(".ns");
                let fmt = |v: f64| {
                    if is_ns {
                        format_ns(v)
                    } else {
                        format_count(v)
                    }
                };
                let (marker, p95) = h.quantile(0.95).map_or_else(
                    || ("≤", "-".to_owned()),
                    |b| (b.marker(), fmt(b.value() as f64)),
                );
                let _ = writeln!(
                    out,
                    "  {:<name_width$}  n={:<7} mean={:<10} p95{marker}{:<10} total={}",
                    h.name,
                    h.count,
                    fmt(h.mean()),
                    p95,
                    fmt(h.sum as f64),
                );
            }
        }
        out
    }
}

/// Formats a nanosecond quantity with a readable unit.
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

fn format_count(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.1}")
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![
                CounterSnap {
                    name: "a.det".into(),
                    class: Class::Det,
                    value: 7,
                },
                CounterSnap {
                    name: "b.perf".into(),
                    class: Class::Perf,
                    value: 9,
                },
            ],
            histograms: vec![
                HistogramSnap {
                    name: "h.det".into(),
                    class: Class::Det,
                    count: 3,
                    sum: 12,
                    buckets: vec![(1, 1), (3, 2)],
                },
                HistogramSnap {
                    name: "span.x.ns".into(),
                    class: Class::Perf,
                    count: 2,
                    sum: 2_000,
                    buckets: vec![(10, 2)],
                },
            ],
        }
    }

    #[test]
    fn det_json_excludes_perf_metrics() {
        let json = sample().to_json();
        assert!(json.contains("\"a.det\": 7"));
        assert!(json.contains("\"h.det\""));
        assert!(!json.contains("b.perf"));
        assert!(!json.contains("span.x.ns"));
    }

    #[test]
    fn full_json_includes_everything() {
        let json = sample().to_json_full();
        assert!(json.contains("\"b.perf\": 9"));
        assert!(json.contains("span.x.ns"));
    }

    #[test]
    fn empty_snapshot_is_valid_json_shape() {
        let json = Snapshot::default().to_json();
        assert_eq!(json, "{\n  \"counters\": {},\n  \"histograms\": {}\n}\n");
    }

    #[test]
    fn stats_table_mentions_all_sections() {
        let table = sample().stats_table();
        assert!(table.contains("counters (deterministic):"));
        assert!(table.contains("counters (perf):"));
        assert!(table.contains("distributions:"));
        assert!(table.contains("a.det"));
        assert!(table.contains("span.x.ns"));
    }

    #[test]
    fn quantile_upper_bound_walks_buckets() {
        let h = &sample().histograms[0]; // counts: bucket1=1, bucket3=2
        assert_eq!(h.quantile_upper_bound(0.01), Some(1)); // first value
        assert_eq!(h.quantile_upper_bound(1.0), Some(7)); // bucket 3 → ≤ 7
        let empty = HistogramSnap {
            name: "e".into(),
            class: Class::Det,
            count: 0,
            sum: 0,
            buckets: vec![],
        };
        assert_eq!(empty.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn overflow_quantile_reports_lower_edge_not_none() {
        let h = HistogramSnap {
            name: "slow".into(),
            class: Class::Perf,
            count: 10,
            sum: 0,
            buckets: vec![(1, 5), (OVERFLOW_BUCKET, 5)],
        };
        // Median is still in the closed buckets...
        assert_eq!(h.quantile(0.5), Some(QuantileBound::UpperBound(1)));
        // ...but p95 lands in overflow: a `≥ 2^38` statement, not a blank.
        let p95 = h.quantile(0.95).expect("non-empty");
        assert_eq!(p95, QuantileBound::OverflowAtLeast(1u64 << 38));
        assert_eq!(p95.marker(), "≥");
        assert_eq!(h.quantile_upper_bound(0.95), Some(1u64 << 38));
        // The stats table renders the marker instead of "overflow".
        let table = Snapshot {
            counters: vec![],
            histograms: vec![h],
        }
        .stats_table();
        assert!(table.contains("p95≥"), "table was:\n{table}");
    }

    #[test]
    fn delta_since_subtracts_per_name_and_per_bucket() {
        let base = Snapshot {
            counters: vec![CounterSnap {
                name: "a".into(),
                class: Class::Det,
                value: 3,
            }],
            histograms: vec![HistogramSnap {
                name: "h".into(),
                class: Class::Det,
                count: 2,
                sum: 5,
                buckets: vec![(1, 1), (3, 1)],
            }],
        };
        let now = Snapshot {
            counters: vec![
                CounterSnap {
                    name: "a".into(),
                    class: Class::Det,
                    value: 10,
                },
                CounterSnap {
                    name: "b".into(),
                    class: Class::Det,
                    value: 4,
                },
            ],
            histograms: vec![HistogramSnap {
                name: "h".into(),
                class: Class::Det,
                count: 5,
                sum: 25,
                buckets: vec![(1, 1), (3, 3), (4, 1)],
            }],
        };
        let d = now.delta_since(&base);
        assert_eq!(d.counter("a"), Some(7));
        assert_eq!(d.counter("b"), Some(4));
        let h = d.histogram("h").expect("histogram delta present");
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 20);
        assert_eq!(h.buckets, vec![(3, 2), (4, 1)]);
        // A no-change delta is empty, not full of zeros.
        let none = now.delta_since(&now);
        assert!(none.counters.is_empty() && none.histograms.is_empty());
    }

    #[test]
    fn merge_from_accumulates_and_keeps_order() {
        let mut acc = Snapshot::default();
        let part = Snapshot {
            counters: vec![CounterSnap {
                name: "b".into(),
                class: Class::Det,
                value: 2,
            }],
            histograms: vec![HistogramSnap {
                name: "h".into(),
                class: Class::Det,
                count: 1,
                sum: 4,
                buckets: vec![(3, 1)],
            }],
        };
        acc.merge_from(&part);
        acc.merge_from(&part);
        let other = Snapshot {
            counters: vec![CounterSnap {
                name: "a".into(),
                class: Class::Det,
                value: 1,
            }],
            histograms: vec![],
        };
        acc.merge_from(&other);
        assert_eq!(acc.counter("a"), Some(1));
        assert_eq!(acc.counter("b"), Some(4));
        assert_eq!(
            acc.counters.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"],
            "merge must keep the sorted-by-name invariant"
        );
        let h = acc.histogram("h").expect("merged histogram");
        assert_eq!((h.count, h.sum), (2, 8));
        assert_eq!(h.buckets, vec![(3, 2)]);
    }

    #[test]
    fn counters_with_prefix_selects_in_name_order() {
        let snap = Snapshot {
            counters: vec![
                CounterSnap {
                    name: "incr.query.hit".into(),
                    class: Class::Perf,
                    value: 7,
                },
                CounterSnap {
                    name: "incr.query.miss".into(),
                    class: Class::Perf,
                    value: 3,
                },
                CounterSnap {
                    name: "other.counter".into(),
                    class: Class::Det,
                    value: 9,
                },
            ],
            histograms: vec![],
        };
        let got: Vec<_> = snap.counters_with_prefix("incr.").collect();
        assert_eq!(got, vec![("incr.query.hit", 7), ("incr.query.miss", 3)]);
        assert_eq!(snap.counters_with_prefix("absent.").count(), 0);
    }
}
