//! Power-of-two bucketing for the fixed-size histograms.
//!
//! Forty buckets cover the full `u64` range with no configuration and no
//! allocation: bucket 0 holds exactly the value 0, bucket `b` (for
//! `1 ≤ b ≤ 38`) holds values in `[2^(b-1), 2^b)`, and bucket 39 is the
//! overflow bucket for everything at or above `2^38` (≈ 4.6 minutes when
//! the unit is nanoseconds — anything that slow deserves a flat bucket).

/// Number of buckets in every [`crate::LazyHistogram`].
pub const BUCKETS: usize = 40;

/// Index of the final, open-ended bucket (`values ≥ 2^38`).
pub const OVERFLOW_BUCKET: usize = BUCKETS - 1;

/// Maps a value to its bucket index.
///
/// ```
/// use xtalk_obs::{bucket_index, OVERFLOW_BUCKET};
/// assert_eq!(bucket_index(0), 0);
/// assert_eq!(bucket_index(1), 1);
/// assert_eq!(bucket_index(2), 2);
/// assert_eq!(bucket_index(3), 2);
/// assert_eq!(bucket_index(u64::MAX), OVERFLOW_BUCKET);
/// ```
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(OVERFLOW_BUCKET)
    }
}

/// Inclusive upper edge of a bucket, or `None` for the open-ended
/// overflow bucket. Used by the stats table's approximate quantiles.
#[must_use]
pub fn bucket_upper_bound(index: usize) -> Option<u64> {
    match index {
        0 => Some(0),
        b if b < OVERFLOW_BUCKET => Some((1u64 << b) - 1),
        _ => None,
    }
}

/// Inclusive lower edge of a bucket. For the overflow bucket this is the
/// smallest value it can hold (`2^38`), which quantile reporting uses as
/// a `≥` floor instead of blanking the cell.
#[must_use]
pub fn bucket_lower_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        b if b < OVERFLOW_BUCKET => 1u64 << (b - 1),
        _ => 1u64 << (OVERFLOW_BUCKET - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_bucket_zero_alone() {
        assert_eq!(bucket_index(0), 0);
        // Nothing else maps to bucket 0.
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_upper_bound(0), Some(0));
    }

    #[test]
    fn powers_of_two_open_their_bucket() {
        for b in 1..=37u32 {
            let lo = 1u64 << (b - 1);
            assert_eq!(bucket_index(lo), b as usize, "lower edge of bucket {b}");
            assert_eq!(
                bucket_index((1u64 << b) - 1),
                b as usize,
                "upper edge of bucket {b}"
            );
        }
    }

    #[test]
    fn max_value_lands_in_overflow() {
        assert_eq!(bucket_index(u64::MAX), OVERFLOW_BUCKET);
        assert_eq!(bucket_upper_bound(OVERFLOW_BUCKET), None);
    }

    #[test]
    fn overflow_threshold_is_exactly_two_pow_38() {
        assert_eq!(bucket_index((1u64 << 38) - 1), OVERFLOW_BUCKET - 1);
        assert_eq!(bucket_index(1u64 << 38), OVERFLOW_BUCKET);
        assert_eq!(bucket_upper_bound(OVERFLOW_BUCKET - 1), Some((1u64 << 38) - 1));
    }

    #[test]
    fn buckets_partition_the_range() {
        // Every bucket's upper bound + 1 is the next bucket's first value.
        for i in 0..OVERFLOW_BUCKET {
            let hi = bucket_upper_bound(i).expect("closed bucket");
            assert_eq!(bucket_index(hi), i);
            assert_eq!(bucket_index(hi + 1), i + 1);
        }
    }
}
