//! The global metric registry and its lazily-registered primitives.
//!
//! Each `counter!`/`histogram!`/`span!` call site expands to a `static`
//! [`LazyCounter`] or [`LazyHistogram`]; the atomics live inside that
//! static, so recording never takes a lock or walks a map. The global
//! registry is only a `Mutex<Vec<&'static …>>` of everything that has
//! been touched at least once — pushed to exactly once per call site via
//! `Once`, and read only by snapshots and [`crate::reset`].

use crate::hist::{bucket_index, BUCKETS};
use crate::Class;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once, PoisonError};
use std::time::Duration;

/// A reference to a registered metric.
pub(crate) enum MetricRef {
    Counter(&'static LazyCounter),
    Histogram(&'static LazyHistogram),
}

static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());

pub(crate) fn with_registry<R>(f: impl FnOnce(&[MetricRef]) -> R) -> R {
    let guard = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    f(&guard)
}

fn register(metric: MetricRef) {
    REGISTRY
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(metric);
}

/// Zeroes the values of every registered metric (names stay registered).
pub(crate) fn reset_values() {
    let guard = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    for metric in guard.iter() {
        match metric {
            MetricRef::Counter(c) => c.value.store(0, Ordering::Relaxed),
            MetricRef::Histogram(h) => {
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
                for bucket in &h.buckets {
                    bucket.store(0, Ordering::Relaxed);
                }
            }
        }
    }
}

/// A named atomic counter that adds itself to the global registry the
/// first time it records while metrics are enabled.
///
/// Built for `static` placement via the [`crate::counter!`] macro; the
/// disabled fast path is a single relaxed load and an early return.
pub struct LazyCounter {
    name: &'static str,
    class: Class,
    registered: Once,
    value: AtomicU64,
}

impl LazyCounter {
    /// Creates an unregistered counter (const, for `static` items).
    #[must_use]
    pub const fn new(name: &'static str, class: Class) -> Self {
        Self {
            name,
            class,
            registered: Once::new(),
            value: AtomicU64::new(0),
        }
    }

    /// Metric name as it appears in snapshots.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Determinism class.
    #[must_use]
    pub fn class(&self) -> Class {
        self.class
    }

    /// Adds `n` to the counter. A no-op (one relaxed load) while metrics
    /// are disabled; registers the counter on first enabled touch.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::metrics_enabled() {
            return;
        }
        self.registered
            .call_once(|| register(MetricRef::Counter(self)));
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named fixed-bucket histogram (see [`crate::bucket_index`] for the
/// bucket layout) that registers itself on first enabled touch.
///
/// Alongside the buckets it tracks `count` and `sum`, so snapshots can
/// report exact means next to bucketed quantiles.
pub struct LazyHistogram {
    name: &'static str,
    class: Class,
    registered: Once,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl LazyHistogram {
    // Array-repeat initializer for a non-Copy element; the interior
    // mutability is exactly the point here (each array slot gets its own
    // fresh atomic), so the lint does not apply.
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);

    /// Creates an unregistered histogram (const, for `static` items).
    #[must_use]
    pub const fn new(name: &'static str, class: Class) -> Self {
        Self {
            name,
            class,
            registered: Once::new(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [Self::ZERO; BUCKETS],
        }
    }

    /// Metric name as it appears in snapshots.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Determinism class.
    #[must_use]
    pub fn class(&self) -> Class {
        self.class
    }

    /// Records one value. A no-op (one relaxed load) while metrics are
    /// disabled; registers the histogram on first enabled touch.
    #[inline]
    pub fn record(&'static self, value: u64) {
        if !crate::metrics_enabled() {
            return;
        }
        self.registered
            .call_once(|| register(MetricRef::Histogram(self)));
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&'static self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    pub(crate) fn read(&self) -> (u64, u64, [u64; BUCKETS]) {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        (
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            buckets,
        )
    }
}
