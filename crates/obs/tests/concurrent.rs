//! Concurrency property test: parallel recording equals the serial sum.
//!
//! The determinism contract says [`Class::Det`]-class metrics count
//! *work* and are therefore independent of thread count or scheduling.
//! This test hammers one counter, one histogram and one span from N
//! threads with a deterministically generated workload, computes the
//! same totals serially, and asserts the snapshot *delta* over the
//! parallel burst matches exactly — counter value, histogram count, sum
//! and every bucket.
//!
//! The obs registry and flags are process-global, so this binary holds
//! exactly one `#[test]` (the proptest macro expands to one test fn
//! whose cases run sequentially) — same discipline as `tests/obs.rs`.
//! Deltas, not absolute values, keep the cases independent of each
//! other's accumulation.
//!
//! [`Class::Det`]: xtalk_obs::Class::Det

#![cfg(feature = "probe")]

use proptest::prelude::*;
use std::thread;

/// SplitMix64 finalizer: the per-op value generator. Pure function of
/// its inputs, so serial and parallel runs see the same multiset.
fn op_value(case_seed: u64, thread: u64, op: u64) -> u64 {
    let mut z = case_seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(thread << 32 | op);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    // Span 0 .. 2^40 so a fraction of values lands in the overflow
    // bucket (≥ 2^38) and bucket-level equality covers it too.
    (z ^ (z >> 31)) % (1u64 << 40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_det_snapshot_equals_serial_sum(
        (threads, ops, case_seed) in (2u64..=8, 1u64..=200, 0u64..u64::MAX)
    ) {
        xtalk_obs::enable_metrics();

        // Serial expectation: same workload, summed on one thread.
        let mut expect_count = 0u64;
        let mut expect_sum = 0u64;
        let mut expect_buckets = [0u64; xtalk_obs::BUCKETS];
        for t in 0..threads {
            for op in 0..ops {
                let v = op_value(case_seed, t, op);
                expect_count += 1;
                expect_sum = expect_sum.wrapping_add(v);
                expect_buckets[xtalk_obs::bucket_index(v)] += 1;
            }
        }

        let before = xtalk_obs::snapshot();

        thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || {
                    for op in 0..ops {
                        let _span = xtalk_obs::span!("conc.stage");
                        let v = op_value(case_seed, t, op);
                        xtalk_obs::counter!("conc.events").add(v % 7 + 1);
                        xtalk_obs::histogram!("conc.values").record(v);
                    }
                });
            }
        });

        let delta = xtalk_obs::snapshot().delta_since(&before);

        let expect_counter: u64 = (0..threads)
            .flat_map(|t| (0..ops).map(move |op| op_value(case_seed, t, op) % 7 + 1))
            .sum();
        prop_assert_eq!(delta.counter("conc.events"), Some(expect_counter));

        let hist = delta.histogram("conc.values").expect("histogram recorded");
        prop_assert_eq!(hist.count, expect_count);
        prop_assert_eq!(hist.sum, expect_sum);
        let expect_sparse: Vec<(usize, u64)> = expect_buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect();
        prop_assert_eq!(&hist.buckets, &expect_sparse);

        // Span histograms are Perf class (durations vary) but their
        // *count* is still the number of spans — one per op.
        let spans = delta.histogram("span.conc.stage.ns").expect("spans recorded");
        prop_assert_eq!(spans.count, expect_count);
    }
}
