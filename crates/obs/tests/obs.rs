//! End-to-end exercise of the observability crate.
//!
//! The registry, trace buffer and enable flags are process-global, so
//! this file holds exactly one `#[test]` running its scenarios in
//! sequence — sibling tests in the same binary would race on the shared
//! state (same discipline as `xtalk-exec`'s `alloc_free.rs`).
//!
//! Without the `probe` feature every probe compiles out, so there is
//! nothing to observe — the whole test is gated on it.

#![cfg(feature = "probe")]

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

static DISABLED_PROBE_TOUCHES: AtomicU64 = AtomicU64::new(0);

#[test]
fn registry_spans_trace_and_warnings_work_end_to_end() {
    // --- Disabled probes are inert -----------------------------------
    // Before enable_metrics(), probes must record nothing and register
    // nothing.
    xtalk_obs::counter!("test.pre_enable").add(5);
    xtalk_obs::histogram!("test.pre_enable.hist").record(42);
    {
        let _span = xtalk_obs::span!("test.pre_enable");
        DISABLED_PROBE_TOUCHES.fetch_add(1, Ordering::Relaxed);
    }
    let snap = xtalk_obs::snapshot();
    assert_eq!(snap.counter("test.pre_enable"), None);
    assert!(snap.histogram("test.pre_enable.hist").is_none());
    assert_eq!(xtalk_obs::trace_event_count(), 0);

    // --- Counters and histograms record once enabled ------------------
    xtalk_obs::enable_metrics();
    xtalk_obs::counter!("test.events").add(2);
    xtalk_obs::counter!("test.events").add(3);
    xtalk_obs::histogram!("test.sizes").record(0);
    xtalk_obs::histogram!("test.sizes").record(1);
    xtalk_obs::histogram!("test.sizes").record(1u64 << 38); // overflow bucket

    let snap = xtalk_obs::snapshot();
    assert_eq!(snap.counter("test.events"), Some(5));
    let sizes = snap.histogram("test.sizes").expect("registered");
    assert_eq!(sizes.count, 3);
    assert_eq!(sizes.sum, 1 + (1u64 << 38));
    assert_eq!(
        sizes.buckets,
        vec![(0, 1), (1, 1), (xtalk_obs::OVERFLOW_BUCKET, 1)]
    );

    // --- Counters are commutative across threads ----------------------
    thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..1000 {
                    xtalk_obs::counter!("test.parallel").add(1);
                }
            });
        }
    });
    assert_eq!(xtalk_obs::snapshot().counter("test.parallel"), Some(4000));

    // --- Deterministic JSON excludes perf metrics ----------------------
    xtalk_obs::counter!(perf: "test.perf_only").add(9);
    let snap = xtalk_obs::snapshot();
    let det = snap.to_json();
    assert!(det.contains("\"test.events\": 5"));
    assert!(!det.contains("test.perf_only"));
    assert!(snap.to_json_full().contains("\"test.perf_only\": 9"));

    // --- Spans feed histograms and the trace ---------------------------
    xtalk_obs::enable_tracing();
    {
        let _span = xtalk_obs::span!("test.stage");
        std::hint::black_box(());
    }
    let snap = xtalk_obs::snapshot();
    let span_hist = snap.histogram("span.test.stage.ns").expect("span recorded");
    assert_eq!(span_hist.count, 1);
    assert_eq!(xtalk_obs::trace_event_count(), 1);

    let trace = xtalk_obs::take_trace_json();
    assert!(trace.starts_with('{'));
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"name\": \"test.stage\""));
    assert!(trace.contains("\"ph\": \"X\""));
    assert_eq!(xtalk_obs::trace_event_count(), 0, "take drains the buffer");

    // --- Trace buffer is bounded: oldest events evicted, counted -------
    xtalk_obs::set_trace_capacity(4);
    for _ in 0..6 {
        let _span = xtalk_obs::span!("test.ring");
    }
    assert_eq!(xtalk_obs::trace_event_count(), 4, "ring holds capacity");
    assert_eq!(
        xtalk_obs::snapshot().counter("trace.events.dropped"),
        Some(2),
        "evictions are counted"
    );
    let _ = xtalk_obs::take_trace_json();
    xtalk_obs::set_trace_capacity(xtalk_obs::DEFAULT_TRACE_CAPACITY);

    // --- Request context stamps spans recorded on this thread ----------
    assert_eq!(xtalk_obs::current_request_ctx(), 0);
    {
        let _ctx = xtalk_obs::push_request_ctx(7);
        assert_eq!(xtalk_obs::current_request_ctx(), 7);
        {
            let _inner = xtalk_obs::push_request_ctx(8);
            assert_eq!(xtalk_obs::current_request_ctx(), 8);
        }
        assert_eq!(xtalk_obs::current_request_ctx(), 7, "nesting restores");
        let _span = xtalk_obs::span!("test.ctx");
    }
    assert_eq!(xtalk_obs::current_request_ctx(), 0);
    {
        let _span = xtalk_obs::span!("test.no_ctx");
    }
    let trace = xtalk_obs::take_trace_json();
    assert!(
        trace.contains("\"args\": {\"req\": 7}"),
        "ctx span carries the request id; trace was:\n{trace}"
    );
    let no_ctx_line = trace
        .lines()
        .find(|l| l.contains("test.no_ctx"))
        .expect("no_ctx span exported");
    assert!(!no_ctx_line.contains("\"req\""), "no ctx → no args");

    // --- Windowed aggregation: deltas, not since-boot totals ------------
    xtalk_obs::counter!("test.win").add(5);
    let mut ring = xtalk_obs::WindowRing::new(8);
    xtalk_obs::counter!("test.win").add(5);
    xtalk_obs::histogram!("test.win.hist").record(100);
    ring.tick();
    assert_eq!(ring.len(), 1);
    xtalk_obs::counter!("test.win").add(3);
    let view = ring.windowed(8);
    assert_eq!(
        view.delta.counter("test.win"),
        Some(8),
        "closed interval (5) + live partial (3); pre-ring 5 excluded"
    );
    assert_eq!(
        view.delta.histogram("test.win.hist").map(|h| h.count),
        Some(1)
    );
    let live_only = ring.windowed(0);
    assert_eq!(
        live_only.delta.counter("test.win"),
        Some(3),
        "zero closed intervals → live partial only"
    );

    // --- Warning sink counts, and quiet suppresses printing only -------
    xtalk_obs::warn!("first warning: case {}", 7);
    xtalk_obs::set_quiet(true);
    xtalk_obs::warn!("second warning, silenced");
    xtalk_obs::set_quiet(false);
    assert_eq!(xtalk_obs::snapshot().counter("warnings.total"), Some(2));

    // --- Stats table renders every section -----------------------------
    let table = xtalk_obs::snapshot().stats_table();
    assert!(table.contains("test.events"));
    assert!(table.contains("span.test.stage.ns"));

    // --- reset() zeroes values but keeps registrations -----------------
    {
        let _span = xtalk_obs::span!("test.stage2");
    }
    xtalk_obs::reset();
    let snap = xtalk_obs::snapshot();
    assert_eq!(snap.counter("test.events"), Some(0), "still registered");
    assert_eq!(snap.histogram("test.sizes").expect("kept").count, 0);
    assert_eq!(xtalk_obs::trace_event_count(), 0);

    // Values accumulate again after the reset.
    xtalk_obs::counter!("test.events").add(1);
    assert_eq!(xtalk_obs::snapshot().counter("test.events"), Some(1));
}
