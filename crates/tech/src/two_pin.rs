use crate::Technology;
use xtalk_circuit::{CircuitError, NetId, NetRole, Network, NetworkBuilder, NodeId};

/// Relative orientation of aggressor and victim (paper Tables 1 vs 2).
///
/// *Far-end*: the aggressor drives from the same end as the victim's
/// driver, so the victim's receiver is closest to the *aggressor's
/// receiver*. *Near-end*: the aggressor drives from the opposite end —
/// its signal is fastest (least RC-filtered) right next to the victim's
/// receiver, which is why near-end noise is usually larger and why simple
/// metrics that ignore the distinction stop being upper bounds (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CouplingDirection {
    /// Aggressor driver on the victim-driver side.
    FarEnd,
    /// Aggressor driver on the victim-receiver side.
    NearEnd,
}

/// The Figure-4 two-pin coupling circuit: two parallel wires of length
/// `L3`, capacitively coupled over the window `[L1, L1 + L2]`.
///
/// ```text
/// victim:     driver ──── L1 ──── [ coupling region L2 ] ──── ──── load
/// aggressor
///   far-end:  driver ═════════════[ ================== ]═════════ load
///   near-end: load   ═════════════[ ================== ]═════════ driver
/// ```
///
/// Figure 5's sweep sets `L2 = 0.5 mm`, `L3 = 1.5 mm` and moves
/// `L1 = 0.1 … 1.0 mm`: the closer the coupling window to the victim
/// receiver, the larger the peak noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPinSpec {
    /// Distance from the victim driver to the start of the coupling
    /// window (m). May be 0 (coupling at the driver).
    pub l1: f64,
    /// Coupling-window length (m); must be positive.
    pub l2: f64,
    /// Total wire length (m); `l1 + l2 ≤ l3`.
    pub l3: f64,
    /// Orientation.
    pub direction: CouplingDirection,
    /// Victim equivalent driver resistance (Ω).
    pub victim_driver: f64,
    /// Aggressor equivalent driver resistance (Ω).
    pub aggressor_driver: f64,
    /// Victim receiver load (F).
    pub victim_load: f64,
    /// Aggressor receiver load (F).
    pub aggressor_load: f64,
    /// Spatial discretization of the distributed wires (segments per mm);
    /// 8–12 is plenty for metric validation.
    pub segments_per_mm: usize,
}

impl TwoPinSpec {
    /// Builds the coupled network. Returns `(network, aggressor_net)`.
    ///
    /// Both wires share a uniform segmentation of `L3`; the coupling
    /// window is snapped to segment boundaries (at least one segment
    /// wide), which keeps element values well-scaled for any float inputs.
    ///
    /// # Errors
    ///
    /// Propagates element validation failures for out-of-range values.
    ///
    /// # Panics
    ///
    /// Panics if the lengths are inconsistent (`l2 ≤ 0`, `l1 < 0`, or
    /// `l1 + l2 > l3` beyond rounding) or `segments_per_mm == 0`.
    pub fn build(&self, tech: &Technology) -> Result<(Network, NetId), CircuitError> {
        assert!(self.l2 > 0.0, "coupling length must be positive");
        assert!(self.l1 >= 0.0, "coupling offset must be non-negative");
        assert!(
            self.l1 + self.l2 <= self.l3 * (1.0 + 1e-9),
            "coupling window exceeds the wire length"
        );
        assert!(self.segments_per_mm > 0, "need at least one segment per mm");

        let n = ((self.l3 * 1e3 * self.segments_per_mm as f64).ceil() as usize).max(2);
        let seg = self.l3 / n as f64;
        // Window snapped to segment boundaries, at least one segment wide.
        let start = ((self.l1 / seg).round() as usize).min(n - 1);
        let end = (((self.l1 + self.l2) / seg).round() as usize)
            .clamp(start + 1, n);

        let mut b = NetworkBuilder::new();
        let vic = b.add_net("victim", NetRole::Victim);
        let agg = b.add_net("aggressor", NetRole::Aggressor);

        // Two identical chains; node k sits at position k·seg.
        let chain = |b: &mut NetworkBuilder, net: NetId, tag: &str| -> Result<Vec<NodeId>, CircuitError> {
            let mut nodes = Vec::with_capacity(n + 1);
            nodes.push(b.add_node(net, format!("{tag}0")));
            for k in 1..=n {
                let node = b.add_node(net, format!("{tag}{k}"));
                b.add_resistor(nodes[k - 1], node, tech.wire_r(seg))?;
                b.add_ground_cap(node, tech.wire_c(seg))?;
                nodes.push(node);
            }
            Ok(nodes)
        };
        let v_nodes = chain(&mut b, vic, "v")?;
        let a_nodes = chain(&mut b, agg, "a")?;

        b.add_driver(vic, v_nodes[0], self.victim_driver)?;
        b.add_sink(v_nodes[n], self.victim_load)?;
        b.set_victim_output(v_nodes[n]);

        let (a_drv, a_load) = match self.direction {
            CouplingDirection::FarEnd => (a_nodes[0], a_nodes[n]),
            CouplingDirection::NearEnd => (a_nodes[n], a_nodes[0]),
        };
        b.add_driver(agg, a_drv, self.aggressor_driver)?;
        b.add_sink(a_load, self.aggressor_load)?;

        // Aligned coupling caps over the window; total ≈ cc_per_m · L2.
        let cc_per_seg = tech.wire_cc(self.l2) / (end - start) as f64;
        for k in (start + 1)..=end {
            b.add_coupling_cap(a_nodes[k], v_nodes[k], cc_per_seg)?;
        }

        let network = b.build()?;
        Ok((network, agg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(direction: CouplingDirection) -> TwoPinSpec {
        TwoPinSpec {
            l1: 0.3e-3,
            l2: 0.5e-3,
            l3: 1.5e-3,
            direction,
            victim_driver: 200.0,
            aggressor_driver: 150.0,
            victim_load: 20e-15,
            aggressor_load: 20e-15,
            segments_per_mm: 10,
        }
    }

    #[test]
    fn builds_with_expected_totals() {
        let tech = Technology::p25();
        let (net, agg) = spec(CouplingDirection::FarEnd).build(&tech).unwrap();
        // Both wires span L3.
        let rv = net.net_total_res(net.victim());
        assert!(
            (rv - tech.wire_r(1.5e-3)).abs() < 1e-6 * rv,
            "victim R {rv}"
        );
        let ra = net.net_total_res(agg);
        assert!((ra - tech.wire_r(1.5e-3)).abs() < 1e-6 * ra);
        // Total coupling ≈ cc_per_m * L2.
        let cc: f64 = net
            .couplings_between(agg, net.victim())
            .map(|(_, _, f)| f)
            .sum();
        assert!((cc - tech.wire_cc(0.5e-3)).abs() < 1e-6 * cc);
    }

    #[test]
    fn near_and_far_end_differ_only_in_driver_placement() {
        let tech = Technology::p25();
        let (far, fa) = spec(CouplingDirection::FarEnd).build(&tech).unwrap();
        let (near, na) = spec(CouplingDirection::NearEnd).build(&tech).unwrap();
        assert_eq!(far.node_count(), near.node_count());
        assert_eq!(far.coupling_caps().len(), near.coupling_caps().len());
        assert!((far.net_total_res(fa) - near.net_total_res(na)).abs() < 1e-9);
        assert_ne!(far.net(fa).driver().node, near.net(na).driver().node);
    }

    #[test]
    fn degenerate_window_edges_are_robust() {
        let tech = Technology::p25();
        // Window flush against the driver.
        let mut s = spec(CouplingDirection::FarEnd);
        s.l1 = 0.0;
        assert!(s.build(&tech).is_ok());
        // Window flush against the receiver, with a floating-point
        // residue in l3 (the construction that used to create femtometer
        // segments).
        let mut s2 = spec(CouplingDirection::FarEnd);
        s2.l1 = 1.0000000000000002e-3;
        s2.l2 = 0.5e-3;
        s2.l3 = s2.l1 + s2.l2;
        let (net, _) = s2.build(&tech).unwrap();
        // Every resistor stays in a sane range (no sub-micron slivers).
        for r in net.resistors() {
            assert!(r.ohms > 1e-3, "sliver resistor {} ohms", r.ohms);
        }
        // Tiny window still gets one segment.
        let mut s3 = spec(CouplingDirection::FarEnd);
        s3.l2 = 1e-6;
        s3.l3 = 1.5e-3;
        let (net3, agg3) = s3.build(&tech).unwrap();
        assert_eq!(net3.couplings_between(agg3, net3.victim()).count(), 1);
    }

    #[test]
    #[should_panic(expected = "coupling window exceeds")]
    fn oversized_window_panics() {
        let mut s = spec(CouplingDirection::FarEnd);
        s.l1 = 1.2e-3;
        s.build(&Technology::p25()).unwrap();
    }

    #[test]
    fn segment_count_scales_with_resolution() {
        let tech = Technology::p25();
        let coarse = {
            let mut s = spec(CouplingDirection::FarEnd);
            s.segments_per_mm = 4;
            s.build(&tech).unwrap().0.node_count()
        };
        let fine = {
            let mut s = spec(CouplingDirection::FarEnd);
            s.segments_per_mm = 16;
            s.build(&tech).unwrap().0.node_count()
        };
        assert!(fine > 3 * coarse);
    }
}
