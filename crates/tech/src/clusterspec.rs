use crate::Technology;
use xtalk_circuit::{CircuitError, NetId, NetRole, Network, NetworkBuilder, NodeId};

/// A chain-coupled routing cluster: `lanes` parallel wires at minimum
/// pitch, every physically adjacent pair coupled along its full length.
///
/// Unlike [`crate::BusSpec`] — which drops aggressor–aggressor couplings
/// because they are invisible to a single-victim analysis — this spec
/// keeps the whole coupling chain. That is the workload the incremental
/// what-if engine targets: one connected cluster where a local edit
/// (respace one segment, resize one driver) is analytically local, so an
/// engine that tracks dependencies recomputes a handful of nets while a
/// full recompute touches all of them. The middle lane is the designated
/// victim; re-role any other lane with
/// [`xtalk_circuit::cluster::CouplingClusters`] views or a what-if
/// session.
///
/// Driver resistances are staggered lane to lane (`driver` ±
/// `driver_stagger·lane` cycling over 8 lanes) so neighbouring transfer
/// functions are not accidentally identical — a memo layer must earn its
/// hits from true invariance, not from symmetric inputs.
///
/// # Examples
///
/// ```
/// use xtalk_tech::{ClusterSpec, Technology};
///
/// let (network, lanes) = ClusterSpec::figure4_family(8).build(&Technology::p25()).unwrap();
/// assert_eq!(lanes.len(), 8);
/// assert_eq!(network.net_count(), 8);
/// // Interior lanes couple to both neighbours.
/// assert!(network.couplings_between(lanes[3], lanes[4]).count() > 0);
/// assert!(network.couplings_between(lanes[3], lanes[2]).count() > 0);
/// // Distant lanes do not couple directly.
/// assert_eq!(network.couplings_between(lanes[0], lanes[5]).count(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of parallel wires (≥ 2).
    pub lanes: usize,
    /// Wire length (m).
    pub length: f64,
    /// Base driver resistance (Ω).
    pub driver: f64,
    /// Per-lane driver stagger (Ω per lane index, cycling mod 8).
    pub driver_stagger: f64,
    /// Receiver load of every wire (F).
    pub load: f64,
    /// Spatial discretization (segments per mm).
    pub segments_per_mm: usize,
}

impl ClusterSpec {
    /// The Figure-4-style family used by the optimizer demo and the
    /// `incr_speedup` bench: 2 mm wires, 180 Ω nominal drivers staggered
    /// by 15 Ω, 20 fF loads, 4 segments/mm.
    #[must_use]
    pub fn figure4_family(lanes: usize) -> Self {
        ClusterSpec {
            lanes,
            length: 2.0e-3,
            driver: 180.0,
            driver_stagger: 15.0,
            load: 20e-15,
            segments_per_mm: 4,
        }
    }

    /// Number of RC segments per lane for this discretization.
    #[must_use]
    pub fn segments(&self) -> usize {
        ((self.length * 1e3 * self.segments_per_mm as f64).ceil() as usize).max(2)
    }

    /// Builds the cluster. Returns `(network, lane_nets)` with lanes in
    /// physical order; the victim is `lane_nets[lanes / 2]`.
    ///
    /// # Errors
    ///
    /// Propagates element validation failures.
    ///
    /// # Panics
    ///
    /// Panics on fewer than two lanes, non-positive length or zero
    /// segments.
    pub fn build(&self, tech: &Technology) -> Result<(Network, Vec<NetId>), CircuitError> {
        assert!(self.lanes >= 2, "a cluster needs at least two lanes");
        assert!(self.length > 0.0, "wire length must be positive");
        assert!(self.segments_per_mm > 0, "need at least one segment per mm");

        let n = self.segments();
        let seg = self.length / n as f64;
        let victim_lane = self.lanes / 2;

        let mut b = NetworkBuilder::new();
        let mut lane_nets = Vec::with_capacity(self.lanes);
        let mut lane_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(self.lanes);
        for lane in 0..self.lanes {
            let (name, role) = if lane == victim_lane {
                ("victim".to_string(), NetRole::Victim)
            } else {
                (format!("lane{lane}"), NetRole::Aggressor)
            };
            let net = b.add_net(name, role);
            let mut nodes = vec![b.add_node(net, format!("l{lane}_0"))];
            let driver = self.driver + self.driver_stagger * (lane % 8) as f64;
            b.add_driver(net, nodes[0], driver)?;
            for i in 1..=n {
                let node = b.add_node(net, format!("l{lane}_{i}"));
                b.add_resistor(nodes[i - 1], node, tech.wire_r(seg))?;
                b.add_ground_cap(node, tech.wire_c(seg))?;
                nodes.push(node);
            }
            b.add_sink(nodes[n], self.load)?;
            if lane == victim_lane {
                b.set_victim_output(nodes[n]);
            }
            lane_nets.push(net);
            lane_nodes.push(nodes);
        }

        for lane in 1..self.lanes {
            #[allow(clippy::needless_range_loop)]
            for i in 1..=n {
                b.add_coupling_cap(
                    lane_nodes[lane - 1][i],
                    lane_nodes[lane][i],
                    tech.wire_cc(seg),
                )?;
            }
        }

        Ok((b.build()?, lane_nets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_couples_every_adjacent_pair() {
        let tech = Technology::p25();
        let spec = ClusterSpec::figure4_family(6);
        let (net, lanes) = spec.build(&tech).unwrap();
        assert_eq!(lanes.len(), 6);
        for w in lanes.windows(2) {
            assert_eq!(
                net.couplings_between(w[0], w[1]).count(),
                spec.segments(),
                "adjacent lanes couple segment-aligned"
            );
        }
        assert_eq!(net.couplings_between(lanes[0], lanes[2]).count(), 0);
    }

    #[test]
    fn victim_is_middle_lane_with_output_at_far_end() {
        let (net, lanes) = ClusterSpec::figure4_family(8)
            .build(&Technology::p25())
            .unwrap();
        assert_eq!(net.victim(), lanes[4]);
        let out = net.victim_output();
        assert!(net.net(net.victim()).nodes().contains(&out));
    }

    #[test]
    fn drivers_are_staggered() {
        let (net, lanes) = ClusterSpec::figure4_family(4)
            .build(&Technology::p25())
            .unwrap();
        let r = |l: NetId| net.net(l).driver().ohms;
        assert_eq!(r(lanes[0]), 180.0);
        assert_eq!(r(lanes[1]), 195.0);
        assert_eq!(r(lanes[3]), 225.0);
    }

    #[test]
    #[should_panic(expected = "at least two lanes")]
    fn single_lane_panics() {
        let _ = ClusterSpec::figure4_family(1).build(&Technology::p25());
    }
}
