#![allow(clippy::needless_range_loop)] // index loops mirror the matrix math
use crate::Technology;
use xtalk_circuit::{CircuitError, NetId, NetRole, Network, NetworkBuilder, NodeId};

/// A parallel bus with the victim in the middle — the canonical
/// multi-aggressor situation the paper's superposition treatment (§3.5)
/// targets.
///
/// `2·neighbors_per_side + 1` equal-length wires run in parallel; the
/// center wire is the victim, every other wire an aggressor. Nearest
/// neighbours couple at the full per-length coupling capacitance;
/// second-nearest at `second_neighbor_fraction` of it (the usual fringe
/// approximation — beyond that, coupling is negligible at minimum pitch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusSpec {
    /// Wires on each side of the victim (1 → 3-wire bus, 2 → 5-wire bus).
    pub neighbors_per_side: usize,
    /// Bus length (m).
    pub length: f64,
    /// Driver resistance of every wire (Ω).
    pub driver: f64,
    /// Receiver load of every wire (F).
    pub load: f64,
    /// Coupling fraction for second-nearest neighbours (0 disables).
    pub second_neighbor_fraction: f64,
    /// Spatial discretization (segments per mm).
    pub segments_per_mm: usize,
}

impl BusSpec {
    /// Builds the bus. Returns `(network, aggressors)` with the aggressor
    /// list ordered nearest-first: `[left1, right1, left2, right2, …]`.
    ///
    /// # Errors
    ///
    /// Propagates element validation failures.
    ///
    /// # Panics
    ///
    /// Panics on non-positive length, zero neighbours, a fraction outside
    /// `[0, 1]`, or zero segments.
    pub fn build(&self, tech: &Technology) -> Result<(Network, Vec<NetId>), CircuitError> {
        assert!(self.length > 0.0, "bus length must be positive");
        assert!(self.neighbors_per_side >= 1, "need at least one neighbour");
        assert!(
            (0.0..=1.0).contains(&self.second_neighbor_fraction),
            "second-neighbour fraction must be in [0, 1]"
        );
        assert!(self.segments_per_mm > 0, "need at least one segment per mm");

        let n = ((self.length * 1e3 * self.segments_per_mm as f64).ceil() as usize).max(2);
        let seg = self.length / n as f64;

        let mut b = NetworkBuilder::new();
        // Lanes ordered by physical position: index 0 = leftmost; the
        // victim sits at position `neighbors_per_side`.
        let k = self.neighbors_per_side;
        let total_lanes = 2 * k + 1;
        let mut lane_nets = Vec::with_capacity(total_lanes);
        let mut lane_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(total_lanes);
        for lane in 0..total_lanes {
            let (name, role) = if lane == k {
                ("victim".to_string(), NetRole::Victim)
            } else {
                (format!("bit{lane}"), NetRole::Aggressor)
            };
            let net = b.add_net(name, role);
            let mut nodes = vec![b.add_node(net, format!("l{lane}_0"))];
            b.add_driver(net, nodes[0], self.driver)?;
            for i in 1..=n {
                let node = b.add_node(net, format!("l{lane}_{i}"));
                b.add_resistor(nodes[i - 1], node, tech.wire_r(seg))?;
                b.add_ground_cap(node, tech.wire_c(seg))?;
                nodes.push(node);
            }
            b.add_sink(nodes[n], self.load)?;
            if lane == k {
                b.set_victim_output(nodes[n]);
            }
            lane_nets.push(net);
            lane_nodes.push(nodes);
        }

        // Couplings between physically adjacent lanes (and second-nearest
        // when enabled), segment-aligned.
        for lane in 0..total_lanes {
            for (other, fraction) in [
                (lane + 1, 1.0),
                (lane + 2, self.second_neighbor_fraction),
            ] {
                if other >= total_lanes || fraction == 0.0 {
                    continue;
                }
                // Skip aggressor-aggressor pairs: invisible to the victim
                // analysis and they inflate the MNA size.
                if lane != k && other != k {
                    continue;
                }
                for i in 1..=n {
                    b.add_coupling_cap(
                        lane_nodes[lane][i],
                        lane_nodes[other][i],
                        tech.wire_cc(seg) * fraction,
                    )?;
                }
            }
        }

        let network = b.build()?;
        // Aggressors nearest-first relative to the victim lane.
        let mut aggs = Vec::with_capacity(2 * k);
        for dist in 1..=k {
            aggs.push(lane_nets[k - dist]);
            aggs.push(lane_nets[k + dist]);
        }
        Ok((network, aggs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BusSpec {
        BusSpec {
            neighbors_per_side: 2,
            length: 1.0e-3,
            driver: 200.0,
            load: 15e-15,
            second_neighbor_fraction: 0.25,
            segments_per_mm: 8,
        }
    }

    #[test]
    fn five_wire_bus_builds() {
        let (net, aggs) = spec().build(&Technology::p25()).unwrap();
        assert_eq!(net.net_count(), 5);
        assert_eq!(aggs.len(), 4);
        assert_eq!(net.aggressor_nets().count(), 4);
    }

    #[test]
    fn nearest_neighbors_couple_stronger() {
        let tech = Technology::p25();
        let (net, aggs) = spec().build(&tech).unwrap();
        let total = |agg: NetId| -> f64 {
            net.couplings_between(agg, net.victim())
                .map(|(_, _, f)| f)
                .sum()
        };
        // aggs[0], aggs[1] are nearest; aggs[2], aggs[3] second-nearest.
        let near = total(aggs[0]);
        let far = total(aggs[2]);
        assert!((near - tech.wire_cc(1.0e-3)).abs() < 0.05 * near);
        assert!((far - 0.25 * near).abs() < 0.05 * near, "{far} vs {near}");
    }

    #[test]
    fn disabling_second_neighbors_drops_their_coupling() {
        let mut s = spec();
        s.second_neighbor_fraction = 0.0;
        let (net, aggs) = s.build(&Technology::p25()).unwrap();
        assert_eq!(
            net.couplings_between(aggs[2], net.victim()).count(),
            0,
            "second neighbour must be uncoupled"
        );
        assert!(net.couplings_between(aggs[0], net.victim()).count() > 0);
    }

    #[test]
    fn three_wire_bus_is_smallest() {
        let mut s = spec();
        s.neighbors_per_side = 1;
        let (net, aggs) = s.build(&Technology::p25()).unwrap();
        assert_eq!(net.net_count(), 3);
        assert_eq!(aggs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one neighbour")]
    fn zero_neighbors_panics() {
        let mut s = spec();
        s.neighbors_per_side = 0;
        let _ = s.build(&Technology::p25());
    }
}
