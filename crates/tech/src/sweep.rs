//! Seeded random case generation for the table reproductions.
//!
//! The paper sweeps "different coupling locations, driver strengths,
//! coupling lengths, etc." over 40 000+ cases, deliberately including
//! extreme corners: drastically different driver sizes, coupling flush
//! against the victim driver or receiver, coupling lengths 0.1–2.0 mm.
//! [`two_pin_cases`] and [`tree_cases`] reproduce those distributions at a
//! configurable case count with a fixed seed (tables are bit-reproducible).
//!
//! Generation is split into two passes so the sweep parallelizes without
//! touching the RNG stream: a **serial** pass makes every random draw
//! (specs, labels, inputs) in case order, then a **parallel** pass builds
//! the drawn specs into networks with [`xtalk_exec::par_map_indexed`].
//! Same seed → same draws → same cases, whatever the worker count, and
//! [`SweepRun::cases`]/[`SweepRun::failures`] keep their case-index
//! ordering.

use crate::{random_tree, CouplingDirection, Technology, TreeSpec, TwoPinSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use xtalk_circuit::{signal::InputSignal, CircuitError, NetId, Network};
use xtalk_exec::{par_map_indexed, Jobs};

/// One generated validation case.
#[derive(Debug)]
pub struct SweepCase {
    /// Short label (for diagnostics).
    pub label: String,
    /// The coupled network.
    pub network: Network,
    /// The switching aggressor.
    pub aggressor: NetId,
    /// The aggressor input.
    pub input: InputSignal,
}

/// A case whose generated spec failed to build into a network. The sweep
/// keeps going; the failure is reported in the run summary instead of
/// aborting the batch.
#[derive(Debug)]
pub struct SweepFailure {
    /// Label of the failed case.
    pub label: String,
    /// Why the spec did not build.
    pub error: CircuitError,
}

impl fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.label, self.error)
    }
}

/// The outcome of a case-generation sweep: every case that built, plus a
/// record of every case that did not.
#[derive(Debug, Default)]
pub struct SweepRun {
    /// Successfully built cases.
    pub cases: Vec<SweepCase>,
    /// Cases whose spec failed to build (degraded batch).
    pub failures: Vec<SweepFailure>,
}

impl SweepRun {
    /// `true` when every requested case was generated.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line human-readable summary of the run.
    pub fn summary(&self) -> String {
        if self.is_complete() {
            format!("{} cases generated", self.cases.len())
        } else {
            let mut s = format!(
                "{} cases generated, {} failed:",
                self.cases.len(),
                self.failures.len()
            );
            for failure in &self.failures {
                s.push_str(&format!(" [{failure}]"));
            }
            s
        }
    }
}

/// Sweep configuration.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Number of cases to generate.
    pub cases: usize,
    /// RNG seed (same seed → same cases → same table).
    pub seed: u64,
    /// Fraction of cases forced into extreme corners (the paper stresses
    /// that its error figures include such corners).
    pub corner_fraction: f64,
}

impl Default for SweepConfig {
    /// 500 cases, fixed seed, 20% corners — enough for stable table
    /// statistics in seconds; crank `cases` to 40 000 to match the paper's
    /// volume.
    fn default() -> Self {
        SweepConfig {
            cases: 500,
            seed: 0x2002_da7e,
            corner_fraction: 0.2,
        }
    }
}

fn draw_input(rng: &mut StdRng, tech: &Technology, fast: bool) -> InputSignal {
    let (lo, hi) = tech.slew_range;
    let tr = if fast {
        rng.random_range(lo..lo * 2.0)
    } else {
        rng.random_range(lo..hi)
    };
    // Mix shapes: mostly ramps, some exponentials (the paper admits
    // arbitrary input types); polarity mixed as well.
    match rng.random_range(0..6) {
        0 => InputSignal::falling_ramp(0.0, tr),
        1 => InputSignal::rising_exp(0.0, tr),
        2 => InputSignal::falling_exp(0.0, tr),
        _ => InputSignal::rising_ramp(0.0, tr),
    }
}

/// Log-uniform draw: device sizes span decades, and a linear draw would
/// almost never produce a strong driver.
fn log_uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    (rng.random_range(lo.ln()..hi.ln())).exp()
}

/// Corner flavors (the paper's "extreme corner cases").
#[derive(Clone, Copy, PartialEq)]
enum Corner {
    /// Normal random case.
    None,
    /// Drastically different driver sizes.
    DriverMismatch,
    /// Both drivers strong with the fastest input slews — the regime where
    /// the near-/far-end distinction is most pronounced.
    StrongFast,
}

fn draw_corner(rng: &mut StdRng, fraction: f64) -> Corner {
    if !rng.random_bool(fraction) {
        Corner::None
    } else if rng.random_bool(0.5) {
        Corner::DriverMismatch
    } else {
        Corner::StrongFast
    }
}

fn draw_driver(rng: &mut StdRng, tech: &Technology, corner: Corner) -> (f64, f64) {
    let (lo, hi) = tech.driver_range;
    match corner {
        Corner::DriverMismatch => {
            // Drastically different sizes: one end of the range each.
            if rng.random_bool(0.5) {
                (rng.random_range(lo..1.5 * lo), rng.random_range(0.7 * hi..hi))
            } else {
                (rng.random_range(0.7 * hi..hi), rng.random_range(lo..1.5 * lo))
            }
        }
        Corner::StrongFast => (
            rng.random_range(lo..3.0 * lo),
            rng.random_range(lo..3.0 * lo),
        ),
        Corner::None => (log_uniform(rng, lo, hi), log_uniform(rng, lo, hi)),
    }
}

/// A fully drawn (but not yet built) case: the output of the serial RNG
/// pass, the input of the parallel build pass.
#[derive(Debug, Clone)]
struct DrawnCase<S> {
    label: String,
    spec: S,
    input: InputSignal,
}

/// Builds drawn specs into networks in parallel and folds the outcomes —
/// in case-index order — into a [`SweepRun`].
fn build_drawn<S: Sync + Send>(
    drawn: Vec<DrawnCase<S>>,
    tech: &Technology,
    jobs: Jobs,
    build: impl Fn(&S, &Technology) -> Result<(Network, NetId), CircuitError> + Sync,
) -> SweepRun {
    let _span = xtalk_obs::span!("sweep.build");
    let built = par_map_indexed(&drawn, jobs, |_, case| build(&case.spec, tech))
        .unwrap_or_else(|e| panic!("sweep build worker failed: {e}"));
    let mut out = SweepRun::default();
    for (case, result) in drawn.into_iter().zip(built) {
        match result {
            Ok((network, aggressor)) => out.cases.push(SweepCase {
                label: case.label,
                network,
                aggressor,
                input: case.input,
            }),
            Err(error) => out.failures.push(SweepFailure {
                label: case.label,
                error,
            }),
        }
    }
    xtalk_obs::counter!("sweep.cases.generated").add(out.cases.len() as u64);
    xtalk_obs::counter!("sweep.cases.failed").add(out.failures.len() as u64);
    out
}

/// Generates two-pin coupling cases (Tables 1 and 2).
///
/// A spec that fails to build (possible with a degenerate [`Technology`],
/// e.g. from a corrupt config file) lands in [`SweepRun::failures`]
/// instead of aborting the sweep.
///
/// Equivalent to [`two_pin_cases_jobs`] with [`Jobs::Auto`].
pub fn two_pin_cases(
    tech: &Technology,
    direction: CouplingDirection,
    config: &SweepConfig,
) -> SweepRun {
    two_pin_cases_jobs(tech, direction, config, Jobs::Auto)
}

/// [`two_pin_cases`] with an explicit worker-count policy for the
/// network-build pass. The RNG pass is always serial, so the generated
/// cases are bit-identical for every `jobs` value.
pub fn two_pin_cases_jobs(
    tech: &Technology,
    direction: CouplingDirection,
    config: &SweepConfig,
    jobs: Jobs,
) -> SweepRun {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut drawn = Vec::with_capacity(config.cases);
    for i in 0..config.cases {
        let corner = draw_corner(&mut rng, config.corner_fraction);
        let l2: f64 = rng.random_range(0.1e-3..2.0e-3);
        let slack: f64 = rng.random_range(0.0..1.5e-3);
        // Corner cases pin the window to an extreme; normal cases place it
        // anywhere.
        let l1 = match corner {
            Corner::DriverMismatch => {
                if rng.random_bool(0.5) {
                    0.0
                } else {
                    slack
                }
            }
            // The near-end-critical corner: window flush at the receiver.
            Corner::StrongFast => slack,
            Corner::None => rng.random_range(0.0..slack.max(1e-9)),
        };
        let l3 = l1 + l2 + (slack - l1).max(0.0);
        let (victim_driver, aggressor_driver) = draw_driver(&mut rng, tech, corner);
        let spec = TwoPinSpec {
            l1,
            l2,
            l3,
            direction,
            victim_driver,
            aggressor_driver,
            victim_load: rng.random_range(tech.load_range.0..tech.load_range.1),
            aggressor_load: rng.random_range(tech.load_range.0..tech.load_range.1),
            segments_per_mm: 8,
        };
        let label = format!(
            "two_pin[{i}]{} l1={:.2}mm l2={:.2}mm l3={:.2}mm",
            if corner != Corner::None { " corner" } else { "" },
            l1 * 1e3,
            l2 * 1e3,
            l3 * 1e3
        );
        // Draw the input unconditionally so a failed build does not shift
        // the RNG stream of the remaining cases.
        let input = draw_input(&mut rng, tech, corner == Corner::StrongFast);
        drawn.push(DrawnCase { label, spec, input });
    }
    build_drawn(drawn, tech, jobs, TwoPinSpec::build)
}

/// Generates coupled RC-tree cases (Table 3).
///
/// As [`two_pin_cases`], specs that fail to build are collected in
/// [`SweepRun::failures`] rather than aborting the batch.
///
/// Equivalent to [`tree_cases_jobs`] with [`Jobs::Auto`].
pub fn tree_cases(tech: &Technology, far_end: bool, config: &SweepConfig) -> SweepRun {
    tree_cases_jobs(tech, far_end, config, Jobs::Auto)
}

/// [`tree_cases`] with an explicit worker-count policy for the
/// network-build pass (the RNG pass stays serial; see [`two_pin_cases_jobs`]).
pub fn tree_cases_jobs(
    tech: &Technology,
    far_end: bool,
    config: &SweepConfig,
    jobs: Jobs,
) -> SweepRun {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7ee_1000);
    let mut drawn = Vec::with_capacity(config.cases);
    for i in 0..config.cases {
        let corner = draw_corner(&mut rng, config.corner_fraction);
        let mut spec = random_tree(&mut rng, tech, far_end);
        let (vd, ad) = draw_driver(&mut rng, tech, corner);
        if corner != Corner::None {
            spec.victim_driver = vd;
            spec.aggressor_driver = ad;
        }
        let label = format!(
            "tree[{i}]{}",
            if corner != Corner::None { " corner" } else { "" }
        );
        let input = draw_input(&mut rng, tech, corner == Corner::StrongFast);
        drawn.push(DrawnCase { label, spec, input });
    }
    build_drawn(drawn, tech, jobs, TreeSpec::build)
}

/// A family of randomized case topologies, used by callers (like the
/// audit harness) that draw one case at a time from an explicit per-case
/// seed instead of walking a shared RNG stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseFamily {
    /// Two coupled pin-to-pin lines, far-end coupling (Table 1 regime).
    TwoPinFar,
    /// Two coupled pin-to-pin lines, near-end coupling (Table 2 regime).
    TwoPinNear,
    /// Coupled RC trees (Table 3 regime).
    Tree,
}

impl CaseFamily {
    /// All families, in rotation order.
    pub const ALL: [CaseFamily; 3] = [
        CaseFamily::TwoPinFar,
        CaseFamily::TwoPinNear,
        CaseFamily::Tree,
    ];

    /// Short machine-readable name (stable; used in reports).
    pub fn name(self) -> &'static str {
        match self {
            CaseFamily::TwoPinFar => "two_pin_far",
            CaseFamily::TwoPinNear => "two_pin_near",
            CaseFamily::Tree => "tree",
        }
    }
}

impl fmt::Display for CaseFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates exactly one case of `family` from its own `seed`, with the
/// same parameter distributions as the batch sweeps (25% corner cases).
///
/// Differential harnesses use this to give every audit case an
/// independent seed: a flagged case is then reproducible from `(family,
/// seed)` alone, without regenerating the rest of the batch.
///
/// # Errors
///
/// The [`SweepFailure`] of the drawn spec when it fails to build
/// (possible only with a degenerate [`Technology`]).
pub fn single_case(
    tech: &Technology,
    family: CaseFamily,
    seed: u64,
) -> Result<SweepCase, SweepFailure> {
    let config = SweepConfig {
        cases: 1,
        seed,
        corner_fraction: 0.25,
    };
    let mut run = match family {
        CaseFamily::TwoPinFar => {
            two_pin_cases_jobs(tech, CouplingDirection::FarEnd, &config, Jobs::Count(1))
        }
        CaseFamily::TwoPinNear => {
            two_pin_cases_jobs(tech, CouplingDirection::NearEnd, &config, Jobs::Count(1))
        }
        CaseFamily::Tree => tree_cases_jobs(tech, true, &config, Jobs::Count(1)),
    };
    match run.failures.pop() {
        Some(failure) => Err(failure),
        None => Ok(run
            .cases
            .pop()
            .expect("a one-case sweep without failures yields one case")),
    }
}

/// The Figure 5 sweep: `L2 = 0.5 mm`, `L3 = 1.5 mm`,
/// `L1 = 0.1 … 1.0 mm` in `points` steps, far-end, fixed mid-range
/// drivers and loads, 100 ps rising ramp.
///
/// # Errors
///
/// Returns the first [`SweepFailure`] when a sweep point fails to build
/// (possible only with a degenerate [`Technology`]).
///
/// # Panics
///
/// Panics when `points < 2` (a caller bug, not a data condition).
pub fn figure5_cases(
    tech: &Technology,
    points: usize,
) -> Result<Vec<(f64, SweepCase)>, SweepFailure> {
    assert!(points >= 2, "need at least two sweep points");
    let mut out = Vec::with_capacity(points);
    for k in 0..points {
        let l1 = 0.1e-3 + (1.0e-3 - 0.1e-3) * k as f64 / (points - 1) as f64;
        let spec = TwoPinSpec {
            l1,
            l2: 0.5e-3,
            l3: 1.5e-3,
            direction: CouplingDirection::FarEnd,
            victim_driver: 300.0,
            aggressor_driver: 200.0,
            victim_load: 20e-15,
            aggressor_load: 20e-15,
            segments_per_mm: 10,
        };
        let label = format!("figure5 L1={:.2}mm", l1 * 1e3);
        let (network, aggressor) = spec
            .build(tech)
            .map_err(|error| SweepFailure {
                label: label.clone(),
                error,
            })?;
        out.push((
            l1,
            SweepCase {
                label,
                network,
                aggressor,
                input: InputSignal::rising_ramp(0.0, 100e-12),
            },
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_are_reproducible() {
        let tech = Technology::p25();
        let cfg = SweepConfig {
            cases: 10,
            ..SweepConfig::default()
        };
        let a = two_pin_cases(&tech, CouplingDirection::FarEnd, &cfg);
        let b = two_pin_cases(&tech, CouplingDirection::FarEnd, &cfg);
        assert!(a.is_complete() && b.is_complete());
        let (a, b) = (a.cases, b.cases);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.network.node_count(), y.network.node_count());
            assert_eq!(x.input, y.input);
        }
    }

    #[test]
    fn parallel_build_matches_serial_build_exactly() {
        let tech = Technology::p25();
        let cfg = SweepConfig {
            cases: 40,
            ..SweepConfig::default()
        };
        let serial = two_pin_cases_jobs(&tech, CouplingDirection::FarEnd, &cfg, Jobs::Count(1));
        let par = two_pin_cases_jobs(&tech, CouplingDirection::FarEnd, &cfg, Jobs::Count(4));
        assert_eq!(serial.cases.len(), par.cases.len());
        for (a, b) in serial.cases.iter().zip(&par.cases) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.input, b.input);
            assert_eq!(a.network.node_count(), b.network.node_count());
        }
        let ts = tree_cases_jobs(&tech, true, &cfg, Jobs::Count(1));
        let tp = tree_cases_jobs(&tech, true, &cfg, Jobs::Count(5));
        assert_eq!(ts.cases.len(), tp.cases.len());
        for (a, b) in ts.cases.iter().zip(&tp.cases) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.network.node_count(), b.network.node_count());
        }
    }

    #[test]
    fn failure_ordering_is_stable_under_parallel_build() {
        // Every case fails against a corrupt technology; the failures
        // must come back in case-index order for any worker count.
        let mut tech = Technology::p25();
        tech.c_per_m = -tech.c_per_m;
        let cfg = SweepConfig {
            cases: 12,
            ..SweepConfig::default()
        };
        for jobs in [Jobs::Count(1), Jobs::Count(3), Jobs::Count(8)] {
            let run = two_pin_cases_jobs(&tech, CouplingDirection::FarEnd, &cfg, jobs);
            assert_eq!(run.failures.len(), 12);
            for (i, f) in run.failures.iter().enumerate() {
                assert!(
                    f.label.starts_with(&format!("two_pin[{i}]")),
                    "failure {i} out of order: {}",
                    f.label
                );
            }
        }
    }

    #[test]
    fn corner_cases_appear_at_requested_rate() {
        let tech = Technology::p25();
        let cfg = SweepConfig {
            cases: 300,
            seed: 42,
            corner_fraction: 0.5,
        };
        let cases = two_pin_cases(&tech, CouplingDirection::NearEnd, &cfg).cases;
        let corners = cases.iter().filter(|c| c.label.contains("corner")).count();
        assert!(
            (90..210).contains(&corners),
            "unexpected corner count {corners}"
        );
    }

    #[test]
    fn tree_sweep_builds_valid_cases() {
        let tech = Technology::p25();
        let cfg = SweepConfig {
            cases: 30,
            ..SweepConfig::default()
        };
        let run = tree_cases(&tech, true, &cfg);
        assert!(run.is_complete(), "{}", run.summary());
        for case in run.cases {
            assert!(case.network.node_count() > 4, "{}", case.label);
            assert!(case
                .network
                .couplings_between(case.aggressor, case.network.victim())
                .count() > 0);
        }
    }

    #[test]
    fn single_case_is_reproducible_from_family_and_seed() {
        let tech = Technology::p25();
        for family in CaseFamily::ALL {
            let a = single_case(&tech, family, 0xfeed).unwrap();
            let b = single_case(&tech, family, 0xfeed).unwrap();
            assert_eq!(a.label, b.label, "{family}");
            assert_eq!(a.input, b.input);
            assert_eq!(a.network.node_count(), b.network.node_count());
            // A different seed draws a different case.
            let c = single_case(&tech, family, 0xfeed + 1).unwrap();
            assert!(a.input != c.input || a.network.node_count() != c.network.node_count());
        }
    }

    #[test]
    fn single_case_reports_build_failures() {
        let mut tech = Technology::p25();
        tech.c_per_m = -tech.c_per_m;
        assert!(single_case(&tech, CaseFamily::TwoPinFar, 7).is_err());
    }

    #[test]
    fn figure5_sweep_spans_the_paper_range() {
        let tech = Technology::p25();
        let pts = figure5_cases(&tech, 10).unwrap();
        assert_eq!(pts.len(), 10);
        assert!((pts[0].0 - 0.1e-3).abs() < 1e-9);
        assert!((pts[9].0 - 1.0e-3).abs() < 1e-9);
        // Strictly increasing L1.
        for w in pts.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn corrupt_technology_degrades_instead_of_panicking() {
        // A negated wire capacitance (e.g. from a corrupt tech file) makes
        // every spec fail to build; the sweep must collect the failures
        // and report them rather than panic.
        let mut tech = Technology::p25();
        tech.c_per_m = -tech.c_per_m;
        let cfg = SweepConfig {
            cases: 5,
            ..SweepConfig::default()
        };
        let run = two_pin_cases(&tech, CouplingDirection::FarEnd, &cfg);
        assert!(run.cases.is_empty());
        assert_eq!(run.failures.len(), 5);
        assert!(!run.is_complete());
        assert!(run.summary().contains("5 failed"), "{}", run.summary());
        let trees = tree_cases(&tech, true, &cfg);
        assert_eq!(trees.cases.len() + trees.failures.len(), 5);
        assert!(!trees.is_complete());
        assert!(figure5_cases(&tech, 3).is_err());
    }

    #[test]
    fn inputs_mix_shapes_and_polarities() {
        let tech = Technology::p25();
        let cfg = SweepConfig {
            cases: 200,
            seed: 9,
            corner_fraction: 0.1,
        };
        let cases = two_pin_cases(&tech, CouplingDirection::FarEnd, &cfg).cases;
        let falling = cases
            .iter()
            .filter(|c| c.input.noise_polarity() < 0.0)
            .count();
        assert!(falling > 20, "only {falling} falling inputs in 200");
        assert!(falling < 180);
    }
}
