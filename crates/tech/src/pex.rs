//! PEX-shaped flat deck generation for full-chip screening workloads.
//!
//! [`BusSpec`](crate::BusSpec) builds one victim-centric [`Network`]
//! (xtalk_circuit::Network) in memory; screening needs the opposite: a
//! *flat extracted deck* with thousands of nets, written straight to a
//! stream, shaped like what a parasitic extractor emits — bus arrays
//! with all-pairs neighbour coupling (including aggressor–aggressor),
//! long element cards folded with SPICE `+` continuations, and benign
//! front-matter directives (`.GLOBAL`, `.TEMP`, `.SUBCKT` wrappers).
//! [`PexDeckSpec`] generates exactly that, deterministically, without
//! ever materializing a network — decks far larger than memory-feasible
//! whole-network analysis are cheap to emit.
//!
//! Each bus is electrically independent (no couplings cross buses), so
//! the coupled-cluster partitioner recovers one island per bus. Every
//! `weak_every`-th lane gets a `weak_factor`-times weaker driver; those
//! lanes are the deck's deliberate noise offenders, giving
//! screen-then-escalate pipelines a realistic (small) escalation rate.
//!
//! # Examples
//!
//! ```
//! use xtalk_tech::{PexDeckSpec, Technology};
//!
//! let spec = PexDeckSpec::new(2, 5, 3);
//! assert_eq!(spec.net_count(), 10);
//! let deck = spec.deck_string(&Technology::p25());
//! let network = xtalk_circuit::spice::parse_deck(&deck).unwrap();
//! assert_eq!(network.net_count(), 10);
//! ```

use crate::Technology;
use std::io::{self, Write};

/// Generator for a flat, PEX-shaped bus-array deck.
#[derive(Debug, Clone, PartialEq)]
pub struct PexDeckSpec {
    /// Number of independent buses (islands).
    pub buses: usize,
    /// Lanes per bus.
    pub bits: usize,
    /// RC segments per lane.
    pub segments: usize,
    /// Lane length (m).
    pub length: f64,
    /// Nominal driver resistance (Ω).
    pub driver: f64,
    /// Receiver load per lane (F).
    pub load: f64,
    /// Coupling fraction for second-nearest lanes (0 disables).
    pub second_neighbor_fraction: f64,
    /// `(bus, bit)` of the lane declared `victim` (everything else is
    /// declared `aggressor`; screening re-designates per net anyway).
    pub victim: (usize, usize),
    /// Every `weak_every`-th net gets a weak driver (0 disables).
    pub weak_every: usize,
    /// Weak-driver resistance multiplier.
    pub weak_factor: f64,
    /// Fold coupling cards with `+` continuation lines.
    pub fold_cards: bool,
    /// Emit benign `.GLOBAL`/`.TEMP`/`.OPTION` directives and a
    /// `.SUBCKT`/`.ENDS` wrapper around the elements (requires a
    /// lenient parser).
    pub benign_directives: bool,
}

impl PexDeckSpec {
    /// A spec with screening-calibrated defaults: 0.2 mm lanes, 30 Ω
    /// drivers with every 16th lane 8× weaker, 25 fF loads, second
    /// neighbours at 25%. At the stock screening thresholds (noise
    /// threshold 0.1 × Vdd, escalate at ratio 0.8) the weak lanes land
    /// near ratio 1.8 and every strong lane stays below 0.5 — so
    /// exactly `1/weak_every` of nets escalate, a realistic yield.
    #[must_use]
    pub fn new(buses: usize, bits: usize, segments: usize) -> Self {
        PexDeckSpec {
            buses,
            bits,
            segments,
            length: 0.2e-3,
            driver: 30.0,
            load: 25e-15,
            second_neighbor_fraction: 0.25,
            victim: (0, bits / 2),
            weak_every: 16,
            weak_factor: 8.0,
            fold_cards: false,
            benign_directives: false,
        }
    }

    /// Total nets in the generated deck.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.buses * self.bits
    }

    /// Driver resistance of net `idx` (weak lanes get
    /// `driver * weak_factor`).
    #[must_use]
    pub fn driver_of(&self, idx: usize) -> f64 {
        if self.weak_every > 0 && idx % self.weak_every == self.weak_every / 2 {
            self.driver * self.weak_factor
        } else {
            self.driver
        }
    }

    /// Writes the deck to `out`.
    ///
    /// # Errors
    ///
    /// Propagates `out`'s I/O errors.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized spec or a victim coordinate out of range.
    pub fn write_to<W: Write>(&self, tech: &Technology, out: &mut W) -> io::Result<()> {
        assert!(
            self.buses > 0 && self.bits > 0 && self.segments > 0,
            "spec dimensions must be positive"
        );
        assert!(
            self.victim.0 < self.buses && self.victim.1 < self.bits,
            "victim coordinate out of range"
        );
        let seg = self.length / self.segments as f64;
        let (r, c, cc) = (tech.wire_r(seg), tech.wire_c(seg), tech.wire_cc(seg));
        let victim_idx = self.victim.0 * self.bits + self.victim.1;
        let node = |idx: usize, s: usize| {
            let (bus, bit) = (idx / self.bits, idx % self.bits);
            format!("b{bus}_l{bit}_{s}")
        };

        writeln!(out, "* PEX-shaped bus array generated by xtalk-tech")?;
        writeln!(
            out,
            "* {} buses x {} bits x {} segments, {} nets",
            self.buses,
            self.bits,
            self.segments,
            self.net_count()
        )?;
        if self.benign_directives {
            writeln!(out, ".GLOBAL vdd vss")?;
            writeln!(out, ".TEMP 25")?;
            writeln!(out, ".OPTION post=1")?;
        }
        for idx in 0..self.net_count() {
            let (bus, bit) = (idx / self.bits, idx % self.bits);
            let role = if idx == victim_idx { "victim" } else { "aggressor" };
            writeln!(out, "*! net {idx} {role} bus{bus}_bit{bit}")?;
        }
        writeln!(out, "*! output {}", node(victim_idx, self.segments))?;
        if self.benign_directives {
            writeln!(out, ".SUBCKT core")?;
        }
        for idx in 0..self.net_count() {
            writeln!(out, "VDRV{idx} src{idx} 0 DC 0")?;
            writeln!(
                out,
                "RDRV{idx} src{idx} {} {}",
                node(idx, 0),
                self.driver_of(idx)
            )?;
        }
        let mut res = 0usize;
        let mut cap = 0usize;
        for idx in 0..self.net_count() {
            for s in 1..=self.segments {
                writeln!(out, "R{res} {} {} {r}", node(idx, s - 1), node(idx, s))?;
                res += 1;
                writeln!(out, "C{cap} {} 0 {c}", node(idx, s))?;
                cap += 1;
            }
            writeln!(out, "CL{idx} {} 0 {}", node(idx, self.segments), self.load)?;
        }
        // All-pairs neighbour coupling inside each bus, segment-aligned
        // — aggressor–aggressor pairs included, as a real extractor
        // reports them. Buses never couple: one island per bus.
        let mut ccn = 0usize;
        for bus in 0..self.buses {
            for bit in 0..self.bits {
                let idx = bus * self.bits + bit;
                for (other_bit, fraction) in
                    [(bit + 1, 1.0), (bit + 2, self.second_neighbor_fraction)]
                {
                    if other_bit >= self.bits || fraction == 0.0 {
                        continue;
                    }
                    let other = bus * self.bits + other_bit;
                    for s in 1..=self.segments {
                        let value = cc * fraction;
                        if self.fold_cards {
                            writeln!(
                                out,
                                "CC{ccn} {}\n+ {} {value}",
                                node(idx, s),
                                node(other, s)
                            )?;
                        } else {
                            writeln!(
                                out,
                                "CC{ccn} {} {} {value}",
                                node(idx, s),
                                node(other, s)
                            )?;
                        }
                        ccn += 1;
                    }
                }
            }
        }
        if self.benign_directives {
            writeln!(out, ".ENDS core")?;
        }
        writeln!(out, ".end")?;
        Ok(())
    }

    /// The deck as an in-memory string (small specs, tests, benches).
    ///
    /// # Panics
    ///
    /// As [`Self::write_to`].
    #[must_use]
    pub fn deck_string(&self, tech: &Technology) -> String {
        let mut out = Vec::new();
        self.write_to(tech, &mut out)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("generated decks are ASCII")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_circuit::cluster::CouplingClusters;
    use xtalk_circuit::spice::stream::{DeckIndex, StreamOptions};
    use xtalk_circuit::spice::parse_deck;

    #[test]
    fn deck_parses_and_partitions_one_island_per_bus() {
        let spec = PexDeckSpec::new(3, 4, 2);
        let deck = spec.deck_string(&Technology::p25());
        let network = parse_deck(&deck).unwrap();
        assert_eq!(network.net_count(), 12);
        let index =
            DeckIndex::from_reader(deck.as_bytes(), StreamOptions::default()).unwrap();
        let clusters = CouplingClusters::partition(&index);
        assert_eq!(clusters.len(), 3);
        for bus in 0..3 {
            let members: Vec<u32> = (bus * 4..bus * 4 + 4).map(|i| i as u32).collect();
            assert_eq!(clusters.members(bus), members.as_slice());
        }
    }

    #[test]
    fn folded_deck_parses_identically() {
        let mut spec = PexDeckSpec::new(2, 3, 2);
        let plain = spec.deck_string(&Technology::p25());
        spec.fold_cards = true;
        let folded = spec.deck_string(&Technology::p25());
        assert!(folded.lines().any(|l| l.starts_with('+')), "{folded}");
        let a = parse_deck(&plain).unwrap();
        let b = parse_deck(&folded).unwrap();
        assert_eq!(a.coupling_caps(), b.coupling_caps());
        assert_eq!(a.node_count(), b.node_count());
    }

    #[test]
    fn benign_directives_need_the_lenient_parser() {
        let mut spec = PexDeckSpec::new(1, 3, 2);
        spec.benign_directives = true;
        let deck = spec.deck_string(&Technology::p25());
        assert!(parse_deck(&deck).is_err(), "strict parse must reject");
        let index = DeckIndex::from_reader(
            deck.as_bytes(),
            StreamOptions {
                lenient: true,
                ..StreamOptions::default()
            },
        )
        .unwrap();
        assert_eq!(index.stats().skipped_directives, 5);
        assert_eq!(index.into_network().unwrap().net_count(), 3);
    }

    #[test]
    fn weak_lanes_appear_at_the_configured_cadence() {
        let spec = PexDeckSpec::new(4, 16, 2);
        let weak: Vec<usize> = (0..spec.net_count())
            .filter(|&i| spec.driver_of(i) > spec.driver * 2.0)
            .collect();
        assert_eq!(weak.len(), 4);
        assert_eq!(weak[0], 8);
        assert!(weak.windows(2).all(|w| w[1] - w[0] == 16));
    }

    #[test]
    fn output_directive_points_at_the_victim_sink() {
        let spec = PexDeckSpec::new(2, 5, 3);
        let deck = spec.deck_string(&Technology::p25());
        let network = parse_deck(&deck).unwrap();
        // Victim is bus 0 bit 2; its far-end node carries the output.
        assert_eq!(network.node_name(network.victim_output()), "b0_l2_3");
    }
}
