//! Technology parameters and coupling-circuit generators.
//!
//! The paper validates its metrics "in 0.25 µm technology for a variety of
//! coupling circuits, including two-pin nets and RC trees" (Figure 4),
//! sweeping coupling location, driver strengths and coupling lengths
//! (0.1–2.0 mm), plus extreme corner cases. This crate reproduces that
//! workload generator:
//!
//! * [`Technology`] — per-length wire R/C/Cc and device ranges
//!   ([`Technology::p25`] carries published-typical 0.25 µm values; the
//!   substitution rationale lives in `DESIGN.md`);
//! * [`TwoPinSpec`] — the Figure-4/Figure-5 parallel-wire circuit with
//!   lengths `L1` (coupling offset), `L2` (coupling length), `L3` (victim
//!   length) and a near-/far-end [`CouplingDirection`];
//! * [`TreeSpec`] / [`random_tree`] — coupled RC trees with branches;
//! * [`sweep`] — seeded random case generation for the Tables 1–3
//!   reproductions, including the paper's "drastically different driver
//!   sizes" corners.
//!
//! # Examples
//!
//! ```
//! use xtalk_circuit::units::*;
//! use xtalk_tech::{CouplingDirection, Technology, TwoPinSpec};
//!
//! let tech = Technology::p25();
//! let spec = TwoPinSpec {
//!     l1: mm(0.3),
//!     l2: mm(0.5),
//!     l3: mm(1.5),
//!     direction: CouplingDirection::FarEnd,
//!     victim_driver: 200.0,
//!     aggressor_driver: 150.0,
//!     victim_load: ff(20.0),
//!     aggressor_load: ff(20.0),
//!     segments_per_mm: 10,
//! };
//! let (network, aggressor) = spec.build(&tech).unwrap();
//! assert!(network.node_count() > 20);
//! assert_eq!(network.aggressor_nets().next().unwrap().0, aggressor);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod clusterspec;
mod pex;
mod technology;
mod tree;
mod two_pin;

pub mod sweep;

pub use bus::BusSpec;
pub use clusterspec::ClusterSpec;
pub use pex::PexDeckSpec;
pub use technology::Technology;
pub use tree::{random_tree, TreeSpec};
pub use two_pin::{CouplingDirection, TwoPinSpec};
