/// Interconnect technology parameters: per-length wire parasitics and the
/// device/signal ranges used in sweeps.
///
/// All values in base SI units (Ω/m, F/m, Ω, F, s).
///
/// # Examples
///
/// ```
/// let tech = xtalk_tech::Technology::p25();
/// // 1 mm of wire at 0.25 µm-class parasitics:
/// let r = tech.r_per_m * 1e-3;
/// let c = tech.c_per_m * 1e-3;
/// assert!(r > 10.0 && r < 500.0);      // tens of ohms per mm
/// assert!(c > 1e-14 && c < 5e-13);     // tens of fF per mm
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Display name.
    pub name: &'static str,
    /// Wire resistance per meter (Ω/m).
    pub r_per_m: f64,
    /// Wire ground (area + fringe) capacitance per meter (F/m).
    pub c_per_m: f64,
    /// Coupling capacitance per meter to a minimum-spaced neighbour (F/m).
    pub cc_per_m: f64,
    /// Equivalent driver resistance range (Ω): weakest … strongest swept.
    pub driver_range: (f64, f64),
    /// Receiver load range (F).
    pub load_range: (f64, f64),
    /// Input transition-time range (s).
    pub slew_range: (f64, f64),
}

impl Technology {
    /// Published-typical 0.25 µm-generation values (minimum-width,
    /// minimum-spacing routing — the geometry where crosstalk matters):
    ///
    /// * sheet ≈ 0.07 Ω/□ at ~0.32 µm width → ≈ 0.22 Ω/µm;
    /// * ground capacitance ≈ 0.05 fF/µm;
    /// * coupling capacitance ≈ 0.10 fF/µm (coupling dominates ground at
    ///   minimum pitch, as the deep-submicron literature emphasizes);
    /// * drivers from strong (30 Ω) to very weak (3 kΩ) to cover the
    ///   paper's "drastically different driver sizes" corners;
    /// * loads 2–50 fF, input slews 30–300 ps.
    pub fn p25() -> Self {
        Technology {
            name: "p25",
            r_per_m: 0.22e6,
            c_per_m: 0.05e-9,
            cc_per_m: 0.10e-9,
            driver_range: (30.0, 3000.0),
            load_range: (2e-15, 50e-15),
            slew_range: (30e-12, 300e-12),
        }
    }

    /// Published-typical 0.18 µm-generation values: thinner, narrower
    /// wires (higher resistance), slightly lower ground capacitance and a
    /// *higher* coupling share — the scaling trend that makes crosstalk a
    /// "performance-limiting factor" (the paper's opening motivation).
    pub fn p18() -> Self {
        Technology {
            name: "p18",
            r_per_m: 0.40e6,
            c_per_m: 0.04e-9,
            cc_per_m: 0.11e-9,
            driver_range: (25.0, 2500.0),
            load_range: (1.5e-15, 40e-15),
            slew_range: (20e-12, 250e-12),
        }
    }

    /// Published-typical 0.13 µm-generation values, continuing the trend.
    pub fn p13() -> Self {
        Technology {
            name: "p13",
            r_per_m: 0.75e6,
            c_per_m: 0.035e-9,
            cc_per_m: 0.12e-9,
            driver_range: (20.0, 2000.0),
            load_range: (1e-15, 30e-15),
            slew_range: (15e-12, 200e-12),
        }
    }

    /// Coupling-to-total capacitance ratio at minimum pitch — the headline
    /// scaling indicator (`cc/(cc + c)` grows node over node).
    pub fn coupling_fraction(&self) -> f64 {
        self.cc_per_m / (self.cc_per_m + self.c_per_m)
    }

    /// Total wire resistance of `length` meters (Ω).
    pub fn wire_r(&self, length: f64) -> f64 {
        self.r_per_m * length
    }

    /// Total wire ground capacitance of `length` meters (F).
    pub fn wire_c(&self, length: f64) -> f64 {
        self.c_per_m * length
    }

    /// Total coupling capacitance over `length` meters of parallel run (F).
    pub fn wire_cc(&self, length: f64) -> f64 {
        self.cc_per_m * length
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p25_values_are_in_expected_ranges() {
        let t = Technology::p25();
        // per-µm sanity: 0.05..0.3 Ω/µm, 0.03..0.12 fF/µm.
        let r_um = t.r_per_m * 1e-6;
        let c_um = t.c_per_m * 1e-6;
        let cc_um = t.cc_per_m * 1e-6;
        assert!((0.05..0.3).contains(&r_um));
        assert!((0.03e-15..0.12e-15).contains(&c_um));
        assert!(cc_um > c_um, "coupling dominates ground at min pitch");
        assert!(t.driver_range.0 < t.driver_range.1);
        assert!(t.load_range.0 < t.load_range.1);
        assert!(t.slew_range.0 < t.slew_range.1);
    }

    #[test]
    fn coupling_fraction_grows_with_scaling() {
        let p25 = Technology::p25().coupling_fraction();
        let p18 = Technology::p18().coupling_fraction();
        let p13 = Technology::p13().coupling_fraction();
        assert!(p25 < p18 && p18 < p13, "{p25} {p18} {p13}");
        assert!(p25 > 0.5, "coupling already dominates at 0.25um");
    }

    #[test]
    fn resistance_grows_with_scaling() {
        assert!(Technology::p18().r_per_m > Technology::p25().r_per_m);
        assert!(Technology::p13().r_per_m > Technology::p18().r_per_m);
    }

    #[test]
    fn wire_totals_scale_linearly() {
        let t = Technology::p25();
        assert!((t.wire_r(2e-3) - 2.0 * t.wire_r(1e-3)).abs() < 1e-9);
        assert!((t.wire_c(1e-3) - t.c_per_m * 1e-3).abs() < 1e-20);
        assert!((t.wire_cc(0.5e-3) - t.cc_per_m * 0.5e-3).abs() < 1e-20);
    }
}
