use crate::Technology;
use rand::rngs::StdRng;
use rand::Rng;
use xtalk_circuit::{CircuitError, NetId, NetRole, Network, NetworkBuilder, NodeId};

/// A coupled RC-tree circuit: a victim *tree* (trunk plus side branches,
/// one sink per branch end) with an aggressor coupled along a window of
/// the trunk — the "tree structures" workload of the paper's Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSpec {
    /// Trunk length from driver to the primary (observed) sink (m).
    pub trunk: f64,
    /// Side branches as `(attach_position, branch_length)` in meters;
    /// `attach_position` is measured along the trunk from the driver.
    pub branches: Vec<(f64, f64)>,
    /// Coupling window `(start, length)` along the trunk (m).
    pub coupling: (f64, f64),
    /// Victim equivalent driver resistance (Ω).
    pub victim_driver: f64,
    /// Aggressor equivalent driver resistance (Ω).
    pub aggressor_driver: f64,
    /// Load at the primary sink and each branch sink (F).
    pub load: f64,
    /// Aggressor receiver load (F).
    pub aggressor_load: f64,
    /// `true` → far-end orientation (aggressor driver on the victim-driver
    /// side of the window).
    pub far_end: bool,
    /// Spatial discretization (segments per mm).
    pub segments_per_mm: usize,
}

impl TreeSpec {
    /// Builds the coupled network. Returns `(network, aggressor_net)`.
    ///
    /// # Errors
    ///
    /// Propagates element validation failures.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (window or attachments outside the
    /// trunk, non-positive lengths).
    pub fn build(&self, tech: &Technology) -> Result<(Network, NetId), CircuitError> {
        assert!(self.trunk > 0.0, "trunk length must be positive");
        let (c_start, c_len) = self.coupling;
        assert!(c_len > 0.0, "coupling length must be positive");
        assert!(
            c_start >= 0.0 && c_start + c_len <= self.trunk * (1.0 + 1e-9),
            "coupling window outside the trunk"
        );
        for &(at, len) in &self.branches {
            assert!(
                (0.0..=self.trunk).contains(&at) && len > 0.0,
                "branch attachment outside the trunk or non-positive length"
            );
        }
        assert!(self.segments_per_mm > 0, "need at least one segment per mm");

        let mut b = NetworkBuilder::new();
        let vic = b.add_net("victim", NetRole::Victim);
        let agg = b.add_net("aggressor", NetRole::Aggressor);

        let seg_len = 1e-3 / self.segments_per_mm as f64;
        let n_trunk = ((self.trunk / seg_len).ceil() as usize).max(2);
        let seg = self.trunk / n_trunk as f64;

        // Trunk chain; remember each node's position.
        let root = b.add_node(vic, "v_drv");
        b.add_driver(vic, root, self.victim_driver)?;
        let mut trunk_nodes: Vec<(f64, NodeId)> = vec![(0.0, root)];
        for i in 1..=n_trunk {
            let node = b.add_node(vic, format!("v_t{i}"));
            b.add_resistor(trunk_nodes[i - 1].1, node, tech.wire_r(seg))?;
            b.add_ground_cap(node, tech.wire_c(seg))?;
            trunk_nodes.push((i as f64 * seg, node));
        }
        let out = trunk_nodes[n_trunk].1;
        b.add_sink(out, self.load)?;
        b.set_victim_output(out);

        // Side branches: attach at the nearest trunk node.
        for (bi, &(at, len)) in self.branches.iter().enumerate() {
            let attach = trunk_nodes
                .iter()
                .min_by(|a, c| {
                    (a.0 - at)
                        .abs()
                        .partial_cmp(&(c.0 - at).abs())
                        .expect("positions are finite")
                })
                .expect("trunk has nodes")
                .1;
            let n = ((len / seg_len).ceil() as usize).max(1);
            let bseg = len / n as f64;
            let mut prev = attach;
            for i in 0..n {
                let node = b.add_node(vic, format!("v_b{bi}_{i}"));
                b.add_resistor(prev, node, tech.wire_r(bseg))?;
                b.add_ground_cap(node, tech.wire_c(bseg))?;
                prev = node;
            }
            b.add_sink(prev, self.load)?;
        }

        // Aggressor along the coupling window of the trunk.
        let coupled: Vec<NodeId> = trunk_nodes
            .iter()
            .filter(|(pos, _)| *pos > c_start && *pos <= c_start + c_len + seg * 0.5)
            .map(|&(_, n)| n)
            .collect();
        assert!(
            !coupled.is_empty(),
            "coupling window too short for the discretization"
        );
        let n_c = coupled.len();
        let aseg = c_len / n_c as f64;
        let mut agg_nodes = Vec::with_capacity(n_c + 1);
        agg_nodes.push(b.add_node(agg, "a_0"));
        for i in 1..=n_c {
            let node = b.add_node(agg, format!("a_{i}"));
            b.add_resistor(agg_nodes[i - 1], node, tech.wire_r(aseg))?;
            b.add_ground_cap(node, tech.wire_c(aseg))?;
            agg_nodes.push(node);
        }
        let (drv, load) = if self.far_end {
            (agg_nodes[0], agg_nodes[n_c])
        } else {
            (agg_nodes[n_c], agg_nodes[0])
        };
        b.add_driver(agg, drv, self.aggressor_driver)?;
        b.add_sink(load, self.aggressor_load)?;
        for (i, &vn) in coupled.iter().enumerate() {
            b.add_coupling_cap(agg_nodes[i + 1], vn, tech.wire_cc(aseg))?;
        }

        let network = b.build()?;
        Ok((network, agg))
    }
}

/// Draws a random [`TreeSpec`] in the paper's sweep ranges: trunk
/// 0.5–2.5 mm, 1–3 side branches, coupling window 0.1–2.0 mm clamped to
/// the trunk, drivers and loads from `tech`'s ranges.
pub fn random_tree(rng: &mut StdRng, tech: &Technology, far_end: bool) -> TreeSpec {
    let trunk = rng.random_range(0.5e-3..2.5e-3);
    let n_branches = rng.random_range(1..4);
    let branches = (0..n_branches)
        .map(|_| {
            (
                rng.random_range(0.1..0.9) * trunk,
                rng.random_range(0.1e-3..0.8e-3),
            )
        })
        .collect();
    let window: f64 = rng.random_range(0.1e-3..2.0e-3);
    let c_len = window.min(trunk * rng.random_range(0.3..1.0));
    let c_start = rng.random_range(0.0..(trunk - c_len).max(1e-6));
    TreeSpec {
        trunk,
        branches,
        coupling: (c_start, c_len),
        victim_driver: rng.random_range(tech.driver_range.0..tech.driver_range.1),
        aggressor_driver: rng.random_range(tech.driver_range.0..tech.driver_range.1),
        load: rng.random_range(tech.load_range.0..tech.load_range.1),
        aggressor_load: rng.random_range(tech.load_range.0..tech.load_range.1),
        far_end,
        segments_per_mm: 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn spec() -> TreeSpec {
        TreeSpec {
            trunk: 1.5e-3,
            branches: vec![(0.5e-3, 0.4e-3), (1.0e-3, 0.3e-3)],
            coupling: (0.4e-3, 0.6e-3),
            victim_driver: 250.0,
            aggressor_driver: 180.0,
            load: 15e-15,
            aggressor_load: 12e-15,
            far_end: true,
            segments_per_mm: 8,
        }
    }

    #[test]
    fn tree_builds_with_branch_sinks() {
        let (net, agg) = spec().build(&Technology::p25()).unwrap();
        // One primary + two branch sinks on the victim.
        assert_eq!(net.victim_net().sinks().len(), 3);
        assert_eq!(net.net(agg).sinks().len(), 1);
        // Coupling total tracks the window length.
        let tech = Technology::p25();
        let cc: f64 = net
            .couplings_between(agg, net.victim())
            .map(|(_, _, f)| f)
            .sum();
        assert!((cc - tech.wire_cc(0.6e-3)).abs() < 0.05 * cc, "cc = {cc}");
    }

    #[test]
    fn victim_resistance_includes_branches() {
        let tech = Technology::p25();
        let (net, _) = spec().build(&tech).unwrap();
        let expect = tech.wire_r(1.5e-3 + 0.4e-3 + 0.3e-3);
        let got = net.net_total_res(net.victim());
        assert!((got - expect).abs() < 0.02 * expect, "{got} vs {expect}");
    }

    #[test]
    fn random_trees_build_and_validate() {
        let tech = Technology::p25();
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..100 {
            let spec = random_tree(&mut rng, &tech, i % 2 == 0);
            let (net, agg) = spec.build(&tech).unwrap();
            assert!(net.node_count() > 4, "case {i}");
            assert!(net.couplings_between(agg, net.victim()).count() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "coupling window outside")]
    fn window_beyond_trunk_panics() {
        let mut s = spec();
        s.coupling = (1.2e-3, 0.6e-3);
        let _ = s.build(&Technology::p25());
    }
}
