//! Minimal shared argument parsing for the experiment binaries
//! (`--cases N`, `--seed S`, `--corners F`, `--jobs N|auto`,
//! `--quiet`). Unknown flags abort with a usage message; no dependency
//! on an argument-parsing crate.

use xtalk_exec::Jobs;
use xtalk_tech::sweep::SweepConfig;

/// Parsed standard sweep flags.
#[derive(Debug, Clone, Copy)]
pub struct SweepArgs {
    /// Case count / seed / corner fraction.
    pub config: SweepConfig,
    /// Worker-count policy for generation + evaluation (`--jobs`,
    /// default auto: `XTALK_JOBS` env var, then the hardware
    /// parallelism). Results are identical for every value; `--jobs 1`
    /// is the serial reference path.
    pub jobs: Jobs,
    /// Silence banners, progress and warnings (`--quiet`). Also flips
    /// the process-wide [`xtalk_obs::set_quiet`] switch, so library-level
    /// warnings are suppressed (but still counted in `warnings.total`).
    pub quiet: bool,
}

/// Parses the standard sweep flags from `std::env::args`.
pub fn config_from_args(bin: &str) -> SweepArgs {
    let mut config = SweepConfig::default();
    let mut jobs = Jobs::Auto;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{bin}: {flag} needs a {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--cases" => {
                config.cases = take("count").parse().unwrap_or_else(|_| {
                    eprintln!("{bin}: bad --cases value");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                config.seed = take("seed").parse().unwrap_or_else(|_| {
                    eprintln!("{bin}: bad --seed value");
                    std::process::exit(2);
                })
            }
            "--corners" => {
                config.corner_fraction = take("fraction").parse().unwrap_or_else(|_| {
                    eprintln!("{bin}: bad --corners value");
                    std::process::exit(2);
                })
            }
            "--jobs" => {
                jobs = Jobs::parse(&take("count or \"auto\"")).unwrap_or_else(|e| {
                    eprintln!("{bin}: {e}");
                    std::process::exit(2);
                })
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: {bin} [--cases N] [--seed S] [--corners F] [--jobs N|auto] [--quiet]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("{bin}: unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    xtalk_obs::set_quiet(quiet);
    SweepArgs { config, jobs, quiet }
}
