use std::fmt;
use xtalk_core::baselines::{devgan, lumped_pi, vittal, yu_one_pole, yu_two_pole, BaselineEstimate};
use xtalk_core::{MetricError, MetricKind, MomentBatch, NoiseAnalyzer, OutputMoments};
use xtalk_moments::{tree, TwoPoleFit};
use xtalk_sim::{golden_noise_with, NoiseWaveformParams, SimWorkspace};
use xtalk_tech::sweep::SweepCase;

/// The analytical metrics compared in the paper's tables, column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Method {
    /// Yu's improved one-pole model (ref. 17).
    YuOnePole,
    /// Yu's two-pole matching model (ref. 17).
    YuTwoPole,
    /// Devgan's bound (ref. 7).
    Devgan,
    /// Vittal's simplified metric (ref. 13).
    Vittal,
    /// New metric I (piecewise-linear template).
    NewOne,
    /// New metric II (linear-exponential template, default λ).
    NewTwo,
}

/// All methods in paper column order.
pub const ALL_METHODS: [Method; 6] = [
    Method::YuOnePole,
    Method::YuTwoPole,
    Method::Devgan,
    Method::Vittal,
    Method::NewOne,
    Method::NewTwo,
];

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Method::YuOnePole => "Yu 1-pole [17]",
            Method::YuTwoPole => "Yu 2-pole [17]",
            Method::Devgan => "Devgan [7]",
            Method::Vittal => "Vittal [13]",
            Method::NewOne => "new I",
            Method::NewTwo => "new II",
        };
        f.write_str(name)
    }
}

/// The waveform parameters reported per table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Param {
    /// Peak amplitude.
    Vp,
    /// Pulse width.
    Wn,
    /// Peak-occurrence time.
    Tp,
    /// First transition time.
    T1,
    /// Second transition time.
    T2,
}

/// All parameters in paper row order.
pub const ALL_PARAMS: [Param; 5] = [Param::Vp, Param::Wn, Param::Tp, Param::T1, Param::T2];

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Param::Vp => "Vp",
            Param::Wn => "Wn",
            Param::Tp => "Tp",
            Param::T1 => "T1",
            Param::T2 => "T2",
        };
        f.write_str(name)
    }
}

/// Per-method estimates of one case, alongside the golden measurement.
#[derive(Debug)]
pub struct CaseOutcome {
    /// Golden (simulated) waveform parameters.
    pub golden: NoiseWaveformParams,
    /// Per-method estimates in [`ALL_METHODS`] order; `None` = the method
    /// produced no estimate for this circuit (e.g. unstable two-pole fit).
    pub estimates: [Option<BaselineEstimate>; 6],
    /// Lumped-π peak (used by the Figure 5 sweep, not the tables).
    pub lumped_vp: Option<f64>,
}

impl CaseOutcome {
    /// The value a method predicts for a parameter, if any.
    pub fn predicted(&self, method: Method, param: Param) -> Option<f64> {
        let est = self
            .estimates
            .iter()
            .zip(ALL_METHODS)
            .find(|(_, m)| *m == method)?
            .0
            .as_ref()?;
        match param {
            Param::Vp => est.vp,
            Param::Wn => est.wn,
            Param::Tp => est.tp,
            Param::T1 => est.t1,
            Param::T2 => est.t2,
        }
    }

    /// The golden value of a parameter.
    pub fn golden_value(&self, param: Param) -> f64 {
        match param {
            Param::Vp => self.golden.vp,
            Param::Wn => self.golden.wn,
            Param::Tp => self.golden.tp,
            Param::T1 => self.golden.t1,
            Param::T2 => self.golden.t2,
        }
    }
}

fn full(e: xtalk_core::NoiseEstimate) -> BaselineEstimate {
    BaselineEstimate {
        vp: Some(e.vp),
        tp: Some(e.tp),
        wn: Some(e.wn),
        t1: Some(e.t1),
        t2: Some(e.t2),
    }
}

/// Evaluates one sweep case: golden simulation plus all six analytical
/// metrics. Returns `Err(reason)` when the case cannot be scored at all
/// (no measurable pulse, or the closed-form moments degenerate) — such
/// cases are counted as skipped by the table statistics.
///
/// # Errors
///
/// Returns a human-readable skip reason (not a failure of the harness).
pub fn evaluate_case(case: &SweepCase) -> Result<CaseOutcome, String> {
    evaluate_case_with(case, &mut SimWorkspace::new())
}

/// [`evaluate_case`] reusing a caller-provided simulation workspace.
///
/// Batch evaluation keeps one [`SimWorkspace`] per worker thread so
/// consecutive cases recycle the solver buffers (and the horizon-retry
/// loop within a case reuses its factorization). Results are
/// bit-identical to [`evaluate_case`].
///
/// # Errors
///
/// As [`evaluate_case`].
pub fn evaluate_case_with(
    case: &SweepCase,
    workspace: &mut SimWorkspace,
) -> Result<CaseOutcome, String> {
    let prepared = prepare_case_with(case, workspace)?;
    let new_one = NoiseAnalyzer::estimate_for(&prepared.moments, prepared.t_r, MetricKind::One)
        .map(full)
        .map_err(|e| format!("new metric I: {e}"))?;
    let new_two = NoiseAnalyzer::estimate_for(&prepared.moments, prepared.t_r, MetricKind::Two)
        .map(full)
        .map_err(|e| format!("new metric II: {e}"))?;
    Ok(prepared.into_outcome(new_one, new_two))
}

/// A case with its golden simulation, moments and baseline metrics done,
/// waiting for the batched closed-form stage ([`finalize_outcomes`]).
pub(crate) struct PreparedCase {
    golden: NoiseWaveformParams,
    /// Prior-art estimates in `[yu1, yu2, devgan, vittal]` order.
    baselines: [Option<BaselineEstimate>; 4],
    lumped_vp: Option<f64>,
    moments: OutputMoments,
    t_r: f64,
}

impl PreparedCase {
    fn into_outcome(self, new_one: BaselineEstimate, new_two: BaselineEstimate) -> CaseOutcome {
        let [yu1, yu2, dev, vit] = self.baselines;
        CaseOutcome {
            golden: self.golden,
            estimates: [yu1, yu2, dev, vit, Some(new_one), Some(new_two)],
            lumped_vp: self.lumped_vp,
        }
    }
}

/// Everything in [`evaluate_case_with`] except the closed-form metric
/// formulas: golden simulation, screening, output moments and prior-art
/// baselines. The parallel sweep runs this per case, then evaluates the
/// paper's metrics over all prepared cases at once through the
/// structure-of-arrays kernel (bit-identical to the scalar path).
pub(crate) fn prepare_case_with(
    case: &SweepCase,
    workspace: &mut SimWorkspace,
) -> Result<PreparedCase, String> {
    let net = &case.network;
    let agg = case.aggressor;
    let input = &case.input;

    // Golden: transient simulation + waveform measurement; the shared
    // helper grows the horizon on slow tails.
    let golden = golden_noise_with(net, &[(agg, *input)], net.victim_output(), workspace)
        .map_err(|e| format!("golden measurement: {e}"))?;
    // Screening threshold: pulses below 0.5% of Vdd are what the standard
    // flow filters out before detailed analysis; scoring relative errors on
    // them only measures numerical noise.
    if golden.vp < 5e-3 {
        return Err(format!("negligible pulse ({:.1e} Vdd)", golden.vp));
    }

    // Shared analytical inputs.
    let analyzer = NoiseAnalyzer::new(net).map_err(|e| format!("analyzer: {e}"))?;
    let h = analyzer
        .transfer_taylor(agg)
        .map_err(|e| format!("moments: {e}"))?;
    let b1_shared = tree::open_circuit_b1(net);

    // The moment lane the closed-form metrics consume; a case whose
    // coupling vanishes at the output fails here with the same skip reason
    // the scalar metric path reports.
    let moments = OutputMoments::from_transfer(&h, input)
        .map_err(|e| format!("new metric I: {e}"))?;

    let as_opt = |r: Result<BaselineEstimate, MetricError>| r.ok();
    let yu1 = as_opt(yu_one_pole(&h, input));
    let yu2 = TwoPoleFit::from_taylor(&h)
        .ok()
        .and_then(|fit| yu_two_pole(&fit, input).ok());
    let dev = as_opt(devgan(h[1], input));
    let vit = Some(vittal(h[1], b1_shared, input));
    let lumped_vp = lumped_pi(net, agg, input).ok().and_then(|e| e.vp);

    Ok(PreparedCase {
        golden,
        baselines: [yu1, yu2, dev, vit],
        lumped_vp,
        moments,
        t_r: input.effective_rise_time(),
    })
}

/// The batched closed-form stage: evaluates Metric I and II over every
/// prepared case through [`MomentBatch`] (flat arrays, amortized counters)
/// and assembles the final outcomes in case order. Lane values are
/// bit-identical to the per-case scalar path of [`evaluate_case_with`],
/// and failed lanes reproduce its skip reasons.
pub(crate) fn finalize_outcomes(
    prepared: Vec<Result<PreparedCase, String>>,
) -> Vec<Result<CaseOutcome, String>> {
    let _span = xtalk_obs::span!("eval.metrics");
    let mut batch = MomentBatch::with_capacity(prepared.iter().filter(|p| p.is_ok()).count());
    for p in prepared.iter().flatten() {
        batch.push(&p.moments, p.t_r);
    }
    let one = batch.estimates(MetricKind::One);
    let two = batch.estimates(MetricKind::Two);
    let mut lane = 0usize;
    prepared
        .into_iter()
        .map(|p| {
            let p = p?;
            let i = lane;
            lane += 1;
            let new_one = one
                .result(i)
                .map(full)
                .map_err(|e| format!("new metric I: {e}"))?;
            let new_two = two
                .result(i)
                .map(full)
                .map_err(|e| format!("new metric II: {e}"))?;
            Ok(p.into_outcome(new_one, new_two))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_tech::sweep::{two_pin_cases, SweepConfig};
    use xtalk_tech::{CouplingDirection, Technology};

    #[test]
    fn batched_stage_matches_scalar_path() {
        // The SoA stage must reproduce the scalar per-case path exactly:
        // same outcomes (bit-identical fields) and same skip reasons.
        let tech = Technology::p25();
        let cfg = SweepConfig {
            cases: 8,
            seed: 7,
            corner_fraction: 0.2,
        };
        let cases = two_pin_cases(&tech, CouplingDirection::FarEnd, &cfg).cases;
        let mut ws = SimWorkspace::new();
        let prepared: Vec<_> = cases
            .iter()
            .map(|c| prepare_case_with(c, &mut ws))
            .collect();
        let batched = finalize_outcomes(prepared);
        assert_eq!(batched.len(), cases.len());
        for (case, b) in cases.iter().zip(&batched) {
            let scalar = evaluate_case_with(case, &mut ws);
            assert_eq!(format!("{b:?}"), format!("{scalar:?}"));
        }
    }

    #[test]
    fn outcome_exposes_predictions_per_method() {
        let tech = Technology::p25();
        let cfg = SweepConfig {
            cases: 3,
            seed: 11,
            corner_fraction: 0.0,
        };
        let cases = two_pin_cases(&tech, CouplingDirection::FarEnd, &cfg).cases;
        let outcome = evaluate_case(&cases[0]).expect("case evaluates");
        // New metrics always report everything.
        for p in ALL_PARAMS {
            assert!(outcome.predicted(Method::NewOne, p).is_some());
            assert!(outcome.predicted(Method::NewTwo, p).is_some());
        }
        // Devgan reports only Vp.
        assert!(outcome.predicted(Method::Devgan, Param::Vp).is_some());
        assert!(outcome.predicted(Method::Devgan, Param::Wn).is_none());
        // Vittal reports Vp and Wn.
        assert!(outcome.predicted(Method::Vittal, Param::Wn).is_some());
        assert!(outcome.predicted(Method::Vittal, Param::Tp).is_none());
        assert!(outcome.golden_value(Param::Vp) > 0.0);
    }
}
