//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section.
//!
//! | Paper artifact | Entry point | Binary |
//! |----------------|-------------|--------|
//! | Table 1 (two-pin, far-end) | [`run_two_pin_table`] | `table1` |
//! | Table 2 (two-pin, near-end) | [`run_two_pin_table`] | `table2` |
//! | Table 3 (trees, far-end) | [`run_tree_table`] | `table3` |
//! | Figure 5 (coupling location) | [`run_figure5`] | `figure5` |
//!
//! Each table compares six analytical metrics against the golden transient
//! simulation over a seeded random sweep, reporting max-positive,
//! max-negative and mean-absolute error percentages per waveform
//! parameter — the same statistics the paper prints. Error% =
//! `(estimate − golden)/golden × 100`; a method's missing parameter is
//! "N/A", and two-pole instabilities are counted separately (the paper's
//! "may not offer a solution" remark).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod case_eval;
pub mod cli;
mod delay_eval;
mod figure5;
mod lambda;
pub mod plot;
mod stats;
mod table;

pub use case_eval::{evaluate_case, CaseOutcome, Method, Param, ALL_METHODS, ALL_PARAMS};
pub use delay_eval::{render_delay_table, run_delay_table, DelayRow};
pub use figure5::{render_figure5, run_figure5, Figure5Row};
pub use lambda::{lambda_sweep, render_lambda, LambdaRow};
pub use stats::{ErrorStats, TableStats};
pub use table::render_table;

use xtalk_tech::sweep::{tree_cases, two_pin_cases, SweepCase, SweepConfig, SweepRun};
use xtalk_tech::{CouplingDirection, Technology};

/// Runs a Table 1/2-style evaluation: `config.cases` random two-pin
/// circuits with the given coupling direction.
pub fn run_two_pin_table(
    tech: &Technology,
    direction: CouplingDirection,
    config: &SweepConfig,
    progress: bool,
) -> TableStats {
    evaluate_run(&two_pin_cases(tech, direction, config), progress)
}

/// Runs the Table 3-style evaluation over random coupled RC trees
/// (far-end, as in the paper).
pub fn run_tree_table(tech: &Technology, config: &SweepConfig, progress: bool) -> TableStats {
    evaluate_run(&tree_cases(tech, true, config), progress)
}

/// Evaluates a sweep run: cases that failed to generate are folded into
/// the statistics (and the rendered summary) instead of aborting the
/// batch.
pub fn evaluate_run(run: &SweepRun, progress: bool) -> TableStats {
    let mut stats = evaluate_cases(&run.cases, progress);
    for failure in &run.failures {
        stats.record_generation_failure(&failure.to_string());
    }
    stats
}

/// Evaluates a pre-generated case list.
pub fn evaluate_cases(cases: &[SweepCase], progress: bool) -> TableStats {
    let mut stats = TableStats::new();
    for (i, case) in cases.iter().enumerate() {
        if progress && i % 50 == 0 {
            eprintln!("  case {i}/{} …", cases.len());
        }
        match evaluate_case(case) {
            Ok(outcome) => stats.record(&outcome),
            Err(reason) => stats.record_skip(&reason),
        }
    }
    stats
}
