//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section.
//!
//! | Paper artifact | Entry point | Binary |
//! |----------------|-------------|--------|
//! | Table 1 (two-pin, far-end) | [`run_two_pin_table`] | `table1` |
//! | Table 2 (two-pin, near-end) | [`run_two_pin_table`] | `table2` |
//! | Table 3 (trees, far-end) | [`run_tree_table`] | `table3` |
//! | Figure 5 (coupling location) | [`run_figure5`] | `figure5` |
//!
//! Each table compares six analytical metrics against the golden transient
//! simulation over a seeded random sweep, reporting max-positive,
//! max-negative and mean-absolute error percentages per waveform
//! parameter — the same statistics the paper prints. Error% =
//! `(estimate − golden)/golden × 100`; a method's missing parameter is
//! "N/A", and two-pole instabilities are counted separately (the paper's
//! "may not offer a solution" remark).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod case_eval;
pub mod cli;
mod delay_eval;
mod figure5;
mod lambda;
pub mod plot;
pub mod screen;
mod stats;
mod table;

pub use case_eval::{
    evaluate_case, evaluate_case_with, CaseOutcome, Method, Param, ALL_METHODS, ALL_PARAMS,
};
pub use delay_eval::{render_delay_table, run_delay_table, DelayRow};
pub use figure5::{render_figure5, run_figure5, Figure5Row};
pub use lambda::{lambda_sweep, render_lambda, LambdaRow};
pub use stats::{ErrorStats, TableStats};
pub use table::render_table;

use std::sync::atomic::{AtomicUsize, Ordering};
use xtalk_exec::{par_map_indexed_with, Jobs};
use xtalk_sim::SimWorkspace;
use xtalk_tech::sweep::{tree_cases_jobs, two_pin_cases_jobs, SweepCase, SweepConfig, SweepRun};
use xtalk_tech::{CouplingDirection, Technology};

/// Runs a Table 1/2-style evaluation: `config.cases` random two-pin
/// circuits with the given coupling direction. Equivalent to
/// [`run_two_pin_table_jobs`] with [`Jobs::Auto`].
pub fn run_two_pin_table(
    tech: &Technology,
    direction: CouplingDirection,
    config: &SweepConfig,
    progress: bool,
) -> TableStats {
    run_two_pin_table_jobs(tech, direction, config, progress, Jobs::Auto)
}

/// [`run_two_pin_table`] with an explicit worker-count policy.
///
/// Case generation draws serially (seed-reproducible) and builds in
/// parallel; case evaluation — the dominant cost, one golden transient
/// simulation per case — fans out over the workers. The resulting
/// statistics, and the table rendered from them, are bit-identical for
/// every `jobs` value.
pub fn run_two_pin_table_jobs(
    tech: &Technology,
    direction: CouplingDirection,
    config: &SweepConfig,
    progress: bool,
    jobs: Jobs,
) -> TableStats {
    evaluate_run_jobs(
        &two_pin_cases_jobs(tech, direction, config, jobs),
        progress,
        jobs,
    )
}

/// Runs the Table 3-style evaluation over random coupled RC trees
/// (far-end, as in the paper). Equivalent to [`run_tree_table_jobs`]
/// with [`Jobs::Auto`].
pub fn run_tree_table(tech: &Technology, config: &SweepConfig, progress: bool) -> TableStats {
    run_tree_table_jobs(tech, config, progress, Jobs::Auto)
}

/// [`run_tree_table`] with an explicit worker-count policy (see
/// [`run_two_pin_table_jobs`] for the determinism contract).
pub fn run_tree_table_jobs(
    tech: &Technology,
    config: &SweepConfig,
    progress: bool,
    jobs: Jobs,
) -> TableStats {
    evaluate_run_jobs(&tree_cases_jobs(tech, true, config, jobs), progress, jobs)
}

/// Evaluates a sweep run: cases that failed to generate are folded into
/// the statistics (and the rendered summary) instead of aborting the
/// batch.
pub fn evaluate_run(run: &SweepRun, progress: bool) -> TableStats {
    evaluate_run_jobs(run, progress, Jobs::Auto)
}

/// [`evaluate_run`] with an explicit worker-count policy. Generation
/// failures keep their sweep ordering regardless of `jobs`.
pub fn evaluate_run_jobs(run: &SweepRun, progress: bool, jobs: Jobs) -> TableStats {
    let mut stats = evaluate_cases_jobs(&run.cases, progress, jobs);
    for failure in &run.failures {
        stats.record_generation_failure(&failure.to_string());
    }
    stats
}

/// Evaluates a pre-generated case list. Equivalent to
/// [`evaluate_cases_jobs`] with [`Jobs::Auto`].
pub fn evaluate_cases(cases: &[SweepCase], progress: bool) -> TableStats {
    evaluate_cases_jobs(cases, progress, Jobs::Auto)
}

/// Evaluates a pre-generated case list on up to `jobs` workers.
///
/// Each worker reuses one [`SimWorkspace`] across its cases and runs the
/// per-case stage (golden simulation, moments, prior-art baselines); the
/// paper's closed-form metrics are then evaluated over all surviving
/// cases at once through the structure-of-arrays kernel
/// ([`xtalk_core::MomentBatch`]), whose lanes are bit-identical to the
/// scalar [`evaluate_case`] path. Outcomes are folded into the statistics
/// in case order, so the accumulated `TableStats` (extremes, means,
/// reservoir quantiles, skip ordering) are bit-identical to a serial run.
///
/// # Panics
///
/// Panics when a case evaluation itself panics (a harness bug, not a
/// data condition — data problems surface as skip reasons); the panic
/// message names the lowest offending case index.
pub fn evaluate_cases_jobs(cases: &[SweepCase], progress: bool, jobs: Jobs) -> TableStats {
    let _table_span = xtalk_obs::span!("eval.table");
    let done = AtomicUsize::new(0);
    let progress = progress && !xtalk_obs::quiet();
    let prepared = par_map_indexed_with(cases, jobs, SimWorkspace::new, |ws, _, case| {
        let case_span = xtalk_obs::span!("eval.case");
        let result = case_eval::prepare_case_with(case, ws);
        drop(case_span); // per-case latency excludes the progress I/O
        if progress {
            let k = done.fetch_add(1, Ordering::Relaxed) + 1;
            if k % 50 == 0 || k == cases.len() {
                eprintln!("  case {k}/{} …", cases.len());
            }
        }
        result
    })
    .unwrap_or_else(|e| panic!("case evaluation failed: {e}"));
    let outcomes = case_eval::finalize_outcomes(prepared);

    let mut stats = TableStats::new();
    let mut skipped = 0u64;
    for outcome in &outcomes {
        match outcome {
            Ok(outcome) => stats.record(outcome),
            Err(reason) => {
                skipped += 1;
                stats.record_skip(reason);
            }
        }
    }
    xtalk_obs::counter!("eval.cases.evaluated").add(outcomes.len() as u64 - skipped);
    xtalk_obs::counter!("eval.cases.skipped").add(skipped);
    stats
}
