//! λ-sensitivity ablation for metric II (paper §4: "the results can be
//! affected by the value of λ … when we use the default value given in
//! equation (7), we can obtain an absolute upper bound for the peak noise
//! amplitude").

use crate::ErrorStats;
use xtalk_core::{MetricTwo, NoiseAnalyzer};
use xtalk_sim::{measure_noise, SimOptions, TransientSim};
use xtalk_tech::sweep::SweepCase;

/// `Vp` error statistics of metric II at one λ over a case set.
#[derive(Debug, Clone)]
pub struct LambdaRow {
    /// The shape factor evaluated.
    pub lambda: f64,
    /// Error statistics vs. golden simulation.
    pub stats: ErrorStats,
    /// `true` when the worst negative error stays above −5% (the paper's
    /// conservatism tolerance).
    pub conservative: bool,
}

/// Evaluates metric II at each λ over `cases`, returning one row per λ.
///
/// Cases whose golden pulse cannot be measured are skipped uniformly.
pub fn lambda_sweep(cases: &[SweepCase], lambdas: &[f64]) -> Vec<LambdaRow> {
    // Pre-compute golden + moments once per case.
    struct Prepared {
        f: xtalk_core::OutputMoments,
        tr: f64,
        golden_vp: f64,
    }
    let mut prepared = Vec::new();
    for case in cases {
        let Ok(analyzer) = NoiseAnalyzer::new(&case.network) else {
            continue;
        };
        let Ok(f) = analyzer.output_moments(case.aggressor, &case.input) else {
            continue;
        };
        let Ok(sim) = TransientSim::new(&case.network) else {
            continue;
        };
        let opts = SimOptions::auto(&case.network, &[(case.aggressor, case.input)]);
        let Ok(run) = sim.run(&[(case.aggressor, case.input)], &opts) else {
            continue;
        };
        let Ok(golden) = measure_noise(
            run.probe(case.network.victim_output()).expect("probed"),
            case.input.noise_polarity(),
        ) else {
            continue;
        };
        if golden.vp < 5e-3 {
            continue;
        }
        prepared.push(Prepared {
            f,
            tr: case.input.effective_rise_time(),
            golden_vp: golden.vp,
        });
    }

    lambdas
        .iter()
        .map(|&lambda| {
            let metric = MetricTwo::with_lambda(lambda);
            let mut stats = ErrorStats::default();
            for p in &prepared {
                if let Ok(est) = metric.estimate_auto(&p.f, p.tr) {
                    stats.record((est.vp - p.golden_vp) / p.golden_vp * 100.0);
                }
            }
            let conservative = stats.conservative_above(-5.0);
            LambdaRow {
                lambda,
                stats,
                conservative,
            }
        })
        .collect()
}

/// Renders the sweep as an aligned text table.
pub fn render_lambda(rows: &[LambdaRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "metric II λ ablation: Vp error vs golden ({} cases)",
        rows.first().map_or(0, |r| r.stats.count())
    );
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>10} {:>10} {:>14}",
        "lambda", "min err%", "max err%", "ave |%|", "conservative"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>8.3} {:>10.1} {:>10.1} {:>10.1} {:>14}",
            r.lambda,
            r.stats.max_neg(),
            r.stats.max_pos(),
            r.stats.avg_abs(),
            r.conservative
        );
    }
    out
}
