//! Full-chip screen-then-escalate pipeline.
//!
//! This is the paper's methodology applied at chip scale: the
//! closed-form metrics are cheap enough to screen *every* net of a flat
//! extracted deck, so only the small fraction that actually threatens a
//! noise failure ever pays for transient simulation. The pipeline:
//!
//! 1. **Stream** the deck through
//!    [`DeckIndex::from_reader`](xtalk_circuit::spice::stream::DeckIndex)
//!    — bounded memory, `+` continuation support, optional lenient
//!    skipping of benign directives.
//! 2. **Partition** nets into coupling islands with
//!    [`CouplingClusters`](xtalk_circuit::cluster::CouplingClusters).
//! 3. **Screen** every net as the victim of its island: validation →
//!    moments → Metric II through the PR-1 resilience chain
//!    ([`RobustAnalyzer`]), per-aggressor estimates combined by
//!    worst-case superposition. Nets are ranked by
//!    `peak noise / threshold`.
//! 4. **Escalate** only nets whose ratio reaches
//!    [`ScreenConfig::escalate_ratio`] to the tiered golden simulator
//!    ([`golden_noise_tiered`]) for a reference peak.
//!
//! Work is parallel over nets via [`xtalk_exec`], and the report —
//! including its JSON rendering — is byte-identical at any `--jobs`
//! value. A whole-deck [`Network`](xtalk_circuit::Network) is never
//! built: peak memory follows the element table and the largest island,
//! not the chip.
//!
//! # Examples
//!
//! ```
//! use xtalk_eval::screen::{screen_deck, ScreenConfig};
//! use xtalk_tech::{PexDeckSpec, Technology};
//!
//! let deck = PexDeckSpec::new(2, 5, 3).deck_string(&Technology::p25());
//! let report = screen_deck(deck.as_bytes(), &ScreenConfig::default()).unwrap();
//! assert_eq!(report.nets_total, 10);
//! assert_eq!(report.clusters, 2);
//! assert_eq!(report.screened + report.escalated, 10);
//! ```

use std::error::Error;
use std::fmt;
use std::io::BufRead;

use xtalk_circuit::cluster::CouplingClusters;
use xtalk_circuit::signal::InputSignal;
use xtalk_circuit::spice::stream::{DeckIndex, StreamOptions};
use xtalk_circuit::spice::{DeckLimits, SpiceParseError};
use xtalk_core::superpose::{worst_case, TimingWindow};
use xtalk_core::{FallbackPolicy, RobustAnalyzer, Rung};
use xtalk_exec::{par_map_indexed_with, Jobs};
use xtalk_sim::{golden_noise_tiered, GoldenOpts, SimWorkspace};

/// Aggressor input waveform shape used for screening.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScreenShape {
    /// Ideal step.
    Step,
    /// Saturated ramp (the paper's primary stimulus).
    Ramp,
    /// Exponential transition.
    Exp,
}

/// Screening parameters. [`Default`] gives a 100 ps ramp, a noise
/// threshold of 0.1 × Vdd, escalation at 80% of threshold, automatic
/// parallelism and the stock deck limits.
#[derive(Debug, Clone)]
pub struct ScreenConfig {
    /// Aggressor transition time (s); ignored for [`ScreenShape::Step`].
    pub slew: f64,
    /// Aggressor switching time (s).
    pub arrival: f64,
    /// Aggressor waveform shape.
    pub shape: ScreenShape,
    /// Failure threshold as a fraction of Vdd.
    pub threshold: f64,
    /// Escalate nets whose `vp/threshold` reaches this ratio.
    pub escalate_ratio: f64,
    /// Worker-count policy.
    pub jobs: Jobs,
    /// Strict mode: hard-error on benign directives and forbid any
    /// fallback below Metric II.
    pub strict: bool,
    /// Run the golden simulator on flagged nets (disable for
    /// screening-only runs and agreement checks).
    pub escalate: bool,
    /// Deck size bounds.
    pub limits: DeckLimits,
}

impl Default for ScreenConfig {
    fn default() -> Self {
        ScreenConfig {
            slew: 100e-12,
            arrival: 0.0,
            shape: ScreenShape::Ramp,
            threshold: 0.1,
            escalate_ratio: 0.8,
            jobs: Jobs::Auto,
            strict: false,
            escalate: true,
            limits: DeckLimits::default(),
        }
    }
}

impl ScreenConfig {
    /// The aggressor stimulus this configuration screens with (rising;
    /// victims are assumed quiet at low, the paper's worst case for
    /// positive noise).
    #[must_use]
    pub fn input(&self) -> InputSignal {
        match self.shape {
            ScreenShape::Step => InputSignal::step(self.arrival),
            ScreenShape::Ramp => InputSignal::rising_ramp(self.arrival, self.slew),
            ScreenShape::Exp => InputSignal::rising_exp(self.arrival, self.slew),
        }
    }
}

/// Screening failures.
#[derive(Debug)]
pub enum ScreenError {
    /// The deck failed to stream or index.
    Parse(SpiceParseError),
    /// Strict mode: a net's analysis failed.
    Strict {
        /// Net index in declaration order.
        net: usize,
        /// The underlying failure.
        detail: String,
    },
    /// The parallel executor failed (worker panic).
    Worker(String),
}

impl fmt::Display for ScreenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScreenError::Parse(e) => write!(f, "deck parse failed: {e}"),
            ScreenError::Strict { net, detail } => {
                write!(f, "strict screening failed on net {net}: {detail}")
            }
            ScreenError::Worker(detail) => write!(f, "screening worker failed: {detail}"),
        }
    }
}

impl Error for ScreenError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScreenError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpiceParseError> for ScreenError {
    fn from(e: SpiceParseError) -> Self {
        ScreenError::Parse(e)
    }
}

/// Per-net screening result.
#[derive(Debug, Clone)]
pub struct NetScreen {
    /// Net name from the deck.
    pub net: String,
    /// Net index in declaration order.
    pub index: usize,
    /// Coupling-island id the net belongs to.
    pub cluster: usize,
    /// Number of nets in that island.
    pub cluster_nets: usize,
    /// Directly coupled aggressors analyzed.
    pub aggressors: usize,
    /// Worst-case combined peak noise (× Vdd).
    pub vp: f64,
    /// Observation time of the combined peak (s).
    pub at: f64,
    /// `vp / threshold` — the ranking key.
    pub ratio: f64,
    /// Worst fallback rung used across this net's aggressors (`"none"`
    /// for uncoupled nets).
    pub rung: &'static str,
    /// True when any aggressor degraded below Metric II or failed.
    pub degraded: bool,
    /// True when the net was escalated to the golden simulator.
    pub escalated: bool,
    /// Golden peak noise when escalated and simulation succeeded.
    pub golden_vp: Option<f64>,
    /// Which golden tier produced `golden_vp`.
    pub golden_tier: Option<&'static str>,
    /// Analysis failure, when the net could not be screened at all.
    pub error: Option<String>,
}

/// A finished screening run over one deck.
#[derive(Debug, Clone)]
pub struct ScreenReport {
    /// Nets declared in the deck.
    pub nets_total: usize,
    /// Coupling islands found.
    pub clusters: usize,
    /// Nets below the escalation ratio (screened out — no simulation).
    pub screened: usize,
    /// Nets escalated (or flagged for escalation when the golden stage
    /// is disabled).
    pub escalated: usize,
    /// Nets whose analysis failed outright.
    pub failed: usize,
    /// Benign directives skipped by the lenient parser.
    pub skipped_directives: usize,
    /// `+` continuation lines joined.
    pub continuations: usize,
    /// Element cards in the deck.
    pub elements: usize,
    /// Physical lines read.
    pub lines: usize,
    /// The failure threshold screened against (× Vdd).
    pub threshold: f64,
    /// The escalation ratio used.
    pub escalate_ratio: f64,
    /// True when any net degraded or failed.
    pub degraded: bool,
    /// Per-net results, ranked worst-first (ratio descending, then net
    /// index ascending).
    pub nets: Vec<NetScreen>,
}

/// Interior result of one net's screen, before ranking.
struct NetOutcome {
    screen: NetScreen,
}

/// Screens every net of the deck read from `reader`.
///
/// See the [module docs](self) for the pipeline. The returned report is
/// deterministic: byte-identical JSON at any [`ScreenConfig::jobs`]
/// value.
///
/// # Errors
///
/// [`ScreenError::Parse`] when the deck fails to stream,
/// [`ScreenError::Strict`] in strict mode when any net's analysis
/// degrades or fails, [`ScreenError::Worker`] when a worker panics.
pub fn screen_deck<R: BufRead>(
    reader: R,
    config: &ScreenConfig,
) -> Result<ScreenReport, ScreenError> {
    let index = {
        let _span = xtalk_obs::span!("screen.parse");
        DeckIndex::from_reader(
            reader,
            StreamOptions {
                limits: config.limits.clone(),
                lenient: !config.strict,
            },
        )?
    };
    let stats = index.stats();
    xtalk_obs::counter!("screen.deck.skipped_directives").add(stats.skipped_directives as u64);
    xtalk_obs::counter!("screen.deck.continuations").add(stats.continuations as u64);
    for (line, name) in index.skipped_samples() {
        xtalk_obs::warn!("screen: skipped benign directive {name} on line {line}");
    }
    if stats.skipped_directives > index.skipped_samples().len() {
        xtalk_obs::warn!(
            "screen: {} more benign directives skipped",
            stats.skipped_directives - index.skipped_samples().len()
        );
    }
    let unassigned = index.unassigned_nodes();
    if unassigned > 0 {
        xtalk_obs::warn!(
            "screen: {unassigned} node(s) unreachable from any driver; their elements are ignored"
        );
    }

    let clusters = {
        let _span = xtalk_obs::span!("screen.partition");
        CouplingClusters::partition(&index)
    };
    xtalk_obs::counter!("screen.clusters").add(clusters.len() as u64);

    let nets: Vec<usize> = (0..index.net_count()).collect();
    let outcomes = {
        let _span = xtalk_obs::span!("screen.analyze");
        par_map_indexed_with(&nets, config.jobs, SimWorkspace::new, |ws, _, &net| {
            screen_net(&index, &clusters, config, ws, net)
        })
        .map_err(|e| ScreenError::Worker(e.to_string()))?
    };

    let mut report = ScreenReport {
        nets_total: index.net_count(),
        clusters: clusters.len(),
        screened: 0,
        escalated: 0,
        failed: 0,
        skipped_directives: stats.skipped_directives,
        continuations: stats.continuations,
        elements: stats.elements,
        lines: stats.lines,
        threshold: config.threshold,
        escalate_ratio: config.escalate_ratio,
        degraded: false,
        nets: Vec::with_capacity(outcomes.len()),
    };
    for outcome in outcomes {
        let s = outcome.screen;
        if config.strict {
            if let Some(detail) = &s.error {
                return Err(ScreenError::Strict {
                    net: s.index,
                    detail: detail.clone(),
                });
            }
            if s.degraded {
                return Err(ScreenError::Strict {
                    net: s.index,
                    detail: format!("degraded to {}", s.rung),
                });
            }
        }
        if s.error.is_some() {
            report.failed += 1;
        } else if s.escalated {
            report.escalated += 1;
        } else {
            report.screened += 1;
        }
        report.degraded |= s.degraded || s.error.is_some();
        report.nets.push(s);
    }
    xtalk_obs::counter!("screen.nets.total").add(report.nets_total as u64);
    xtalk_obs::counter!("screen.nets.screened").add(report.screened as u64);
    xtalk_obs::counter!("screen.nets.escalated").add(report.escalated as u64);
    xtalk_obs::counter!("screen.nets.failed").add(report.failed as u64);

    // Rank worst-first; ties (uncoupled nets all at 0) by net index so
    // the order — and the JSON bytes — never depend on scheduling.
    report.nets.sort_by(|a, b| {
        b.ratio
            .partial_cmp(&a.ratio)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    });
    Ok(report)
}

/// Screens one net as the victim of its island; never panics on
/// analysis failures — they land in `NetScreen::error`.
fn screen_net(
    index: &DeckIndex,
    clusters: &CouplingClusters,
    config: &ScreenConfig,
    ws: &mut SimWorkspace,
    net: usize,
) -> NetOutcome {
    let cluster = clusters.cluster_of(net).expect("net within index range");
    let members = clusters.members(cluster);
    let mut screen = NetScreen {
        net: index.net_name(net).to_string(),
        index: net,
        cluster,
        cluster_nets: members.len(),
        aggressors: 0,
        vp: 0.0,
        at: 0.0,
        ratio: 0.0,
        rung: "none",
        degraded: false,
        escalated: false,
        golden_vp: None,
        golden_tier: None,
        error: None,
    };

    let network = match clusters.victim_network(index, net) {
        Ok(n) => n,
        Err(e) => {
            screen.error = Some(e.to_string());
            return NetOutcome { screen };
        }
    };
    let policy = if config.strict {
        FallbackPolicy::strict()
    } else {
        FallbackPolicy::default()
    };
    let robust = match RobustAnalyzer::with_policy(&network, policy) {
        Ok(r) => r,
        Err(e) => {
            screen.error = Some(e.to_string());
            return NetOutcome { screen };
        }
    };

    // Only aggressors with a direct coupling path to the victim
    // contribute; the rest of the island couples through them and is
    // already part of the victim's moment model.
    let input = config.input();
    let victim = network.victim();
    let mut contributions = Vec::new();
    let mut worst_rung: Option<Rung> = None;
    let mut stimuli = Vec::new();
    for (agg, _) in network.nets() {
        if agg == victim || network.couplings_between(agg, victim).next().is_none() {
            continue;
        }
        screen.aggressors += 1;
        stimuli.push((agg, input));
        match robust.analyze(agg, &input) {
            Ok(re) => {
                worst_rung = Some(worst_rung.map_or(re.provenance.rung(), |w| {
                    w.max(re.provenance.rung())
                }));
                screen.degraded |= re.provenance.degraded();
                contributions.push((re.estimate, TimingWindow::pinned()));
            }
            Err(e) if e.is_no_noise() => {}
            Err(e) => {
                screen.degraded = true;
                screen.error = Some(e.to_string());
                return NetOutcome { screen };
            }
        }
    }
    if let Some(rung) = worst_rung {
        screen.rung = rung.name();
    }
    if !contributions.is_empty() {
        let combined = worst_case(&contributions);
        screen.vp = combined.vp;
        screen.at = combined.at;
        screen.ratio = if config.threshold > 0.0 {
            combined.vp / config.threshold
        } else {
            f64::INFINITY
        };
    }
    screen.escalated = !contributions.is_empty() && screen.ratio >= config.escalate_ratio;
    if screen.escalated && config.escalate {
        let _span = xtalk_obs::span!("screen.escalate");
        match golden_noise_tiered(
            &network,
            &stimuli,
            network.victim_output(),
            ws,
            &GoldenOpts::from_globals(),
        ) {
            Ok((params, tier)) => {
                screen.golden_vp = Some(params.vp);
                screen.golden_tier = Some(tier.as_str());
            }
            Err(e) => {
                // The closed-form screen already flagged the net; a
                // golden failure degrades the report but keeps the flag.
                screen.degraded = true;
                screen.golden_tier = Some("failed");
                xtalk_obs::warn!("screen: golden escalation failed on net {net}: {e}");
            }
        }
    }
    NetOutcome { screen }
}

impl ScreenReport {
    /// True when every net screened or escalated cleanly.
    #[must_use]
    pub fn clean(&self) -> bool {
        !self.degraded && self.failed == 0
    }

    /// Deterministic JSON rendering — byte-identical at any worker
    /// count.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.nets.len() * 160);
        out.push_str("{\n");
        out.push_str(&format!("  \"nets_total\": {},\n", self.nets_total));
        out.push_str(&format!("  \"clusters\": {},\n", self.clusters));
        out.push_str(&format!("  \"screened\": {},\n", self.screened));
        out.push_str(&format!("  \"escalated\": {},\n", self.escalated));
        out.push_str(&format!("  \"failed\": {},\n", self.failed));
        out.push_str(&format!(
            "  \"skipped_directives\": {},\n",
            self.skipped_directives
        ));
        out.push_str(&format!("  \"continuations\": {},\n", self.continuations));
        out.push_str(&format!("  \"elements\": {},\n", self.elements));
        out.push_str(&format!("  \"lines\": {},\n", self.lines));
        out.push_str(&format!("  \"threshold\": {},\n", json_num(self.threshold)));
        out.push_str(&format!(
            "  \"escalate_ratio\": {},\n",
            json_num(self.escalate_ratio)
        ));
        out.push_str(&format!("  \"degraded\": {},\n", self.degraded));
        out.push_str("  \"nets\": [\n");
        for (i, n) in self.nets.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"net\": {}, ", json_str(&n.net)));
            out.push_str(&format!("\"index\": {}, ", n.index));
            out.push_str(&format!("\"cluster\": {}, ", n.cluster));
            out.push_str(&format!("\"cluster_nets\": {}, ", n.cluster_nets));
            out.push_str(&format!("\"aggressors\": {}, ", n.aggressors));
            out.push_str(&format!("\"vp\": {}, ", json_num(n.vp)));
            out.push_str(&format!("\"at\": {}, ", json_num(n.at)));
            out.push_str(&format!("\"ratio\": {}, ", json_num(n.ratio)));
            out.push_str(&format!("\"rung\": {}, ", json_str(n.rung)));
            out.push_str(&format!("\"degraded\": {}, ", n.degraded));
            out.push_str(&format!("\"escalated\": {}", n.escalated));
            if let Some(vp) = n.golden_vp {
                out.push_str(&format!(", \"golden_vp\": {}", json_num(vp)));
            }
            if let Some(tier) = n.golden_tier {
                out.push_str(&format!(", \"golden_tier\": {}", json_str(tier)));
            }
            if let Some(err) = &n.error {
                out.push_str(&format!(", \"error\": {}", json_str(err)));
            }
            out.push('}');
            out.push_str(comma(i, self.nets.len()));
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl fmt::Display for ScreenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "screened {} nets in {} clusters: {} below threshold, {} escalated, {} failed",
            self.nets_total, self.clusters, self.screened, self.escalated, self.failed
        )?;
        writeln!(
            f,
            "threshold {:.3} x Vdd, escalation at ratio {:.2}; {} directives skipped, {} continuations",
            self.threshold, self.escalate_ratio, self.skipped_directives, self.continuations
        )?;
        let shown = self.nets.iter().take(20).count();
        if shown > 0 {
            writeln!(f, "worst {shown} nets:")?;
            writeln!(
                f,
                "{:<20} {:>8} {:>10} {:>8} {:>6}  rung",
                "net", "cluster", "vp (xVdd)", "ratio", "esc"
            )?;
        }
        for n in self.nets.iter().take(20) {
            let esc = if n.escalated { "yes" } else { "no" };
            let golden = match n.golden_vp {
                Some(vp) => format!(" golden={vp:.4} ({})", n.golden_tier.unwrap_or("?")),
                None => String::new(),
            };
            writeln!(
                f,
                "{:<20} {:>8} {:>10.4} {:>8.3} {:>6}  {}{}",
                n.net, n.cluster, n.vp, n.ratio, esc, n.rung, golden
            )?;
        }
        Ok(())
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// JSON number: finite floats print via Rust's shortest-round-trip
/// `Display` (deterministic); non-finite values become quoted strings.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "\"NaN\"".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_tech::{PexDeckSpec, Technology};

    fn small_deck() -> String {
        PexDeckSpec::new(2, 5, 3).deck_string(&Technology::p25())
    }

    #[test]
    fn accounting_always_balances() {
        let report = screen_deck(small_deck().as_bytes(), &ScreenConfig::default()).unwrap();
        assert_eq!(report.nets_total, 10);
        assert_eq!(
            report.screened + report.escalated + report.failed,
            report.nets_total
        );
        assert_eq!(report.failed, 0);
        assert_eq!(report.clusters, 2);
        assert_eq!(report.nets.len(), report.nets_total);
    }

    #[test]
    fn report_is_ranked_and_deterministic_across_jobs() {
        let mut config = ScreenConfig {
            jobs: Jobs::Count(1),
            ..ScreenConfig::default()
        };
        let serial = screen_deck(small_deck().as_bytes(), &config).unwrap();
        config.jobs = Jobs::Count(3);
        let parallel = screen_deck(small_deck().as_bytes(), &config).unwrap();
        assert_eq!(serial.to_json(), parallel.to_json());
        assert!(serial
            .nets
            .windows(2)
            .all(|w| w[0].ratio >= w[1].ratio
                || (w[0].ratio == w[1].ratio && w[0].index < w[1].index)));
    }

    #[test]
    fn lenient_mode_counts_skipped_directives() {
        let mut spec = PexDeckSpec::new(1, 4, 2);
        spec.benign_directives = true;
        let deck = spec.deck_string(&Technology::p25());
        let report = screen_deck(deck.as_bytes(), &ScreenConfig::default()).unwrap();
        assert_eq!(report.skipped_directives, 5);
        assert_eq!(report.nets_total, 4);

        let strict = ScreenConfig {
            strict: true,
            ..ScreenConfig::default()
        };
        assert!(matches!(
            screen_deck(deck.as_bytes(), &strict),
            Err(ScreenError::Parse(_))
        ));
    }

    #[test]
    fn continuations_are_counted_and_harmless() {
        let mut spec = PexDeckSpec::new(1, 4, 2);
        let plain = screen_deck(
            spec.deck_string(&Technology::p25()).as_bytes(),
            &ScreenConfig::default(),
        )
        .unwrap();
        spec.fold_cards = true;
        let folded = screen_deck(
            spec.deck_string(&Technology::p25()).as_bytes(),
            &ScreenConfig::default(),
        )
        .unwrap();
        assert!(folded.continuations > 0);
        assert_eq!(plain.continuations, 0);
        for (a, b) in plain.nets.iter().zip(&folded.nets) {
            assert_eq!(a.net, b.net);
            assert_eq!(a.vp.to_bits(), b.vp.to_bits(), "net {}", a.net);
        }
    }

    #[test]
    fn weak_lanes_escalate_and_stay_a_minority() {
        // Large enough to include weak drivers (every 16th lane).
        let spec = PexDeckSpec::new(2, 16, 3);
        let config = ScreenConfig {
            escalate: false, // flag only; golden sim not needed here
            ..ScreenConfig::default()
        };
        let report =
            screen_deck(spec.deck_string(&Technology::p25()).as_bytes(), &config).unwrap();
        assert_eq!(report.nets_total, 32);
        assert!(report.escalated > 0, "weak lanes must flag");
        assert!(
            report.escalated * 10 < report.nets_total,
            "escalation must stay under 10% ({}/{})",
            report.escalated,
            report.nets_total
        );
        // The ranked head must be exactly the weak lanes.
        for n in report.nets.iter().take(report.escalated) {
            assert!(n.escalated);
            assert!(spec.driver_of(n.index) > spec.driver * 2.0, "net {}", n.net);
        }
    }

    #[test]
    fn escalated_nets_get_golden_peaks() {
        let spec = PexDeckSpec::new(1, 17, 2);
        let report = screen_deck(
            spec.deck_string(&Technology::p25()).as_bytes(),
            &ScreenConfig::default(),
        )
        .unwrap();
        let escalated: Vec<_> = report.nets.iter().filter(|n| n.escalated).collect();
        assert!(!escalated.is_empty());
        for n in &escalated {
            let golden = n.golden_vp.expect("escalation ran the golden sim");
            assert!(golden.is_finite() && golden >= 0.0);
            assert!(n.golden_tier.is_some());
        }
    }
}
