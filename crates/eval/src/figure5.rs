use crate::evaluate_case;
use std::fmt::Write as _;
use xtalk_tech::sweep::figure5_cases;
use xtalk_tech::Technology;

/// One point of the Figure 5 sweep: peak noise vs. coupling location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure5Row {
    /// Coupling-window offset `L1` from the victim driver (m).
    pub l1: f64,
    /// Golden (simulated) peak (× `Vdd`).
    pub golden_vp: f64,
    /// New metric I peak.
    pub new1_vp: f64,
    /// New metric II peak.
    pub new2_vp: f64,
    /// Lumped-π model peak (location-blind by construction).
    pub lumped_vp: f64,
}

/// Runs the Figure 5 experiment: `L2 = 0.5 mm`, `L3 = 1.5 mm`,
/// `L1 = 0.1 … 1.0 mm` over `points` sweep points.
///
/// The paper's observations, which the returned rows reproduce: peak noise
/// grows nearly linearly as the coupling window approaches the victim
/// receiver, the distributed metrics track the trend, and the lumped-π
/// model reports the same value everywhere.
///
/// # Errors
///
/// Returns a description of the first sweep point that failed to build or
/// evaluate (fixed benign parameters — only a degenerate [`Technology`]
/// gets here) instead of panicking mid-sweep.
pub fn run_figure5(tech: &Technology, points: usize) -> Result<Vec<Figure5Row>, String> {
    let cases = figure5_cases(tech, points).map_err(|f| f.to_string())?;
    cases
        .into_iter()
        .map(|(l1, case)| {
            let outcome =
                evaluate_case(&case).map_err(|e| format!("{}: {e}", case.label))?;
            let vp = |method| {
                outcome
                    .predicted(method, crate::Param::Vp)
                    .ok_or_else(|| format!("{}: {method} produced no Vp", case.label))
            };
            Ok(Figure5Row {
                l1,
                golden_vp: outcome.golden.vp,
                new1_vp: vp(crate::Method::NewOne)?,
                new2_vp: vp(crate::Method::NewTwo)?,
                lumped_vp: outcome
                    .lumped_vp
                    .ok_or_else(|| format!("{}: lumped model unstable", case.label))?,
            })
        })
        .collect()
}

/// Renders the sweep as an aligned text table (one row per point).
pub fn render_figure5(rows: &[Figure5Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5: coupling location vs. peak noise (L2=0.5mm, L3=1.5mm)"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "L1 (mm)", "HSPICE-ref", "new I", "new II", "lumped-pi"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>8.2} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            r.l1 * 1e3,
            r.golden_vp,
            r.new1_vp,
            r.new2_vp,
            r.lumped_vp
        );
    }
    out
}
