//! Evaluation harness for the crosstalk-delay extension: compares the
//! three closed-form delay metrics against transient simulation with the
//! victim and its aggressor actually co-switching, over the same seeded
//! two-pin workloads the noise tables use.

use crate::ErrorStats;
use std::fmt::Write as _;
use xtalk_circuit::{signal::InputSignal, NetId, Network};
use xtalk_delay::{DelayAnalyzer, DelayMetric, SwitchFactor};
use xtalk_sim::{SimOptions, TransientSim};
use xtalk_tech::sweep::{two_pin_cases, SweepConfig};
use xtalk_tech::{CouplingDirection, Technology};

/// Error statistics of one delay metric under one switching scenario.
#[derive(Debug, Clone)]
pub struct DelayRow {
    /// The metric evaluated.
    pub metric: DelayMetric,
    /// Scenario name (`"quiet"`, `"along"`, `"against"`).
    pub scenario: &'static str,
    /// Error statistics vs. co-switching simulation.
    pub stats: ErrorStats,
}

/// Simulated victim 50% delay with the aggressor quiet / rising along /
/// falling against a rising victim edge (fast 50 ps edge).
fn simulated_delay(net: &Network, agg: NetId, scenario: &str) -> Option<f64> {
    let victim_in = InputSignal::rising_ramp(0.0, 50e-12);
    let mut stim = vec![(net.victim(), victim_in)];
    match scenario {
        "quiet" => {}
        "along" => stim.push((agg, InputSignal::rising_ramp(0.0, 50e-12))),
        "against" => stim.push((agg, InputSignal::falling_ramp(0.0, 50e-12))),
        _ => unreachable!("unknown scenario"),
    }
    let sim = TransientSim::new(net).ok()?;
    let opts = SimOptions::auto(net, &stim);
    let run = sim.run_full(&stim, &opts).ok()?;
    let w = run.probe(net.victim_output())?;
    let t50 = w.crossing_after(0.0, 0.5, true)?;
    Some(t50 - victim_in.crossing_time(0.5))
}

/// Runs the delay evaluation: `config.cases` random two-pin circuits,
/// three metrics × three scenarios.
pub fn run_delay_table(tech: &Technology, config: &SweepConfig) -> Vec<DelayRow> {
    let run = two_pin_cases(tech, CouplingDirection::FarEnd, config);
    if !run.is_complete() {
        xtalk_obs::warn!("delay sweep degraded: {}", run.summary());
    }
    let cases = run.cases;
    let scenarios: [(&'static str, SwitchFactor); 3] = [
        ("along", SwitchFactor::SameDirection),
        ("quiet", SwitchFactor::Quiet),
        ("against", SwitchFactor::Opposite),
    ];
    let metrics = [DelayMetric::Elmore, DelayMetric::D2m, DelayMetric::TwoPole];

    let mut rows: Vec<DelayRow> = metrics
        .iter()
        .flat_map(|&metric| {
            scenarios.iter().map(move |&(scenario, _)| DelayRow {
                metric,
                scenario,
                stats: ErrorStats::default(),
            })
        })
        .collect();

    for case in &cases {
        let analyzer = DelayAnalyzer::new(&case.network);
        for (scenario, factor) in scenarios {
            let Some(golden) = simulated_delay(&case.network, case.aggressor, scenario)
            else {
                continue;
            };
            if golden < 1e-12 {
                continue; // degenerate: delay below measurement resolution
            }
            for metric in metrics {
                let Ok(est) = analyzer.delay(&[(case.aggressor, factor)], metric) else {
                    continue;
                };
                let row = rows
                    .iter_mut()
                    .find(|r| r.metric == metric && r.scenario == scenario)
                    .expect("row exists");
                row.stats.record((est - golden) / golden * 100.0);
            }
        }
    }
    rows
}

/// Renders the delay table.
pub fn render_delay_table(rows: &[DelayRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "coupling-aware delay metrics vs co-switching simulation — error %"
    );
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>10} {:>10} {:>10} {:>8}",
        "metric", "scenario", "min", "max", "ave |%|", "cases"
    );
    for r in rows {
        if r.stats.count() == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<10} {:<10} {:>10.1} {:>10.1} {:>10.1} {:>8}",
            format!("{:?}", r.metric),
            r.scenario,
            r.stats.max_neg(),
            r.stats.max_pos(),
            r.stats.avg_abs(),
            r.stats.count()
        );
    }
    out
}
