//! Minimal ASCII line plots for terminal reproduction of the paper's
//! figures — no plotting dependencies, fixed-width output.

use std::fmt::Write as _;

/// One series to draw: a label (its first character becomes the marker)
/// and `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label; first char is the plot marker.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

/// Renders series on a `width × height` character grid with simple
/// linear axes. Returns the chart followed by a legend.
///
/// # Panics
///
/// Panics if no series contains any point, or the grid is degenerate.
///
/// # Examples
///
/// ```
/// use xtalk_eval::plot::{render_plot, Series};
/// let s = Series { label: "golden".into(), points: vec![(0.0, 0.0), (1.0, 1.0)] };
/// let chart = render_plot(&[s], 20, 8, "x", "y");
/// assert!(chart.contains('g'));
/// assert!(chart.contains("golden"));
/// ```
pub fn render_plot(
    series: &[Series],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    assert!(width >= 8 && height >= 4, "grid too small");
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    assert!(!all.is_empty(), "nothing to plot");
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // Pad degenerate ranges so a flat series still renders mid-plot.
    if (x_max - x_min).abs() < 1e-300 {
        x_max = x_min + 1.0;
    }
    let pad = ((y_max - y_min) * 0.05).max(y_max.abs() * 1e-3).max(1e-300);
    y_min -= pad;
    y_max += pad;

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        let marker = s.label.chars().next().unwrap_or('*');
        for &(x, y) in &s.points {
            let col = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let row = ((y_max - y) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = marker;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{y_label}");
    for (r, row) in grid.iter().enumerate() {
        let y_axis_value = y_max - (y_max - y_min) * r as f64 / (height - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{y_axis_value:>9.4} |{line}");
    }
    let _ = writeln!(out, "{:>10}+{}", "", "-".repeat(width));
    let _ = writeln!(
        out,
        "{:>10} {:<.4}{}{:>.4}  ({x_label})",
        "",
        x_min,
        " ".repeat(width.saturating_sub(12)),
        x_max
    );
    for s in series {
        let _ = writeln!(
            out,
            "  {} = {}",
            s.label.chars().next().unwrap_or('*'),
            s.label
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_two_series_with_distinct_markers() {
        let a = Series {
            label: "alpha".into(),
            points: (0..10).map(|i| (i as f64, i as f64)).collect(),
        };
        let b = Series {
            label: "beta".into(),
            points: (0..10).map(|i| (i as f64, 9.0 - i as f64)).collect(),
        };
        let chart = render_plot(&[a, b], 40, 12, "t", "v");
        assert!(chart.contains('a'));
        assert!(chart.contains('b'));
        assert!(chart.contains("alpha"));
        assert!(chart.contains("beta"));
        assert!(chart.lines().count() > 12);
    }

    #[test]
    fn flat_series_renders() {
        let s = Series {
            label: "flat".into(),
            points: vec![(0.0, 0.5), (1.0, 0.5), (2.0, 0.5)],
        };
        let chart = render_plot(&[s], 20, 6, "x", "y");
        assert!(chart.matches('f').count() >= 3);
    }

    #[test]
    fn increasing_series_occupies_increasing_rows() {
        let s = Series {
            label: "up".into(),
            points: vec![(0.0, 0.0), (1.0, 1.0)],
        };
        let chart = render_plot(&[s], 12, 6, "x", "y");
        let rows: Vec<usize> = chart
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains('u') && l.contains('|'))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0] < rows[1], "higher y must be on an earlier line");
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn empty_input_panics() {
        render_plot(
            &[Series {
                label: "e".into(),
                points: vec![],
            }],
            20,
            6,
            "x",
            "y",
        );
    }
}
