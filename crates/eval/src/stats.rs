use crate::{CaseOutcome, Method, Param, ALL_METHODS, ALL_PARAMS};
use std::collections::BTreeMap;

/// Capacity of the quantile sample (plenty for stable p50/p95 at the
/// paper's case volumes while bounding memory).
const SAMPLE_CAP: usize = 4096;

/// Error-percentage statistics for one (method, parameter) cell:
/// max-positive, max-negative and mean-absolute error — as the paper's
/// tables report — plus reservoir-sampled quantiles of the absolute error.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ErrorStats {
    max_pos: f64,
    max_neg: f64,
    sum_abs: f64,
    count: usize,
    /// Reservoir sample of |error| for quantiles (deterministic: the
    /// replacement index is derived from the running count, not an RNG,
    /// so tables stay bit-reproducible).
    sample: Vec<f64>,
}

impl ErrorStats {
    /// Records one error percentage.
    pub fn record(&mut self, pct: f64) {
        if pct > self.max_pos {
            self.max_pos = pct;
        }
        if pct < self.max_neg {
            self.max_neg = pct;
        }
        self.sum_abs += pct.abs();
        self.count += 1;
        if self.sample.len() < SAMPLE_CAP {
            self.sample.push(pct.abs());
        } else {
            // Deterministic reservoir: pseudo-index from a Weyl sequence
            // over the running count.
            let idx = (self.count.wrapping_mul(0x9e3779b97f4a7c15) >> 32) % self.count;
            if idx < SAMPLE_CAP {
                self.sample[idx] = pct.abs();
            }
        }
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) of the absolute error (%), from the
    /// reservoir sample; `None` before any samples arrive.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ q ≤ 1.0`.
    pub fn quantile_abs(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.sample.is_empty() {
            return None;
        }
        let mut sorted = self.sample.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[idx])
    }

    /// Median absolute error (%).
    pub fn median_abs(&self) -> Option<f64> {
        self.quantile_abs(0.5)
    }

    /// 95th-percentile absolute error (%).
    pub fn p95_abs(&self) -> Option<f64> {
        self.quantile_abs(0.95)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Largest positive error (%); 0 when all errors were negative.
    pub fn max_pos(&self) -> f64 {
        self.max_pos
    }

    /// Largest negative error (%); 0 when all errors were positive.
    pub fn max_neg(&self) -> f64 {
        self.max_neg
    }

    /// Mean absolute error (%).
    ///
    /// # Panics
    ///
    /// Panics if no samples were recorded.
    pub fn avg_abs(&self) -> f64 {
        assert!(self.count > 0, "no samples recorded");
        self.sum_abs / self.count as f64
    }

    /// `true` when every recorded error stayed above `floor_pct` (the
    /// paper treats ≥ −5% as still conservative).
    pub fn conservative_above(&self, floor_pct: f64) -> bool {
        self.max_neg >= floor_pct
    }
}

/// Accumulated statistics of a whole table run.
#[derive(Debug, Default)]
pub struct TableStats {
    cells: BTreeMap<(Method, Param), ErrorStats>,
    /// Per method: cases where the method produced no estimate at all
    /// (e.g. unstable two-pole fits).
    no_estimate: BTreeMap<Method, usize>,
    scored: usize,
    skipped: usize,
    skip_reasons: BTreeMap<String, usize>,
    generation_failures: Vec<String>,
}

impl TableStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        TableStats::default()
    }

    /// Folds one evaluated case into the statistics.
    pub fn record(&mut self, outcome: &CaseOutcome) {
        self.scored += 1;
        for method in ALL_METHODS {
            let mut produced_any = false;
            for param in ALL_PARAMS {
                if let Some(pred) = outcome.predicted(method, param) {
                    produced_any = true;
                    let golden = outcome.golden_value(param);
                    if golden.abs() > 0.0 {
                        let pct = (pred - golden) / golden * 100.0;
                        self.cells.entry((method, param)).or_default().record(pct);
                    }
                }
            }
            if !produced_any {
                *self.no_estimate.entry(method).or_insert(0) += 1;
            }
        }
    }

    /// Counts a case that could not be scored at all.
    pub fn record_skip(&mut self, reason: &str) {
        self.skipped += 1;
        // Group by the reason prefix (strip case-specific numbers).
        let key = reason
            .split(&['(', ':'][..])
            .next()
            .unwrap_or("unknown")
            .trim()
            .to_string();
        *self.skip_reasons.entry(key).or_insert(0) += 1;
    }

    /// Records a case that never became a network: its spec failed to
    /// build during sweep generation. The batch keeps going; the failure
    /// shows up in the rendered summary.
    pub fn record_generation_failure(&mut self, description: &str) {
        self.generation_failures.push(description.to_string());
    }

    /// Descriptions of the cases that failed to generate.
    pub fn generation_failures(&self) -> &[String] {
        &self.generation_failures
    }

    /// Statistics of one table cell, if any samples landed there.
    pub fn cell(&self, method: Method, param: Param) -> Option<&ErrorStats> {
        self.cells.get(&(method, param))
    }

    /// Number of fully scored cases.
    pub fn scored(&self) -> usize {
        self.scored
    }

    /// Number of skipped cases.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Per-method count of cases with no estimate (instability).
    pub fn no_estimate(&self, method: Method) -> usize {
        self.no_estimate.get(&method).copied().unwrap_or(0)
    }

    /// Skip reasons with counts (sorted by reason).
    pub fn skip_reasons(&self) -> impl Iterator<Item = (&str, usize)> {
        self.skip_reasons.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_stats_track_extremes_and_mean() {
        let mut s = ErrorStats::default();
        for pct in [10.0, -3.0, 25.0, -1.0] {
            s.record(pct);
        }
        assert_eq!(s.max_pos(), 25.0);
        assert_eq!(s.max_neg(), -3.0);
        assert!((s.avg_abs() - 9.75).abs() < 1e-12);
        assert_eq!(s.count(), 4);
        assert!(s.conservative_above(-5.0));
        assert!(!s.conservative_above(-2.0));
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let mut s = ErrorStats::default();
        for i in 0..1000 {
            s.record(i as f64 / 10.0); // |errors| uniform over 0..100
        }
        let median = s.median_abs().unwrap();
        let p95 = s.p95_abs().unwrap();
        assert!((median - 50.0).abs() < 3.0, "median {median}");
        assert!((p95 - 95.0).abs() < 3.0, "p95 {p95}");
        assert!(s.quantile_abs(0.0).unwrap() <= median);
        assert!(ErrorStats::default().median_abs().is_none());
    }

    #[test]
    fn quantiles_remain_sane_beyond_the_reservoir_cap() {
        let mut s = ErrorStats::default();
        for i in 0..20_000 {
            s.record((i % 100) as f64);
        }
        let median = s.median_abs().unwrap();
        assert!((median - 49.5).abs() < 8.0, "median {median}");
    }

    #[test]
    fn all_positive_errors_have_zero_max_neg() {
        let mut s = ErrorStats::default();
        s.record(5.0);
        s.record(1.0);
        assert_eq!(s.max_neg(), 0.0);
        assert!(s.conservative_above(-5.0));
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn avg_of_empty_panics() {
        ErrorStats::default().avg_abs();
    }

    #[test]
    fn skip_reasons_are_grouped() {
        let mut t = TableStats::new();
        t.record_skip("negligible pulse (1.0e-5 Vdd)");
        t.record_skip("negligible pulse (3.0e-4 Vdd)");
        t.record_skip("golden measurement: pulse truncated");
        assert_eq!(t.skipped(), 3);
        let reasons: Vec<_> = t.skip_reasons().collect();
        assert_eq!(reasons.len(), 2);
        assert!(reasons.iter().any(|(r, c)| r.contains("negligible") && *c == 2));
    }
}
