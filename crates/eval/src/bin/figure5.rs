//! Regenerates **Figure 5**: peak crosstalk noise vs. coupling location
//! (`L2 = 0.5 mm`, `L3 = 1.5 mm`, `L1 = 0.1 … 1.0 mm`).
//!
//! ```text
//! cargo run --release -p xtalk-eval --bin figure5 -- [--points N]
//! ```

use xtalk_eval::{render_figure5, run_figure5};
use xtalk_tech::Technology;

fn main() {
    let mut points = 10usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--points" => {
                points = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("figure5: bad --points value");
                        std::process::exit(2);
                    })
            }
            "--help" | "-h" => {
                eprintln!("usage: figure5 [--points N]");
                std::process::exit(0);
            }
            other => {
                eprintln!("figure5: unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    let rows = run_figure5(&Technology::p25(), points).unwrap_or_else(|e| {
        eprintln!("figure5: sweep failed: {e}");
        std::process::exit(1);
    });
    println!("{}", render_figure5(&rows));

    // ASCII rendition of the figure itself.
    let series = |label: &str, f: fn(&xtalk_eval::Figure5Row) -> f64| xtalk_eval::plot::Series {
        label: label.to_string(),
        points: rows.iter().map(|r| (r.l1 * 1e3, f(r))).collect(),
    };
    println!(
        "{}",
        xtalk_eval::plot::render_plot(
            &[
                series("golden (sim)", |r| r.golden_vp),
                series("new II", |r| r.new2_vp),
                series("one-lump pi", |r| r.lumped_vp),
                series("* new I", |r| r.new1_vp),
            ],
            56,
            16,
            "L1 (mm)",
            "Vp (x Vdd)",
        )
    );

    // The paper's qualitative claims, checked on the spot.
    let increasing = rows.windows(2).all(|w| w[1].golden_vp > w[0].golden_vp);
    let lumped_flat = rows
        .windows(2)
        .all(|w| (w[1].lumped_vp - w[0].lumped_vp).abs() < 1e-9 * w[0].lumped_vp);
    println!("golden peak increases toward the receiver: {increasing}");
    println!("lumped-pi model is location-blind:         {lumped_flat}");
}
