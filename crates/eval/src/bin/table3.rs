//! Regenerates **Table 3**: error percentages for coupled RC tree
//! structures, far-end coupling.
//!
//! ```text
//! cargo run --release -p xtalk-eval --bin table3 -- [--cases N] [--seed S] [--corners F] [--jobs N|auto]
//! ```

use xtalk_eval::{cli, render_table, run_tree_table_jobs};
use xtalk_tech::Technology;

fn main() {
    let args = cli::config_from_args("table3");
    let config = args.config;
    let tech = Technology::p25();
    if !args.quiet {
        eprintln!(
            "table3: tree structures far-end, {} cases, seed {}, jobs {}",
            config.cases, config.seed, args.jobs
        );
    }
    let stats = run_tree_table_jobs(&tech, &config, true, args.jobs);
    println!(
        "{}",
        render_table("Table 3: tree structures, far-end coupling — error %", &stats)
    );
}
