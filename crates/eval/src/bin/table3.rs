//! Regenerates **Table 3**: error percentages for coupled RC tree
//! structures, far-end coupling.
//!
//! ```text
//! cargo run --release -p xtalk-eval --bin table3 -- [--cases N] [--seed S] [--corners F]
//! ```

use xtalk_eval::{cli, render_table, run_tree_table};
use xtalk_tech::Technology;

fn main() {
    let config = cli::config_from_args("table3");
    let tech = Technology::p25();
    eprintln!(
        "table3: tree structures far-end, {} cases, seed {}",
        config.cases, config.seed
    );
    let stats = run_tree_table(&tech, &config, true);
    println!(
        "{}",
        render_table("Table 3: tree structures, far-end coupling — error %", &stats)
    );
}
