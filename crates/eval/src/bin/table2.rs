//! Regenerates **Table 2**: error percentages for two-pin nets, near-end
//! coupling — the scenario where only new metric II remains a conservative
//! `Vp` upper bound.
//!
//! ```text
//! cargo run --release -p xtalk-eval --bin table2 -- [--cases N] [--seed S] [--corners F] [--jobs N|auto]
//! ```

use xtalk_eval::{cli, render_table, run_two_pin_table_jobs};
use xtalk_tech::{CouplingDirection, Technology};

fn main() {
    let args = cli::config_from_args("table2");
    let config = args.config;
    let tech = Technology::p25();
    if !args.quiet {
        eprintln!(
            "table2: two-pin near-end, {} cases, seed {}, jobs {}",
            config.cases, config.seed, args.jobs
        );
    }
    let stats =
        run_two_pin_table_jobs(&tech, CouplingDirection::NearEnd, &config, true, args.jobs);
    println!(
        "{}",
        render_table("Table 2: two-pin nets, near-end coupling — error %", &stats)
    );
}
