//! Regenerates **Table 1**: error percentages for two-pin nets, far-end
//! coupling.
//!
//! ```text
//! cargo run --release -p xtalk-eval --bin table1 -- [--cases N] [--seed S] [--corners F] [--jobs N|auto]
//! ```

use xtalk_eval::{cli, render_table, run_two_pin_table_jobs};
use xtalk_tech::{CouplingDirection, Technology};

fn main() {
    let args = cli::config_from_args("table1");
    let config = args.config;
    let tech = Technology::p25();
    if !args.quiet {
        eprintln!(
            "table1: two-pin far-end, {} cases, seed {}, jobs {}",
            config.cases, config.seed, args.jobs
        );
    }
    let stats = run_two_pin_table_jobs(&tech, CouplingDirection::FarEnd, &config, true, args.jobs);
    println!(
        "{}",
        render_table("Table 1: two-pin nets, far-end coupling — error %", &stats)
    );
}
