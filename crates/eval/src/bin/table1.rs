//! Regenerates **Table 1**: error percentages for two-pin nets, far-end
//! coupling.
//!
//! ```text
//! cargo run --release -p xtalk-eval --bin table1 -- [--cases N] [--seed S] [--corners F]
//! ```

use xtalk_eval::{cli, render_table, run_two_pin_table};
use xtalk_tech::{CouplingDirection, Technology};

fn main() {
    let config = cli::config_from_args("table1");
    let tech = Technology::p25();
    eprintln!(
        "table1: two-pin far-end, {} cases, seed {}",
        config.cases, config.seed
    );
    let stats = run_two_pin_table(&tech, CouplingDirection::FarEnd, &config, true);
    println!(
        "{}",
        render_table("Table 1: two-pin nets, far-end coupling — error %", &stats)
    );
}
