//! Evaluation table for the crosstalk-delay extension: the three delay
//! metrics (Elmore / D2M / two-pole 50%) under three aggressor scenarios
//! (along / quiet / against), scored against co-switching transient
//! simulation.
//!
//! ```text
//! cargo run --release -p xtalk-eval --bin delay_table -- [--cases N] [--seed S]
//! ```

use xtalk_eval::{cli, render_delay_table, run_delay_table};
use xtalk_tech::Technology;

fn main() {
    let args = cli::config_from_args("delay_table");
    let mut config = args.config;
    if config.cases > 300 {
        config.cases = 300;
    }
    let tech = Technology::p25();
    if !args.quiet {
        eprintln!("delay_table: {} two-pin cases x 3 scenarios", config.cases);
    }
    let rows = run_delay_table(&tech, &config);
    println!("{}", render_delay_table(&rows));
    println!("notes: metrics model step inputs; simulation uses 50 ps edges.");
    println!("       Elmore is the conservative bound; two-pole the accurate one.");
}
