//! λ-sensitivity ablation for new metric II (paper §4): sweeps the shape
//! factor around the eq.-(7) default and reports conservatism and error,
//! showing why λ ≈ 2.7465 is the right default — it is where the absolute
//! upper-bound property appears without giving away more tightness than
//! necessary.
//!
//! ```text
//! cargo run --release -p xtalk-eval --bin lambda_sweep -- [--cases N] [--seed S]
//! ```

use xtalk_eval::{cli, lambda_sweep, render_lambda};
use xtalk_tech::sweep::two_pin_cases_jobs;
use xtalk_tech::{CouplingDirection, Technology};

fn main() {
    let args = cli::config_from_args("lambda_sweep");
    let mut config = args.config;
    if config.cases > 300 {
        config.cases = 300; // plenty for the ablation trend
    }
    let tech = Technology::p25();
    let run = two_pin_cases_jobs(&tech, CouplingDirection::NearEnd, &config, args.jobs);
    if !run.is_complete() {
        xtalk_obs::warn!("lambda_sweep: degraded generation: {}", run.summary());
    }
    let cases = run.cases;
    let lambdas = [
        1.5,
        2.0,
        xtalk_core::LAMBDA,
        3.5,
        5.0,
        8.0,
        12.0,
        20.0,
    ];
    let rows = lambda_sweep(&cases, &lambdas);
    println!("{}", render_lambda(&rows));
    if let Some(first_bad) = rows.iter().find(|r| !r.conservative) {
        println!(
            "conservatism breaks at λ = {:.2}; eq. 7's default {:.4} sits safely inside",
            first_bad.lambda,
            xtalk_core::LAMBDA
        );
    } else {
        println!(
            "conservatism holds over the whole swept range; the eq. 7 default {:.4} is retained for paper fidelity",
            xtalk_core::LAMBDA
        );
    }
}
