//! Full-volume validation sweep in the spirit of the paper's "over 40000
//! cases": runs all three table workloads at a configurable case count and
//! prints the three tables plus the conservatism summary for new metric II.
//!
//! ```text
//! cargo run --release -p xtalk-eval --bin sweep -- --cases 13000 [--jobs N|auto]
//! ```
//! (three workloads × `--cases` ≈ the paper's volume at 13–14k each.)

use xtalk_eval::{render_table, run_tree_table_jobs, run_two_pin_table_jobs, Method, Param};
use xtalk_eval::{cli, TableStats};
use xtalk_tech::{CouplingDirection, Technology};

fn conservatism_line(name: &str, stats: &TableStats) {
    if let Some(cell) = stats.cell(Method::NewTwo, Param::Vp) {
        println!(
            "{name}: new II Vp error range {:.1}% … {:.1}%  (conservative ≥ -5%: {})",
            cell.max_neg(),
            cell.max_pos(),
            cell.conservative_above(-5.0)
        );
    }
}

fn main() {
    let args = cli::config_from_args("sweep");
    let config = args.config;
    let tech = Technology::p25();

    if !args.quiet {
        eprintln!("sweep: 3 workloads x {} cases, jobs {}", config.cases, args.jobs);
    }
    let t1 = run_two_pin_table_jobs(&tech, CouplingDirection::FarEnd, &config, true, args.jobs);
    println!(
        "{}",
        render_table("Table 1: two-pin nets, far-end coupling — error %", &t1)
    );
    let t2 = run_two_pin_table_jobs(&tech, CouplingDirection::NearEnd, &config, true, args.jobs);
    println!(
        "{}",
        render_table("Table 2: two-pin nets, near-end coupling — error %", &t2)
    );
    let t3 = run_tree_table_jobs(&tech, &config, true, args.jobs);
    println!(
        "{}",
        render_table("Table 3: tree structures, far-end coupling — error %", &t3)
    );

    println!("— summary —");
    conservatism_line("far-end ", &t1);
    conservatism_line("near-end", &t2);
    conservatism_line("trees   ", &t3);
}
