//! Full-volume validation sweep in the spirit of the paper's "over 40000
//! cases": runs all three table workloads at a configurable case count and
//! prints the three tables plus the conservatism summary for new metric II.
//!
//! ```text
//! cargo run --release -p xtalk-eval --bin sweep -- --cases 13000
//! ```
//! (three workloads × `--cases` ≈ the paper's volume at 13–14k each.)

use xtalk_eval::{render_table, run_tree_table, run_two_pin_table, Method, Param};
use xtalk_eval::{cli, TableStats};
use xtalk_tech::{CouplingDirection, Technology};

fn conservatism_line(name: &str, stats: &TableStats) {
    if let Some(cell) = stats.cell(Method::NewTwo, Param::Vp) {
        println!(
            "{name}: new II Vp error range {:.1}% … {:.1}%  (conservative ≥ -5%: {})",
            cell.max_neg(),
            cell.max_pos(),
            cell.conservative_above(-5.0)
        );
    }
}

fn main() {
    let config = cli::config_from_args("sweep");
    let tech = Technology::p25();

    eprintln!("sweep: 3 workloads x {} cases", config.cases);
    let t1 = run_two_pin_table(&tech, CouplingDirection::FarEnd, &config, true);
    println!(
        "{}",
        render_table("Table 1: two-pin nets, far-end coupling — error %", &t1)
    );
    let t2 = run_two_pin_table(&tech, CouplingDirection::NearEnd, &config, true);
    println!(
        "{}",
        render_table("Table 2: two-pin nets, near-end coupling — error %", &t2)
    );
    let t3 = run_tree_table(&tech, &config, true);
    println!(
        "{}",
        render_table("Table 3: tree structures, far-end coupling — error %", &t3)
    );

    println!("— summary —");
    conservatism_line("far-end ", &t1);
    conservatism_line("near-end", &t2);
    conservatism_line("trees   ", &t3);
}
