//! Generates a PEX-shaped flat bus-array deck for screening workloads
//! and benchmarks, streamed to stdout (or `--out`):
//!
//! ```text
//! cargo run --release -p xtalk-eval --bin pexgen -- \
//!     [--buses N] [--bits N] [--segments N] [--weak-every N] \
//!     [--fold] [--benign] [--out deck.sp]
//! ```
//!
//! The defaults (8 buses × 16 bits × 4 segments) produce a 128-net deck
//! in which every 16th lane carries a deliberately weak driver; `xtalk
//! screen` on such a deck escalates exactly those lanes. `--fold` splits
//! coupling cards with `+` continuation lines and `--benign` adds
//! `.GLOBAL`/`.TEMP`/`.SUBCKT` front matter, both shapes a real
//! extractor emits.

use std::io::{BufWriter, Write};
use xtalk_tech::{PexDeckSpec, Technology};

fn main() {
    let mut spec = PexDeckSpec::new(8, 16, 4);
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("pexgen: {flag} needs a {what}");
                std::process::exit(2);
            })
        };
        let parse_count = |text: String, flag: &str| -> usize {
            text.parse().unwrap_or_else(|_| {
                eprintln!("pexgen: bad {flag} value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--buses" => spec.buses = parse_count(take("count"), "--buses"),
            "--bits" => spec.bits = parse_count(take("count"), "--bits"),
            "--segments" => spec.segments = parse_count(take("count"), "--segments"),
            "--weak-every" => spec.weak_every = parse_count(take("cadence"), "--weak-every"),
            "--fold" => spec.fold_cards = true,
            "--benign" => spec.benign_directives = true,
            "--out" => out_path = Some(take("path")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: pexgen [--buses N] [--bits N] [--segments N] \
                     [--weak-every N] [--fold] [--benign] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("pexgen: unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    if spec.buses == 0 || spec.bits == 0 || spec.segments == 0 {
        eprintln!("pexgen: --buses/--bits/--segments must be positive");
        std::process::exit(2);
    }
    spec.victim = (0, spec.bits / 2);

    let tech = Technology::p25();
    let result = match &out_path {
        Some(path) => {
            let file = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("pexgen: cannot create {path}: {e}");
                std::process::exit(1);
            });
            let mut out = BufWriter::new(file);
            spec.write_to(&tech, &mut out).and_then(|()| out.flush())
        }
        None => {
            let stdout = std::io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            spec.write_to(&tech, &mut out).and_then(|()| out.flush())
        }
    };
    if let Err(e) = result {
        eprintln!("pexgen: write failed: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "pexgen: {} nets ({} buses x {} bits x {} segments){}",
        spec.net_count(),
        spec.buses,
        spec.bits,
        spec.segments,
        out_path.map_or(String::new(), |p| format!(" -> {p}")),
    );
}
