use crate::{TableStats, ALL_METHODS, ALL_PARAMS};
use std::fmt::Write as _;

/// Renders a [`TableStats`] in the layout of the paper's Tables 1–3:
/// one row pair (`Max.%`, `Ave.%`) per waveform parameter, one column per
/// method, `N/A` where a method does not capture a parameter.
///
/// `title` becomes the caption line.
pub fn render_table(title: &str, stats: &TableStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "  ({} cases scored, {} skipped)",
        stats.scored(),
        stats.skipped()
    );

    let col_w = 16usize;
    let label_w = 14usize;

    // Header.
    let mut header = format!("{:<label_w$}", "metric");
    for m in ALL_METHODS {
        let _ = write!(header, "{:>col_w$}", m.to_string());
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", "-".repeat(header.len()));

    for p in ALL_PARAMS {
        // Max row: "lo ~ hi" like the paper's Vp rows.
        let mut max_row = format!("{:<label_w$}", format!("{p}  Max.(%)"));
        let mut avg_row = format!("{:<label_w$}", format!("{p}  Ave.(%)"));
        for m in ALL_METHODS {
            match stats.cell(m, p) {
                Some(cell) if cell.count() > 0 => {
                    let _ = write!(
                        max_row,
                        "{:>col_w$}",
                        format!("{:.0} ~ {:.0}", cell.max_neg(), cell.max_pos())
                    );
                    let _ = write!(avg_row, "{:>col_w$}", format!("{:.1}", cell.avg_abs()));
                }
                _ => {
                    let _ = write!(max_row, "{:>col_w$}", "N/A");
                    let _ = write!(avg_row, "{:>col_w$}", "N/A");
                }
            }
        }
        let _ = writeln!(out, "{max_row}");
        let _ = writeln!(out, "{avg_row}");
    }

    // Instability / skip footnotes.
    for m in ALL_METHODS {
        let n = stats.no_estimate(m);
        if n > 0 {
            let _ = writeln!(out, "  note: {m} produced no estimate on {n} cases");
        }
    }
    for (reason, count) in stats.skip_reasons() {
        let _ = writeln!(out, "  skipped {count}: {reason}");
    }
    let failures = stats.generation_failures();
    if !failures.is_empty() {
        let _ = writeln!(
            out,
            "  WARNING: {} case(s) failed to generate (results cover the rest):",
            failures.len()
        );
        for failure in failures {
            let _ = writeln!(out, "    {failure}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Method, Param};

    #[test]
    fn renders_na_for_empty_cells() {
        let stats = TableStats::new();
        let s = render_table("Table X", &stats);
        assert!(s.contains("Table X"));
        assert!(s.contains("N/A"));
        assert!(s.contains("Vp"));
        assert!(s.contains("new II"));
    }

    #[test]
    fn renders_recorded_cells() {
        use crate::CaseOutcome;
        use xtalk_core::baselines::BaselineEstimate;
        use xtalk_sim::NoiseWaveformParams;

        let golden = NoiseWaveformParams {
            vp: 0.1,
            tp: 2e-10,
            t0: 1e-10,
            t1: 1e-10,
            t2: 2e-10,
            wn: 3e-10,
            area: 1.5e-11,
            polarity: 1.0,
        };
        let full = BaselineEstimate {
            vp: Some(0.12),
            tp: Some(2.2e-10),
            wn: Some(3.3e-10),
            t1: Some(1.1e-10),
            t2: Some(2.2e-10),
        };
        let outcome = CaseOutcome {
            golden,
            estimates: [None, None, None, None, Some(full), Some(full)],
            lumped_vp: None,
        };
        let mut stats = TableStats::new();
        stats.record(&outcome);
        assert_eq!(stats.scored(), 1);
        let cell = stats.cell(Method::NewOne, Param::Vp).unwrap();
        assert!((cell.max_pos() - 20.0).abs() < 1e-9);
        let s = render_table("T", &stats);
        assert!(s.contains("20"));
        // Methods with no estimates at all get a footnote.
        assert!(s.contains("no estimate on 1 cases"));
    }

    #[test]
    fn degraded_sweep_completes_remaining_cases_and_reports_failures() {
        use crate::evaluate_run;
        use xtalk_circuit::{NetRole, NetworkBuilder};
        use xtalk_tech::sweep::{two_pin_cases, SweepConfig, SweepFailure};
        use xtalk_tech::{CouplingDirection, Technology};

        let tech = Technology::p25();
        let cfg = SweepConfig {
            cases: 3,
            ..SweepConfig::default()
        };
        let mut run = two_pin_cases(&tech, CouplingDirection::FarEnd, &cfg);
        assert_eq!(run.cases.len(), 3);
        // Inject one case that failed to build (a real CircuitError).
        let error = {
            let mut b = NetworkBuilder::new();
            let v = b.add_net("v", NetRole::Victim);
            let n = b.add_node(v, "n");
            b.add_ground_cap(n, -1.0).unwrap_err()
        };
        run.failures.push(SweepFailure {
            label: "two_pin[corrupt]".into(),
            error,
        });

        let stats = evaluate_run(&run, false);
        // All valid cases were still processed …
        assert_eq!(stats.scored() + stats.skipped(), 3);
        assert_eq!(stats.generation_failures().len(), 1);
        // … and the summary names the failed one.
        let rendered = render_table("T", &stats);
        assert!(rendered.contains("1 case(s) failed to generate"));
        assert!(rendered.contains("two_pin[corrupt]"));
    }
}
