//! The parallel table pipeline must be a pure speedup: for one seed, the
//! rendered table is byte-identical whatever the worker count — through
//! generation, evaluation, statistics, and rendering, healthy or faulty.

use xtalk_eval::{evaluate_run_jobs, render_table, run_tree_table_jobs, run_two_pin_table_jobs};
use xtalk_exec::Jobs;
use xtalk_tech::sweep::{two_pin_cases_jobs, SweepConfig};
use xtalk_tech::{CouplingDirection, Technology};

const JOB_GRID: [Jobs; 3] = [Jobs::Count(1), Jobs::Count(4), Jobs::Count(7)];

fn cfg(cases: usize) -> SweepConfig {
    SweepConfig {
        cases,
        seed: 20020304,
        corner_fraction: 0.25,
    }
}

#[test]
fn two_pin_table_renders_identically_for_every_worker_count() {
    let tech = Technology::p25();
    let config = cfg(24);
    let reference = render_table(
        "Table 1",
        &run_two_pin_table_jobs(&tech, CouplingDirection::FarEnd, &config, false, Jobs::Count(1)),
    );
    for jobs in JOB_GRID {
        let table = render_table(
            "Table 1",
            &run_two_pin_table_jobs(&tech, CouplingDirection::FarEnd, &config, false, jobs),
        );
        assert_eq!(table, reference, "two-pin table diverged at jobs {jobs}");
    }
}

#[test]
fn tree_table_renders_identically_for_every_worker_count() {
    let tech = Technology::p25();
    let config = cfg(12);
    let reference = render_table(
        "Table 3",
        &run_tree_table_jobs(&tech, &config, false, Jobs::Count(1)),
    );
    for jobs in JOB_GRID {
        let table = render_table("Table 3", &run_tree_table_jobs(&tech, &config, false, jobs));
        assert_eq!(table, reference, "tree table diverged at jobs {jobs}");
    }
}

#[test]
fn injected_generation_faults_keep_sweep_ordering_and_identical_tables() {
    // A corrupt technology makes every case fail to build; the failures
    // must keep their sweep ordering (so the rendered summary is stable)
    // for any worker count.
    let mut tech = Technology::p25();
    tech.c_per_m = -tech.c_per_m;
    let config = cfg(16);

    let reference_run =
        two_pin_cases_jobs(&tech, CouplingDirection::FarEnd, &config, Jobs::Count(1));
    assert_eq!(reference_run.failures.len(), 16, "fault injection misfired");
    let reference = render_table(
        "Table 1 (faulty)",
        &evaluate_run_jobs(&reference_run, false, Jobs::Count(1)),
    );

    for jobs in JOB_GRID {
        let run = two_pin_cases_jobs(&tech, CouplingDirection::FarEnd, &config, jobs);
        let labels: Vec<&str> = run.failures.iter().map(|f| f.label.as_str()).collect();
        let expected: Vec<&str> = reference_run
            .failures
            .iter()
            .map(|f| f.label.as_str())
            .collect();
        assert_eq!(labels, expected, "failure ordering diverged at jobs {jobs}");

        let table = render_table("Table 1 (faulty)", &evaluate_run_jobs(&run, false, jobs));
        assert_eq!(table, reference, "faulty table diverged at jobs {jobs}");
    }
}

#[test]
fn injected_evaluation_faults_degrade_identically_for_every_worker_count() {
    // Sabotage generated cases so *evaluation* (not generation) fails on
    // some of them: a zeroed input slew defeats the metric templates.
    // Skip accounting must land in the same rendered bytes regardless of
    // the worker count.
    let tech = Technology::p25();
    let config = cfg(12);

    let sabotage = |jobs: Jobs| {
        let mut run = two_pin_cases_jobs(&tech, CouplingDirection::FarEnd, &config, jobs);
        for case in run.cases.iter_mut().skip(1).step_by(3) {
            case.input = xtalk_circuit::signal::InputSignal::step(0.0);
        }
        run
    };

    let reference = render_table(
        "Table 1 (sabotaged)",
        &evaluate_run_jobs(&sabotage(Jobs::Count(1)), false, Jobs::Count(1)),
    );
    for jobs in JOB_GRID {
        let table = render_table(
            "Table 1 (sabotaged)",
            &evaluate_run_jobs(&sabotage(jobs), false, jobs),
        );
        assert_eq!(table, reference, "sabotaged table diverged at jobs {jobs}");
    }
}
