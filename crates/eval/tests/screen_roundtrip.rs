//! Property tests for the screening pipeline's structural promises:
//!
//! * exporting a randomized multi-island network with
//!   [`spice::write_deck`] and re-reading it through the *streaming*
//!   parser recovers the island structure exactly — the partitioner
//!   finds one cluster per constructed island with the right members;
//! * the screened Metric II numbers are bit-identical to the classic
//!   whole-deck [`spice::parse_deck`] path;
//! * folding element cards with `+` continuations mid-card, or
//!   prepending benign directives (under the lenient reader), changes
//!   nothing about the screened numbers.

#![allow(clippy::unwrap_used)] // test code; helpers sit outside #[test] fns

use proptest::prelude::*;
use xtalk_circuit::cluster::CouplingClusters;
use xtalk_circuit::spice::stream::{DeckIndex, StreamOptions};
use xtalk_circuit::spice::{self, parse_deck};
use xtalk_circuit::{NetRole, Network, NetworkBuilder, NodeId};
use xtalk_core::superpose::{worst_case, TimingWindow};
use xtalk_core::{FallbackPolicy, RobustAnalyzer};
use xtalk_eval::screen::{screen_deck, ScreenConfig};
use xtalk_exec::Jobs;

/// One coupling island: `lanes` parallel RC lines, neighbours coupled
/// at every segment. Island 0's lane 0 is the deck's victim.
#[derive(Debug, Clone)]
struct IslandSpec {
    lanes: usize,
    segs: usize,
    res: f64,
    cap: f64,
}

fn islands() -> impl Strategy<Value = Vec<IslandSpec>> {
    prop::collection::vec(
        (1usize..4, 1usize..4, 10.0..300.0f64, 1e-15..2e-14f64).prop_map(
            |(lanes, segs, res, cap)| IslandSpec {
                lanes,
                segs,
                res,
                cap,
            },
        ),
        1..4,
    )
}

/// Builds one network holding every island; nets are declared island by
/// island, so island `k`'s nets occupy one contiguous index range.
fn build(specs: &[IslandSpec]) -> Network {
    let mut b = NetworkBuilder::new();
    for (k, spec) in specs.iter().enumerate() {
        let mut prev_lane: Vec<NodeId> = Vec::new();
        for lane in 0..spec.lanes {
            let role = if k == 0 && lane == 0 {
                NetRole::Victim
            } else {
                NetRole::Aggressor
            };
            let net = b.add_net(format!("i{k}_l{lane}"), role);
            let mut nodes = vec![b.add_node(net, format!("i{k}_l{lane}_0"))];
            b.add_driver(net, nodes[0], spec.res * 3.0).unwrap();
            for s in 1..=spec.segs {
                let n = b.add_node(net, format!("i{k}_l{lane}_{s}"));
                b.add_resistor(nodes[s - 1], n, spec.res).unwrap();
                b.add_ground_cap(n, spec.cap).unwrap();
                if let Some(&other) = prev_lane.get(s) {
                    b.add_coupling_cap(n, other, spec.cap * 1.5).unwrap();
                }
                nodes.push(n);
            }
            b.add_sink(nodes[spec.segs], spec.cap * 2.0).unwrap();
            prev_lane = nodes;
        }
    }
    b.build().unwrap()
}

/// Folds every element card of `deck` mid-card: the last field moves to
/// a `+` continuation line.
fn fold_cards(deck: &str) -> String {
    let mut out = String::with_capacity(deck.len() + 128);
    for line in deck.lines() {
        if !line.starts_with('*')
            && !line.starts_with('.')
            && line.split_whitespace().count() >= 4
        {
            let pos = line.rfind(' ').unwrap();
            out.push_str(&line[..pos]);
            out.push_str("\n+ ");
            out.push_str(&line[pos + 1..]);
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// The whole-deck reference path: [`parse_deck`] + the robust analyzer
/// over every aggressor directly coupled to the victim, combined by
/// worst-case superposition. Mirrors what screening does per island.
fn full_eval_vp(deck: &str, config: &ScreenConfig) -> (f64, f64) {
    let network = parse_deck(deck).unwrap();
    let robust = RobustAnalyzer::with_policy(&network, FallbackPolicy::default()).unwrap();
    let input = config.input();
    let victim = network.victim();
    let mut contributions = Vec::new();
    for (agg, _) in network.nets() {
        if agg == victim || network.couplings_between(agg, victim).next().is_none() {
            continue;
        }
        match robust.analyze(agg, &input) {
            Ok(re) => contributions.push((re.estimate, TimingWindow::pinned())),
            Err(e) if e.is_no_noise() => {}
            Err(e) => panic!("full path failed: {e}"),
        }
    }
    if contributions.is_empty() {
        (0.0, 0.0)
    } else {
        let combined = worst_case(&contributions);
        (combined.vp, combined.at)
    }
}

fn screen_config() -> ScreenConfig {
    ScreenConfig {
        jobs: Jobs::Count(1),
        escalate: false,
        ..ScreenConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn streamed_clusters_match_construction(specs in islands()) {
        let deck = spice::write_deck(&build(&specs));
        let index = DeckIndex::from_reader(deck.as_bytes(), StreamOptions::default()).unwrap();
        let clusters = CouplingClusters::partition(&index);

        prop_assert_eq!(clusters.len(), specs.len());
        let mut first = 0usize;
        for spec in &specs {
            let id = clusters.cluster_of(first).unwrap();
            let members: Vec<u32> = (first..first + spec.lanes).map(|i| i as u32).collect();
            prop_assert_eq!(clusters.members(id), members.as_slice());
            first += spec.lanes;
        }
    }

    #[test]
    fn screened_metrics_match_whole_deck_parse(specs in islands()) {
        let deck = spice::write_deck(&build(&specs));
        let config = screen_config();
        let report = screen_deck(deck.as_bytes(), &config).unwrap();
        prop_assert_eq!(report.failed, 0);

        // The deck's declared victim (net 0) is the one net the classic
        // single-victim path can evaluate; its numbers must agree bit
        // for bit with the streamed island analysis.
        let (vp, at) = full_eval_vp(&deck, &config);
        let screened = report.nets.iter().find(|n| n.index == 0).unwrap();
        prop_assert_eq!(screened.vp.to_bits(), vp.to_bits());
        prop_assert_eq!(screened.at.to_bits(), at.to_bits());
    }

    #[test]
    fn folding_and_benign_directives_change_nothing(specs in islands()) {
        let deck = spice::write_deck(&build(&specs));
        let config = screen_config();
        let plain = screen_deck(deck.as_bytes(), &config).unwrap();

        // Mid-card continuation folds: identical nets, bit-identical
        // numbers, counted continuations.
        let folded_deck = fold_cards(&deck);
        let folded = screen_deck(folded_deck.as_bytes(), &config).unwrap();
        prop_assert!(folded.continuations > 0);
        prop_assert_eq!(plain.nets.len(), folded.nets.len());
        for (a, b) in plain.nets.iter().zip(folded.nets.iter()) {
            prop_assert_eq!(a.index, b.index);
            prop_assert_eq!(a.vp.to_bits(), b.vp.to_bits());
            prop_assert_eq!(a.at.to_bits(), b.at.to_bits());
            prop_assert_eq!(a.cluster, b.cluster);
        }

        // Benign front matter under the lenient reader: skipped with a
        // count, numbers untouched.
        let benign_deck = format!(".GLOBAL vdd vss\n.TEMP 25\n.OPTION post=1\n{deck}");
        let benign = screen_deck(benign_deck.as_bytes(), &config).unwrap();
        prop_assert_eq!(benign.skipped_directives, 3);
        for (a, b) in plain.nets.iter().zip(benign.nets.iter()) {
            prop_assert_eq!(a.vp.to_bits(), b.vp.to_bits());
        }
    }
}
