//! Wire-level fault injection against a live daemon.
//!
//! The in-crate unit tests cover each robustness layer in isolation;
//! this suite replays the whole hostile world over a real socket: the
//! corrupted-deck catalog from `crates/core/tests/fault_injection.rs`
//! (reproduced at the deck level — the wire protocol's attack surface),
//! garbage JSON, schema violations, oversized requests, deliberate
//! worker panics, expired deadlines, mid-stream disconnects, and
//! concurrent clients. The invariants under test everywhere:
//!
//! 1. the daemon never exits or stops answering,
//! 2. every admitted request line gets exactly one reply,
//! 3. replies leave each connection in request order,
//! 4. every degraded/failed reply carries structured provenance
//!    (a `code`, or per-row rung/failure details).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::Duration;
use xtalk_serve::json::{self, Value};
use xtalk_serve::{ServeConfig, Server};
use xtalk_exec::Jobs;

/// A healthy two-pin deck in the exporter subset (mirrors the golden
/// template in the core fault-injection suite).
const GOOD_DECK: &str = "\
* two-pin pair
*! net 0 victim victim
*! net 1 aggressor agg0
*! output n1
VDRV0 src0 0 DC 0
RDRV0 src0 n0 300
VDRV1 src1 0 DC 0
RDRV1 src1 n2 150
R0 n0 n1 60
C0 n0 0 2e-15
C1 n1 0 8e-15
CL0 n1 0 12e-15
CL1 n2 0 10e-15
CC0 n2 n1 25e-15
.end
";

/// The corrupted-deck catalog, at the wire's level of abstraction.
fn deck_faults() -> Vec<(&'static str, String)> {
    vec![
        ("empty deck", String::new()),
        ("garbage deck", "not a deck at all\n\u{1}\n".to_string()),
        ("deck with NaN value", GOOD_DECK.replace("60", "NaN")),
        ("deck with negated cap", GOOD_DECK.replace("25e-15", "-25e-15")),
        (
            "deck with truncated card",
            GOOD_DECK.replace("R0 n0 n1 60", "R0 n0"),
        ),
        (
            "deck with duplicate card",
            GOOD_DECK.replace("R0 n0 n1 60", "R0 n0 n1 60\nR0 n0 n1 60"),
        ),
        (
            "deck missing output directive",
            GOOD_DECK.replace("*! output n1\n", ""),
        ),
        (
            "deck referencing an undefined node",
            GOOD_DECK.replace("CC0 n2 n1 25e-15", "CC0 n2 n99 25e-15"),
        ),
        (
            "deck with zeroed victim driver",
            GOOD_DECK.replace("RDRV0 src0 n0 300", "RDRV0 src0 n0 0"),
        ),
        (
            "deck with negated wire resistance",
            GOOD_DECK.replace("R0 n0 n1 60", "R0 n0 n1 -60"),
        ),
        (
            "deck with infinite coupling",
            GOOD_DECK.replace("CC0 n2 n1 25e-15", "CC0 n2 n1 inf"),
        ),
        (
            "deck with zeroed ground caps",
            GOOD_DECK.replace("C0 n0 0 2e-15", "C0 n0 0 0").replace("C1 n1 0 8e-15", "C1 n1 0 0"),
        ),
    ]
}

fn analyze_line(id: usize, deck: &str, extra: &str) -> String {
    let mut line = format!("{{\"id\":{id},\"type\":\"analyze\",\"deck\":");
    json::write_escaped(&mut line, deck);
    line.push_str(extra);
    line.push('}');
    line
}

/// Boots a daemon with a TCP accept loop; returns it with the address
/// and the acceptor join handle (exits on shutdown).
fn start(config: ServeConfig) -> (Server, SocketAddr, thread::JoinHandle<()>) {
    let server = Server::new(config);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = server.handle();
    let acceptor = thread::spawn(move || {
        listener.set_nonblocking(true).expect("nonblocking");
        loop {
            if handle.shutdown_requested() {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).expect("blocking");
                    stream
                        .set_read_timeout(Some(Duration::from_millis(20)))
                        .expect("timeout");
                    let writer = stream.try_clone().expect("clone");
                    let h = handle.clone();
                    thread::spawn(move || h.attach(&stream, writer));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("accept failed: {e}"),
            }
        }
    });
    (server, addr, acceptor)
}

fn stop(server: Server, acceptor: thread::JoinHandle<()>) -> xtalk_serve::ServeSummary {
    server.handle().request_shutdown();
    server.run_until_drained();
    let summary = server.finish();
    acceptor.join().expect("acceptor");
    summary
}

#[test]
fn fault_catalog_replay_keeps_the_daemon_answering() {
    let (server, addr, acceptor) = start(ServeConfig {
        jobs: Jobs::Count(2),
        allow_test_faults: true,
        ..ServeConfig::default()
    });

    // One request line per catalog entry, plus wire-native faults.
    let mut lines: Vec<String> = Vec::new();
    for (i, (_name, deck)) in deck_faults().into_iter().enumerate() {
        lines.push(analyze_line(i, &deck, ""));
    }
    let base = lines.len();
    lines.push(format!("{{\"id\":{base},\"type\":\"analyze\",\"deck\":\"x\",\"slew\":1e-30}}"));
    lines.push(analyze_line(base + 1, GOOD_DECK, ",\"slew\":1e30"));
    lines.push(analyze_line(base + 2, GOOD_DECK, ",\"shape\":\"step\""));
    lines.push(analyze_line(base + 3, GOOD_DECK, ",\"arrival\":-1.0"));
    lines.push("this is not json".to_string());
    lines.push(format!("{{\"id\":{},\"type\":\"frobnicate\"}}", base + 5));
    lines.push(format!("{{\"id\":{},\"type\":\"boom\"}}", base + 6));
    lines.push(analyze_line(base + 7, GOOD_DECK, ""));
    let total = lines.len();

    let client = TcpStream::connect(addr).expect("connect");
    let mut tx = client.try_clone().expect("clone");
    let lines_out = lines.clone();
    let sender = thread::spawn(move || {
        for line in &lines_out {
            tx.write_all(line.as_bytes()).expect("write");
            tx.write_all(b"\n").expect("write");
        }
        tx.flush().expect("flush");
    });
    let reader = BufReader::new(client.try_clone().expect("clone"));
    let replies: Vec<Value> = reader
        .lines()
        .take(total)
        .map(|l| json::parse(&l.expect("read")).expect("reply parses"))
        .collect();
    sender.join().expect("sender");

    assert_eq!(replies.len(), total, "one reply per request line");
    // Order: every id-bearing request's reply arrives at its own index.
    for (i, reply) in replies.iter().enumerate() {
        if let Some(id) = reply.get("id").and_then(Value::as_f64) {
            assert_eq!(id as usize, i, "reply out of order at index {i}");
        }
        // Structured provenance: every reply has a status; failures carry
        // a code and detail.
        let status = reply.get("status").and_then(Value::as_str).expect("status");
        if status == "error" {
            assert!(reply.get("code").and_then(Value::as_str).is_some());
            assert!(reply.get("detail").and_then(Value::as_str).is_some());
        }
        if status == "ok" || status == "degraded" {
            assert!(reply.get("rows").is_some(), "analysis reply without rows");
        }
    }
    // The deliberate panic was fenced...
    assert_eq!(
        replies[base + 6].get("code").and_then(Value::as_str),
        Some("panic")
    );
    // ...and the daemon still served the healthy case right after it.
    assert_eq!(
        replies[base + 7].get("status").and_then(Value::as_str),
        Some("ok")
    );
    drop(client);

    // The daemon is still healthy for a brand-new connection.
    let probe = TcpStream::connect(addr).expect("reconnect");
    let mut ptx = probe.try_clone().expect("clone");
    ptx.write_all(b"{\"id\":\"probe\",\"type\":\"ping\"}\n").expect("write");
    let mut line = String::new();
    BufReader::new(&probe).read_line(&mut line).expect("read");
    let pong = json::parse(line.trim_end()).expect("pong parses");
    assert_eq!(pong.get("type").and_then(Value::as_str), Some("pong"));
    drop(probe);

    let summary = stop(server, acceptor);
    assert_eq!(summary.panics_caught, 1);
}

/// Deadline-pinched golden requests over the wire: the analytic fast
/// tier rescues eligible cases (stamped `golden_tier: "analytic"`),
/// ineligible shapes skip (`"skipped"`), and a comfortable budget gets
/// the full transient reference (`"transient"`).
#[test]
fn deadline_pressure_stamps_the_golden_tier() {
    let (server, addr, acceptor) = start(ServeConfig {
        jobs: Jobs::Count(1),
        ..ServeConfig::default()
    });

    let lines = [
        analyze_line(0, GOOD_DECK, ",\"golden\":true,\"deadline_ms\":30000"),
        analyze_line(1, GOOD_DECK, ",\"golden\":true,\"deadline_ms\":1e-3"),
        analyze_line(
            2,
            GOOD_DECK,
            ",\"golden\":true,\"deadline_ms\":1e-3,\"shape\":\"exp\"",
        ),
    ];
    let client = TcpStream::connect(addr).expect("connect");
    let mut tx = client.try_clone().expect("clone");
    for line in &lines {
        tx.write_all(line.as_bytes()).expect("write");
        tx.write_all(b"\n").expect("write");
    }
    tx.flush().expect("flush");
    let reader = BufReader::new(client.try_clone().expect("clone"));
    let replies: Vec<Value> = reader
        .lines()
        .take(lines.len())
        .map(|l| json::parse(&l.expect("read")).expect("reply parses"))
        .collect();

    let tier = |v: &Value| {
        v.get("deadline")
            .and_then(|d| d.get("golden_tier"))
            .and_then(Value::as_str)
            .map(str::to_string)
            .expect("golden_tier stamped")
    };
    assert_eq!(tier(&replies[0]), "transient", "{:?}", replies[0]);
    let row_tier = |v: &Value| {
        let Some(Value::Arr(rows)) = v.get("rows") else {
            panic!("rows missing")
        };
        rows[0]
            .get("golden")
            .and_then(|g| g.get("tier"))
            .and_then(Value::as_str)
            .map(str::to_string)
    };
    assert_eq!(row_tier(&replies[0]).as_deref(), Some("transient"));

    // Expired budget + analytic-eligible deck: rescued, still degraded
    // (the deadline itself expired) but with a cross-check in hand.
    assert_eq!(tier(&replies[1]), "analytic", "{:?}", replies[1]);
    assert_eq!(row_tier(&replies[1]).as_deref(), Some("analytic"));
    assert_eq!(
        replies[1].get("status").and_then(Value::as_str),
        Some("degraded")
    );

    // Expired budget + exp shape: the fast tier declines, the check is
    // skipped, and the stamp says so.
    assert_eq!(tier(&replies[2]), "skipped", "{:?}", replies[2]);
    assert_eq!(row_tier(&replies[2]), None);
    assert_eq!(
        replies[2]
            .get("deadline")
            .and_then(|d| d.get("golden_skipped"))
            .and_then(Value::as_f64),
        Some(1.0)
    );

    drop(client);
    stop(server, acceptor);
}

#[test]
fn mid_stream_disconnect_does_not_poison_the_daemon() {
    let (server, addr, acceptor) = start(ServeConfig {
        jobs: Jobs::Count(1),
        ..ServeConfig::default()
    });

    {
        let mut rude = TcpStream::connect(addr).expect("connect");
        // Half a request line, then vanish.
        rude.write_all(b"{\"id\":1,\"type\":\"analyze\",\"deck\":\"incomple")
            .expect("write");
        rude.flush().expect("flush");
    }
    {
        let mut rude = TcpStream::connect(addr).expect("connect");
        // Three full requests, then vanish without reading any reply.
        for i in 0..3 {
            rude.write_all(analyze_line(i, GOOD_DECK, "").as_bytes())
                .expect("write");
            rude.write_all(b"\n").expect("write");
        }
        rude.flush().expect("flush");
    }

    // A polite client is served normally afterwards.
    let mut client = TcpStream::connect(addr).expect("connect");
    client
        .write_all(analyze_line(9, GOOD_DECK, "").as_bytes())
        .expect("write");
    client.write_all(b"\n").expect("write");
    let mut line = String::new();
    BufReader::new(client.try_clone().expect("clone"))
        .read_line(&mut line)
        .expect("read");
    let reply = json::parse(line.trim_end()).expect("parses");
    assert_eq!(reply.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(reply.get("id").and_then(Value::as_f64), Some(9.0));
    drop(client);

    // And the drain completes despite the two dead connections.
    stop(server, acceptor);
}

#[test]
fn concurrent_clients_each_see_ordered_replies() {
    let (server, addr, acceptor) = start(ServeConfig {
        jobs: Jobs::Count(4),
        queue_capacity: 512,
        ..ServeConfig::default()
    });

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 40;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let client = TcpStream::connect(addr).expect("connect");
                let mut tx = client.try_clone().expect("clone");
                let sender = thread::spawn(move || {
                    for i in 0..PER_CLIENT {
                        let id = c * 1000 + i;
                        // Interleave healthy, malformed, and schema-bad
                        // requests so worker timing varies per client.
                        let line = match i % 3 {
                            0 => analyze_line(id, GOOD_DECK, ""),
                            1 => format!("{{\"id\":{id},\"type\":\"ping\"}}"),
                            _ => format!("{{\"id\":{id},\"type\":\"analyze\"}}"),
                        };
                        tx.write_all(line.as_bytes()).expect("write");
                        tx.write_all(b"\n").expect("write");
                    }
                    tx.flush().expect("flush");
                });
                let reader = BufReader::new(client);
                let ids: Vec<usize> = reader
                    .lines()
                    .take(PER_CLIENT)
                    .map(|l| {
                        json::parse(&l.expect("read"))
                            .expect("parses")
                            .get("id")
                            .and_then(Value::as_f64)
                            .expect("id echoed") as usize
                    })
                    .collect();
                sender.join().expect("sender");
                (c, ids)
            })
        })
        .collect();
    for w in workers {
        let (c, ids) = w.join().expect("client");
        let expected: Vec<usize> = (0..PER_CLIENT).map(|i| c * 1000 + i).collect();
        assert_eq!(ids, expected, "client {c} saw interleaved/reordered replies");
    }
    stop(server, acceptor);
}

/// The acceptance-criteria soak: one daemon process, ≥1000 mixed
/// requests including every fault-catalog case, deliberate panics, and
/// deadline-expired cases — without exiting, leaking queue slots, or
/// losing reply ordering.
#[test]
fn soak_one_thousand_mixed_requests_on_one_daemon() {
    // Capacity above the batch size: this test pins down exact panic
    // and degradation counts, so nothing may shed (backpressure has its
    // own tests with a starved queue).
    let (server, addr, acceptor) = start(ServeConfig {
        jobs: Jobs::Count(4),
        queue_capacity: 2048,
        allow_test_faults: true,
        ..ServeConfig::default()
    });

    let faults = deck_faults();
    const TOTAL: usize = 1000;
    let lines: Vec<String> = (0..TOTAL)
        .map(|i| match i % 10 {
            // Deliberate worker panic, every 10th request.
            9 => format!("{{\"id\":{i},\"type\":\"boom\"}}"),
            // Deadline already expired when the worker picks it up:
            // golden is skipped, reply degrades with provenance.
            8 => analyze_line(i, GOOD_DECK, ",\"golden\":true,\"deadline_ms\":1e-3"),
            // Garbage JSON (still answered, with a null id).
            7 => "][ not json".to_string(),
            // A rotating corrupted deck from the catalog.
            4..=6 => analyze_line(i, &faults[i % faults.len()].1, ""),
            // Healthy closed-form work.
            _ => analyze_line(i, GOOD_DECK, ""),
        })
        .collect();

    let client = TcpStream::connect(addr).expect("connect");
    let mut tx = client.try_clone().expect("clone");
    let lines_out = lines.clone();
    let sender = thread::spawn(move || {
        for line in &lines_out {
            tx.write_all(line.as_bytes()).expect("write");
            tx.write_all(b"\n").expect("write");
        }
        tx.flush().expect("flush");
    });
    let reader = BufReader::new(client.try_clone().expect("clone"));
    let replies: Vec<Value> = reader
        .lines()
        .take(TOTAL)
        .map(|l| json::parse(&l.expect("read")).expect("reply parses"))
        .collect();
    sender.join().expect("sender");

    assert_eq!(replies.len(), TOTAL, "every request got exactly one reply");
    let mut panics = 0u64;
    let mut degraded = 0u64;
    let mut overloaded = 0u64;
    // Replies produced by the connection reader itself (malformed JSON,
    // schema rejections) never reach the worker pool.
    let mut reader_handled = 0u64;
    for (i, reply) in replies.iter().enumerate() {
        let status = reply.get("status").and_then(Value::as_str).expect("status");
        match i % 10 {
            7 => assert_eq!(
                reply.get("id").and_then(|v| v.as_f64()),
                None,
                "garbage JSON cannot echo an id"
            ),
            _ => {
                // Ordering: reply i carries id i (or was shed with the
                // same id — still one reply, still in order).
                assert_eq!(
                    reply.get("id").and_then(Value::as_f64),
                    Some(i as f64),
                    "reply out of order at index {i} (status {status})"
                );
            }
        }
        match status {
            "error" => {
                let code = reply.get("code").and_then(Value::as_str).expect("code");
                if code == "panic" {
                    panics += 1;
                }
                if code == "bad_json" || code == "schema" {
                    reader_handled += 1;
                }
                assert!(reply.get("detail").and_then(Value::as_str).is_some());
            }
            "degraded" => {
                degraded += 1;
                // Structured provenance: either the deadline block says
                // what was skipped, or a row names its fallback rung.
                let deadline_says = reply
                    .get("deadline")
                    .map(|d| {
                        d.get("expired").and_then(Value::as_bool) == Some(true)
                            || d.get("golden_skipped").and_then(Value::as_f64).unwrap_or(0.0)
                                > 0.0
                    })
                    .unwrap_or(false);
                let row_says = matches!(reply.get("rows"), Some(Value::Arr(rows)) if rows
                    .iter()
                    .any(|r| r.get("degraded").and_then(Value::as_bool) == Some(true)
                        || r.get("error").is_some()));
                assert!(
                    deadline_says || row_says,
                    "degraded reply {i} carries no provenance"
                );
            }
            "overloaded" => {
                overloaded += 1;
                assert!(reply.get("retry_after_ms").and_then(Value::as_f64).is_some());
            }
            "ok" => {}
            other => panic!("unexpected status {other:?} at index {i}"),
        }
    }
    assert_eq!(panics, (TOTAL / 10) as u64, "every boom was fenced");
    assert!(degraded >= (TOTAL / 10) as u64, "deadline cases degraded");
    assert_eq!(overloaded, 0, "nothing may shed below capacity");

    // Queue slots did not leak: the daemon drains to empty and reports
    // exactly the work it did — every queueable line reached a worker
    // (garbage JSON is answered by the connection reader instead).
    drop(client);
    let summary = stop(server, acceptor);
    assert_eq!(summary.panics_caught, (TOTAL / 10) as u64);
    assert_eq!(summary.shed, 0);
    // Every request the reader did not answer itself reached a worker
    // and was served — no queue slot was leaked or double-counted.
    assert_eq!(summary.served, TOTAL as u64 - reader_handled);
}

#[test]
fn shutdown_rejects_new_requests_with_a_structured_reply() {
    let (server, addr, acceptor) = start(ServeConfig::default());
    let mut client = TcpStream::connect(addr).expect("connect");
    server.handle().request_shutdown();
    // The connection reader may notice shutdown and close before parsing
    // our line; both "shutting_down reply" and "clean disconnect" are
    // acceptable — what is not acceptable is a hung client or a served
    // request after shutdown.
    client
        .write_all(analyze_line(1, GOOD_DECK, "").as_bytes())
        .expect("write");
    client.write_all(b"\n").expect("write");
    let mut line = String::new();
    // A connection-reset error also counts as "disconnected": the
    // acceptor may already have dropped the listener with this
    // connection still in its backlog.
    match BufReader::new(client.try_clone().expect("clone")).read_line(&mut line) {
        Ok(n) if n > 0 => {
            let reply = json::parse(line.trim_end()).expect("parses");
            assert_eq!(
                reply.get("code").and_then(Value::as_str),
                Some("shutting_down")
            );
        }
        Ok(_) | Err(_) => {}
    }
    drop(client);
    server.run_until_drained();
    let summary = server.finish();
    acceptor.join().expect("acceptor");
    assert_eq!(summary.served, 0);
}
