//! The structured request-lifecycle event log.
//!
//! Every admitted request leaves a breadcrumb trail — `admitted`,
//! `shed`, `started`, `rung_degraded`, `deadline`, `completed`,
//! `panicked` — rendered eagerly as one JSON object per line (JSONL) and
//! buffered in a bounded ring. `admitted` is recorded before the job
//! becomes poppable, so it always precedes the worker-side events; a
//! request the full queue then refuses follows its `admitted` line with
//! a `shed` retraction. The lines carry the server-global request
//! number (`req`), the client-supplied `id`, a timestamp relative to
//! server start (`t_ms`), and per-event fields such as queue depth or
//! per-stage latencies, so a single `grep '"req":17'` over the flushed
//! file reconstructs one request's life; the same `req` number appears
//! as `args.req` on the Chrome-trace spans recorded while the request
//! ran (see `xtalk_obs::push_request_ctx`).
//!
//! The ring evicts oldest-first when full (a daemon keeps its *recent*
//! history) and counts evictions; the `stats` reply surfaces
//! `events.buffered` / `events.dropped` so a reader knows whether the
//! log is complete. Rendering happens outside the lock; the lock holds
//! only a `VecDeque` rotate.

use crate::proto::RequestId;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Default event-ring capacity (lines).
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

struct Buf {
    lines: VecDeque<String>,
    dropped: u64,
}

/// A bounded in-memory JSONL event log (see the module docs).
pub struct EventLog {
    buf: Mutex<Buf>,
    capacity: usize,
    start: Instant,
}

impl EventLog {
    /// Creates a log holding at most `capacity` lines (minimum 1),
    /// timestamping events relative to now.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        EventLog {
            buf: Mutex::new(Buf {
                lines: VecDeque::new(),
                dropped: 0,
            }),
            capacity: capacity.max(1),
            start: Instant::now(),
        }
    }

    /// Appends one event line. `req` is the server-global request
    /// number (0 for events before admission, e.g. a shed), `id` the
    /// client-supplied request id, and `detail` extra pre-rendered JSON
    /// members — either empty or starting with `,` (e.g.
    /// `,"queue_depth":3`).
    pub fn emit(&self, event: &str, req: u64, id: &RequestId, detail: &str) {
        debug_assert!(detail.is_empty() || detail.starts_with(','));
        let t_ms = self.start.elapsed().as_secs_f64() * 1e3;
        let mut line = String::with_capacity(64 + detail.len());
        let _ = write!(
            line,
            "{{\"t_ms\":{t_ms:.3},\"event\":\"{event}\",\"req\":{req},\"id\":{}{detail}}}",
            id.as_json()
        );
        let mut buf = self.buf.lock().unwrap_or_else(PoisonError::into_inner);
        while buf.lines.len() >= self.capacity {
            buf.lines.pop_front();
            buf.dropped += 1;
        }
        buf.lines.push_back(line);
    }

    /// Takes every buffered line, oldest first, leaving the log empty
    /// (the dropped count survives).
    #[must_use]
    pub fn drain(&self) -> Vec<String> {
        let mut buf = self.buf.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut buf.lines).into_iter().collect()
    }

    /// Number of lines currently buffered.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .lines
            .len()
    }

    /// Lines evicted so far because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};

    #[test]
    fn lines_are_json_with_the_common_fields() {
        let log = EventLog::new(8);
        log.emit("admitted", 3, &RequestId::null(), ",\"queue_depth\":1");
        let lines = log.drain();
        assert_eq!(lines.len(), 1);
        let v = json::parse(&lines[0]).expect("event line is JSON");
        assert_eq!(v.get("event").and_then(Value::as_str), Some("admitted"));
        assert_eq!(v.get("req").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("queue_depth").and_then(Value::as_f64), Some(1.0));
        assert!(v.get("t_ms").and_then(Value::as_f64).is_some());
        assert_eq!(log.buffered(), 0, "drain empties the ring");
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let log = EventLog::new(2);
        for req in 1..=5u64 {
            log.emit("completed", req, &RequestId::null(), "");
        }
        assert_eq!(log.buffered(), 2);
        assert_eq!(log.dropped(), 3);
        let lines = log.drain();
        assert!(lines[0].contains("\"req\":4") && lines[1].contains("\"req\":5"));
        assert_eq!(log.dropped(), 3, "dropped count survives the drain");
    }
}
