//! Minimal async-signal-safe SIGTERM/SIGINT latch.
//!
//! The daemon must drain in-flight work on SIGTERM rather than die
//! mid-reply. The handler does the only thing that is async-signal-safe
//! here: store a relaxed atomic flag. The server's poll loops
//! ([`crate::server::Server::run_until_drained`] and the accept loops)
//! observe it within a few milliseconds.
//!
//! No `libc` crate in this zero-dependency workspace, so the `signal(2)`
//! binding is declared directly. `unsafe` is confined to this module;
//! the rest of the crate denies it.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION: AtomicBool = AtomicBool::new(false);

/// `true` once SIGTERM/SIGINT has been received (or
/// [`raise_termination`] was called).
pub fn termination_requested() -> bool {
    TERMINATION.load(Ordering::SeqCst)
}

/// Sets the termination latch from regular code (tests, EOF paths).
pub fn raise_termination() {
    TERMINATION.store(true, Ordering::SeqCst);
}

#[cfg(test)]
pub(crate) fn reset_for_test() {
    TERMINATION.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::TERMINATION;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    #[allow(unsafe_code)]
    mod ffi {
        extern "C" {
            /// POSIX `signal(2)`. Installing a handler that only stores
            /// an atomic flag is async-signal-safe.
            pub fn signal(signum: i32, handler: usize) -> usize;
        }
    }

    extern "C" fn on_terminate(_signum: i32) {
        // Only async-signal-safe operation: a plain atomic store.
        TERMINATION.store(true, Ordering::SeqCst);
    }

    /// Installs the SIGTERM/SIGINT handlers. Idempotent.
    #[allow(unsafe_code)]
    pub fn install() {
        // SAFETY: `on_terminate` has the C signal-handler ABI and only
        // performs an atomic store, which is async-signal-safe.
        unsafe {
            ffi::signal(SIGTERM, on_terminate as *const () as usize);
            ffi::signal(SIGINT, on_terminate as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Non-Unix fallback: no signal handlers; shutdown still works via
    /// EOF and [`super::raise_termination`].
    pub fn install() {}
}

/// Installs termination handlers for the current process (no-op off
/// Unix). Call once before serving.
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_is_settable_and_observable() {
        reset_for_test();
        assert!(!termination_requested());
        raise_termination();
        assert!(termination_requested());
        reset_for_test();
    }

    #[test]
    fn installing_handlers_does_not_disturb_the_latch() {
        reset_for_test();
        install_handlers();
        assert!(!termination_requested());
        reset_for_test();
    }
}
