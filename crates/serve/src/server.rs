//! The daemon: worker pool, connection handling, admission control, and
//! graceful-drain lifecycle.
//!
//! # Threading model
//!
//! One fixed worker pool (size = `--jobs`) consumes a single bounded
//! queue. Each connection gets a *reader* (the thread that calls
//! [`ServerHandle::attach`]) and a spawned *writer*. The reader assigns
//! every request line a per-connection sequence number and sends cheap
//! replies (schema errors, pings, stats, backpressure) itself; analysis
//! jobs carry their sequence number through the queue and the worker
//! sends the reply. The writer holds a reorder buffer and emits strictly
//! by sequence number, so **replies leave a connection in request order**
//! no matter how the pool interleaves the work.
//!
//! # Fault fences
//!
//! Every job runs under `catch_unwind`. A poisoned netlist that panics
//! the analysis stack produces one `status: "error"` reply
//! (`code: "panic"`) and a fresh `SimWorkspace` for that worker; the
//! pool, the queue, and every other connection are untouched.
//!
//! # Drain
//!
//! Shutdown (SIGTERM, EOF, or [`ServerHandle::request_shutdown`]) stops
//! admission, then waits until the queue is empty, no job is running,
//! and every accepted request's reply has been handed to its connection
//! — only then do the workers exit. A client that disconnected early
//! cannot wedge the drain: undeliverable replies are counted as
//! delivered and dropped.

use crate::engine::{self, RequestTrace};
use crate::events::{EventLog, DEFAULT_EVENT_CAPACITY};
use crate::proto::{self, Request, RequestId};
use crate::queue::{Bounded, PushError};
use crate::signal;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError, Weak};
use std::thread;
use std::time::{Duration, Instant};
use xtalk_exec::Jobs;
use xtalk_obs::WindowRing;
use xtalk_sim::SimWorkspace;

/// How often blocking socket reads wake up to poll the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// How often the telemetry thread closes a window interval.
const TELEMETRY_INTERVAL: Duration = Duration::from_secs(1);

/// Closed intervals retained by the window ring (2 minutes of history).
const WINDOW_CAPACITY: usize = 120;

/// Intervals a `stats` reply aggregates over (~60 s plus the live
/// partial interval).
const STATS_WINDOW_INTERVALS: usize = 60;

/// Server tuning knobs, all with serviceable defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker pool size.
    pub jobs: Jobs,
    /// Bounded queue capacity; beyond it requests are shed with
    /// `status: "overloaded"` backpressure replies.
    pub queue_capacity: usize,
    /// Maximum request line size in bytes; longer lines are discarded
    /// and answered with a `request_too_large` error.
    pub max_request_bytes: usize,
    /// Default per-request deadline budget (ms) applied when a request
    /// does not carry its own `deadline_ms`.
    pub default_deadline_ms: Option<f64>,
    /// Honor `{"type": "boom"}` requests that deliberately panic a
    /// worker — the fault-isolation test hook. Off in production.
    pub allow_test_faults: bool,
    /// Capacity of the in-memory request-event ring (JSONL lines);
    /// oldest lines are evicted and counted once it fills.
    pub event_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            jobs: Jobs::Auto,
            queue_capacity: 64,
            max_request_bytes: 4 << 20,
            default_deadline_ms: None,
            allow_test_faults: false,
            event_capacity: DEFAULT_EVENT_CAPACITY,
        }
    }
}

/// End-of-life accounting, reported by [`Server::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered by the worker pool (analysis + test faults).
    pub served: u64,
    /// Worker panics caught and converted into error replies.
    pub panics_caught: u64,
    /// Requests shed with backpressure replies.
    pub shed: u64,
}

impl std::fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served {} request(s), caught {} worker panic(s), shed {} under load",
            self.served, self.panics_caught, self.shed
        )
    }
}

/// Per-connection accounting for ordered delivery and drain tracking.
struct ConnState {
    /// Lines admitted for reply (sequence numbers handed out).
    submitted: AtomicU64,
    /// Replies handed to the connection (written, or dropped because the
    /// client vanished — either way no longer pending).
    delivered: AtomicU64,
}

enum JobKind {
    Analyze(Box<proto::AnalyzeRequest>),
    /// Deliberate panic inside the worker (test-faults mode only).
    Boom,
}

struct Job {
    seq: u64,
    /// Server-global request number; ties the event-log trail and the
    /// Chrome-trace `args.req` stamps to this job.
    req: u64,
    id: RequestId,
    kind: JobKind,
    /// Reply channel; also pins the connection's writer (and thus its
    /// `ConnState` drain accounting) alive until the job answers.
    reply_tx: mpsc::Sender<(u64, String)>,
    accepted: Instant,
}

struct Shared {
    config: ServeConfig,
    queue: Bounded<Job>,
    /// Admission stops the moment this is set; workers drain what is
    /// already in.
    shutdown: AtomicBool,
    /// Stops the telemetry ticker; set by [`Server::finish`] only, so
    /// `stats` stays answerable during the drain.
    stop_telemetry: AtomicBool,
    /// Jobs admitted to the queue whose reply has not yet been *sent*
    /// toward a writer.
    inflight: AtomicUsize,
    conns: Mutex<Vec<Weak<ConnState>>>,
    served: AtomicU64,
    panics: AtomicU64,
    shed: AtomicU64,
    /// Next server-global request number (first handed out is 1).
    next_req: AtomicU64,
    /// Request-lifecycle JSONL event ring.
    events: EventLog,
    /// Per-interval metric deltas feeding windowed `stats` figures.
    window: Mutex<WindowRing>,
    /// When the server was created (uptime reference).
    started: Instant,
}

impl Shared {
    fn drained(&self) -> bool {
        if self.inflight.load(Ordering::SeqCst) != 0 || !self.queue.is_empty() {
            return false;
        }
        let conns = self.conns.lock().expect("conns lock poisoned");
        conns.iter().filter_map(Weak::upgrade).all(|c| {
            c.submitted.load(Ordering::SeqCst) == c.delivered.load(Ordering::SeqCst)
        })
    }
}

/// A cloneable handle for controlling and observing a running [`Server`]
/// from other threads (connection acceptors, tests, signal loops).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

/// The daemon: owns the worker pool. Create with [`Server::new`], feed it
/// connections via [`ServerHandle::attach`] or [`Server::serve_tcp`]-style
/// helpers, stop it with [`ServerHandle::request_shutdown`] +
/// [`Server::finish`].
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    telemetry: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Spawns the worker pool and the telemetry ticker (no I/O yet).
    pub fn new(config: ServeConfig) -> Self {
        let workers_n = config.jobs.resolve().max(1);
        let shared = Arc::new(Shared {
            queue: Bounded::new(config.queue_capacity),
            events: EventLog::new(config.event_capacity),
            config,
            shutdown: AtomicBool::new(false),
            stop_telemetry: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            served: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            next_req: AtomicU64::new(0),
            window: Mutex::new(WindowRing::new(WINDOW_CAPACITY)),
            started: Instant::now(),
        });
        let workers = (0..workers_n)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let telemetry = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || telemetry_loop(&shared))
        };
        Server {
            shared,
            workers,
            telemetry: Some(telemetry),
        }
    }

    /// A handle for other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until shutdown has been requested (via SIGTERM/SIGINT, a
    /// handle, or a finished stdio connection) *and* all admitted work
    /// has been answered and delivered.
    pub fn run_until_drained(&self) {
        loop {
            if signal::termination_requested() {
                self.shared.shutdown.store(true, Ordering::SeqCst);
            }
            if self.shared.shutdown.load(Ordering::SeqCst) && self.shared.drained() {
                return;
            }
            thread::sleep(Duration::from_millis(2));
        }
    }

    /// Stops the pool: closes the queue (remaining items still drain),
    /// joins every worker and the telemetry ticker. Call after
    /// [`Server::run_until_drained`].
    pub fn finish(mut self) -> ServeSummary {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
        self.shared.stop_telemetry.store(true, Ordering::SeqCst);
        if let Some(t) = self.telemetry.take() {
            let _ = t.join();
        }
        ServeSummary {
            served: self.shared.served.load(Ordering::SeqCst),
            panics_caught: self.shared.panics.load(Ordering::SeqCst),
            shed: self.shared.shed.load(Ordering::SeqCst),
        }
    }

    /// Accept loop over a TCP listener until shutdown. Each connection
    /// runs on its own thread; the listener polls so SIGTERM is honored
    /// within ~[`READ_POLL`].
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures; per-connection errors
    /// only end that connection.
    pub fn serve_tcp(&self, listener: &TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let handle = self.handle();
        loop {
            if signal::termination_requested() {
                handle.request_shutdown();
            }
            if handle.shutdown_requested() {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(READ_POLL))?;
                    // Replies are one small write each; without TCP_NODELAY
                    // Nagle + delayed ACK adds ~40ms to every round trip.
                    stream.set_nodelay(true)?;
                    let writer = stream.try_clone()?;
                    let conn_handle = self.handle();
                    thread::spawn(move || conn_handle.attach(&stream, writer));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(READ_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Accept loop over a Unix socket listener until shutdown; see
    /// [`Server::serve_tcp`].
    ///
    /// # Errors
    ///
    /// As [`Server::serve_tcp`].
    #[cfg(unix)]
    pub fn serve_unix(&self, listener: &std::os::unix::net::UnixListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let handle = self.handle();
        loop {
            if signal::termination_requested() {
                handle.request_shutdown();
            }
            if handle.shutdown_requested() {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(READ_POLL))?;
                    let writer = stream.try_clone()?;
                    let conn_handle = self.handle();
                    thread::spawn(move || conn_handle.attach(&stream, writer));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(READ_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

impl ServerHandle {
    /// Stops admitting new requests. Already-admitted work still drains.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// `true` when every admitted request has been answered *and* its
    /// reply handed to (or dropped with) its connection.
    pub fn drained(&self) -> bool {
        self.shared.drained()
    }

    /// Serves one connection on the calling thread until EOF, client
    /// error, or shutdown. Replies go to `writer` strictly in request
    /// order. For pollable transports (sockets), configure a read
    /// timeout so shutdown is noticed; plain pipes/stdin block until
    /// the peer writes or closes.
    pub fn attach<R: Read, W: Write + Send + 'static>(&self, mut reader: R, writer: W) {
        let shared = &self.shared;
        let conn = Arc::new(ConnState {
            submitted: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
        });
        {
            let mut conns = shared.conns.lock().expect("conns lock poisoned");
            conns.retain(|w| w.upgrade().is_some());
            conns.push(Arc::downgrade(&conn));
        }
        let (tx, rx) = mpsc::channel::<(u64, String)>();
        let writer_conn = Arc::clone(&conn);
        let writer_thread = thread::spawn(move || writer_loop(&rx, writer, &writer_conn));

        let mut line: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 8192];
        let mut next_seq: u64 = 1;
        let mut skipping = false; // discarding an oversized line
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match reader.read(&mut chunk) {
                Ok(0) => {
                    if skipping {
                        self.reject_oversized(&conn, &tx, &mut next_seq);
                    } else if !line.iter().all(u8::is_ascii_whitespace) {
                        self.handle_line(&line, &conn, &tx, &mut next_seq);
                    }
                    break;
                }
                Ok(n) => {
                    for &b in &chunk[..n] {
                        if skipping {
                            if b == b'\n' {
                                skipping = false;
                                self.reject_oversized(&conn, &tx, &mut next_seq);
                            }
                            continue;
                        }
                        if b == b'\n' {
                            if !line.iter().all(u8::is_ascii_whitespace) {
                                self.handle_line(&line, &conn, &tx, &mut next_seq);
                            }
                            line.clear();
                        } else {
                            line.push(b);
                            if line.len() > shared.config.max_request_bytes {
                                // Stop buffering; the reply goes out once
                                // the line (or stream) ends so ordering
                                // relative to any tail bytes' parse is moot.
                                skipping = true;
                                line.clear();
                            }
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted =>
                {
                    continue;
                }
                Err(_) => break, // client gone
            }
        }
        drop(tx);
        // Join the writer: it exits once every in-flight job for this
        // connection has sent its reply, i.e. the connection closes only
        // after its admitted work is answered.
        let _ = writer_thread.join();
    }

    fn send(
        &self,
        conn: &Arc<ConnState>,
        tx: &mpsc::Sender<(u64, String)>,
        next_seq: &mut u64,
        reply: String,
    ) {
        let seq = *next_seq;
        *next_seq += 1;
        conn.submitted.fetch_add(1, Ordering::SeqCst);
        let _ = tx.send((seq, reply));
    }

    fn reject_oversized(
        &self,
        conn: &Arc<ConnState>,
        tx: &mpsc::Sender<(u64, String)>,
        next_seq: &mut u64,
    ) {
        xtalk_obs::counter!("serve.requests.oversized").add(1);
        let reply = proto::error_reply(
            &RequestId::null(),
            "request_too_large",
            &format!(
                "request line exceeds {} bytes",
                self.shared.config.max_request_bytes
            ),
            None,
        );
        self.send(conn, tx, next_seq, reply);
    }

    fn handle_line(
        &self,
        line: &[u8],
        conn: &Arc<ConnState>,
        tx: &mpsc::Sender<(u64, String)>,
        next_seq: &mut u64,
    ) {
        let shared = &self.shared;
        let Ok(text) = std::str::from_utf8(line) else {
            self.send(
                conn,
                tx,
                next_seq,
                proto::error_reply(
                    &RequestId::null(),
                    "bad_utf8",
                    "request line is not valid UTF-8",
                    None,
                ),
            );
            return;
        };
        let (id, parsed) = proto::parse_request(text);
        let request = match parsed {
            Ok(r) => r,
            Err(e) => {
                xtalk_obs::counter!("serve.requests.rejected").add(1);
                self.send(conn, tx, next_seq, proto::error_reply(&id, e.code, &e.detail, None));
                return;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            self.send(conn, tx, next_seq, proto::shutting_down_reply(&id));
            return;
        }
        let kind = match request {
            Request::Ping => {
                self.send(conn, tx, next_seq, proto::pong_reply(&id));
                return;
            }
            Request::Stats => {
                // Handled inline (no queue trip) but sequenced through
                // the writer, so it cannot overtake earlier replies.
                let reply = self.stats_reply(&id);
                self.send(conn, tx, next_seq, reply);
                return;
            }
            Request::Boom if !shared.config.allow_test_faults => {
                self.send(
                    conn,
                    tx,
                    next_seq,
                    proto::error_reply(
                        &id,
                        "schema",
                        "unknown request type \"boom\" (test faults are disabled)",
                        None,
                    ),
                );
                return;
            }
            Request::Boom => JobKind::Boom,
            Request::Analyze(mut req) => {
                if req.deadline_ms.is_none() {
                    req.deadline_ms = shared.config.default_deadline_ms;
                }
                JobKind::Analyze(req)
            }
        };
        let seq = *next_seq;
        *next_seq += 1;
        conn.submitted.fetch_add(1, Ordering::SeqCst);
        let req = shared.next_req.fetch_add(1, Ordering::SeqCst) + 1;
        // Count the job before it becomes poppable, so `inflight == 0 &&
        // queue empty` can never miss a job a worker is about to claim.
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        let id_copy = id.clone();
        let job = Job {
            seq,
            req,
            id,
            kind,
            reply_tx: tx.clone(),
            accepted: Instant::now(),
        };
        // The admitted event is emitted *before* the push: once the job
        // is poppable a worker can start (and even complete) it before
        // this thread runs again, which would timestamp `admitted`
        // after `completed`. A request the queue then refuses follows
        // its admitted line with a `shed` retraction.
        shared.events.emit(
            "admitted",
            req,
            &id_copy,
            &format!(",\"queue_depth\":{}", shared.queue.len()),
        );
        match shared.queue.try_push(job) {
            Ok(()) => {}
            Err((why, job)) => {
                shared.inflight.fetch_sub(1, Ordering::SeqCst);
                let reply = match why {
                    PushError::Full => {
                        shared.shed.fetch_add(1, Ordering::SeqCst);
                        // Scheduling-dependent, so performance class: a
                        // fast client on a slow box sheds more.
                        xtalk_obs::counter!(perf: "serve.shed").add(1);
                        let depth = shared.queue.len();
                        shared.events.emit(
                            "shed",
                            job.req,
                            &job.id,
                            &format!(",\"queue_depth\":{depth}"),
                        );
                        proto::overloaded_reply(
                            &job.id,
                            retry_after_ms(depth),
                            depth,
                            shared.queue.capacity(),
                        )
                    }
                    PushError::Closed => proto::shutting_down_reply(&job.id),
                };
                let _ = job.reply_tx.send((job.seq, reply));
            }
        }
    }

    fn stats_reply(&self, id: &RequestId) -> String {
        let shared = &self.shared;
        let mut out = proto::open_reply(id, "ok");
        out.push_str(&format!(
            ",\"type\":\"stats\",\"queue\":{{\"depth\":{},\"capacity\":{},\"inflight\":{}}}",
            shared.queue.len(),
            shared.queue.capacity(),
            shared.inflight.load(Ordering::SeqCst),
        ));
        out.push_str(&format!(
            ",\"served\":{},\"panics_caught\":{},\"shed\":{},\"shutting_down\":{}",
            shared.served.load(Ordering::SeqCst),
            shared.panics.load(Ordering::SeqCst),
            shared.shed.load(Ordering::SeqCst),
            shared.shutdown.load(Ordering::SeqCst),
        ));
        out.push_str(",\"workers\":");
        out.push_str(&shared.config.jobs.resolve().max(1).to_string());
        // The live registry: deterministic counters only (rung counts,
        // solver paths, panic totals) — the same set `--metrics-out`
        // serializes, so a client can scrape without a file.
        out.push_str(",\"metrics\":{");
        if xtalk_obs::metrics_enabled() {
            let snap = xtalk_obs::snapshot();
            let mut first = true;
            for c in snap
                .counters
                .iter()
                .filter(|c| c.class == xtalk_obs::Class::Det)
            {
                if !first {
                    out.push(',');
                }
                first = false;
                crate::json::write_escaped(&mut out, &c.name);
                out.push(':');
                out.push_str(&c.value.to_string());
            }
        }
        out.push('}');
        let _ = write!(
            out,
            ",\"uptime_s\":{:.3}",
            shared.started.elapsed().as_secs_f64()
        );
        self.push_window_json(&mut out);
        let _ = write!(
            out,
            ",\"events\":{{\"buffered\":{},\"dropped\":{}}}",
            shared.events.buffered(),
            shared.events.dropped()
        );
        let trace_dropped = xtalk_obs::snapshot()
            .counter("trace.events.dropped")
            .unwrap_or(0);
        let _ = write!(
            out,
            ",\"trace\":{{\"buffered\":{},\"dropped\":{trace_dropped}}}",
            xtalk_obs::trace_event_count()
        );
        out.push('}');
        out
    }

    /// Renders the `"window"` member of a `stats` reply: rates and
    /// per-stage latency quantiles over roughly the last minute (merged
    /// closed intervals plus the live partial one).
    fn push_window_json(&self, out: &mut String) {
        let view = self
            .shared
            .window
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .windowed(STATS_WINDOW_INTERVALS);
        let _ = write!(
            out,
            ",\"window\":{{\"seconds\":{:.3},\"intervals\":{}",
            view.elapsed.as_secs_f64(),
            view.intervals
        );
        let _ = write!(out, ",\"req_per_s\":{:.3}", view.rate("serve.requests.analyze"));
        let counter = |name: &str| view.delta.counter(name).unwrap_or(0);
        let _ = write!(
            out,
            ",\"replies\":{{\"ok\":{},\"degraded\":{},\"error\":{}}}",
            counter("serve.replies.ok"),
            counter("serve.replies.degraded"),
            counter("serve.replies.error"),
        );
        out.push_str(",\"stages\":{");
        for (i, (key, hist)) in [
            ("request", "span.serve.request.ns"),
            ("parse", "span.serve.parse.ns"),
            ("chain", "span.serve.chain.ns"),
            ("golden", "span.serve.golden.ns"),
        ]
        .iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{key}\":{{");
            match view.delta.histogram(hist) {
                Some(h) => {
                    let us =
                        |q: f64| h.quantile_upper_bound(q).map_or(0.0, |ns| ns as f64 / 1e3);
                    let _ = write!(
                        out,
                        "\"count\":{},\"mean_us\":{:.1},\"p50_us\":{:.1},\"p99_us\":{:.1}",
                        h.count,
                        h.mean() / 1e3,
                        us(0.50),
                        us(0.99),
                    );
                }
                None => out.push_str("\"count\":0"),
            }
            out.push('}');
        }
        out.push('}');
        let _ = write!(
            out,
            ",\"fallback_rungs\":{{\"metric2\":{},\"metric1_m1\":{},\"bounds\":{},\"lumped\":{}}}",
            counter("resilience.rung.metric2"),
            counter("resilience.rung.metric1_m1"),
            counter("resilience.rung.bounds"),
            counter("resilience.rung.lumped"),
        );
        let _ = write!(
            out,
            ",\"fast_tier\":{{\"hits\":{},\"fallbacks\":{}}}",
            counter("sim.fast_tier.hits"),
            counter("sim.fast_tier.fallback"),
        );
        let _ = write!(
            out,
            ",\"incr\":{{\"hits\":{},\"misses\":{},\"invalidated\":{}}}}}",
            counter("incr.query.hit"),
            counter("incr.query.miss"),
            counter("incr.query.invalidated"),
        );
    }

    /// Takes every buffered request-lifecycle event line (JSONL, oldest
    /// first), leaving the ring empty. The CLI flushes these to
    /// `--events-out` after the drain.
    #[must_use]
    pub fn drain_events(&self) -> Vec<String> {
        self.shared.events.drain()
    }
}

/// Backpressure hint: roughly how long until `depth` queued cases clear.
/// Closed-form cases are sub-millisecond but golden escalations are
/// milliseconds, so budget ~5 ms per queued item, floored at 10 ms.
fn retry_after_ms(depth: usize) -> u64 {
    (depth as u64 * 5).max(10)
}

fn worker_loop(shared: &Arc<Shared>) {
    let mut ws = SimWorkspace::new();
    while let Some(job) = shared.queue.pop() {
        // Pin the request number on this thread: every span recorded
        // below — engine stages, eval, sim internals — carries it as
        // `args.req` in the Chrome trace.
        let _ctx = xtalk_obs::push_request_ctx(job.req);
        let _span = xtalk_obs::span!("serve.request");
        shared.events.emit(
            "started",
            job.req,
            &job.id,
            &format!(
                ",\"queue_wait_ms\":{:.3}",
                job.accepted.elapsed().as_secs_f64() * 1e3
            ),
        );
        let mut trace = RequestTrace::default();
        let outcome = catch_unwind(AssertUnwindSafe(|| match &job.kind {
            JobKind::Analyze(req) => {
                engine::run_analyze(&job.id, req, job.accepted, &mut ws, &mut trace)
            }
            JobKind::Boom => panic!("deliberate test fault (boom request)"),
        }));
        let reply = match outcome {
            Ok(reply) => {
                if trace.degraded_rows > 0 {
                    shared.events.emit(
                        "rung_degraded",
                        job.req,
                        &job.id,
                        &format!(",\"degraded_rows\":{}", trace.degraded_rows),
                    );
                }
                if trace.deadline_expired || trace.golden_skips > 0 || trace.analytic_rescues > 0 {
                    shared.events.emit(
                        "deadline",
                        job.req,
                        &job.id,
                        &format!(
                            ",\"expired\":{},\"golden_skips\":{},\"analytic_rescues\":{}",
                            trace.deadline_expired, trace.golden_skips, trace.analytic_rescues
                        ),
                    );
                }
                shared.events.emit(
                    "completed",
                    job.req,
                    &job.id,
                    &format!(
                        ",\"status\":\"{}\",\"total_ms\":{:.3},\"parse_ms\":{:.3},\
                         \"chain_ms\":{:.3},\"golden_ms\":{:.3}",
                        trace.status,
                        job.accepted.elapsed().as_secs_f64() * 1e3,
                        trace.parse_ns as f64 / 1e6,
                        trace.chain_ns as f64 / 1e6,
                        trace.golden_ns as f64 / 1e6,
                    ),
                );
                reply
            }
            Err(payload) => {
                shared.panics.fetch_add(1, Ordering::SeqCst);
                xtalk_obs::counter!("serve.panics_caught").add(1);
                shared.events.emit("panicked", job.req, &job.id, "");
                // The workspace may have been mid-factorization when the
                // panic unwound through it; drop it rather than trust it.
                ws = SimWorkspace::new();
                proto::error_reply(
                    &job.id,
                    "panic",
                    &format!(
                        "worker panicked while serving this request: {}",
                        xtalk_exec::panic_message(payload.as_ref())
                    ),
                    None,
                )
            }
        };
        shared.served.fetch_add(1, Ordering::SeqCst);
        let _ = job.reply_tx.send((job.seq, reply));
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Closes one window interval per [`TELEMETRY_INTERVAL`] until
/// [`Server::finish`] stops it. Runs on its own thread so `stats`
/// replies only ever *read* merged deltas; recording threads never see
/// the ring.
fn telemetry_loop(shared: &Arc<Shared>) {
    let mut last_tick = Instant::now();
    while !shared.stop_telemetry.load(Ordering::SeqCst) {
        thread::sleep(READ_POLL);
        if last_tick.elapsed() >= TELEMETRY_INTERVAL {
            shared
                .window
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .tick();
            last_tick = Instant::now();
        }
    }
}

fn writer_loop<W: Write>(
    rx: &mpsc::Receiver<(u64, String)>,
    mut writer: W,
    conn: &Arc<ConnState>,
) {
    let mut pending: BTreeMap<u64, String> = BTreeMap::new();
    let mut next: u64 = 1;
    // Once a write fails the client is gone; keep draining and counting
    // so the server-side drain never wedges on a dead connection.
    let mut sink = false;
    let mut deliver = |reply: &str, sink: &mut bool| {
        if !*sink {
            let ok = writer
                .write_all(reply.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_ok();
            if !ok {
                *sink = true;
            }
        }
        conn.delivered.fetch_add(1, Ordering::SeqCst);
    };
    while let Ok((seq, reply)) = rx.recv() {
        pending.insert(seq, reply);
        while let Some(reply) = pending.remove(&next) {
            deliver(&reply, &mut sink);
            next += 1;
        }
    }
    // Channel closed: every sender (reader + in-flight jobs) is done, so
    // anything left here is deliverable now. Gaps cannot happen — every
    // assigned sequence number sends exactly one reply — but iterate in
    // order regardless rather than trust that invariant with a wedge.
    for (_, reply) in pending {
        deliver(&reply, &mut sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};
    use std::io::{BufRead, BufReader};

    fn sample_deck() -> String {
        use xtalk_circuit::{NetRole, NetworkBuilder};
        let mut b = NetworkBuilder::new();
        let v = b.add_net("victim", NetRole::Victim);
        let a = b.add_net("agg0", NetRole::Aggressor);
        let v0 = b.add_node(v, "v0");
        let v1 = b.add_node(v, "v1");
        let a0 = b.add_node(a, "a0");
        b.add_driver(v, v0, 300.0).unwrap();
        b.add_driver(a, a0, 150.0).unwrap();
        b.add_resistor(v0, v1, 60.0).unwrap();
        b.add_ground_cap(v1, 8e-15).unwrap();
        b.add_sink(v1, 12e-15).unwrap();
        b.add_sink(a0, 10e-15).unwrap();
        b.add_coupling_cap(a0, v1, 25e-15).unwrap();
        xtalk_circuit::spice::write_deck(&b.build().unwrap())
    }

    fn analyze_line(id: u64, deck: &str) -> String {
        let mut line = format!("{{\"id\":{id},\"type\":\"analyze\",\"deck\":");
        crate::json::write_escaped(&mut line, deck);
        line.push('}');
        line
    }

    /// Runs a batch of request lines through a full in-process server
    /// over a TCP socket pair and returns the reply lines in order.
    fn round_trip(config: ServeConfig, lines: &[String]) -> Vec<Value> {
        let server = Server::new(config);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = server.handle();
        let accept = thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            stream
                .set_read_timeout(Some(Duration::from_millis(20)))
                .expect("timeout");
            let writer = stream.try_clone().expect("clone");
            handle.attach(&stream, writer);
        });
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        for line in lines {
            client.write_all(line.as_bytes()).expect("write");
            client.write_all(b"\n").expect("write");
        }
        client.shutdown(std::net::Shutdown::Write).expect("shutdown");
        let reader = BufReader::new(client.try_clone().expect("clone"));
        let replies: Vec<Value> = reader
            .lines()
            .map(|l| json::parse(&l.expect("read")).expect("reply parses"))
            .collect();
        accept.join().expect("conn thread");
        server.handle().request_shutdown();
        server.run_until_drained();
        server.finish();
        replies
    }

    #[test]
    fn mixed_batch_replies_in_request_order() {
        let deck = sample_deck();
        let lines = vec![
            analyze_line(1, &deck),
            "{\"id\":2,\"type\":\"ping\"}".to_string(),
            "garbage".to_string(),
            analyze_line(4, &deck),
            "{\"id\":5,\"type\":\"stats\"}".to_string(),
        ];
        let replies = round_trip(
            ServeConfig {
                jobs: Jobs::Count(2),
                ..ServeConfig::default()
            },
            &lines,
        );
        assert_eq!(replies.len(), 5);
        let ids: Vec<Option<f64>> = replies
            .iter()
            .map(|r| r.get("id").and_then(Value::as_f64))
            .collect();
        assert_eq!(ids, vec![Some(1.0), Some(2.0), None, Some(4.0), Some(5.0)]);
        assert_eq!(replies[0].get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(replies[1].get("type").and_then(Value::as_str), Some("pong"));
        assert_eq!(
            replies[2].get("code").and_then(Value::as_str),
            Some("bad_json")
        );
        assert_eq!(
            replies[4].get("type").and_then(Value::as_str),
            Some("stats")
        );
    }

    #[test]
    fn boom_panics_are_fenced_and_the_pool_survives() {
        let deck = sample_deck();
        let lines = vec![
            "{\"id\":1,\"type\":\"boom\"}".to_string(),
            analyze_line(2, &deck),
        ];
        let replies = round_trip(
            ServeConfig {
                jobs: Jobs::Count(1),
                allow_test_faults: true,
                ..ServeConfig::default()
            },
            &lines,
        );
        assert_eq!(replies.len(), 2);
        assert_eq!(
            replies[0].get("code").and_then(Value::as_str),
            Some("panic")
        );
        assert!(replies[0]
            .get("detail")
            .and_then(Value::as_str)
            .unwrap()
            .contains("deliberate test fault"));
        // The very same worker (jobs = 1) then serves a healthy request.
        assert_eq!(replies[1].get("status").and_then(Value::as_str), Some("ok"));
    }

    #[test]
    fn boom_is_rejected_when_test_faults_are_disabled() {
        let replies = round_trip(
            ServeConfig::default(),
            &["{\"id\":1,\"type\":\"boom\"}".to_string()],
        );
        assert_eq!(
            replies[0].get("code").and_then(Value::as_str),
            Some("schema")
        );
    }

    #[test]
    fn oversized_lines_are_shed_with_a_structured_error() {
        let deck = sample_deck();
        let huge = format!(
            "{{\"id\":1,\"type\":\"analyze\",\"deck\":\"{}\"}}",
            "x".repeat(3000)
        );
        let lines = vec![huge, analyze_line(2, &deck)];
        let replies = round_trip(
            ServeConfig {
                max_request_bytes: 2048,
                ..ServeConfig::default()
            },
            &lines,
        );
        assert_eq!(replies.len(), 2);
        assert_eq!(
            replies[0].get("code").and_then(Value::as_str),
            Some("request_too_large")
        );
        // The connection survives and the next request is served.
        assert_eq!(replies[1].get("status").and_then(Value::as_str), Some("ok"));
    }

    #[test]
    fn drain_finishes_with_nothing_outstanding() {
        let deck = sample_deck();
        let lines: Vec<String> = (0..16).map(|i| analyze_line(i, &deck)).collect();
        let server = Server::new(ServeConfig {
            jobs: Jobs::Count(2),
            ..ServeConfig::default()
        });
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = server.handle();
        let accept = thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            stream
                .set_read_timeout(Some(Duration::from_millis(20)))
                .expect("timeout");
            let writer = stream.try_clone().expect("clone");
            handle.attach(&stream, writer);
        });
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        for line in &lines {
            client.write_all(line.as_bytes()).expect("write");
            client.write_all(b"\n").expect("write");
        }
        client.shutdown(std::net::Shutdown::Write).expect("eof");
        let reader = BufReader::new(client);
        assert_eq!(reader.lines().count(), 16);
        accept.join().expect("conn");
        let h = server.handle();
        h.request_shutdown();
        server.run_until_drained();
        assert!(h.drained());
        let summary = server.finish();
        assert_eq!(summary.served, 16);
        assert_eq!(summary.panics_caught, 0);
    }

    #[test]
    fn disconnected_client_does_not_wedge_the_drain() {
        let deck = sample_deck();
        let server = Server::new(ServeConfig {
            jobs: Jobs::Count(1),
            ..ServeConfig::default()
        });
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = server.handle();
        let accept = thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            stream
                .set_read_timeout(Some(Duration::from_millis(20)))
                .expect("timeout");
            let writer = stream.try_clone().expect("clone");
            handle.attach(&stream, writer);
        });
        {
            let mut client = std::net::TcpStream::connect(addr).expect("connect");
            for i in 0..8 {
                client
                    .write_all(analyze_line(i, &deck).as_bytes())
                    .expect("write");
                client.write_all(b"\n").expect("write");
            }
            // Vanish without reading a single reply.
        }
        accept.join().expect("conn");
        let h = server.handle();
        h.request_shutdown();
        server.run_until_drained(); // must not hang
        let summary = server.finish();
        assert_eq!(summary.served, 8);
    }

    #[test]
    fn stats_reply_carries_windowed_schema() {
        // Windowed figures need live metrics; sticky and harmless for
        // the sibling tests (none assert that metrics are off).
        xtalk_obs::enable_metrics();
        let deck = sample_deck();
        let server = Server::new(ServeConfig {
            jobs: Jobs::Count(2),
            ..ServeConfig::default()
        });
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = server.handle();
        let accept = thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            stream
                .set_read_timeout(Some(Duration::from_millis(20)))
                .expect("timeout");
            let writer = stream.try_clone().expect("clone");
            handle.attach(&stream, writer);
        });
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(client.try_clone().expect("clone"));
        // Analyze first and *read the replies* before asking for stats,
        // so the windowed counters have provably moved.
        let mut reply = String::new();
        for i in 0..4 {
            client
                .write_all(analyze_line(i, &deck).as_bytes())
                .expect("write");
            client.write_all(b"\n").expect("write");
            reply.clear();
            reader.read_line(&mut reply).expect("reply");
        }
        client
            .write_all(b"{\"id\":99,\"type\":\"stats\"}\n")
            .expect("write");
        reply.clear();
        reader.read_line(&mut reply).expect("stats reply");
        let v = json::parse(&reply).expect("stats reply parses");

        assert!(v.get("uptime_s").and_then(Value::as_f64).unwrap() >= 0.0);
        let window = v.get("window").expect("window object");
        assert!(window.get("seconds").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(
            window.get("req_per_s").and_then(Value::as_f64).unwrap() > 0.0,
            "4 analyzed requests must show up as a windowed rate: {reply}"
        );
        let replies = window.get("replies").expect("replies object");
        assert!(replies.get("ok").and_then(Value::as_f64).unwrap() >= 4.0);
        let stages = window.get("stages").expect("stages object");
        for stage in ["request", "parse", "chain"] {
            let s = stages.get(stage).unwrap_or_else(|| panic!("stage {stage}"));
            assert!(
                s.get("count").and_then(Value::as_f64).unwrap() >= 4.0,
                "stage {stage} must have recorded: {reply}"
            );
            assert!(s.get("p50_us").and_then(Value::as_f64).unwrap() > 0.0);
            assert!(s.get("p99_us").and_then(Value::as_f64).unwrap() > 0.0);
        }
        assert!(stages.get("golden").is_some(), "golden stage always present");
        assert!(window.get("fallback_rungs").is_some());
        assert!(window.get("fast_tier").is_some());
        let incr = window.get("incr").expect("incr object");
        for key in ["hits", "misses", "invalidated"] {
            assert!(
                incr.get(key).and_then(Value::as_f64).unwrap() >= 0.0,
                "incr.{key} must be a number: {reply}"
            );
        }
        let events = v.get("events").expect("events object");
        assert!(
            events.get("buffered").and_then(Value::as_f64).unwrap() > 0.0,
            "admitted/started/completed events must be buffered: {reply}"
        );
        assert_eq!(events.get("dropped").and_then(Value::as_f64), Some(0.0));
        assert!(v.get("trace").expect("trace object").get("dropped").is_some());

        client.shutdown(std::net::Shutdown::Write).expect("eof");
        assert_eq!(reader.lines().count(), 0);
        accept.join().expect("conn");
        let h = server.handle();
        h.request_shutdown();
        server.run_until_drained();
        // The event trail for one request is reconstructable from the
        // drained JSONL: admitted → started → completed, same req.
        let lines = h.drain_events();
        assert!(lines.len() >= 12, "4 requests × ≥3 events: {lines:?}");
        let admitted: Vec<&String> =
            lines.iter().filter(|l| l.contains("\"event\":\"admitted\"")).collect();
        assert_eq!(admitted.len(), 4);
        assert!(admitted[0].contains("\"req\":1"));
        for event in ["started", "completed"] {
            assert_eq!(
                lines
                    .iter()
                    .filter(|l| l.contains(&format!("\"event\":\"{event}\"")))
                    .count(),
                4,
                "every request leaves one {event} event"
            );
        }
        assert!(
            lines.iter().all(|l| json::parse(l).is_ok()),
            "every event line is standalone JSON"
        );
        server.finish();
    }

    #[test]
    fn backpressure_reply_when_the_queue_is_full() {
        // One worker wedged behind slow analyses + capacity 1: the tail
        // of a burst must see `overloaded` rather than unbounded growth.
        let deck = sample_deck();
        let lines: Vec<String> = (0..64).map(|i| analyze_line(i, &deck)).collect();
        let replies = round_trip(
            ServeConfig {
                jobs: Jobs::Count(1),
                queue_capacity: 1,
                ..ServeConfig::default()
            },
            &lines,
        );
        assert_eq!(replies.len(), 64, "every request gets exactly one reply");
        let overloaded: Vec<&Value> = replies
            .iter()
            .filter(|r| r.get("status").and_then(Value::as_str) == Some("overloaded"))
            .collect();
        // Timing-dependent how many, but a 64-burst into a capacity-1
        // queue must shed at least once, with a usable hint.
        assert!(!overloaded.is_empty(), "no backpressure observed");
        for r in &overloaded {
            let hint = r.get("retry_after_ms").and_then(Value::as_f64).unwrap();
            assert!(hint >= 10.0);
        }
    }
}
