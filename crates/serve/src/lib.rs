//! `xtalk-serve` — a fault-tolerant batched analysis daemon.
//!
//! Long-running physical-design flows (routers, optimizers) want to ask
//! "how noisy is this net?" thousands of times without paying process
//! startup, technology parsing, and workspace allocation per query. This
//! crate turns the xtalk analysis stack into a resident service speaking
//! newline-delimited JSON over stdio, TCP, or a Unix socket: one request
//! object per line in, one reply object per line out, replies in request
//! order per connection.
//!
//! Robustness is the point, in four layers:
//!
//! 1. **Admission control** ([`queue`]): a bounded queue sheds overload
//!    with explicit `overloaded` replies carrying `retry_after_ms`
//!    hints; per-request size limits and schema validation turn every
//!    malformed input into a structured error reply instead of a dead
//!    connection.
//! 2. **Fault isolation** ([`server`]): each case runs under
//!    `catch_unwind`; a poisoned netlist yields one failed reply and a
//!    fresh per-worker `SimWorkspace` while the pool keeps serving.
//! 3. **Deadlines & degradation** ([`engine`]): requests carry optional
//!    millisecond budgets; when golden-simulator escalation would blow
//!    the budget the reply degrades to the closed-form resilience chain
//!    and says so in its `deadline` and provenance fields.
//! 4. **Lifecycle** ([`signal`], [`server`]): SIGTERM/EOF stop admission,
//!    drain in-flight work, flush metrics, and exit 0.
//!
//! See `DESIGN.md` §10 for the wire protocol.

#![deny(unsafe_code)] // narrowly allowed inside `signal` for signal(2)
#![warn(missing_docs)]

pub mod engine;
pub mod events;
pub mod json;
pub mod proto;
pub mod queue;
pub mod server;
pub mod signal;

pub use engine::RequestTrace;
pub use events::{EventLog, DEFAULT_EVENT_CAPACITY};
pub use proto::{parse_request, AnalyzeRequest, Request, RequestId};
pub use queue::{Bounded, PushError};
pub use server::{ServeConfig, ServeSummary, Server, ServerHandle};
pub use signal::{install_handlers, raise_termination, termination_requested};
