//! Minimal JSON for the wire protocol.
//!
//! The offline workspace has no serde, and the daemon must never trust a
//! client anyway: this parser is written for adversarial input — strict
//! grammar, bounded recursion depth, structured errors with byte offsets,
//! and no panics on any byte sequence (see the proptest-style corpus in
//! the tests). Numbers are parsed as `f64` (the protocol carries only
//! physical quantities and small ids); objects preserve insertion order
//! and reject duplicate keys, so a request cannot smuggle two `deck`
//! fields past validation.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite: the grammar has no `NaN`/`inf`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order (duplicate keys are a parse error).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Short name of the JSON type, for schema error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// 0-based byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.detail, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting. Protocol messages are two levels deep; a
/// hostile `[[[[…]]]]` must not blow the stack.
const MAX_DEPTH: usize = 64;

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first offending byte.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        input,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte {:?}", other as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key_off = self.pos;
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    offset: key_off,
                    detail: format!("duplicate key {key:?}"),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uDC00–\uDFFF; lone surrogates
                            // are rejected (strings stay valid UTF-8).
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                None
                            } else {
                                char::from_u32(cp)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        other => {
                            return Err(self.err(format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one full UTF-8 scalar from the source.
                    let rest = &self.input[self.pos..];
                    let ch = rest.chars().next().expect("non-empty checked");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = &self.input[self.pos..end];
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| self.err(format!("bad \\u escape {hex:?}")))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let before = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > before
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = &self.input[start..self.pos];
        let n: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            detail: format!("unparseable number {text:?}"),
        })?;
        if !n.is_finite() {
            // Overflowing literals like 1e999: the grammar accepted them
            // but the protocol carries only finite quantities.
            return Err(JsonError {
                offset: start,
                detail: format!("number {text:?} overflows to non-finite"),
            });
        }
        Ok(Value::Num(n))
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders an `f64` the way the protocol expects: finite numbers in Rust's
/// shortest round-trip form, non-finite as `null` (JSON has no NaN).
pub fn write_number(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `{}` on f64 omits the decimal point for integral values, which
        // is still valid JSON — nothing more to do.
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn containers_parse() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        match v.get("a") {
            Some(Value::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = parse(r#""a\"b\\c\ndAé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé😀"));
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, r#""a\"b\\c\nd\u0001""#);
        assert_eq!(parse(&out).unwrap().as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn hostile_inputs_error_structurally() {
        for bad in [
            "",
            "   ",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"lone \\ud800 surrogate\"",
            "\u{0}garbage",
            "nul",
            "truee",
            "12x",
            "1.",
            "1e",
            "--3",
            "1e999",
            "{\"a\":1,\"a\":2}",
            "\"ctrl \u{1} byte\"",
            "[1] trailing",
        ] {
            let r = parse(bad);
            assert!(r.is_err(), "{bad:?} should fail, got {r:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        match parse(&deep) {
            Err(e) => assert!(e.detail.contains("nesting"), "{e}"),
            Ok(_) => panic!("deep nesting must be rejected"),
        }
    }

    #[test]
    fn numbers_render_round_trip() {
        for v in [0.0, 1.0, -2.5, 1e-15, 123456789.0, std::f64::consts::PI] {
            let mut s = String::new();
            write_number(&mut s, v);
            assert_eq!(parse(&s).unwrap(), Value::Num(v), "{s}");
        }
        let mut s = String::new();
        write_number(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn duplicate_keys_rejected_in_nested_objects() {
        assert!(parse(r#"{"a":{"b":1,"b":2}}"#).is_err());
    }
}
