//! Wire protocol: request schema validation and reply rendering.
//!
//! One JSON object per line in each direction (see DESIGN.md §10). The
//! parsing here is the admission-control boundary: every way a client
//! can get the schema wrong maps to a structured `status: "error"` reply
//! with a machine-readable `code`, never to a disconnect or a panic.
//! Unknown request types and unknown fields are rejected (they are
//! almost always client typos, and silently ignoring a misspelled
//! `deadline_ms` would drop the one robustness control the client asked
//! for).

use crate::json::{self, Value};

/// Upper bound on the aggressor-name filter; anything longer is not a
/// net name from a real deck.
const MAX_NAME_BYTES: usize = 4096;

/// Input waveform shape for the switching aggressor, mirroring the CLI
/// `--shape` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Saturated linear ramp (the paper's model).
    Ramp,
    /// Exponential settling edge.
    Exp,
    /// Ideal step (defeats metric II seeding; exercises the fallback
    /// chain).
    Step,
}

impl Shape {
    /// Wire name, as accepted in the `shape` field.
    pub fn wire_name(self) -> &'static str {
        match self {
            Shape::Ramp => "ramp",
            Shape::Exp => "exp",
            Shape::Step => "step",
        }
    }
}

/// A validated `analyze` request.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeRequest {
    /// Inline SPICE deck source (`spice::parse_deck` format).
    pub deck: String,
    /// Aggressor input slew, seconds.
    pub slew: f64,
    /// Aggressor switching time, seconds.
    pub arrival: f64,
    /// Input edge shape.
    pub shape: Shape,
    /// Optional noise budget (× `Vdd`); rows above it are flagged.
    pub threshold: Option<f64>,
    /// Optional aggressor net-name filter.
    pub aggressor: Option<String>,
    /// Cross-check each estimate against the golden transient simulator
    /// (expensive; subject to the deadline budget).
    pub golden: bool,
    /// Refuse degradation instead of falling down the chain.
    pub strict: bool,
    /// Per-request deadline budget in milliseconds. `None` means the
    /// server default (possibly unlimited).
    pub deadline_ms: Option<f64>,
}

/// A validated request of any type.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a full noise analysis on an inline deck.
    Analyze(Box<AnalyzeRequest>),
    /// Liveness probe; replies immediately (in order).
    Ping,
    /// Live registry snapshot: queue depth, rung counters, panic count.
    Stats,
    /// Deliberate worker panic, for fault-isolation testing. Only
    /// honored when the server runs with test faults enabled; otherwise
    /// rejected as an unknown type.
    Boom,
}

/// A structured request rejection (rendered as a `status: "error"` reply).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// Stable machine-readable code (`bad_json`, `schema`, …).
    pub code: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl RequestError {
    fn schema(detail: impl Into<String>) -> Self {
        RequestError {
            code: "schema",
            detail: detail.into(),
        }
    }
}

/// The client-chosen request id, echoed verbatim into the reply. Kept as
/// pre-rendered JSON text so `"42"`, `42` and `null` stay distinct.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestId(String);

impl RequestId {
    /// The id used when none could be extracted from the request.
    pub fn null() -> Self {
        RequestId("null".to_string())
    }

    /// The id as JSON text (already escaped/quoted as needed).
    pub fn as_json(&self) -> &str {
        &self.0
    }
}

fn render_id(v: &Value) -> Option<RequestId> {
    let mut out = String::new();
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => json::write_number(&mut out, *n),
        Value::Str(s) => {
            if s.len() > MAX_NAME_BYTES {
                return None;
            }
            json::write_escaped(&mut out, s);
        }
        Value::Arr(_) | Value::Obj(_) => return None,
    }
    Some(RequestId(out))
}

/// Parses and validates one request line.
///
/// The id rides along in both directions so even a rejected request gets
/// a correlatable reply; when the line is not valid JSON (or the id
/// itself is malformed) the reply id is `null`.
///
/// # Errors
///
/// A [`RequestError`] describing the first schema violation found.
pub fn parse_request(line: &str) -> (RequestId, Result<Request, RequestError>) {
    let value = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return (
                RequestId::null(),
                Err(RequestError {
                    code: "bad_json",
                    detail: e.to_string(),
                }),
            )
        }
    };
    let Value::Obj(fields) = &value else {
        return (
            RequestId::null(),
            Err(RequestError::schema(format!(
                "request must be a JSON object, got {}",
                value.type_name()
            ))),
        );
    };
    let id = match value.get("id") {
        None => RequestId::null(),
        Some(v) => match render_id(v) {
            Some(id) => id,
            None => {
                return (
                    RequestId::null(),
                    Err(RequestError::schema(
                        "\"id\" must be a string, number, boolean or null",
                    )),
                )
            }
        },
    };
    let req = validate(fields, &value);
    (id, req)
}

fn validate(fields: &[(String, Value)], value: &Value) -> Result<Request, RequestError> {
    let Some(kind) = value.get("type") else {
        return Err(RequestError::schema("missing \"type\" field"));
    };
    let Some(kind) = kind.as_str() else {
        return Err(RequestError::schema(format!(
            "\"type\" must be a string, got {}",
            kind.type_name()
        )));
    };
    let allowed: &[&str] = match kind {
        "analyze" => &[
            "id",
            "type",
            "deck",
            "slew",
            "arrival",
            "shape",
            "threshold",
            "aggressor",
            "golden",
            "strict",
            "deadline_ms",
        ],
        "ping" | "stats" | "boom" => &["id", "type"],
        other => {
            return Err(RequestError::schema(format!(
                "unknown request type {other:?} (expected \"analyze\", \"ping\" or \"stats\")"
            )))
        }
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(RequestError::schema(format!(
                "unknown field {key:?} for type {kind:?}"
            )));
        }
    }
    match kind {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "boom" => Ok(Request::Boom),
        _ => validate_analyze(value).map(|r| Request::Analyze(Box::new(r))),
    }
}

fn finite_field(
    value: &Value,
    name: &str,
    default: f64,
    check: impl Fn(f64) -> Result<(), &'static str>,
) -> Result<f64, RequestError> {
    match value.get(name) {
        None => Ok(default),
        Some(v) => {
            let n = v.as_f64().ok_or_else(|| {
                RequestError::schema(format!(
                    "{name:?} must be a number, got {}",
                    v.type_name()
                ))
            })?;
            check(n).map_err(|why| RequestError::schema(format!("{name:?} {why}, got {n}")))?;
            Ok(n)
        }
    }
}

fn bool_field(value: &Value, name: &str) -> Result<bool, RequestError> {
    match value.get(name) {
        None => Ok(false),
        Some(v) => v.as_bool().ok_or_else(|| {
            RequestError::schema(format!(
                "{name:?} must be a boolean, got {}",
                v.type_name()
            ))
        }),
    }
}

fn validate_analyze(value: &Value) -> Result<AnalyzeRequest, RequestError> {
    let deck = match value.get("deck") {
        None => return Err(RequestError::schema("missing \"deck\" field")),
        Some(Value::Str(s)) if s.trim().is_empty() => {
            return Err(RequestError::schema("\"deck\" is empty"))
        }
        Some(Value::Str(s)) => s.clone(),
        Some(v) => {
            return Err(RequestError::schema(format!(
                "\"deck\" must be a string of SPICE source, got {}",
                v.type_name()
            )))
        }
    };
    let positive = |n: f64| {
        if n > 0.0 {
            Ok(())
        } else {
            Err("must be positive")
        }
    };
    let non_negative = |n: f64| {
        if n >= 0.0 {
            Ok(())
        } else {
            Err("must be non-negative")
        }
    };
    let slew = finite_field(value, "slew", 100e-12, positive)?;
    let arrival = finite_field(value, "arrival", 0.0, non_negative)?;
    let shape = match value.get("shape") {
        None => Shape::Ramp,
        Some(v) => match v.as_str() {
            Some("ramp") => Shape::Ramp,
            Some("exp") => Shape::Exp,
            Some("step") => Shape::Step,
            Some(other) => {
                return Err(RequestError::schema(format!(
                    "\"shape\" must be \"ramp\", \"exp\" or \"step\", got {other:?}"
                )))
            }
            None => {
                return Err(RequestError::schema(format!(
                    "\"shape\" must be a string, got {}",
                    v.type_name()
                )))
            }
        },
    };
    let threshold = match value.get("threshold") {
        None => None,
        Some(_) => Some(finite_field(value, "threshold", 0.0, positive)?),
    };
    let aggressor = match value.get("aggressor") {
        None => None,
        Some(Value::Str(s)) if s.len() <= MAX_NAME_BYTES => Some(s.clone()),
        Some(Value::Str(_)) => {
            return Err(RequestError::schema("\"aggressor\" name is absurdly long"))
        }
        Some(v) => {
            return Err(RequestError::schema(format!(
                "\"aggressor\" must be a string, got {}",
                v.type_name()
            )))
        }
    };
    let deadline_ms = match value.get("deadline_ms") {
        None => None,
        Some(_) => Some(finite_field(value, "deadline_ms", 0.0, positive)?),
    };
    Ok(AnalyzeRequest {
        deck,
        slew,
        arrival,
        shape,
        threshold,
        aggressor,
        golden: bool_field(value, "golden")?,
        strict: bool_field(value, "strict")?,
        deadline_ms,
    })
}

// ---------------------------------------------------------------------
// Reply rendering. Replies are built as strings (never parsed back), so
// a tiny push-style builder is enough.

/// Appends `"key":` to a reply under construction.
pub fn push_key(out: &mut String, key: &str) {
    json::write_escaped(out, key);
    out.push(':');
}

/// Opens a reply object with the echoed id and a status.
pub fn open_reply(id: &RequestId, status: &str) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"id\":");
    out.push_str(id.as_json());
    out.push_str(",\"status\":");
    json::write_escaped(&mut out, status);
    out
}

/// A complete `status: "error"` reply. `position` is a `(line, col)`
/// into the submitted deck for deck-parse errors.
pub fn error_reply(
    id: &RequestId,
    code: &str,
    detail: &str,
    position: Option<(usize, usize)>,
) -> String {
    let mut out = open_reply(id, "error");
    out.push_str(",\"code\":");
    json::write_escaped(&mut out, code);
    out.push_str(",\"detail\":");
    json::write_escaped(&mut out, detail);
    if let Some((line, col)) = position {
        out.push_str(&format!(",\"line\":{line},\"col\":{col}"));
    }
    out.push('}');
    out
}

/// A backpressure (load-shed) reply: the queue is full; try again in
/// roughly `retry_after_ms`.
pub fn overloaded_reply(id: &RequestId, retry_after_ms: u64, depth: usize, capacity: usize) -> String {
    let mut out = open_reply(id, "overloaded");
    out.push_str(&format!(
        ",\"code\":\"queue_full\",\"retry_after_ms\":{retry_after_ms},\
         \"queue\":{{\"depth\":{depth},\"capacity\":{capacity}}}}}"
    ));
    out
}

/// The reply to a `ping`.
pub fn pong_reply(id: &RequestId) -> String {
    let mut out = open_reply(id, "ok");
    out.push_str(",\"type\":\"pong\"}");
    out
}

/// The rejection sent for requests that arrive after shutdown began.
pub fn shutting_down_reply(id: &RequestId) -> String {
    error_reply(
        id,
        "shutting_down",
        "server is draining and no longer accepts requests",
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(line: &str) -> Request {
        let (_, r) = parse_request(line);
        r.expect("request should validate")
    }

    fn err(line: &str) -> RequestError {
        let (_, r) = parse_request(line);
        r.expect_err("request should be rejected")
    }

    #[test]
    fn minimal_analyze_gets_defaults() {
        let req = ok(r#"{"type":"analyze","deck":"* d\n.END"}"#);
        let Request::Analyze(a) = req else {
            panic!("wrong type")
        };
        assert_eq!(a.slew, 100e-12);
        assert_eq!(a.arrival, 0.0);
        assert_eq!(a.shape, Shape::Ramp);
        assert!(!a.golden && !a.strict);
        assert_eq!(a.deadline_ms, None);
    }

    #[test]
    fn full_analyze_round_trips_every_field() {
        let req = ok(
            r#"{"id":7,"type":"analyze","deck":"x","slew":5e-11,"arrival":1e-10,
                "shape":"step","threshold":0.15,"aggressor":"agg1","golden":true,
                "strict":true,"deadline_ms":40}"#,
        );
        let Request::Analyze(a) = req else {
            panic!("wrong type")
        };
        assert_eq!(a.slew, 5e-11);
        assert_eq!(a.shape, Shape::Step);
        assert_eq!(a.threshold, Some(0.15));
        assert_eq!(a.aggressor.as_deref(), Some("agg1"));
        assert!(a.golden && a.strict);
        assert_eq!(a.deadline_ms, Some(40.0));
    }

    #[test]
    fn ids_echo_verbatim_with_type_preserved() {
        for (line, want) in [
            (r#"{"id":"r-1","type":"ping"}"#, "\"r-1\""),
            (r#"{"id":42,"type":"ping"}"#, "42"),
            (r#"{"id":null,"type":"ping"}"#, "null"),
            (r#"{"type":"ping"}"#, "null"),
        ] {
            let (id, r) = parse_request(line);
            assert!(r.is_ok());
            assert_eq!(id.as_json(), want, "{line}");
        }
        // A structured id is rejected, and the reply id degrades to null.
        let (id, r) = parse_request(r#"{"id":[1],"type":"ping"}"#);
        assert_eq!(id.as_json(), "null");
        assert_eq!(r.unwrap_err().code, "schema");
    }

    #[test]
    fn schema_violations_each_get_a_structured_error() {
        for (line, code, needle) in [
            ("not json at all", "bad_json", "expected"),
            ("[1,2]", "schema", "must be a JSON object"),
            (r#"{"deck":"x"}"#, "schema", "missing \"type\""),
            (r#"{"type":"frobnicate"}"#, "schema", "unknown request type"),
            (r#"{"type":"analyze"}"#, "schema", "missing \"deck\""),
            (r#"{"type":"analyze","deck":42}"#, "schema", "\"deck\" must be a string"),
            (r#"{"type":"analyze","deck":"  "}"#, "schema", "empty"),
            (r#"{"type":"analyze","deck":"x","slew":-1}"#, "schema", "positive"),
            (r#"{"type":"analyze","deck":"x","slew":"fast"}"#, "schema", "number"),
            (r#"{"type":"analyze","deck":"x","arrival":-2}"#, "schema", "non-negative"),
            (r#"{"type":"analyze","deck":"x","shape":"sine"}"#, "schema", "shape"),
            (r#"{"type":"analyze","deck":"x","deadline_ms":0}"#, "schema", "positive"),
            (r#"{"type":"analyze","deck":"x","golden":1}"#, "schema", "boolean"),
            (r#"{"type":"analyze","deck":"x","decc":"y"}"#, "schema", "unknown field"),
            (r#"{"type":"ping","deck":"x"}"#, "schema", "unknown field"),
        ] {
            let e = err(line);
            assert_eq!(e.code, code, "{line}: {}", e.detail);
            assert!(
                e.detail.contains(needle),
                "{line}: detail {:?} lacks {needle:?}",
                e.detail
            );
        }
    }

    #[test]
    fn reply_builders_emit_parseable_json() {
        let id = RequestId("\"r1\"".to_string());
        for reply in [
            error_reply(&id, "deck", "bad R card", Some((3, 17))),
            overloaded_reply(&id, 55, 64, 64),
            pong_reply(&id),
            shutting_down_reply(&id),
        ] {
            let v = crate::json::parse(&reply).expect(&reply);
            assert_eq!(v.get("id").and_then(Value::as_str), Some("r1"));
            assert!(v.get("status").is_some());
        }
        let v = crate::json::parse(&error_reply(&id, "deck", "bad", Some((3, 17)))).unwrap();
        assert_eq!(v.get("line").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("col").and_then(Value::as_f64), Some(17.0));
        let v = crate::json::parse(&overloaded_reply(&id, 55, 10, 64)).unwrap();
        assert_eq!(v.get("retry_after_ms").and_then(Value::as_f64), Some(55.0));
    }
}
