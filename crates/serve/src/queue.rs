//! Bounded MPMC work queue with load-shedding semantics.
//!
//! Admission control is the first robustness layer of the daemon: the
//! queue has a hard capacity, [`Bounded::try_push`] *never blocks* — a
//! full queue is an immediate [`PushError::Full`] so the connection
//! handler can send an explicit backpressure reply instead of letting a
//! fast client balloon memory — and [`Bounded::close`] wakes every
//! blocked worker for shutdown. Plain `Mutex<VecDeque>` + `Condvar`; the
//! daemon is bounded by analysis throughput (milliseconds per case), not
//! queue contention.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; shed the request with a backpressure
    /// reply and a `retry_after` hint.
    Full,
    /// The queue is closed (shutdown in progress); reject the request.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A capacity-bounded FIFO shared by connection readers (producers) and
/// the worker pool (consumers).
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// An empty queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; for stats and retry hints only).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// `true` when no items are queued (racy; for drain polling).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push. On refusal the item comes back to the caller so
    /// nothing is silently dropped.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`Bounded::close`]; the rejected item rides along either way.
    pub fn try_push(&self, item: T) -> Result<(), (PushError, T)> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err((PushError::Closed, item));
        }
        if inner.items.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` means "no more work ever" (worker exit signal).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Closes the intake: future pushes fail, blocked poppers drain the
    /// remaining items and then receive `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_and_returns_the_item() {
        let q = Bounded::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        let (e, item) = q.try_push("c").unwrap_err();
        assert_eq!(e, PushError::Full);
        assert_eq!(item, "c");
        // A pop frees a slot.
        assert_eq!(q.pop(), Some("a"));
        q.try_push("c").unwrap();
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2).unwrap_err().0, PushError::Closed);
        assert_eq!(q.pop(), Some(1)); // queued work still drains
        assert_eq!(q.pop(), None); // then the exit signal
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Bounded::<u8>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(Bounded::<usize>::new(8));
        let total = 500usize;
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut pushed = 0;
        let mut shed = 0;
        let mut next = 0usize;
        while next < total {
            match q.try_push(next) {
                Ok(()) => {
                    pushed += 1;
                    next += 1;
                }
                Err((PushError::Full, _)) => {
                    shed += 1;
                    std::thread::yield_now();
                }
                Err((PushError::Closed, _)) => unreachable!(),
            }
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..total).collect::<Vec<_>>());
        assert_eq!(pushed, total);
        // Shedding happened under pressure but lost nothing.
        let _ = shed;
    }
}
