//! Per-request analysis execution: deck → robust chain → reply JSON.
//!
//! This is the code that runs *inside* a worker's `catch_unwind` fence.
//! Everything that can fail in an expected way — deck parse errors,
//! invalid networks, strict-mode refusals, per-aggressor rung exhaustion
//! — is rendered as a structured reply here; only genuine bugs (panics)
//! escape to the fence.
//!
//! Deadlines are cooperative and reflect the paper's cost asymmetry: the
//! closed-form chain is microseconds and always runs to completion even
//! on an expired budget (a late bounded answer beats no answer), while
//! the golden transient cross-check is milliseconds and is dropped the
//! moment the remaining budget cannot cover it. Before giving up, the
//! worker tries the analytic fast tier ([`analytic_noise`]) — closed-form
//! pole superposition, microseconds like the chain — so a deadline-pinched
//! request still gets an independent cross-check when the case admits
//! one. The deadline stamp says which tier the reply's golden values came
//! from (`deadline.golden_tier`: `"transient"`, `"analytic"` or
//! `"skipped"`), and a reply that lost its cross-check entirely degrades
//! (`deadline.golden_skipped`, `status: "degraded"`) so clients can tell
//! a timed-out-but-bounded answer from a full one.

use crate::json;
use crate::proto::{self, AnalyzeRequest, RequestId, Shape};
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use xtalk_circuit::{
    signal::InputSignal, spice, NetId, Severity,
};
use xtalk_core::{
    MetricError, Provenance, RobustAnalyzer, RobustError, RungError, RungFailure,
};
use xtalk_sim::{
    analytic_noise, golden_noise_tiered, FastTier, GoldenOpts, GoldenTier, NoiseWaveformParams,
    SimWorkspace,
};

/// Budget floor below which a golden escalation is not attempted: a
/// transient sim is milliseconds while the chain is microseconds, so
/// with less than this left the sim would blow the deadline it exists
/// to serve.
const GOLDEN_RESERVE: Duration = Duration::from_millis(5);

/// Deck size bounds applied to client-submitted netlists. Tighter than
/// the parser defaults: a daemon request is one net cluster, not a full
/// chip.
pub fn deck_limits() -> spice::DeckLimits {
    spice::DeckLimits {
        max_lines: 100_000,
        max_nets: 512,
        max_elements: 100_000,
    }
}

fn input_for(req: &AnalyzeRequest) -> InputSignal {
    match req.shape {
        Shape::Ramp => InputSignal::rising_ramp(req.arrival, req.slew),
        Shape::Exp => InputSignal::rising_exp(req.arrival, req.slew),
        Shape::Step => InputSignal::step(req.arrival),
    }
}

/// True when the robust chain failed only because the aggressor has no
/// coupling path — benign, not a degradation (mirrors the CLI report).
fn only_no_noise(e: &RobustError) -> bool {
    let no_noise = |f: &RungFailure| matches!(f.error, RungError::Metric(MetricError::NoNoise));
    match e {
        RobustError::Engine(MetricError::NoNoise) => true,
        RobustError::StrictDegradation(f) => no_noise(f),
        RobustError::Exhausted(fails) => !fails.is_empty() && fails.iter().all(no_noise),
        _ => false,
    }
}

enum Row {
    Estimate {
        name: String,
        est: xtalk_core::NoiseEstimate,
        provenance: Provenance,
        golden: GoldenOutcome,
    },
    NoCoupling {
        name: String,
    },
    Failed {
        name: String,
        detail: String,
    },
}

enum GoldenOutcome {
    NotRequested,
    Ran(NoiseWaveformParams, GoldenTier),
    /// Skipped because the remaining deadline budget could not cover a
    /// transient simulation and the analytic fast tier declined the case.
    SkippedDeadline,
    Failed(String),
}

/// Per-stage timings and degradation facts for one request, filled by
/// [`run_analyze`] and consumed by the server's event log. All values
/// refer to this request alone; statuses an early error return leaves
/// behind stay at the default `"error"`.
#[derive(Debug, Clone, Copy)]
pub struct RequestTrace {
    /// Wall time spent parsing the deck (ns).
    pub parse_ns: u64,
    /// Wall time spent in the closed-form robust chain, all rows (ns).
    pub chain_ns: u64,
    /// Wall time spent in golden cross-checks, all rows (ns).
    pub golden_ns: u64,
    /// Rows whose estimate came from a fallback rung or was clamped.
    pub degraded_rows: u32,
    /// Rows whose golden cross-check was dropped for deadline reasons.
    pub golden_skips: u32,
    /// Rows rescued by the analytic fast tier under deadline pressure.
    pub analytic_rescues: u32,
    /// Whether the request's deadline had expired by reply time.
    pub deadline_expired: bool,
    /// Reply status: `"ok"`, `"degraded"`, or `"error"`.
    pub status: &'static str,
}

impl Default for RequestTrace {
    fn default() -> Self {
        RequestTrace {
            parse_ns: 0,
            chain_ns: 0,
            golden_ns: 0,
            degraded_rows: 0,
            golden_skips: 0,
            analytic_rescues: 0,
            deadline_expired: false,
            status: "error",
        }
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Runs one validated `analyze` request to a complete reply line.
///
/// `accepted` is when the request was admitted (queue wait counts
/// against the deadline — that is the point of admission control).
/// Stage timings and degradation facts land in `trace`; the per-stage
/// spans (`serve.parse`, `serve.chain`, `serve.golden`) feed the
/// windowed stats and, with tracing on, carry the request id the worker
/// pinned via `xtalk_obs::push_request_ctx`.
pub fn run_analyze(
    id: &RequestId,
    req: &AnalyzeRequest,
    accepted: Instant,
    ws: &mut SimWorkspace,
    trace: &mut RequestTrace,
) -> String {
    xtalk_obs::counter!("serve.requests.analyze").add(1);
    let budget = req.deadline_ms.map(|ms| Duration::from_secs_f64(ms / 1e3));
    let parse_started = Instant::now();
    let parsed = {
        let _span = xtalk_obs::span!("serve.parse");
        spice::parse_deck_with_limits(&req.deck, &deck_limits())
    };
    trace.parse_ns = elapsed_ns(parse_started);
    let network = match parsed {
        Ok(n) => n,
        Err(e @ spice::SpiceParseError::TooLarge { .. }) => {
            xtalk_obs::counter!("serve.replies.error").add(1);
            return proto::error_reply(id, "deck_too_large", &e.to_string(), e.position());
        }
        Err(e) => {
            xtalk_obs::counter!("serve.replies.error").add(1);
            return proto::error_reply(id, "deck", &e.to_string(), e.position());
        }
    };
    let policy = if req.strict {
        xtalk_core::FallbackPolicy::strict()
    } else {
        xtalk_core::FallbackPolicy::default()
    };
    let robust = match RobustAnalyzer::with_policy(&network, policy) {
        Ok(r) => r,
        Err(e) => {
            xtalk_obs::counter!("serve.replies.error").add(1);
            return proto::error_reply(id, "invalid_network", &e.to_string(), None);
        }
    };
    let input = input_for(req);
    let warnings = robust
        .validation()
        .with_severity(Severity::Warning)
        .count();

    let targets: Vec<(NetId, String)> = network
        .aggressor_nets()
        .filter(|(_, net)| match &req.aggressor {
            Some(wanted) => net.name() == wanted,
            None => true,
        })
        .map(|(agg, net)| (agg, net.name().to_string()))
        .collect();

    let mut rows = Vec::with_capacity(targets.len());
    let mut degraded = false;
    let mut golden_skips = 0usize;
    let mut analytic_runs = 0usize;
    for (agg, name) in targets {
        let chain_started = Instant::now();
        let analyzed = {
            let _span = xtalk_obs::span!("serve.chain");
            robust.analyze(agg, &input)
        };
        trace.chain_ns += elapsed_ns(chain_started);
        let row = match analyzed {
            Ok(re) => {
                if re.provenance.degraded() {
                    degraded = true;
                    trace.degraded_rows += 1;
                }
                let golden_started = Instant::now();
                let golden = if !req.golden {
                    GoldenOutcome::NotRequested
                } else if out_of_budget(budget, accepted) {
                    let _span = xtalk_obs::span!("serve.golden");
                    // No budget for a transient sim — but the analytic
                    // fast tier costs microseconds, so try it before
                    // dropping the cross-check entirely.
                    match analytic_noise(&network, &[(agg, input)], network.victim_output(), FastTier::Auto)
                    {
                        Ok(params) => {
                            analytic_runs += 1;
                            trace.analytic_rescues += 1;
                            xtalk_obs::counter!(perf: "serve.deadline.analytic_rescues").add(1);
                            GoldenOutcome::Ran(params, GoldenTier::Analytic)
                        }
                        Err(_) => {
                            golden_skips += 1;
                            degraded = true;
                            xtalk_obs::counter!(perf: "serve.deadline.golden_skips").add(1);
                            GoldenOutcome::SkippedDeadline
                        }
                    }
                } else {
                    let _span = xtalk_obs::span!("serve.golden");
                    match golden_noise_tiered(
                        &network,
                        &[(agg, input)],
                        network.victim_output(),
                        ws,
                        &GoldenOpts::from_globals(),
                    ) {
                        Ok((params, tier)) => {
                            if tier == GoldenTier::Analytic {
                                analytic_runs += 1;
                            }
                            GoldenOutcome::Ran(params, tier)
                        }
                        Err(e) => {
                            degraded = true;
                            GoldenOutcome::Failed(e.to_string())
                        }
                    }
                };
                if req.golden {
                    trace.golden_ns += elapsed_ns(golden_started);
                }
                Row::Estimate {
                    name,
                    est: re.estimate,
                    provenance: re.provenance,
                    golden,
                }
            }
            Err(e) if only_no_noise(&e) => Row::NoCoupling { name },
            Err(e) if req.strict => {
                xtalk_obs::counter!("serve.replies.error").add(1);
                return proto::error_reply(id, "strict", &e.to_string(), None);
            }
            Err(e) => {
                degraded = true;
                Row::Failed {
                    name,
                    detail: e.to_string(),
                }
            }
        };
        rows.push(row);
    }

    let elapsed = accepted.elapsed();
    let expired = budget.is_some_and(|b| elapsed > b);
    if expired {
        xtalk_obs::counter!(perf: "serve.deadline.expired").add(1);
    }
    let status = if degraded || expired { "degraded" } else { "ok" };
    trace.golden_skips = u32::try_from(golden_skips).unwrap_or(u32::MAX);
    trace.deadline_expired = expired;
    trace.status = status;
    if degraded || expired {
        xtalk_obs::counter!("serve.replies.degraded").add(1);
    } else {
        xtalk_obs::counter!("serve.replies.ok").add(1);
    }

    let mut out = proto::open_reply(id, status);
    out.push_str(",\"victim\":");
    json::write_escaped(&mut out, network.node_name(network.victim_output()));
    let _ = write!(out, ",\"validation_warnings\":{warnings},\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_row(&mut out, row, req.threshold);
    }
    out.push(']');
    let _ = write!(out, ",\"elapsed_ms\":{:.3}", elapsed.as_secs_f64() * 1e3);
    if let Some(b) = budget {
        let _ = write!(
            out,
            ",\"deadline\":{{\"budget_ms\":{},\"expired\":{expired},\"golden_skipped\":{golden_skips}",
            fmt_ms(b)
        );
        if req.golden {
            // Which golden tier the reply's cross-checks came from, at the
            // most-degraded level any row saw: a skip outranks an analytic
            // rescue, which outranks the full transient reference.
            let tier = if golden_skips > 0 {
                "skipped"
            } else if analytic_runs > 0 {
                GoldenTier::Analytic.as_str()
            } else {
                GoldenTier::Transient.as_str()
            };
            let _ = write!(out, ",\"golden_tier\":\"{tier}\"");
        }
        out.push('}');
    }
    out.push('}');
    out
}

fn out_of_budget(budget: Option<Duration>, accepted: Instant) -> bool {
    match budget {
        None => false,
        Some(b) => accepted.elapsed() + GOLDEN_RESERVE > b,
    }
}

fn fmt_ms(d: Duration) -> String {
    let mut s = String::new();
    json::write_number(&mut s, d.as_secs_f64() * 1e3);
    s
}

fn render_waveform(out: &mut String, vp: f64, t0: f64, t1: f64, t2: f64, tp: f64, wn: f64) {
    for (key, v) in [
        ("vp", vp),
        ("t0", t0),
        ("t1", t1),
        ("t2", t2),
        ("tp", tp),
        ("wn", wn),
    ] {
        out.push(',');
        proto::push_key(out, key);
        json::write_number(out, v);
    }
}

fn render_row(out: &mut String, row: &Row, threshold: Option<f64>) {
    match row {
        Row::Estimate {
            name,
            est,
            provenance,
            golden,
        } => {
            out.push_str("{\"aggressor\":");
            json::write_escaped(out, name);
            render_waveform(out, est.vp, est.t0, est.t1, est.t2, est.tp, est.wn);
            out.push_str(",\"rung\":");
            json::write_escaped(out, provenance.rung().name());
            let _ = write!(
                out,
                ",\"degraded\":{},\"clamped_vp\":{}",
                provenance.degraded(),
                provenance.clamped()
            );
            out.push_str(",\"timing_clamps\":[");
            for (i, c) in provenance.timing_clamps().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_escaped(out, c);
            }
            out.push_str("],\"failures\":[");
            for (i, f) in provenance.failures().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_escaped(out, &f.to_string());
            }
            out.push(']');
            if let Some(budget) = threshold {
                let _ = write!(out, ",\"violation\":{}", est.vp > budget);
            }
            match golden {
                GoldenOutcome::NotRequested => {}
                GoldenOutcome::SkippedDeadline => out.push_str(",\"golden_skipped\":true"),
                GoldenOutcome::Failed(e) => {
                    out.push_str(",\"golden_error\":");
                    json::write_escaped(out, e);
                }
                GoldenOutcome::Ran(g, tier) => {
                    out.push_str(",\"golden\":{\"vp\":");
                    json::write_number(out, g.vp);
                    out.push_str(",\"tp\":");
                    json::write_number(out, g.tp);
                    out.push_str(",\"wn\":");
                    json::write_number(out, g.wn);
                    let _ = write!(out, ",\"tier\":\"{}\"", tier.as_str());
                    if g.vp != 0.0 {
                        out.push_str(",\"err_pct\":");
                        json::write_number(out, (est.vp - g.vp) / g.vp * 100.0);
                    }
                    out.push('}');
                }
            }
            out.push('}');
        }
        Row::NoCoupling { name } => {
            out.push_str("{\"aggressor\":");
            json::write_escaped(out, name);
            out.push_str(",\"no_coupling\":true}");
        }
        Row::Failed { name, detail } => {
            out.push_str("{\"aggressor\":");
            json::write_escaped(out, name);
            out.push_str(",\"error\":");
            json::write_escaped(out, detail);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use xtalk_circuit::{NetRole, NetworkBuilder};

    fn sample_deck() -> String {
        let mut b = NetworkBuilder::new();
        let v = b.add_net("victim", NetRole::Victim);
        let a = b.add_net("agg0", NetRole::Aggressor);
        let v0 = b.add_node(v, "v0");
        let v1 = b.add_node(v, "v1");
        let a0 = b.add_node(a, "a0");
        b.add_driver(v, v0, 300.0).unwrap();
        b.add_driver(a, a0, 150.0).unwrap();
        b.add_resistor(v0, v1, 60.0).unwrap();
        b.add_ground_cap(v0, 2e-15).unwrap();
        b.add_ground_cap(v1, 8e-15).unwrap();
        b.add_sink(v1, 12e-15).unwrap();
        b.add_sink(a0, 10e-15).unwrap();
        b.add_coupling_cap(a0, v1, 25e-15).unwrap();
        spice::write_deck(&b.build().unwrap())
    }

    fn req(deck: String) -> AnalyzeRequest {
        AnalyzeRequest {
            deck,
            slew: 100e-12,
            arrival: 0.0,
            shape: Shape::Ramp,
            threshold: None,
            aggressor: None,
            golden: false,
            strict: false,
            deadline_ms: None,
        }
    }

    fn run(r: &AnalyzeRequest) -> Value {
        let id = RequestId::null();
        let mut trace = RequestTrace::default();
        let reply = run_analyze(&id, r, Instant::now(), &mut SimWorkspace::new(), &mut trace);
        let v = crate::json::parse(&reply).expect("reply is valid JSON");
        // The trace's status must agree with the reply's.
        assert_eq!(
            v.get("status").and_then(Value::as_str),
            Some(trace.status),
            "trace status disagrees with the wire status"
        );
        v
    }

    #[test]
    fn healthy_deck_yields_ok_rows() {
        let v = run(&req(sample_deck()));
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        let Some(Value::Arr(rows)) = v.get("rows") else {
            panic!("rows missing: {v:?}")
        };
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.get("aggressor").and_then(Value::as_str), Some("agg0"));
        assert_eq!(row.get("rung").and_then(Value::as_str), Some("metric II"));
        assert_eq!(row.get("degraded").and_then(Value::as_bool), Some(false));
        let vp = row.get("vp").and_then(Value::as_f64).unwrap();
        assert!(vp > 0.0 && vp < 1.0, "{vp}");
    }

    #[test]
    fn step_input_degrades_with_provenance() {
        let mut r = req(sample_deck());
        r.shape = Shape::Step;
        let v = run(&r);
        assert_eq!(v.get("status").and_then(Value::as_str), Some("degraded"));
        let Some(Value::Arr(rows)) = v.get("rows") else {
            panic!()
        };
        let row = &rows[0];
        assert_eq!(row.get("degraded").and_then(Value::as_bool), Some(true));
        assert_eq!(
            row.get("rung").and_then(Value::as_str),
            Some("metric I (m = 1)")
        );
        let Some(Value::Arr(failures)) = row.get("failures") else {
            panic!("failures missing")
        };
        assert!(!failures.is_empty(), "degraded row must carry rung failures");
    }

    #[test]
    fn strict_mode_turns_degradation_into_an_error_reply() {
        let mut r = req(sample_deck());
        r.shape = Shape::Step;
        r.strict = true;
        let v = run(&r);
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(v.get("code").and_then(Value::as_str), Some("strict"));
    }

    #[test]
    fn deck_errors_carry_position() {
        let mut r = req(sample_deck());
        r.deck = "*! net 0 victim v\nRDRV0 src0 n0 abc\n".into();
        let v = run(&r);
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(v.get("code").and_then(Value::as_str), Some("deck"));
        assert_eq!(v.get("line").and_then(Value::as_f64), Some(2.0));
        assert_eq!(v.get("col").and_then(Value::as_f64), Some(15.0));
    }

    #[test]
    fn absurd_decks_hit_the_request_limits() {
        let mut deck = String::from("*! net 0 victim v\nRDRV0 src0 n0 10\n");
        for i in 0..200_000 {
            deck.push_str(&format!("C{i} n0 0 1f\n"));
        }
        let mut r = req(String::new());
        r.deck = deck;
        let v = run(&r);
        assert_eq!(v.get("code").and_then(Value::as_str), Some("deck_too_large"));
    }

    #[test]
    fn golden_runs_within_budget_and_degrades_without() {
        let mut r = req(sample_deck());
        r.golden = true;
        r.deadline_ms = Some(30_000.0); // generous
        let v = run(&r);
        let Some(Value::Arr(rows)) = v.get("rows") else {
            panic!()
        };
        let golden = rows[0]
            .get("golden")
            .unwrap_or_else(|| panic!("golden should run under a generous budget: {v:?}"));
        assert_eq!(
            golden.get("tier").and_then(Value::as_str),
            Some("transient"),
            "a comfortable budget gets the full transient reference"
        );
        let err = golden.get("err_pct").and_then(Value::as_f64).unwrap();
        assert!(err.abs() < 100.0, "estimate vs golden off by {err}%");
        let dl = v.get("deadline").expect("deadline stamp");
        assert_eq!(dl.get("golden_tier").and_then(Value::as_str), Some("transient"));

        // A microscopic budget: the chain still answers and the deadline
        // is stamped expired; this deck is analytic-eligible, so the fast
        // tier rescues the cross-check instead of skipping it.
        r.deadline_ms = Some(1e-3);
        let v = run(&r);
        assert_eq!(v.get("status").and_then(Value::as_str), Some("degraded"));
        let Some(Value::Arr(rows)) = v.get("rows") else {
            panic!()
        };
        let golden = rows[0].get("golden").expect("analytic rescue ran");
        assert_eq!(golden.get("tier").and_then(Value::as_str), Some("analytic"));
        let dl = v.get("deadline").expect("deadline stamp");
        assert_eq!(dl.get("expired").and_then(Value::as_bool), Some(true));
        assert_eq!(dl.get("golden_skipped").and_then(Value::as_f64), Some(0.0));
        assert_eq!(dl.get("golden_tier").and_then(Value::as_str), Some("analytic"));
    }

    #[test]
    fn analytic_ineligible_deck_still_skips_under_deadline_pressure() {
        // An exponential input shape has no closed-form pole
        // superposition, so the fast tier declines and the cross-check
        // is skipped outright.
        let mut r = req(sample_deck());
        r.golden = true;
        r.shape = Shape::Exp;
        r.deadline_ms = Some(1e-3);
        let v = run(&r);
        assert_eq!(v.get("status").and_then(Value::as_str), Some("degraded"));
        let Some(Value::Arr(rows)) = v.get("rows") else {
            panic!()
        };
        assert_eq!(
            rows[0].get("golden_skipped").and_then(Value::as_bool),
            Some(true)
        );
        let dl = v.get("deadline").expect("deadline stamp");
        assert_eq!(dl.get("golden_skipped").and_then(Value::as_f64), Some(1.0));
        assert_eq!(dl.get("golden_tier").and_then(Value::as_str), Some("skipped"));
    }

    #[test]
    fn threshold_flags_violations() {
        let mut r = req(sample_deck());
        r.threshold = Some(1e-9);
        let v = run(&r);
        let Some(Value::Arr(rows)) = v.get("rows") else {
            panic!()
        };
        assert_eq!(rows[0].get("violation").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn aggressor_filter_limits_rows() {
        let mut r = req(sample_deck());
        r.aggressor = Some("nonexistent".into());
        let v = run(&r);
        let Some(Value::Arr(rows)) = v.get("rows") else {
            panic!()
        };
        assert!(rows.is_empty());
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    }
}
