//! Solver scaling: dense LU vs sparse LDLᵀ on RC-chain-like SPD systems.
//!
//! Measures the simulator's actual factor-and-solve workload — one
//! factorization followed by 100 solves (a transient run's step loop) —
//! at n ∈ {32, 128, 512, 2048} on a chain-with-coupling matrix of the
//! kind the MNA stamping produces. Dense LU is O(n³) factor + O(n²)
//! solve; sparse LDLᵀ under the fill-reducing ordering is O(n) for both
//! on these near-tree systems, so the gap widens by roughly n² across
//! the sweep.
//!
//! The dense n=2048 point costs seconds per factorization, so sample
//! counts are kept small; `-- --test` (CI smoke mode) runs each routine
//! once untimed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xtalk_linalg::sparse::{Csr, Triplets};
use xtalk_linalg::LdlSymbolic;

/// Sizes swept; dense factorization dominates the large end.
const SIZES: [usize; 4] = [32, 128, 512, 2048];

/// Solves per factorization — a representative transient step count.
const SOLVES: usize = 100;

/// RC-chain-like SPD matrix with sparse coupling entries every 8 nodes,
/// mirroring the stepping matrix `(C + coeff·G)/dt` of a coupled ladder.
fn stepping_matrix(n: usize) -> Csr {
    stepping_matrix_scaled(n, 1.0)
}

/// The same pattern with every value scaled — what a timestep change
/// does to the stepping matrix (`dt → dt/scale`).
fn stepping_matrix_scaled(n: usize, scale: f64) -> Csr {
    let mut t = Triplets::new(n, n);
    for i in 0..n {
        t.push(i, i, scale * (4.0 + 0.001 * i as f64));
    }
    for i in 0..n - 1 {
        t.push(i, i + 1, -scale);
        t.push(i + 1, i, -scale);
    }
    let mut i = 0;
    while i + 9 < n {
        t.push(i, i + 9, scale * -0.125);
        t.push(i + 9, i, scale * -0.125);
        i += 8;
    }
    t.to_csr()
}

fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.13).sin()).collect()
}

fn bench_solver_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_scaling");
    // A dense 2048³ factorization runs for seconds; default sample counts
    // would take an hour. The comparison needs stable medians, not tight
    // confidence intervals.
    group.sample_size(10);

    for n in SIZES {
        let a = stepping_matrix(n);
        let b = rhs(n);

        group.bench_function(format!("sparse_ldl/factor_plus_{SOLVES}_solves/n{n}"), |bch| {
            let symbolic = LdlSymbolic::analyze(&a).expect("pattern analyzes");
            let mut factors = symbolic.factor(&a).expect("matrix factors");
            let mut x = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            bch.iter(|| {
                factors.refactor(black_box(&a)).expect("refactor succeeds");
                for _ in 0..SOLVES {
                    factors
                        .solve_into(black_box(&b), &mut x, &mut scratch)
                        .expect("solve succeeds");
                }
                black_box(x[n / 2])
            })
        });

        // Adaptive-timestep dimension: a dt change rescales the stepping
        // matrix but keeps its pattern, so the adaptive march only
        // refactors numerically against the cached symbolic analysis.
        // The full-reanalysis variant is what each dt change would cost
        // without the cache (ordering + elimination tree + counts again).
        let a_halved = stepping_matrix_scaled(n, 2.0);
        group.bench_function(format!("sparse_ldl/dt_change/refactor_only/n{n}"), |bch| {
            let symbolic = LdlSymbolic::analyze(&a).expect("pattern analyzes");
            let mut factors = symbolic.factor(&a).expect("matrix factors");
            bch.iter(|| {
                factors
                    .refactor(black_box(&a_halved))
                    .expect("refactor succeeds");
                black_box(&factors);
            })
        });
        group.bench_function(format!("sparse_ldl/dt_change/full_reanalysis/n{n}"), |bch| {
            bch.iter(|| {
                let symbolic = LdlSymbolic::analyze(black_box(&a_halved)).expect("pattern analyzes");
                let factors = symbolic.factor(&a_halved).expect("matrix factors");
                black_box(factors.fill_nnz())
            })
        });

        group.bench_function(format!("dense_lu/factor_plus_{SOLVES}_solves/n{n}"), |bch| {
            let dense = a.to_dense();
            let mut x = vec![0.0; n];
            bch.iter(|| {
                let lu = dense.lu().expect("matrix factors");
                for _ in 0..SOLVES {
                    lu.solve_into(black_box(&b), &mut x).expect("solve succeeds");
                }
                black_box(x[n / 2])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver_scaling);
criterion_main!(benches);
