//! Ablation bench for the in-text results around eqs. (37)–(54):
//!
//! * the eq.-54 shape estimate vs. fixed `m = 1` (the accuracy/cost
//!   trade-off DESIGN.md calls out),
//! * the λ sensitivity of metric II (the paper notes results depend on λ),
//! * the closed-form bounds as a screening predicate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xtalk_bench::reference_two_pin;
use xtalk_core::{shape_ratio_m, MetricOne, MetricTwo, NoiseAnalyzer};

fn bench_bounds(c: &mut Criterion) {
    let (network, aggressor, input) = reference_two_pin();
    let analyzer = NoiseAnalyzer::new(&network).expect("analyzer builds");
    let moments = analyzer
        .output_moments(aggressor, &input)
        .expect("moments exist");
    let tr = input.effective_rise_time();

    let mut group = c.benchmark_group("bounds_and_shape");
    group.bench_function("shape_ratio_eq54", |b| {
        let tw = moments.t_w().unwrap();
        b.iter(|| shape_ratio_m(black_box(tw), black_box(tr)).unwrap())
    });
    group.bench_function("metric_I_fixed_m1", |b| {
        b.iter(|| MetricOne::estimate_symmetric(black_box(&moments)).unwrap())
    });
    group.bench_function("metric_I_auto_m", |b| {
        b.iter(|| MetricOne::estimate_auto(black_box(&moments), tr).unwrap())
    });
    for lambda in [2.0, xtalk_core::LAMBDA, 3.5] {
        group.bench_function(format!("metric_II_lambda_{lambda:.2}"), |b| {
            let metric = MetricTwo::with_lambda(lambda);
            b.iter(|| metric.estimate_auto(black_box(&moments), tr).unwrap())
        });
    }
    group.bench_function("screening_with_bounds", |b| {
        // The cheapest possible go/no-go test: upper bound vs. threshold.
        b.iter(|| {
            let bounds = MetricOne::bounds(black_box(&moments)).unwrap();
            black_box(bounds.vp.1 > 0.1)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
