//! Regenerates the Table 2 pipeline (two-pin, near-end) at bench scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xtalk_bench::BENCH_CASES;
use xtalk_eval::{run_two_pin_table, Method, Param};
use xtalk_tech::sweep::SweepConfig;
use xtalk_tech::{CouplingDirection, Technology};

fn bench_table2(c: &mut Criterion) {
    let tech = Technology::p25();
    let config = SweepConfig {
        cases: BENCH_CASES,
        ..SweepConfig::default()
    };
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("two_pin_near_end_pipeline", |b| {
        b.iter(|| {
            let stats = run_two_pin_table(&tech, CouplingDirection::NearEnd, &config, false);
            // The paper's Table-2 claim: new metric II stays conservative
            // (within the -5% tolerance) at the near end.
            if let Some(cell) = stats.cell(Method::NewTwo, Param::Vp) {
                assert!(cell.conservative_above(-5.0));
            }
            black_box(stats)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
