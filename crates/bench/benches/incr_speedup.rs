//! Incremental what-if speedup: memoized single-delta queries vs full
//! recomputation on a 64-net coupled cluster.
//!
//! Builds a Figure-4 chain-coupled cluster, warms a [`WhatIf`] session,
//! then walks a sequence of single-element deltas (coupling-cap edits
//! spread across the cluster, with a driver resize mixed in every
//! eighth step). Each delta is answered twice:
//!
//! * **incremental** — `session.apply(&delta)`: the memoized session
//!   repairs only the invalidated one-hop views and replays the rest;
//! * **full** — a fresh `WhatIf` built from the edited network, which
//!   recomputes every view from scratch (exactly what a caller without
//!   the incremental layer would pay per edit).
//!
//! Every pair of reports must be **byte-identical** — the engine's
//! bit-identity contract, also enforced continuously by the
//! `incremental` audit family in `xtalk audit`. The export goes to
//! `BENCH_incr.json` at the repo root:
//!
//! ```json
//! {"lanes":64,"nets":64,"coupling_caps":504,"deltas":32,
//!  "incr":{"total_s":0.04,"per_delta_ms":1.2},
//!  "full":{"total_s":1.9,"per_delta_ms":59.0},
//!  "session":{"queries":2112,"hits":2016,"misses":96,"invalidated":96},
//!  "incr_speedup":49.1,"reports_identical":true}
//! ```
//!
//! `incr_speedup` is full/incremental total time; the target is at
//! least 10x at 64 nets. Both legs run one worker, so the ratio measures
//! memoization, not threading. Sizes are overridable with
//! `XTALK_BENCH_INCR_LANES` / `XTALK_BENCH_INCR_DELTAS`; `-- --test`
//! runs a tiny smoke cluster and skips the JSON export.

use std::time::{Duration, Instant};
use xtalk_circuit::Delta;
use xtalk_exec::Jobs;
use xtalk_incr::{WhatIf, WhatIfConfig};
use xtalk_tech::{ClusterSpec, Technology};

fn config() -> WhatIfConfig {
    WhatIfConfig {
        jobs: Jobs::Count(1),
        ..WhatIfConfig::default()
    }
}

/// The delta sequence: coupling-cap edits striding across the table so
/// successive edits land in different neighbourhoods, plus a driver
/// resize every eighth step. All single-element, all deterministic.
fn delta_for(session: &WhatIf, step: usize) -> Delta {
    let base = session.base();
    if step % 8 == 7 {
        let nets: Vec<_> = base.nets().map(|(id, _)| id).collect();
        let net = nets[(step * 11) % nets.len()];
        let ohms = base.net(net).driver().ohms;
        // Bounce between 90% and 111% so repeated visits don't drift.
        let scale = if step % 16 == 7 { 0.9 } else { 1.0 / 0.9 };
        Delta::ResizeDriver { net, ohms: ohms * scale }
    } else {
        let ccs = base.coupling_caps();
        let index = (step * 37) % ccs.len();
        let scale = if step % 2 == 0 { 0.9 } else { 1.0 / 0.9 };
        Delta::SetCouplingCap {
            index,
            farads: ccs[index].farads * scale,
        }
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let lanes = std::env::var("XTALK_BENCH_INCR_LANES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(if test_mode { 6 } else { 64 });
    let deltas = std::env::var("XTALK_BENCH_INCR_DELTAS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(if test_mode { 4 } else { 32 });

    let spec = ClusterSpec::figure4_family(lanes);
    let (base, _) = spec.build(&Technology::p25()).expect("cluster builds");
    let nets = base.net_count();
    let ccs = base.coupling_caps().len();
    eprintln!(
        "incr_speedup: {lanes} lanes ({nets} nets, {ccs} coupling caps, \
         {} segments/lane), {deltas} single-element deltas",
        spec.segments()
    );

    let mut session = WhatIf::new(base, config()).expect("session builds");
    // Warm the session: the first report pays every view's full compute
    // once, exactly like the startup cost any caller amortizes.
    let warm_start = Instant::now();
    session.report();
    let warm_s = warm_start.elapsed().as_secs_f64();

    let mut incr_time = Duration::ZERO;
    let mut full_time = Duration::ZERO;
    for step in 0..deltas {
        let delta = delta_for(&session, step);

        let t = Instant::now();
        let incr_report = session.apply(&delta).expect("delta applies");
        incr_time += t.elapsed();

        // Full recompute of the same edited network: fresh session,
        // every view built and computed from scratch.
        let edited = session.base().clone();
        let t = Instant::now();
        let full_report = WhatIf::new(edited, config())
            .expect("fresh session builds")
            .report();
        full_time += t.elapsed();

        assert_eq!(
            incr_report.to_json(),
            full_report.to_json(),
            "incremental report must be byte-identical to full recompute (step {step})"
        );
    }

    let incr_s = incr_time.as_secs_f64();
    let full_s = full_time.as_secs_f64();
    let speedup = full_s / incr_s;
    let st = session.stats();
    println!(
        "incr_speedup/warmup      {warm_s:>10.3} s  (first full report, {nets} views)"
    );
    println!(
        "incr_speedup/incremental {incr_s:>10.3} s  ({:.3} ms/delta)",
        incr_s / deltas as f64 * 1e3
    );
    println!(
        "incr_speedup/full        {full_s:>10.3} s  ({:.3} ms/delta)",
        full_s / deltas as f64 * 1e3
    );
    println!(
        "incr_speedup/session     queries {} hits {} misses {} invalidated {}",
        st.queries, st.hits, st.misses, st.invalidated
    );
    println!("incr_speedup/speedup     {speedup:>10.2} x  (reports byte-identical)");

    if test_mode {
        println!("incr_speedup: test passed");
        return;
    }
    assert!(
        speedup >= 10.0,
        "incremental queries must be >= 10x full recompute at {nets} nets \
         (measured {speedup:.2}x)"
    );
    let json = format!(
        "{{\"lanes\":{lanes},\"nets\":{nets},\"coupling_caps\":{ccs},\"deltas\":{deltas},\
         \"incr\":{{\"total_s\":{incr_s:.6},\"per_delta_ms\":{:.4}}},\
         \"full\":{{\"total_s\":{full_s:.6},\"per_delta_ms\":{:.4}}},\
         \"session\":{{\"queries\":{},\"hits\":{},\"misses\":{},\"invalidated\":{}}},\
         \"incr_speedup\":{speedup:.4},\"reports_identical\":true}}\n",
        incr_s / deltas as f64 * 1e3,
        full_s / deltas as f64 * 1e3,
        st.queries,
        st.hits,
        st.misses,
        st.invalidated,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incr.json");
    std::fs::write(path, json).expect("write BENCH_incr.json");
    eprintln!("wrote {path}");
}
