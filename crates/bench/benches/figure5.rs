//! Regenerates the Figure 5 sweep (peak noise vs. coupling location) and
//! asserts its two qualitative claims inside the timed body.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xtalk_eval::run_figure5;
use xtalk_tech::Technology;

fn bench_figure5(c: &mut Criterion) {
    let tech = Technology::p25();
    let mut group = c.benchmark_group("figure5");
    group.sample_size(10);
    group.bench_function("coupling_location_sweep", |b| {
        b.iter(|| {
            let rows = run_figure5(&tech, 6).expect("benign sweep builds");
            // Golden peak grows toward the receiver; lumped-π is flat.
            assert!(rows.windows(2).all(|w| w[1].golden_vp > w[0].golden_vp));
            assert!(rows
                .windows(2)
                .all(|w| (w[1].lumped_vp - w[0].lumped_vp).abs() < 1e-9 * w[0].lumped_vp));
            black_box(rows)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figure5);
criterion_main!(benches);
