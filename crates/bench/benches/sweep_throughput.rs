//! End-to-end sweep throughput: serial vs parallel evaluation with a
//! per-stage breakdown.
//!
//! Runs the same seeded two-pin far-end sweep plus a differential audit
//! pass twice — once pinned to one worker (the serial reference path)
//! and once on `max(host parallelism, 2)` workers — asserts the rendered
//! tables are byte-identical, and writes timings to `BENCH_sweep.json`
//! at the repo root:
//!
//! ```json
//! {"cases":500,"audit_cases":100,"host_parallelism":8,
//!  "serial":{"jobs":1,"total_s":12.3,
//!            "stages":{"sim_s":10.1,"metric_s":0.9,"audit_s":1.1,"other_s":0.2}},
//!  "parallel":{"jobs":8,"total_s":2.9,"stages":{...}},
//!  "speedup":4.24}
//! ```
//!
//! The parallel leg records the worker count it *actually* ran with
//! (floored at 2 so the scaling claim is always exercised, even on a
//! single-core host — `host_parallelism` tells the reader how much real
//! concurrency backed it). Stage figures come from the observability
//! span histograms: `sim_s` is the exact summed wall time under
//! `sim.golden` spans during the sweep, `metric_s` is the remaining
//! `eval.case` time (metric formulas + waveform measurement), `audit_s`
//! is the audit pass wall clock, `other_s` the unattributed remainder
//! (generation, rendering, queue overhead).
//!
//! Each leg runs twice interleaved (S P S P) and the minimum is kept:
//! run-to-run noise on a shared host is ~5% (see EXPERIMENTS.md), which
//! would otherwise dominate the comparison.
//!
//! Case count defaults to 500 and is overridable with the
//! `XTALK_BENCH_CASES` env var; `-- --test` runs a tiny smoke sweep and
//! skips the JSON export.

use std::time::Instant;
use xtalk_audit::{run_audit, AuditConfig};
use xtalk_eval::{render_table, run_two_pin_table_jobs, TableStats};
use xtalk_exec::Jobs;
use xtalk_tech::sweep::SweepConfig;
use xtalk_tech::{CouplingDirection, Technology};

/// One leg's timings, all in seconds.
#[derive(Clone, Copy)]
struct LegTiming {
    total_s: f64,
    sim_s: f64,
    metric_s: f64,
    audit_s: f64,
    other_s: f64,
}

/// Summed nanoseconds under the named span histogram so far.
fn span_sum_ns(name: &str) -> u64 {
    xtalk_obs::snapshot()
        .histogram(name)
        .map_or(0, |h| h.sum)
}

fn timed_leg(
    tech: &Technology,
    config: &SweepConfig,
    audit_config: &AuditConfig,
    jobs: Jobs,
) -> (TableStats, LegTiming) {
    let sim_ns0 = span_sum_ns("span.sim.golden.ns");
    let case_ns0 = span_sum_ns("span.eval.case.ns");

    let sweep_start = Instant::now();
    let stats = run_two_pin_table_jobs(tech, CouplingDirection::FarEnd, config, false, jobs);
    let sweep_s = sweep_start.elapsed().as_secs_f64();

    let sim_ns = span_sum_ns("span.sim.golden.ns") - sim_ns0;
    let case_ns = span_sum_ns("span.eval.case.ns") - case_ns0;

    let audit_start = Instant::now();
    let report = run_audit(&AuditConfig {
        jobs,
        ..*audit_config
    });
    let audit_s = audit_start.elapsed().as_secs_f64();
    assert!(
        report.checked + report.skipped.len() > 0,
        "audit pass must evaluate cases"
    );

    let sim_s = sim_ns as f64 * 1e-9;
    let case_s = case_ns as f64 * 1e-9;
    (
        stats,
        LegTiming {
            total_s: sweep_s + audit_s,
            sim_s,
            metric_s: (case_s - sim_s).max(0.0),
            audit_s,
            other_s: (sweep_s - case_s).max(0.0),
        },
    )
}

fn stage_json(t: &LegTiming) -> String {
    format!(
        "{{\"sim_s\":{:.6},\"metric_s\":{:.6},\"audit_s\":{:.6},\"other_s\":{:.6}}}",
        t.sim_s, t.metric_s, t.audit_s, t.other_s
    )
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let cases = std::env::var("XTALK_BENCH_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if test_mode { 8 } else { 500 });
    let config = SweepConfig {
        cases,
        ..SweepConfig::default()
    };
    let audit_cases = (cases / 5).max(4);
    let audit_config = AuditConfig {
        cases: audit_cases,
        ..AuditConfig::default()
    };
    let tech = Technology::p25();

    // Stage attribution needs the span histograms live.
    xtalk_obs::enable_metrics();

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    // The parallel leg always exercises the threaded path: at least two
    // workers, even when the host grants only one core.
    let parallel_jobs = host.max(2);

    eprintln!(
        "sweep_throughput: {cases} sweep + {audit_cases} audit cases, \
         1 vs {parallel_jobs} worker(s) (host parallelism {host})"
    );

    fn improves(best: &Option<(TableStats, LegTiming)>, candidate: f64) -> bool {
        match best {
            None => true,
            Some((_, t)) => candidate < t.total_s,
        }
    }

    let passes = if test_mode { 1 } else { 2 };
    let mut serial: Option<(TableStats, LegTiming)> = None;
    let mut parallel: Option<(TableStats, LegTiming)> = None;
    for _ in 0..passes {
        let s = timed_leg(&tech, &config, &audit_config, Jobs::Count(1));
        if improves(&serial, s.1.total_s) {
            serial = Some(s);
        }
        let p = timed_leg(&tech, &config, &audit_config, Jobs::Count(parallel_jobs));
        if improves(&parallel, p.1.total_s) {
            parallel = Some(p);
        }
    }
    let (serial_stats, serial_t) = serial.expect("at least one pass ran");
    let (parallel_stats, parallel_t) = parallel.expect("at least one pass ran");

    // The whole point of the executor: same bytes out, regardless of jobs.
    let serial_table = render_table("Table 1 (two-pin, far-end)", &serial_stats);
    let parallel_table = render_table("Table 1 (two-pin, far-end)", &parallel_stats);
    assert_eq!(
        serial_table, parallel_table,
        "parallel sweep must render the identical table"
    );

    let speedup = serial_t.total_s / parallel_t.total_s;
    println!(
        "sweep_throughput/serial            {:>10.3} s  (1 worker: sim {:.3} + metric {:.3} + audit {:.3} + other {:.3})",
        serial_t.total_s, serial_t.sim_s, serial_t.metric_s, serial_t.audit_s, serial_t.other_s
    );
    println!(
        "sweep_throughput/parallel          {:>10.3} s  ({parallel_jobs} workers: sim {:.3} + metric {:.3} + audit {:.3} + other {:.3})",
        parallel_t.total_s,
        parallel_t.sim_s,
        parallel_t.metric_s,
        parallel_t.audit_s,
        parallel_t.other_s
    );
    println!("sweep_throughput/speedup           {speedup:>10.2} x  (tables byte-identical)");

    if test_mode {
        println!("sweep_throughput: test passed");
        return;
    }
    // Hand-rolled JSON (no serde in the offline workspace); the repo root
    // is two levels above this crate's manifest.
    let json = format!(
        "{{\"cases\":{cases},\"audit_cases\":{audit_cases},\"host_parallelism\":{host},\
         \"serial\":{{\"jobs\":1,\"total_s\":{:.6},\"stages\":{}}},\
         \"parallel\":{{\"jobs\":{parallel_jobs},\"total_s\":{:.6},\"stages\":{}}},\
         \"speedup\":{speedup:.4}}}\n",
        serial_t.total_s,
        stage_json(&serial_t),
        parallel_t.total_s,
        stage_json(&parallel_t),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, json).expect("write BENCH_sweep.json");
    eprintln!("wrote {path}");
}
