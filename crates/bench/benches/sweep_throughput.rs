//! End-to-end sweep throughput: baseline vs fast golden tier, serial vs
//! parallel, with a per-stage breakdown.
//!
//! Runs the same seeded two-pin far-end sweep plus a differential audit
//! pass three ways and writes timings to `BENCH_sweep.json` at the repo
//! root:
//!
//! * **baseline** — fixed-step transient golden, analytic tier off,
//!   one worker: the reference slow path;
//! * **serial** — adaptive stepping + analytic fast tier (`auto`),
//!   one worker: the production fast path;
//! * **parallel** — the fast path on `max(host parallelism, 2)` workers.
//!
//! ```json
//! {"cases":500,"audit_cases":100,"host_parallelism":8,
//!  "baseline":{"jobs":1,"sim":"fixed","fast_tier":"off","total_s":5.2,
//!              "stages":{"sim_s":4.1,"metric_s":0.1,"audit_s":1.0,"other_s":0.1}},
//!  "serial":{"jobs":1,"sim":"adaptive","fast_tier":"auto","total_s":1.9,"stages":{...}},
//!  "parallel":{"jobs":8,"sim":"adaptive","fast_tier":"auto","total_s":0.6,"stages":{...}},
//!  "fast_tier":{"hits":311,"fallback":189,"steps_saved":1513210},
//!  "speedup":3.1,"fast_speedup":2.7}
//! ```
//!
//! `speedup` is serial/parallel on the fast path; `fast_speedup` is
//! baseline/serial — the win from the fast golden tier alone, at equal
//! worker count. The serial and parallel fast legs must render
//! byte-identical tables (the executor's determinism contract); the
//! baseline leg's table legitimately differs in golden-derived digits.
//! On a single-core host (`host_parallelism == 1`) the parallel leg
//! still runs for the byte-identity assert, but the export replaces the
//! `parallel` and `speedup` fields with `"parallel_skipped":true` — a
//! one-worker-vs-one-worker ratio is scheduling noise, not a speedup
//! (the same treatment `screen_throughput` applies). `fast_speedup`
//! compares two one-worker legs and stays meaningful everywhere.
//!
//! Stage figures come from the observability span histograms: `sim_s`
//! is the summed time under `sim.golden` spans (including analytic-tier
//! measurements), `metric_s` the remaining `eval.case` time plus the
//! serial `eval.metrics` batch-finalize stage, `audit_s` the audit pass
//! wall clock, `other_s` the unattributed remainder. Span sums are
//! **per-thread** totals, so parallel legs divide them by the worker
//! count before reporting — the executor stripes cases evenly, making
//! sum/jobs a faithful wall-clock estimate (previous revisions reported
//! the raw sum, which made a 2-worker leg look 2x slower per stage).
//!
//! Each leg runs twice interleaved and the minimum is kept: run-to-run
//! noise on a shared host is ~5% (see EXPERIMENTS.md), which would
//! otherwise dominate the comparison.
//!
//! Case count defaults to 500 and is overridable with the
//! `XTALK_BENCH_CASES` env var; `-- --test` runs a tiny smoke sweep and
//! skips the JSON export. `--sim fixed|adaptive` and
//! `--fast-tier off|on|auto` override the fast legs' configuration (the
//! CI smoke passes `--sim adaptive` explicitly).

use std::time::Instant;
use xtalk_audit::{run_audit, AuditConfig};
use xtalk_eval::{render_table, run_two_pin_table_jobs, TableStats};
use xtalk_exec::Jobs;
use xtalk_sim::{set_fast_tier_override, set_sim_mode_override, FastTier, SimMode};
use xtalk_tech::sweep::SweepConfig;
use xtalk_tech::{CouplingDirection, Technology};

/// One leg's timings (seconds) and fast-tier counter deltas.
#[derive(Clone, Copy)]
struct LegTiming {
    total_s: f64,
    sim_s: f64,
    metric_s: f64,
    audit_s: f64,
    other_s: f64,
    fast_hits: u64,
    fast_fallback: u64,
    steps_saved: u64,
}

/// Summed nanoseconds under the named span histogram so far.
fn span_sum_ns(name: &str) -> u64 {
    xtalk_obs::snapshot()
        .histogram(name)
        .map_or(0, |h| h.sum)
}

/// Current value of a (possibly performance-class) counter.
fn counter(name: &str) -> u64 {
    xtalk_obs::snapshot().counter(name).unwrap_or(0)
}

fn timed_leg(
    tech: &Technology,
    config: &SweepConfig,
    audit_config: &AuditConfig,
    jobs: usize,
    sim: SimMode,
    tier: FastTier,
) -> (TableStats, LegTiming) {
    set_sim_mode_override(sim);
    set_fast_tier_override(tier);

    let sim_ns0 = span_sum_ns("span.sim.golden.ns");
    let case_ns0 = span_sum_ns("span.eval.case.ns");
    let metrics_ns0 = span_sum_ns("span.eval.metrics.ns");
    let hits0 = counter("sim.fast_tier.hits");
    let fallback0 = counter("sim.fast_tier.fallback");
    let saved0 = counter("sim.adaptive.steps_saved");

    let sweep_start = Instant::now();
    let stats = run_two_pin_table_jobs(
        tech,
        CouplingDirection::FarEnd,
        config,
        false,
        Jobs::Count(jobs),
    );
    let sweep_s = sweep_start.elapsed().as_secs_f64();

    // Span sums are per-thread; divide by the worker count for a
    // wall-clock estimate (cases are striped evenly across workers).
    let sim_s = (span_sum_ns("span.sim.golden.ns") - sim_ns0) as f64 * 1e-9 / jobs as f64;
    let case_s = (span_sum_ns("span.eval.case.ns") - case_ns0) as f64 * 1e-9 / jobs as f64;
    // The batch metric finalize stage runs serially on the coordinator.
    let metrics_s = (span_sum_ns("span.eval.metrics.ns") - metrics_ns0) as f64 * 1e-9;

    let audit_start = Instant::now();
    let report = run_audit(&AuditConfig {
        jobs: Jobs::Count(jobs),
        ..*audit_config
    });
    let audit_s = audit_start.elapsed().as_secs_f64();
    assert!(
        report.checked + report.skipped.len() > 0,
        "audit pass must evaluate cases"
    );

    (
        stats,
        LegTiming {
            total_s: sweep_s + audit_s,
            sim_s,
            metric_s: (case_s - sim_s).max(0.0) + metrics_s,
            audit_s,
            other_s: (sweep_s - case_s - metrics_s).max(0.0),
            fast_hits: counter("sim.fast_tier.hits") - hits0,
            fast_fallback: counter("sim.fast_tier.fallback") - fallback0,
            steps_saved: counter("sim.adaptive.steps_saved") - saved0,
        },
    )
}

fn stage_json(t: &LegTiming) -> String {
    format!(
        "{{\"sim_s\":{:.6},\"metric_s\":{:.6},\"audit_s\":{:.6},\"other_s\":{:.6}}}",
        t.sim_s, t.metric_s, t.audit_s, t.other_s
    )
}

fn leg_json(t: &LegTiming, jobs: usize, sim: SimMode, tier: FastTier) -> String {
    format!(
        "{{\"jobs\":{jobs},\"sim\":\"{}\",\"fast_tier\":\"{}\",\"total_s\":{:.6},\"stages\":{}}}",
        sim.as_str(),
        tier.as_str(),
        t.total_s,
        stage_json(t)
    )
}

fn print_leg(label: &str, t: &LegTiming, workers: &str) {
    println!(
        "sweep_throughput/{label:<14} {:>10.3} s  ({workers}: sim {:.3} + metric {:.3} + audit {:.3} + other {:.3})",
        t.total_s, t.sim_s, t.metric_s, t.audit_s, t.other_s
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let test_mode = argv.iter().any(|a| a == "--test");
    let flag = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1))
            .map(String::as_str)
    };
    // Fast-leg configuration; the baseline leg is always fixed/off.
    let fast_sim = flag("--sim")
        .map(|v| SimMode::parse(v).expect("--sim fixed|adaptive"))
        .unwrap_or(SimMode::Adaptive);
    let fast_tier = flag("--fast-tier")
        .map(|v| FastTier::parse(v).expect("--fast-tier off|on|auto"))
        .unwrap_or(FastTier::Auto);

    let cases = std::env::var("XTALK_BENCH_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if test_mode { 8 } else { 500 });
    let config = SweepConfig {
        cases,
        ..SweepConfig::default()
    };
    let audit_cases = (cases / 5).max(4);
    let audit_config = AuditConfig {
        cases: audit_cases,
        ..AuditConfig::default()
    };
    let tech = Technology::p25();

    // Stage attribution needs the span histograms live.
    xtalk_obs::enable_metrics();

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    // The parallel leg always exercises the threaded path: at least two
    // workers, even when the host grants only one core.
    let parallel_jobs = host.max(2);

    eprintln!(
        "sweep_throughput: {cases} sweep + {audit_cases} audit cases, \
         baseline fixed/off vs {}/{} on 1 and {parallel_jobs} worker(s) \
         (host parallelism {host})",
        fast_sim.as_str(),
        fast_tier.as_str()
    );

    fn improves(best: &Option<(TableStats, LegTiming)>, candidate: f64) -> bool {
        match best {
            None => true,
            Some((_, t)) => candidate < t.total_s,
        }
    }

    let passes = if test_mode { 1 } else { 2 };
    let mut baseline: Option<(TableStats, LegTiming)> = None;
    let mut serial: Option<(TableStats, LegTiming)> = None;
    let mut parallel: Option<(TableStats, LegTiming)> = None;
    for _ in 0..passes {
        let b = timed_leg(&tech, &config, &audit_config, 1, SimMode::Fixed, FastTier::Off);
        if improves(&baseline, b.1.total_s) {
            baseline = Some(b);
        }
        let s = timed_leg(&tech, &config, &audit_config, 1, fast_sim, fast_tier);
        if improves(&serial, s.1.total_s) {
            serial = Some(s);
        }
        let p = timed_leg(
            &tech,
            &config,
            &audit_config,
            parallel_jobs,
            fast_sim,
            fast_tier,
        );
        if improves(&parallel, p.1.total_s) {
            parallel = Some(p);
        }
    }
    let (baseline_stats, baseline_t) = baseline.expect("at least one pass ran");
    let (serial_stats, serial_t) = serial.expect("at least one pass ran");
    let (parallel_stats, parallel_t) = parallel.expect("at least one pass ran");

    // The whole point of the executor: same bytes out, regardless of
    // jobs. The baseline table is compared structurally only — its
    // golden digits differ from the fast tiers' by design.
    let serial_table = render_table("Table 1 (two-pin, far-end)", &serial_stats);
    let parallel_table = render_table("Table 1 (two-pin, far-end)", &parallel_stats);
    assert_eq!(
        serial_table, parallel_table,
        "parallel sweep must render the identical table"
    );
    let baseline_table = render_table("Table 1 (two-pin, far-end)", &baseline_stats);
    assert_eq!(
        baseline_table.lines().count(),
        serial_table.lines().count(),
        "fast-tier sweep must evaluate the same case population"
    );

    // On a single-core host the "parallel" leg is the same one worker
    // plus scheduling overhead; a sub-1.0 "speedup" from it is noise,
    // not measurement, so the export annotates the skip instead (the
    // same treatment screen_throughput applies). The leg still runs
    // above: the byte-identity assert is about determinism, not speed.
    let parallel_meaningful = host > 1;
    let speedup = serial_t.total_s / parallel_t.total_s;
    let fast_speedup = baseline_t.total_s / serial_t.total_s;
    print_leg("baseline", &baseline_t, "1 worker, fixed/off");
    print_leg(
        "serial",
        &serial_t,
        &format!("1 worker, {}/{}", fast_sim.as_str(), fast_tier.as_str()),
    );
    print_leg("parallel", &parallel_t, &format!("{parallel_jobs} workers"));
    println!(
        "sweep_throughput/fast_tier          hits {} fallback {} steps_saved {}",
        serial_t.fast_hits, serial_t.fast_fallback, serial_t.steps_saved
    );
    if parallel_meaningful {
        println!("sweep_throughput/speedup           {speedup:>10.2} x  (tables byte-identical)");
    } else {
        println!(
            "sweep_throughput/speedup           skipped (host parallelism 1; tables byte-identical)"
        );
    }
    println!("sweep_throughput/fast_speedup      {fast_speedup:>10.2} x  (vs fixed/off baseline)");

    if test_mode {
        println!("sweep_throughput: test passed");
        return;
    }
    let parallel_json = if parallel_meaningful {
        format!(
            "\"parallel\":{},\"speedup\":{speedup:.4},",
            leg_json(&parallel_t, parallel_jobs, fast_sim, fast_tier)
        )
    } else {
        "\"parallel_skipped\":true,".to_owned()
    };
    // Hand-rolled JSON (no serde in the offline workspace); the repo root
    // is two levels above this crate's manifest.
    let json = format!(
        "{{\"cases\":{cases},\"audit_cases\":{audit_cases},\"host_parallelism\":{host},\
         \"baseline\":{},\
         \"serial\":{},\
         {parallel_json}\
         \"fast_tier\":{{\"hits\":{},\"fallback\":{},\"steps_saved\":{}}},\
         \"fast_speedup\":{fast_speedup:.4}}}\n",
        leg_json(&baseline_t, 1, SimMode::Fixed, FastTier::Off),
        leg_json(&serial_t, 1, fast_sim, fast_tier),
        serial_t.fast_hits,
        serial_t.fast_fallback,
        serial_t.steps_saved,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, json).expect("write BENCH_sweep.json");
    eprintln!("wrote {path}");
}
