//! End-to-end sweep throughput: serial vs parallel Table-1 evaluation.
//!
//! Runs the same seeded two-pin far-end sweep twice — once pinned to one
//! worker (the serial reference path) and once on the auto-detected
//! worker count — asserts the rendered tables are byte-identical, and
//! writes the timings to `BENCH_sweep.json` at the repo root:
//!
//! ```json
//! {"cases":500,"jobs":8,"serial_s":12.3,"parallel_s":2.9,"speedup":4.24}
//! ```
//!
//! Case count defaults to 500 and is overridable with the
//! `XTALK_BENCH_CASES` env var; `-- --test` runs a tiny smoke sweep and
//! skips the JSON export.

use std::time::Instant;
use xtalk_eval::{render_table, run_two_pin_table_jobs, TableStats};
use xtalk_exec::Jobs;
use xtalk_tech::sweep::SweepConfig;
use xtalk_tech::{CouplingDirection, Technology};

fn timed_run(tech: &Technology, config: &SweepConfig, jobs: Jobs) -> (TableStats, f64) {
    let start = Instant::now();
    let stats = run_two_pin_table_jobs(tech, CouplingDirection::FarEnd, config, false, jobs);
    (stats, start.elapsed().as_secs_f64())
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let cases = std::env::var("XTALK_BENCH_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if test_mode { 8 } else { 500 });
    let config = SweepConfig {
        cases,
        ..SweepConfig::default()
    };
    let tech = Technology::p25();
    let jobs = Jobs::Auto.resolve();

    eprintln!("sweep_throughput: {cases} cases, serial then {jobs} worker(s)");
    let (serial_stats, serial_s) = timed_run(&tech, &config, Jobs::Count(1));
    let (parallel_stats, parallel_s) = timed_run(&tech, &config, Jobs::Auto);

    // The whole point of the executor: same bytes out, regardless of jobs.
    let serial_table = render_table("Table 1 (two-pin, far-end)", &serial_stats);
    let parallel_table = render_table("Table 1 (two-pin, far-end)", &parallel_stats);
    assert_eq!(
        serial_table, parallel_table,
        "parallel sweep must render the identical table"
    );

    let speedup = serial_s / parallel_s;
    println!(
        "sweep_throughput/serial            {serial_s:>10.3} s  ({cases} cases, 1 worker)"
    );
    println!(
        "sweep_throughput/parallel          {parallel_s:>10.3} s  ({cases} cases, {jobs} workers)"
    );
    println!("sweep_throughput/speedup           {speedup:>10.2} x  (tables byte-identical)");

    if test_mode {
        println!("sweep_throughput: test passed");
        return;
    }
    // Hand-rolled JSON (no serde in the offline workspace); the repo root
    // is two levels above this crate's manifest.
    let json = format!(
        "{{\"cases\":{cases},\"jobs\":{jobs},\"serial_s\":{serial_s:.6},\
         \"parallel_s\":{parallel_s:.6},\"speedup\":{speedup:.4}}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, json).expect("write BENCH_sweep.json");
    eprintln!("wrote {path}");
}
