//! Regenerates the Table 3 pipeline (coupled RC trees) at bench scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xtalk_bench::BENCH_CASES;
use xtalk_eval::run_tree_table;
use xtalk_tech::sweep::SweepConfig;
use xtalk_tech::Technology;

fn bench_table3(c: &mut Criterion) {
    let tech = Technology::p25();
    let config = SweepConfig {
        cases: BENCH_CASES,
        ..SweepConfig::default()
    };
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("tree_far_end_pipeline", |b| {
        b.iter(|| {
            let stats = run_tree_table(&tech, &config, false);
            assert!(stats.scored() > 0);
            black_box(stats)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
