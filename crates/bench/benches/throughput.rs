//! The headline cost claim: the closed-form metrics are cheap enough for
//! optimization inner loops.
//!
//! Times the three stages separately on the same reference circuit:
//!
//! 1. `metric_formulas` — eqs. (30)–(36)/(48)–(53) alone, from
//!    precomputed moments (what a router's inner loop re-evaluates after
//!    an incremental moment update): tens of nanoseconds;
//! 2. `moments_plus_metric` — the full analysis including the MNA moment
//!    solve: microseconds;
//! 3. `transient_simulation` — the golden simulation the metrics replace:
//!    milliseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xtalk_bench::reference_two_pin;
use xtalk_core::{MetricKind, MetricOne, MetricTwo, NoiseAnalyzer};
use xtalk_sim::{SimOptions, TransientSim};

fn bench_throughput(c: &mut Criterion) {
    let (network, aggressor, input) = reference_two_pin();
    let analyzer = NoiseAnalyzer::new(&network).expect("analyzer builds");
    let moments = analyzer
        .output_moments(aggressor, &input)
        .expect("moments exist");
    let tr = input.effective_rise_time();

    let mut group = c.benchmark_group("throughput");

    group.bench_function("metric_formulas/new_I", |b| {
        b.iter(|| MetricOne::estimate_auto(black_box(&moments), black_box(tr)).unwrap())
    });
    group.bench_function("metric_formulas/new_II", |b| {
        let metric = MetricTwo::default();
        b.iter(|| metric.estimate_auto(black_box(&moments), black_box(tr)).unwrap())
    });
    group.bench_function("metric_formulas/bounds", |b| {
        b.iter(|| MetricOne::bounds(black_box(&moments)).unwrap())
    });

    group.bench_function("moments_plus_metric/new_II", |b| {
        b.iter(|| {
            analyzer
                .analyze(black_box(aggressor), black_box(&input), MetricKind::Two)
                .unwrap()
        })
    });
    group.bench_function("moments_plus_metric/full_setup", |b| {
        // Including the one-off MNA factorization (per-net cost in a flow).
        b.iter(|| {
            let a = NoiseAnalyzer::new(black_box(&network)).unwrap();
            a.analyze(aggressor, &input, MetricKind::Two).unwrap()
        })
    });
    group.bench_function("moments_plus_metric/closed_form_frontend", |b| {
        // The paper's zero-solve pipeline: tree formulas a1/b1/b2 only.
        b.iter(|| {
            analyzer
                .analyze_closed_form(black_box(aggressor), black_box(&input), MetricKind::Two)
                .unwrap()
        })
    });

    // Engine ablation: dense O(n³) factorization vs the O(n) tree solver.
    group.bench_function("moment_engines/dense", |b| {
        let engine = xtalk_moments::MomentEngine::new(&network).unwrap();
        b.iter(|| {
            engine
                .transfer_taylor(black_box(aggressor), network.victim_output(), 4)
                .unwrap()
        })
    });
    group.bench_function("moment_engines/tree_linear", |b| {
        let engine = xtalk_moments::TreeMomentEngine::new(&network);
        b.iter(|| {
            engine
                .transfer_taylor(black_box(aggressor), network.victim_output(), 4)
                .unwrap()
        })
    });

    // Ablation: the same analysis on a TICER-reduced network.
    let threshold = xtalk_moments::tree::open_circuit_b1(&network) * 1e-3;
    let reduced = xtalk_circuit::reduce::reduce_quick_nodes(&network, threshold)
        .expect("reduction succeeds");
    let red_agg = reduced.aggressor_nets().next().expect("aggressor").0;
    group.bench_function("moments_plus_metric/after_reduction", |b| {
        b.iter(|| {
            let a = NoiseAnalyzer::new(black_box(&reduced)).unwrap();
            a.analyze(red_agg, &input, MetricKind::Two).unwrap()
        })
    });

    group.sample_size(10);
    group.bench_function("transient_simulation/golden", |b| {
        let sim = TransientSim::new(&network).unwrap();
        let opts = SimOptions::auto(&network, &[(aggressor, input)]);
        b.iter(|| sim.run(black_box(&[(aggressor, input)]), &opts).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
