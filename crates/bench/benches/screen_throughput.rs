//! Full-chip screening throughput: nets per second on a PEX-shaped deck.
//!
//! Generates a 2048-net extracted-style bus array (128 buses × 16 bits
//! × 4 segments, folded coupling cards), screens it serially and in
//! parallel through [`xtalk_eval::screen::screen_deck`], and writes
//! `BENCH_screen.json` at the repo root:
//!
//! ```json
//! {"nets":2048,"elements":26624,"clusters":128,"host_parallelism":8,
//!  "serial":{"jobs":1,"total_s":3.1,"nets_per_s":660.6,
//!            "parse_s":0.05,"analyze_s":3.0},
//!  "parallel":{"jobs":8,"total_s":0.5,"nets_per_s":4096.0,
//!              "parse_s":0.05,"analyze_s":0.45},
//!  "screened":1920,"escalated":128,"escalated_fraction":0.0625,
//!  "speedup":6.2,"peak_rss_bytes":123456789}
//! ```
//!
//! The two legs must produce byte-identical ranked JSON (the screening
//! pipeline's determinism contract). On a single-core host
//! (`host_parallelism == 1`) the parallel leg still runs for that
//! assert, but the export replaces the `parallel` and `speedup` fields
//! with `"parallel_skipped":true` — a one-worker-vs-one-worker ratio
//! is noise, not a speedup. `escalated_fraction` demonstrates
//! the paper's thesis at chip scale: only the deliberately weak lanes
//! (1 in 16) pay for transient simulation. `peak_rss_bytes` is the
//! process high-water mark (`VmHWM`, Linux only, 0 elsewhere) — the
//! deck is re-streamed from an in-memory buffer per leg and a
//! whole-deck network is never built, so residency follows the element
//! table plus one island per worker, not the chip.
//!
//! Stage figures come from the span histograms: `parse_s` sums
//! `screen.parse`, `analyze_s` sums `screen.analyze`; the analyze span
//! wraps the parallel region once, so no per-thread division is needed.
//! Each leg runs twice interleaved and the minimum total is kept.
//!
//! The deck size is overridable with `XTALK_BENCH_SCREEN_NETS`
//! (rounded down to a multiple of 16); `-- --test` runs a tiny smoke
//! deck and skips the JSON export.

use std::time::Instant;
use xtalk_eval::screen::{screen_deck, ScreenConfig, ScreenReport};
use xtalk_exec::Jobs;
use xtalk_tech::{PexDeckSpec, Technology};

/// Summed nanoseconds under the named span histogram so far.
fn span_sum_ns(name: &str) -> u64 {
    xtalk_obs::snapshot().histogram(name).map_or(0, |h| h.sum)
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`; 0 where that interface does not exist).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// One screening leg's timings (seconds).
#[derive(Clone, Copy)]
struct LegTiming {
    total_s: f64,
    parse_s: f64,
    analyze_s: f64,
}

fn timed_leg(deck: &str, config: &ScreenConfig, jobs: usize) -> (ScreenReport, LegTiming) {
    let parse0 = span_sum_ns("span.screen.parse.ns");
    let analyze0 = span_sum_ns("span.screen.analyze.ns");
    let start = Instant::now();
    let report = screen_deck(
        deck.as_bytes(),
        &ScreenConfig {
            jobs: Jobs::Count(jobs),
            ..config.clone()
        },
    )
    .expect("screening the generated deck succeeds");
    let total_s = start.elapsed().as_secs_f64();
    let timing = LegTiming {
        total_s,
        parse_s: (span_sum_ns("span.screen.parse.ns") - parse0) as f64 * 1e-9,
        analyze_s: (span_sum_ns("span.screen.analyze.ns") - analyze0) as f64 * 1e-9,
    };
    (report, timing)
}

fn leg_json(t: &LegTiming, jobs: usize, nets: usize) -> String {
    format!(
        "{{\"jobs\":{jobs},\"total_s\":{:.6},\"nets_per_s\":{:.1},\
         \"parse_s\":{:.6},\"analyze_s\":{:.6}}}",
        t.total_s,
        nets as f64 / t.total_s,
        t.parse_s,
        t.analyze_s
    )
}

fn print_leg(label: &str, t: &LegTiming, nets: usize, workers: &str) {
    println!(
        "screen_throughput/{label:<10} {:>10.3} s  {:>9.1} nets/s  ({workers}: parse {:.3} + analyze {:.3})",
        t.total_s,
        nets as f64 / t.total_s,
        t.parse_s,
        t.analyze_s
    );
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let nets = std::env::var("XTALK_BENCH_SCREEN_NETS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(if test_mode { 32 } else { 2048 });
    let buses = (nets / 16).max(1);
    let mut spec = PexDeckSpec::new(buses, 16, 4);
    spec.fold_cards = true;
    let deck = spec.deck_string(&Technology::p25());
    let config = ScreenConfig::default();

    xtalk_obs::enable_metrics();

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let parallel_jobs = host.max(2);
    eprintln!(
        "screen_throughput: {} nets ({buses} buses x 16 bits x 4 segments), \
         {} deck bytes, 1 vs {parallel_jobs} worker(s) (host parallelism {host})",
        spec.net_count(),
        deck.len()
    );

    fn improves(best: &Option<(ScreenReport, LegTiming)>, candidate: f64) -> bool {
        match best {
            None => true,
            Some((_, t)) => candidate < t.total_s,
        }
    }

    let passes = if test_mode { 1 } else { 2 };
    let mut serial: Option<(ScreenReport, LegTiming)> = None;
    let mut parallel: Option<(ScreenReport, LegTiming)> = None;
    for _ in 0..passes {
        let s = timed_leg(&deck, &config, 1);
        if improves(&serial, s.1.total_s) {
            serial = Some(s);
        }
        let p = timed_leg(&deck, &config, parallel_jobs);
        if improves(&parallel, p.1.total_s) {
            parallel = Some(p);
        }
    }
    let (serial_report, serial_t) = serial.expect("at least one pass ran");
    let (parallel_report, parallel_t) = parallel.expect("at least one pass ran");

    // The determinism contract: identical ranked JSON at any jobs value.
    assert_eq!(
        serial_report.to_json(),
        parallel_report.to_json(),
        "parallel screening must produce the identical ranked report"
    );
    let total = serial_report.nets_total;
    assert_eq!(
        serial_report.screened + serial_report.escalated + serial_report.failed,
        total,
        "every net must be accounted for"
    );

    let escalated_fraction = serial_report.escalated as f64 / total as f64;
    // On a single-core host the "parallel" leg is the same one worker
    // plus scheduling overhead; a speedup figure from it is noise, not
    // measurement, so the export annotates the skip instead of
    // committing a bogus sub-1.0 ratio. The leg still runs above: the
    // byte-identity assert is about determinism, not speed.
    let parallel_meaningful = host > 1;
    let speedup = serial_t.total_s / parallel_t.total_s;
    let rss = peak_rss_bytes();
    print_leg("serial", &serial_t, total, "1 worker");
    print_leg("parallel", &parallel_t, total, &format!("{parallel_jobs} workers"));
    println!(
        "screen_throughput/triage       {} screened, {} escalated ({:.2}% of nets), {} clusters",
        serial_report.screened,
        serial_report.escalated,
        escalated_fraction * 100.0,
        serial_report.clusters
    );
    if parallel_meaningful {
        println!("screen_throughput/speedup      {speedup:>10.2} x  (reports byte-identical)");
    } else {
        println!(
            "screen_throughput/speedup      skipped (host parallelism 1; reports byte-identical)"
        );
    }
    println!("screen_throughput/peak_rss     {:>10.1} MiB", rss as f64 / (1024.0 * 1024.0));

    if test_mode {
        println!("screen_throughput: test passed");
        return;
    }
    let parallel_json = if parallel_meaningful {
        format!(
            "\"parallel\":{},\"speedup\":{speedup:.4},",
            leg_json(&parallel_t, parallel_jobs, total)
        )
    } else {
        "\"parallel_skipped\":true,".to_owned()
    };
    let json = format!(
        "{{\"nets\":{total},\"elements\":{},\"clusters\":{},\"host_parallelism\":{host},\
         \"serial\":{},\
         {parallel_json}\
         \"screened\":{},\"escalated\":{},\"escalated_fraction\":{escalated_fraction:.6},\
         \"peak_rss_bytes\":{rss}}}\n",
        serial_report.elements,
        serial_report.clusters,
        leg_json(&serial_t, 1, total),
        serial_report.screened,
        serial_report.escalated,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_screen.json");
    std::fs::write(path, json).expect("write BENCH_screen.json");
    eprintln!("wrote {path}");
}
