//! Regenerates the Table 1 pipeline (two-pin, far-end) at bench scale and
//! times it end to end: workload generation → golden simulation → all six
//! metrics → error statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xtalk_bench::BENCH_CASES;
use xtalk_eval::run_two_pin_table;
use xtalk_tech::sweep::SweepConfig;
use xtalk_tech::{CouplingDirection, Technology};

fn bench_table1(c: &mut Criterion) {
    let tech = Technology::p25();
    let config = SweepConfig {
        cases: BENCH_CASES,
        ..SweepConfig::default()
    };
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("two_pin_far_end_pipeline", |b| {
        b.iter(|| {
            let stats = run_two_pin_table(&tech, CouplingDirection::FarEnd, &config, false);
            assert!(stats.scored() > 0);
            black_box(stats)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
