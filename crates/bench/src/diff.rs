//! Benchmark trajectory diffing: `BENCH_*.json` old vs new with
//! per-field regression thresholds.
//!
//! The repo commits one JSON artifact per benchmark (`BENCH_sweep.json`,
//! `BENCH_serve.json`, `BENCH_screen.json`); without a comparator, a
//! perf regression lands silently in a diff nobody reads. This module
//! flattens both files to dotted numeric paths (`closed_loop.p99_us`,
//! `serial.nets_per_s`), classifies each path by *direction* — whether
//! bigger is better (throughputs, speedups), worse (latencies, memory),
//! or merely descriptive (case counts, worker counts) — and gates only
//! the directional ones against a relative threshold. Fields present in
//! only one file are reported but never gated, so schema evolution (a
//! renamed leg, a new stage) does not block a merge.
//!
//! The CLI front-end is `xtalk bench-diff OLD NEW`; regressions surface
//! through the audit-violation exit code (3) so CI can gate on it.

use xtalk_serve::json::{self, Value};

/// Whether a larger value of a field is an improvement, a regression,
/// or neither.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: `req_per_s`, `nets_per_s`, `speedup`.
    HigherBetter,
    /// Cost-like: times (`*_s`, `*_us`, `*_ms`, `*_ns`), quantiles,
    /// memory.
    LowerBetter,
    /// Descriptive (case counts, jobs, host parallelism): compared for
    /// the report, never gated.
    Neutral,
}

/// Classifies a dotted path by its final segment's naming convention.
#[must_use]
pub fn direction(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf.ends_with("per_s") || leaf.ends_with("speedup") {
        return Direction::HigherBetter;
    }
    if leaf == "peak_rss_bytes"
        || ["_s", "_us", "_ms", "_ns"].iter().any(|s| leaf.ends_with(s))
    {
        return Direction::LowerBetter;
    }
    Direction::Neutral
}

/// One compared field.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// Dotted path into the JSON (`closed_loop.p99_us`).
    pub path: String,
    /// Value in the old (baseline) file.
    pub old: f64,
    /// Value in the new (candidate) file.
    pub new: f64,
    /// Relative change in percent, positive when `new > old`.
    pub change_pct: f64,
    /// Gating direction for this path.
    pub direction: Direction,
    /// `true` when the change moves in the bad direction past the
    /// threshold.
    pub regression: bool,
}

/// Comparison tuning.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Relative regression tolerance in percent (default 10): a
    /// lower-better field may grow, and a higher-better field shrink,
    /// by up to this much before it counts as a regression.
    pub max_regress_pct: f64,
    /// When non-empty, only paths containing one of these substrings
    /// are gated (all are still reported).
    pub fields: Vec<String>,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            max_regress_pct: 10.0,
            fields: Vec::new(),
        }
    }
}

/// The full comparison result.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Fields present in both files, in old-file order.
    pub entries: Vec<DiffEntry>,
    /// Paths present in exactly one file (reported, never gated).
    pub only_old: Vec<String>,
    /// Paths present only in the new file.
    pub only_new: Vec<String>,
    /// Threshold the gating used (echoed into the rendering).
    pub max_regress_pct: f64,
}

impl DiffReport {
    /// Number of regressed fields.
    #[must_use]
    pub fn regressions(&self) -> usize {
        self.entries.iter().filter(|e| e.regression).count()
    }

    /// Human-readable table: one line per field, regressions flagged,
    /// schema drift listed at the end.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let width = self
            .entries
            .iter()
            .map(|e| e.path.len())
            .max()
            .unwrap_or(0)
            .max(12);
        let _ = writeln!(
            out,
            "bench-diff (threshold {:.1}%): {} field(s), {} regression(s)",
            self.max_regress_pct,
            self.entries.len(),
            self.regressions()
        );
        for e in &self.entries {
            let dir = match e.direction {
                Direction::HigherBetter => "↑better",
                Direction::LowerBetter => "↓better",
                Direction::Neutral => "  info ",
            };
            let flag = if e.regression {
                "  REGRESSION"
            } else if e.direction != Direction::Neutral
                && e.change_pct.abs() > self.max_regress_pct
            {
                "  improved"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {:<width$}  {dir}  {:>14.4} -> {:>14.4}  {:>+8.2}%{flag}",
                e.path, e.old, e.new, e.change_pct
            );
        }
        for p in &self.only_old {
            let _ = writeln!(out, "  {p}  only in baseline (not gated)");
        }
        for p in &self.only_new {
            let _ = writeln!(out, "  {p}  only in candidate (not gated)");
        }
        out
    }
}

/// Collects every numeric leaf of `v` as a `(dotted_path, value)` pair,
/// arrays indexed as `path[i]`.
fn flatten(prefix: &str, v: &Value, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Num(n) => out.push((prefix.to_string(), *n)),
        Value::Obj(members) => {
            for (k, child) in members {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&path, child, out);
            }
        }
        Value::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), child, out);
            }
        }
        Value::Null | Value::Bool(_) | Value::Str(_) => {}
    }
}

/// Diffs two benchmark JSON documents (file contents, not paths).
///
/// # Errors
///
/// Returns a message when either document fails to parse as JSON.
pub fn diff_benchmarks(
    old_json: &str,
    new_json: &str,
    config: &DiffConfig,
) -> Result<DiffReport, String> {
    let old = json::parse(old_json).map_err(|e| format!("baseline: {e}"))?;
    let new = json::parse(new_json).map_err(|e| format!("candidate: {e}"))?;
    let mut old_fields = Vec::new();
    let mut new_fields = Vec::new();
    flatten("", &old, &mut old_fields);
    flatten("", &new, &mut new_fields);

    let gated = |path: &str| {
        config.fields.is_empty() || config.fields.iter().any(|f| path.contains(f.as_str()))
    };

    let mut entries = Vec::new();
    let mut only_old = Vec::new();
    for (path, old_v) in &old_fields {
        let Some((_, new_v)) = new_fields.iter().find(|(p, _)| p == path) else {
            only_old.push(path.clone());
            continue;
        };
        let direction = direction(path);
        let change_pct = if *old_v == 0.0 {
            if *new_v == 0.0 { 0.0 } else { f64::INFINITY * new_v.signum() }
        } else {
            (new_v - old_v) / old_v.abs() * 100.0
        };
        // A zero baseline cannot anchor a relative gate; report only.
        let regression = old_v.abs() > 0.0
            && gated(path)
            && match direction {
                Direction::HigherBetter => change_pct < -config.max_regress_pct,
                Direction::LowerBetter => change_pct > config.max_regress_pct,
                Direction::Neutral => false,
            };
        entries.push(DiffEntry {
            path: path.clone(),
            old: *old_v,
            new: *new_v,
            change_pct,
            direction,
            regression,
        });
    }
    let only_new = new_fields
        .iter()
        .filter(|(p, _)| !old_fields.iter().any(|(op, _)| op == p))
        .map(|(p, _)| p.clone())
        .collect();
    Ok(DiffReport {
        entries,
        only_old,
        only_new,
        max_regress_pct: config.max_regress_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = r#"{"requests":500,"jobs":2,
        "closed_loop":{"mean_us":133.7,"p50_us":114.2,"p99_us":865.5},
        "pipelined":{"total_s":0.0548,"req_per_s":9124.8}}"#;

    #[test]
    fn identical_files_have_no_regressions() {
        let r = diff_benchmarks(OLD, OLD, &DiffConfig::default()).expect("parses");
        assert_eq!(r.regressions(), 0);
        assert_eq!(r.entries.len(), 7);
        assert!(r.only_old.is_empty() && r.only_new.is_empty());
    }

    #[test]
    fn direction_classification_follows_naming() {
        assert_eq!(direction("pipelined.req_per_s"), Direction::HigherBetter);
        assert_eq!(direction("serial.nets_per_s"), Direction::HigherBetter);
        assert_eq!(direction("speedup"), Direction::HigherBetter);
        assert_eq!(direction("fast_speedup"), Direction::HigherBetter);
        assert_eq!(direction("closed_loop.p99_us"), Direction::LowerBetter);
        assert_eq!(direction("pipelined.total_s"), Direction::LowerBetter);
        assert_eq!(direction("peak_rss_bytes"), Direction::LowerBetter);
        assert_eq!(direction("jobs"), Direction::Neutral);
        assert_eq!(direction("requests"), Direction::Neutral);
        assert_eq!(direction("host_parallelism"), Direction::Neutral);
    }

    #[test]
    fn latency_growth_past_threshold_regresses() {
        let new = OLD.replace("865.5", "1200.0"); // p99 +38.6%
        let r = diff_benchmarks(OLD, &new, &DiffConfig::default()).expect("parses");
        assert_eq!(r.regressions(), 1);
        let bad = r.entries.iter().find(|e| e.regression).unwrap();
        assert_eq!(bad.path, "closed_loop.p99_us");
        assert!(r.render().contains("REGRESSION"));
    }

    #[test]
    fn throughput_drop_past_threshold_regresses_but_rise_does_not() {
        let slower = OLD.replace("9124.8", "5000.0"); // -45%
        let r = diff_benchmarks(OLD, &slower, &DiffConfig::default()).expect("parses");
        assert_eq!(r.regressions(), 1);
        let faster = OLD.replace("9124.8", "15000.0");
        let r = diff_benchmarks(OLD, &faster, &DiffConfig::default()).expect("parses");
        assert_eq!(r.regressions(), 0, "improvements never gate");
    }

    #[test]
    fn within_threshold_noise_passes() {
        let new = OLD.replace("865.5", "900.0"); // p99 +4%
        let r = diff_benchmarks(OLD, &new, &DiffConfig::default()).expect("parses");
        assert_eq!(r.regressions(), 0);
    }

    #[test]
    fn custom_threshold_and_field_filter_apply() {
        let new = OLD.replace("865.5", "1200.0").replace("0.0548", "0.08");
        // Gate only p99: the total_s regression is reported, not gated.
        let config = DiffConfig {
            max_regress_pct: 10.0,
            fields: vec!["p99".into()],
        };
        let r = diff_benchmarks(OLD, &new, &config).expect("parses");
        assert_eq!(r.regressions(), 1);
        // A 50% threshold tolerates the +38.6% p99 growth.
        let config = DiffConfig {
            max_regress_pct: 50.0,
            fields: Vec::new(),
        };
        let r = diff_benchmarks(OLD, &new, &config).expect("parses");
        assert_eq!(r.regressions(), 0);
    }

    #[test]
    fn missing_fields_are_reported_not_gated() {
        let new = r#"{"requests":500,"jobs":2,
            "closed_loop":{"mean_us":133.7,"p50_us":114.2,"p99_us":865.5},
            "pipelined":{"req_per_s":9124.8},"parallel_skipped":true}"#;
        let r = diff_benchmarks(OLD, new, &DiffConfig::default()).expect("parses");
        assert_eq!(r.regressions(), 0);
        assert_eq!(r.only_old, vec!["pipelined.total_s".to_string()]);
        assert!(r.only_new.is_empty(), "booleans are not numeric leaves");
        assert!(r.render().contains("only in baseline"));
    }

    #[test]
    fn zero_baseline_never_gates() {
        let old = r#"{"total_s":0.0}"#;
        let new = r#"{"total_s":5.0}"#;
        let r = diff_benchmarks(old, new, &DiffConfig::default()).expect("parses");
        assert_eq!(r.regressions(), 0);
        assert!(r.entries[0].change_pct.is_infinite());
    }

    #[test]
    fn bad_json_is_a_structured_error() {
        assert!(diff_benchmarks("{", OLD, &DiffConfig::default())
            .unwrap_err()
            .contains("baseline"));
        assert!(diff_benchmarks(OLD, "nope", &DiffConfig::default())
            .unwrap_err()
            .contains("candidate"));
    }
}
