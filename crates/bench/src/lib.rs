//! Shared fixtures for the Criterion benchmarks.
//!
//! Each bench target regenerates one of the paper's evaluation artifacts
//! at a small, fixed case count (the `xtalk-eval` binaries produce the
//! full-volume numbers; the benches time the pipelines and keep them
//! exercised in CI).

use xtalk_circuit::{signal::InputSignal, NetId, Network};
use xtalk_tech::{CouplingDirection, Technology, TwoPinSpec};

pub mod diff;

/// A mid-range two-pin coupling circuit used by the throughput benches.
pub fn reference_two_pin() -> (Network, NetId, InputSignal) {
    let tech = Technology::p25();
    let spec = TwoPinSpec {
        l1: 0.3e-3,
        l2: 0.8e-3,
        l3: 1.5e-3,
        direction: CouplingDirection::FarEnd,
        victim_driver: 200.0,
        aggressor_driver: 150.0,
        victim_load: 20e-15,
        aggressor_load: 20e-15,
        segments_per_mm: 8,
    };
    let (network, aggressor) = spec.build(&tech).expect("reference spec is valid");
    (network, aggressor, InputSignal::rising_ramp(0.0, 100e-12))
}

/// Case count for the table benches: large enough to exercise every code
/// path (corners included), small enough for a benchable iteration.
pub const BENCH_CASES: usize = 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_circuit_builds() {
        let (net, agg, input) = reference_two_pin();
        assert!(net.node_count() > 10);
        assert!(net.couplings_between(agg, net.victim()).count() > 0);
        assert!(input.transition() > 0.0);
    }
}
