//! Property-based tests for the closed-form metrics.
//!
//! The central properties:
//!
//! 1. **Template round trip** — feeding a template's own moments to the
//!    matching metric reconstructs the template parameters exactly
//!    (eqs. 30–36 and 48–53 invert eqs. 21–23 and 26–28);
//! 2. **Bounds** — metric I estimates stay inside eqs. (37)–(40) for every
//!    shape ratio;
//! 3. **Invariants** — `tp = t0 + t1`, `wn = t1 + t2`, area preservation.

use proptest::prelude::*;
use xtalk_circuit::signal::InputSignal;
use xtalk_circuit::{NetRole, NetworkBuilder};
use xtalk_core::template::{LinExpTemplate, PwlTemplate};
use xtalk_core::{
    MetricKind, MetricOne, MetricTwo, MomentBatch, NoiseAnalyzer, OutputMoments, RobustAnalyzer,
    LAMBDA,
};

/// Realistic interconnect parameter ranges (seconds, normalized volts).
fn params() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (
        0.0..5e-10f64,    // t0
        1e-12..5e-10f64,  // t1
        0.05..20.0f64,    // m
        0.01..0.8f64,     // vp
    )
}

/// A resistance that is usually plausible but sometimes corrupt.
fn resistance() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => 0.1..1e5f64,
        1 => Just(0.0),
        1 => -1e3..0.0f64,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
    ]
}

/// A capacitance that is usually plausible but sometimes corrupt.
fn capacitance() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => 1e-18..1e-12f64,
        1 => Just(0.0),
        1 => -1e-13..0.0f64,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
    ]
}

/// Random aggressor input: mostly ramps, sometimes steps or exponentials,
/// over a wide arrival/transition range.
fn input() -> impl Strategy<Value = InputSignal> {
    (-1e-9..1e-9f64, 1e-13..1e-8f64, 0..4u8).prop_map(|(arrival, tr, shape)| match shape {
        0 => InputSignal::step(arrival),
        1 => InputSignal::rising_exp(arrival, tr),
        2 => InputSignal::falling_ramp(arrival, tr),
        _ => InputSignal::rising_ramp(arrival, tr),
    })
}

/// A structurally complete two-pin pair with arbitrary (possibly corrupt)
/// element values, built permissively so corruption reaches the analyzer.
fn degenerate_pair(
    rd_v: f64,
    rd_a: f64,
    rw: f64,
    cg: f64,
    cl: f64,
    cc: f64,
) -> Result<xtalk_circuit::Network, xtalk_circuit::CircuitError> {
    let mut b = NetworkBuilder::permissive();
    let v = b.add_net("victim", NetRole::Victim);
    let a = b.add_net("agg0", NetRole::Aggressor);
    let v0 = b.add_node(v, "v0");
    let v1 = b.add_node(v, "v1");
    let a0 = b.add_node(a, "a0");
    b.add_driver(v, v0, rd_v)?;
    b.add_driver(a, a0, rd_a)?;
    b.add_resistor(v0, v1, rw)?;
    b.add_ground_cap(v0, cg)?;
    b.add_ground_cap(v1, cg)?;
    b.add_sink(v1, cl)?;
    b.add_sink(a0, cl)?;
    b.add_coupling_cap(a0, v1, cc)?;
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn metric_one_round_trips_pwl_templates((t0, t1, m, vp) in params()) {
        let tpl = PwlTemplate::new(t0, t1, m, vp);
        let [e1, e2, e3] = tpl.moments();
        let f = OutputMoments::from_raw(e1, e2, e3, 1.0).unwrap();
        let est = MetricOne::estimate(&f, m).unwrap();
        prop_assert!((est.vp - vp).abs() < 1e-6 * vp, "vp {} vs {vp}", est.vp);
        prop_assert!((est.t1 - t1).abs() < 1e-6 * t1);
        prop_assert!((est.t0 - t0).abs() < 1e-6 * (t0 + t1));
        prop_assert!((est.t2 - m * t1).abs() < 1e-6 * m * t1);
    }

    #[test]
    fn metric_two_round_trips_linexp_templates((t0, t1, m, vp) in params()) {
        let tpl = LinExpTemplate::new(t0, t1, m, LAMBDA, vp);
        let [e1, e2, e3] = tpl.moments();
        let f = OutputMoments::from_raw(e1, e2, e3, 1.0).unwrap();
        let est = MetricTwo::default().estimate(&f, m).unwrap();
        prop_assert!((est.vp - vp).abs() < 1e-6 * vp, "vp {} vs {vp}", est.vp);
        prop_assert!((est.t1 - t1).abs() < 1e-6 * t1);
        prop_assert!((est.t0 - t0).abs() < 1e-5 * (t0 + t1));
    }

    #[test]
    fn metric_one_estimates_stay_in_bounds(
        (t0, t1, m, vp) in params(),
        m_guess in 1e-3..1e3f64,
    ) {
        let tpl = PwlTemplate::new(t0, t1, m, vp);
        let [e1, e2, e3] = tpl.moments();
        let f = OutputMoments::from_raw(e1, e2, e3, 1.0).unwrap();
        let bounds = MetricOne::bounds(&f).unwrap();
        let est = MetricOne::estimate(&f, m_guess).unwrap();
        prop_assert!(bounds.contains(&est), "m_guess={m_guess}: {est:?} vs {bounds:?}");
    }

    #[test]
    fn estimates_satisfy_structural_invariants(
        (t0, t1, m, vp) in params(),
        m_guess in 1e-2..1e2f64,
    ) {
        let tpl = PwlTemplate::new(t0, t1, m, vp);
        let [e1, e2, e3] = tpl.moments();
        let f = OutputMoments::from_raw(e1, e2, e3, 1.0).unwrap();
        for est in [
            MetricOne::estimate(&f, m_guess).unwrap(),
            MetricTwo::default().estimate(&f, m_guess).unwrap(),
        ] {
            prop_assert!(est.vp > 0.0 && est.t1 > 0.0 && est.t2 > 0.0);
            prop_assert!((est.tp - (est.t0 + est.t1)).abs() <= 1e-9 * est.t1.max(est.tp.abs()));
            prop_assert!((est.wn - (est.t1 + est.t2)).abs() <= 1e-9 * est.wn);
            prop_assert!((est.t2 / est.t1 - m_guess).abs() <= 1e-9 * m_guess);
        }
    }

    #[test]
    fn metric_one_area_is_exactly_f1((t0, t1, m, vp) in params(), m_guess in 1e-2..1e2f64) {
        // Matching e1 forces Vp·Wn/2 = f1 regardless of the m used.
        let tpl = PwlTemplate::new(t0, t1, m, vp);
        let [e1, e2, e3] = tpl.moments();
        let f = OutputMoments::from_raw(e1, e2, e3, 1.0).unwrap();
        let est = MetricOne::estimate(&f, m_guess).unwrap();
        prop_assert!((est.area() - f.f1()).abs() < 1e-9 * f.f1());
    }

    #[test]
    fn robust_analyzer_never_panics_and_clamps(
        rd_v in resistance(),
        rd_a in resistance(),
        rw in resistance(),
        cg in capacitance(),
        cl in capacitance(),
        cc in capacitance(),
        input in input(),
    ) {
        // Random two-pin pairs whose element values are sometimes corrupt
        // (zero, negative, NaN, infinite): the robust pipeline must return
        // a structured error or an estimate that is finite everywhere with
        // vp clamped into [0, 1] — and must never panic.
        let Ok(network) = degenerate_pair(rd_v, rd_a, rw, cg, cl, cc) else {
            return Ok(()); // rejected at build time: structured
        };
        let Ok(robust) = RobustAnalyzer::new(&network) else {
            return Ok(()); // rejected by validation: structured
        };
        for (agg, _) in network.aggressor_nets() {
            match robust.analyze(agg, &input) {
                Ok(re) => {
                    let e = &re.estimate;
                    prop_assert!(
                        [e.vp, e.t0, e.t1, e.t2, e.tp, e.wn].iter().all(|x| x.is_finite()),
                        "non-finite accepted estimate: {e:?} ({})",
                        re.provenance
                    );
                    prop_assert!((0.0..=1.0).contains(&e.vp), "unclamped vp {}", e.vp);
                    prop_assert!(e.t1 > 0.0 && e.t2 > 0.0);
                }
                Err(e) => drop(e.to_string()), // structured, and Display works
            }
        }
    }

    #[test]
    fn metric_two_peak_never_exceeds_pwl_bound_times_factor(
        (t0, t1, m, vp) in params(),
        m_guess in 1e-3..1e3f64,
        linexp_source in any::<bool>(),
    ) {
        // The closed-form upper Vp bound (eq. 40) is the PWL template's
        // m → extremes; metric II's peak may exceed it by at most √72/4
        // (its α → ∞, pure-exponential-decay limit) for ANY moment
        // source — PWL- or LinExp-shaped.
        let [e1, e2, e3] = if linexp_source {
            LinExpTemplate::new(t0, t1, m, LAMBDA, vp).moments()
        } else {
            PwlTemplate::new(t0, t1, m, vp).moments()
        };
        let f = OutputMoments::from_raw(e1, e2, e3, 1.0).unwrap();
        let bounds = MetricOne::bounds(&f).unwrap();
        let est2 = MetricTwo::default().estimate(&f, m_guess).unwrap();
        let cap = bounds.vp.1 * (72f64.sqrt() / 4.0);
        prop_assert!(
            est2.vp <= cap * (1.0 + 1e-9),
            "metric II vp {} exceeds PWL bound {} × √72/4 = {cap}",
            est2.vp,
            bounds.vp.1,
        );
    }

    #[test]
    fn metric_one_stays_in_bounds_for_linexp_moments(
        (t0, t1, m, vp) in params(),
        m_guess in 1e-3..1e3f64,
    ) {
        // Bound domination must not depend on the moments coming from the
        // metric's own template family.
        let [e1, e2, e3] = LinExpTemplate::new(t0, t1, m, LAMBDA, vp).moments();
        let f = OutputMoments::from_raw(e1, e2, e3, 1.0).unwrap();
        let bounds = MetricOne::bounds(&f).unwrap();
        let est = MetricOne::estimate(&f, m_guess).unwrap();
        prop_assert!(bounds.contains(&est), "m_guess={m_guess}: {est:?} vs {bounds:?}");
    }

    #[test]
    fn robust_estimates_preserve_identities_even_when_clamped(
        rd_v in 1.0..1e4f64,
        rd_a in 1.0..1e4f64,
        rw in 0.1..1e4f64,
        cg in 1e-17..1e-13f64,
        cl in 1e-16..1e-13f64,
        cc in 1e-16..1e-13f64,
        input in input(),
    ) {
        // Healthy-element circuits: whatever rung the robust pipeline lands
        // on — including runs where the non-causal timing clamp rewrote
        // t0/t1/t2 — the accepted estimate keeps the construction
        // identities to 1e-9 relative and every field finite.
        let Ok(network) = degenerate_pair(rd_v, rd_a, rw, cg, cl, cc) else {
            return Ok(());
        };
        let Ok(robust) = RobustAnalyzer::new(&network) else {
            return Ok(());
        };
        for (agg, _) in network.aggressor_nets() {
            let Ok(re) = robust.analyze(agg, &input) else { continue };
            let e = &re.estimate;
            prop_assert!(
                [e.vp, e.t0, e.t1, e.t2, e.tp, e.wn, e.m].iter().all(|x| x.is_finite()),
                "non-finite field: {e:?} ({})",
                re.provenance
            );
            prop_assert!(
                (e.tp - (e.t0 + e.t1)).abs() <= 1e-9 * e.tp.abs().max(e.t1),
                "tp identity broken ({}): {e:?}",
                re.provenance
            );
            prop_assert!(
                (e.wn - (e.t1 + e.t2)).abs() <= 1e-9 * e.wn,
                "wn identity broken ({}): {e:?}",
                re.provenance
            );
            prop_assert!(
                (e.m - e.t2 / e.t1).abs() <= 1e-9 * e.m,
                "m identity broken ({}): {e:?}",
                re.provenance
            );
        }
    }

    #[test]
    fn cross_template_estimates_agree_on_order_of_magnitude(
        (t0, t1, m, vp) in params(),
    ) {
        // Feeding PWL moments to metric II (model mismatch) must still give
        // a sane estimate. The analytic extremes of the Vp ratio over
        // 0 < m < ∞ are bounded by √72/4 ≈ 2.12 (m → ∞ limit).
        let tpl = PwlTemplate::new(t0, t1, m, vp);
        let [e1, e2, e3] = tpl.moments();
        let f = OutputMoments::from_raw(e1, e2, e3, 1.0).unwrap();
        let est1 = MetricOne::estimate(&f, m).unwrap();
        let est2 = MetricTwo::default().estimate(&f, m).unwrap();
        let ratio = est2.vp / est1.vp;
        prop_assert!((0.4..2.13).contains(&ratio), "vp ratio {ratio}");
    }
}

/// One random batch lane: raw moments (mostly template-shaped, sometimes
/// wild — including combinations the metrics reject) plus a rise time that
/// is sometimes zero (the ideal-step dispatch branch).
fn moment_source() -> impl Strategy<Value = (f64, f64, f64, f64, f64)> {
    fn tr() -> impl Strategy<Value = f64> {
        prop_oneof![
            4 => 1e-13..1e-9f64,
            1 => Just(0.0),
        ]
    }
    fn polarity() -> impl Strategy<Value = f64> {
        prop_oneof![2 => Just(1.0), 1 => Just(-1.0)]
    }
    prop_oneof![
        4 => (params(), polarity(), tr()).prop_map(|((t0, t1, m, vp), pol, tr)| {
            let [e1, e2, e3] = PwlTemplate::new(t0, t1, m, vp).moments();
            (e1, e2, e3, pol, tr)
        }),
        2 => (params(), polarity(), tr()).prop_map(|((t0, t1, m, vp), pol, tr)| {
            let [e1, e2, e3] = LinExpTemplate::new(t0, t1, m, LAMBDA, vp).moments();
            (e1, e2, e3, pol, tr)
        }),
        1 => (1e-20..1e-9f64, -1e-18..1e-18f64, -1e-27..1e-27f64, polarity(), tr()),
    ]
}

proptest! {
    // The ISSUE's bit-identity contract: 1000 random batches, every lane
    // byte-for-byte equal to the scalar metric path.
    #![proptest_config(ProptestConfig::with_cases(1000))]

    #[test]
    fn batch_kernel_is_bit_identical_to_scalar_metrics(
        sources in prop::collection::vec(moment_source(), 1..8),
    ) {
        // The SoA batch evaluator's contract: every lane returns exactly
        // what the scalar dispatch returns — Ok fields equal to the bit,
        // errors the same variant and payload.
        let lanes: Vec<(OutputMoments, f64)> = sources
            .into_iter()
            .filter_map(|(f1, f2, f3, pol, tr)| {
                Some((OutputMoments::from_raw(f1, f2, f3, pol).ok()?, tr))
            })
            .collect();
        let mut batch = MomentBatch::with_capacity(lanes.len());
        for (f, tr) in &lanes {
            batch.push(f, *tr);
        }
        for kind in [MetricKind::One, MetricKind::OneSymmetric, MetricKind::Two] {
            let est = batch.estimates(kind);
            for (i, (f, tr)) in lanes.iter().enumerate() {
                let want = NoiseAnalyzer::estimate_for(f, *tr, kind);
                match (est.result(i), want) {
                    (Ok(g), Ok(w)) => {
                        for (a, b) in [
                            (g.vp, w.vp), (g.t0, w.t0), (g.t1, w.t1), (g.t2, w.t2),
                            (g.tp, w.tp), (g.wn, w.wn), (g.m, w.m), (g.polarity, w.polarity),
                        ] {
                            prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
                        }
                    }
                    (Err(g), Err(w)) => {
                        prop_assert_eq!(format!("{g:?}"), format!("{w:?}"));
                    }
                    (g, w) => prop_assert!(false, "ok/err mismatch: {:?} vs {:?}", g, w),
                }
            }
        }
        // Bounds lanes obey the same contract against the scalar entry.
        let bounds = batch.bounds();
        for (i, (f, _)) in lanes.iter().enumerate() {
            match (bounds.result(i), MetricOne::bounds(f)) {
                (Ok(g), Ok(w)) => {
                    for (a, b) in [(g.vp, w.vp), (g.t0, w.t0), (g.tp, w.tp), (g.wn, w.wn)] {
                        prop_assert_eq!(a.0.to_bits(), b.0.to_bits());
                        prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
                    }
                }
                (Err(g), Err(w)) => prop_assert_eq!(format!("{g:?}"), format!("{w:?}")),
                (g, w) => prop_assert!(false, "ok/err mismatch: {:?} vs {:?}", g, w),
            }
        }
    }
}
