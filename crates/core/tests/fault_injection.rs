//! Fault-injection harness for the degraded-mode pipeline.
//!
//! Every fault in the catalog drives corrupt data at a public entry point
//! — poisoned element values, truncated or non-physical moments, extreme
//! shape ratios, mangled SPICE decks, degenerate topologies — and the
//! contract under test is uniform:
//!
//! * nothing panics, ever;
//! * the raw metrics return a structured [`MetricError`] or an estimate
//!   (possibly garbage-in-garbage-out, e.g. NaN fields from NaN moments —
//!   they are deliberately thin);
//! * the [`RobustAnalyzer`] path is stricter: any accepted estimate has
//!   all-finite fields and `vp ∈ [0, 1]` under the default policy.

use std::panic::{catch_unwind, AssertUnwindSafe};

use xtalk_circuit::signal::InputSignal;
use xtalk_circuit::spice::parse_deck;
use xtalk_core::{MetricOne, MetricTwo, OutputMoments, RobustAnalyzer};

/// Helpers for building deliberately corrupted inputs.
mod faults {
    use xtalk_circuit::{CircuitError, NetRole, Network, NetworkBuilder};

    /// A structurally complete two-pin coupled pair whose element values
    /// can be poisoned one at a time. Built through the permissive
    /// builder, so corrupt values reach the analysis layer instead of
    /// being rejected at insertion.
    pub struct TwoPin {
        pub victim_driver: f64,
        pub aggressor_driver: f64,
        pub wire_res: f64,
        pub ground_cap: f64,
        pub victim_sink: f64,
        pub aggressor_sink: f64,
        pub coupling: f64,
    }

    impl Default for TwoPin {
        fn default() -> Self {
            TwoPin {
                victim_driver: 300.0,
                aggressor_driver: 150.0,
                wire_res: 60.0,
                ground_cap: 8e-15,
                victim_sink: 12e-15,
                aggressor_sink: 10e-15,
                coupling: 25e-15,
            }
        }
    }

    impl TwoPin {
        /// Builds the (possibly corrupt) network. A build-time rejection
        /// is itself a valid structured outcome.
        pub fn build(&self) -> Result<Network, CircuitError> {
            let mut b = NetworkBuilder::permissive();
            let v = b.add_net("victim", NetRole::Victim);
            let a = b.add_net("agg0", NetRole::Aggressor);
            let v0 = b.add_node(v, "v0");
            let v1 = b.add_node(v, "v1");
            let a0 = b.add_node(a, "a0");
            b.add_driver(v, v0, self.victim_driver)?;
            b.add_driver(a, a0, self.aggressor_driver)?;
            b.add_resistor(v0, v1, self.wire_res)?;
            b.add_ground_cap(v0, self.ground_cap)?;
            b.add_ground_cap(v1, self.ground_cap)?;
            b.add_sink(v1, self.victim_sink)?;
            b.add_sink(a0, self.aggressor_sink)?;
            b.add_coupling_cap(a0, v1, self.coupling)?;
            b.build()
        }
    }

    /// Victim collapsed to a single node: driver and sink share it, no
    /// wire at all. The moment machinery sees a zero-length tree.
    pub fn single_node_victim() -> Result<Network, CircuitError> {
        let mut b = NetworkBuilder::permissive();
        let v = b.add_net("victim", NetRole::Victim);
        let a = b.add_net("agg0", NetRole::Aggressor);
        let v0 = b.add_node(v, "v0");
        let a0 = b.add_node(a, "a0");
        b.add_driver(v, v0, 300.0)?;
        b.add_driver(a, a0, 150.0)?;
        b.add_sink(v0, 12e-15)?;
        b.add_sink(a0, 10e-15)?;
        b.add_coupling_cap(a0, v0, 25e-15)?;
        b.build()
    }

    /// A victim no aggressor couples into at all.
    pub fn uncoupled_victim() -> Result<Network, CircuitError> {
        let mut b = NetworkBuilder::permissive();
        let v = b.add_net("victim", NetRole::Victim);
        let a = b.add_net("agg0", NetRole::Aggressor);
        let v0 = b.add_node(v, "v0");
        let a0 = b.add_node(a, "a0");
        b.add_driver(v, v0, 300.0)?;
        b.add_driver(a, a0, 150.0)?;
        b.add_ground_cap(v0, 8e-15)?;
        b.add_sink(v0, 12e-15)?;
        b.add_sink(a0, 10e-15)?;
        b.build()
    }
}

use faults::TwoPin;

/// Drives the robust pipeline over a (possibly corrupt) network and
/// enforces its accepted-estimate guarantees. Structured rejections at any
/// stage are fine; panics and non-finite accepted estimates are not.
fn probe_network(
    built: Result<xtalk_circuit::Network, xtalk_circuit::CircuitError>,
    input: &InputSignal,
) {
    let Ok(network) = built else {
        return; // rejected at build time: structured
    };
    let robust = match RobustAnalyzer::new(&network) {
        Ok(r) => r,
        Err(e) => {
            let _ = e.to_string(); // structured rejection; Display must not panic
            return;
        }
    };
    for (agg, _) in network.aggressor_nets() {
        match robust.analyze(agg, input) {
            Ok(re) => {
                let est = &re.estimate;
                for (name, v) in [
                    ("vp", est.vp),
                    ("t0", est.t0),
                    ("t1", est.t1),
                    ("t2", est.t2),
                    ("tp", est.tp),
                    ("wn", est.wn),
                ] {
                    assert!(v.is_finite(), "accepted estimate has non-finite {name}");
                }
                assert!(
                    (0.0..=1.0).contains(&est.vp),
                    "accepted vp {} out of range",
                    est.vp
                );
                let _ = re.provenance.to_string();
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}

/// Exercises the raw metric layer with arbitrary moment triples. The only
/// guarantee down here is "no panic": `from_raw` may reject, the metrics
/// may error, and garbage moments may produce garbage estimates.
fn probe_moments(f1: f64, f2: f64, f3: f64) {
    for polarity in [1.0, -1.0] {
        let Ok(f) = OutputMoments::from_raw(f1, f2, f3, polarity) else {
            continue;
        };
        let _ = MetricOne::estimate(&f, 1.0);
        let _ = MetricOne::estimate_symmetric(&f);
        let _ = MetricOne::estimate_auto(&f, 1e-10);
        let _ = MetricOne::bounds(&f);
        let _ = MetricTwo::default().estimate(&f, 1.0);
        let _ = MetricTwo::default().estimate_auto(&f, 1e-10);
    }
}

/// Exercises both metrics with an extreme or invalid shape ratio over
/// healthy moments.
fn probe_shape_ratio(m: f64) {
    let f = OutputMoments::from_raw(1e-11, -5e-22, 2e-32, 1.0).expect("healthy moments");
    let _ = MetricOne::estimate(&f, m);
    let _ = MetricTwo::default().estimate(&f, m);
}

/// Parses a corrupt deck; if it somehow parses, pushes it through the
/// robust pipeline too.
fn probe_deck(deck: &str) {
    match parse_deck(deck) {
        Ok(network) => probe_network(Ok(network), &InputSignal::rising_ramp(0.0, 1e-10)),
        Err(e) => {
            let _ = e.to_string();
        }
    }
}

/// A deck in the exporter subset that parses cleanly, used as the template
/// for the corrupted-deck faults.
const GOOD_DECK: &str = "\
* two-pin pair
*! net 0 victim victim
*! net 1 aggressor agg0
*! output n1
VDRV0 src0 0 DC 0
RDRV0 src0 n0 300
VDRV1 src1 0 DC 0
RDRV1 src1 n2 150
R0 n0 n1 60
C0 n0 0 2e-15
C1 n1 0 8e-15
CL0 n1 0 12e-15
CL1 n2 0 10e-15
CC0 n2 n1 25e-15
.end
";

/// One named, self-asserting fault closure.
type Fault = (&'static str, Box<dyn Fn()>);

/// A named poisoning of one [`TwoPin`] element value.
type ValueFault = (&'static str, fn(&mut TwoPin));

/// The full fault catalog.
fn catalog() -> Vec<Fault> {
    let ramp = InputSignal::rising_ramp(0.0, 1e-10);
    let mut faults: Vec<Fault> = Vec::new();

    // --- poisoned network element values -----------------------------
    let value_faults: [ValueFault; 19] = [
        ("zeroed victim driver", |t| t.victim_driver = 0.0),
        ("negated victim driver", |t| t.victim_driver = -300.0),
        ("NaN victim driver", |t| t.victim_driver = f64::NAN),
        ("infinite victim driver", |t| t.victim_driver = f64::INFINITY),
        ("zeroed aggressor driver", |t| t.aggressor_driver = 0.0),
        ("NaN aggressor driver", |t| t.aggressor_driver = f64::NAN),
        ("zeroed wire resistance", |t| t.wire_res = 0.0),
        ("negated wire resistance", |t| t.wire_res = -60.0),
        ("NaN wire resistance", |t| t.wire_res = f64::NAN),
        ("infinite wire resistance", |t| t.wire_res = f64::INFINITY),
        ("zeroed ground caps", |t| t.ground_cap = 0.0),
        ("negated ground caps", |t| t.ground_cap = -8e-15),
        ("NaN ground caps", |t| t.ground_cap = f64::NAN),
        ("negated victim sink", |t| t.victim_sink = -12e-15),
        ("NaN victim sink", |t| t.victim_sink = f64::NAN),
        ("NaN aggressor sink", |t| t.aggressor_sink = f64::NAN),
        ("negated coupling cap", |t| t.coupling = -25e-15),
        ("NaN coupling cap", |t| t.coupling = f64::NAN),
        ("infinite coupling cap", |t| t.coupling = f64::INFINITY),
    ];
    for (name, poison) in value_faults {
        let input = ramp;
        faults.push((
            name,
            Box::new(move || {
                let mut pair = TwoPin::default();
                poison(&mut pair);
                probe_network(pair.build(), &input);
            }),
        ));
    }

    // --- degenerate topologies ---------------------------------------
    faults.push((
        "single-node victim",
        Box::new(move || probe_network(faults::single_node_victim(), &ramp)),
    ));
    faults.push((
        "uncoupled victim",
        Box::new(move || probe_network(faults::uncoupled_victim(), &ramp)),
    ));

    // --- corrupt / truncated output moments --------------------------
    let moment_faults: [(&'static str, [f64; 3]); 9] = [
        ("all-zero moments", [0.0, 0.0, 0.0]),
        ("NaN f1", [f64::NAN, -1e-21, 1e-33]),
        ("negated f1", [-1e-11, -1e-21, 1e-33]),
        ("NaN f2", [1e-11, f64::NAN, 1e-33]),
        ("infinite f2", [1e-11, f64::INFINITY, 1e-33]),
        ("truncated f3 (zeroed)", [1e-11, -1e-21, 0.0]),
        ("NaN f3", [1e-11, -1e-21, f64::NAN]),
        ("non-physical triple (T_W^2 < 0)", [1e-11, -1e-21, 1e-33]),
        ("denormal-scale moments", [1e-300, -1e-310, 1e-320]),
    ];
    for (name, [f1, f2, f3]) in moment_faults {
        faults.push((name, Box::new(move || probe_moments(f1, f2, f3))));
    }

    // --- extreme / invalid shape ratios ------------------------------
    let m_faults: [(&'static str, f64); 6] = [
        ("zero shape ratio", 0.0),
        ("negative shape ratio", -1.0),
        ("NaN shape ratio", f64::NAN),
        ("infinite shape ratio", f64::INFINITY),
        ("denormal shape ratio", 1e-300),
        ("huge shape ratio", 1e300),
    ];
    for (name, m) in m_faults {
        faults.push((name, Box::new(move || probe_shape_ratio(m))));
    }

    // --- corrupted SPICE decks ---------------------------------------
    let deck_faults: [(&'static str, String); 8] = [
        ("empty deck", String::new()),
        ("garbage deck", "not a deck at all\n\u{0}\u{1}\n".to_string()),
        ("deck with NaN value", GOOD_DECK.replace("60", "NaN")),
        (
            "deck with negated cap",
            GOOD_DECK.replace("25e-15", "-25e-15"),
        ),
        (
            "deck with truncated card",
            GOOD_DECK.replace("R0 n0 n1 60", "R0 n0"),
        ),
        (
            "deck with duplicate card",
            GOOD_DECK.replace("R0 n0 n1 60", "R0 n0 n1 60\nR0 n0 n1 60"),
        ),
        (
            "deck missing output directive",
            GOOD_DECK.replace("*! output n1\n", ""),
        ),
        (
            "deck referencing an undefined node",
            GOOD_DECK.replace("CC0 n2 n1 25e-15", "CC0 n2 n99 25e-15"),
        ),
    ];
    for (name, deck) in deck_faults {
        faults.push((name, Box::new(move || probe_deck(&deck))));
    }

    // --- extreme but valid input signals -----------------------------
    faults.push((
        "attosecond input transition",
        Box::new(|| probe_network(TwoPin::default().build(), &InputSignal::rising_ramp(0.0, 1e-30))),
    ));
    faults.push((
        "glacial input transition",
        Box::new(|| probe_network(TwoPin::default().build(), &InputSignal::rising_ramp(0.0, 1e30))),
    ));
    faults.push((
        "deeply negative arrival",
        Box::new(|| probe_network(TwoPin::default().build(), &InputSignal::rising_ramp(-1.0, 1e-10))),
    ));
    faults.push((
        "ideal step input",
        Box::new(|| probe_network(TwoPin::default().build(), &InputSignal::step(0.0))),
    ));
    faults.push((
        "falling exponential input",
        Box::new(|| probe_network(TwoPin::default().build(), &InputSignal::falling_exp(0.0, 1e-10))),
    ));

    faults
}

#[test]
fn no_fault_in_the_catalog_panics() {
    let faults = catalog();
    assert!(
        faults.len() >= 30,
        "catalog shrank to {} faults; keep it at 30+",
        faults.len()
    );
    let mut panicked = Vec::new();
    for (name, fault) in faults {
        if catch_unwind(AssertUnwindSafe(fault)).is_err() {
            panicked.push(name);
        }
    }
    assert!(panicked.is_empty(), "faults panicked: {panicked:?}");
}

#[test]
fn compound_faults_do_not_panic_either() {
    // Pairwise combinations of element poisonings: corruption rarely
    // arrives one field at a time.
    let ramp = InputSignal::rising_ramp(0.0, 1e-10);
    let poisons: [fn(&mut TwoPin); 5] = [
        |t| t.victim_driver = f64::NAN,
        |t| t.wire_res = -60.0,
        |t| t.ground_cap = 0.0,
        |t| t.coupling = f64::INFINITY,
        |t| t.victim_sink = f64::NAN,
    ];
    for (i, a) in poisons.iter().enumerate() {
        for b in &poisons[i + 1..] {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut pair = TwoPin::default();
                a(&mut pair);
                b(&mut pair);
                probe_network(pair.build(), &ramp);
            }));
            assert!(result.is_ok(), "compound fault panicked");
        }
    }
}

#[test]
fn healthy_reference_case_stays_healthy() {
    // The harness itself must not be degenerate: the unpoisoned pair
    // analyzes at full fidelity.
    let network = TwoPin::default().build().expect("healthy pair builds");
    let robust = RobustAnalyzer::new(&network).expect("healthy pair validates");
    let input = InputSignal::rising_ramp(0.0, 1e-10);
    let (agg, _) = network.aggressor_nets().next().expect("one aggressor");
    let re = robust.analyze(agg, &input).expect("healthy pair analyzes");
    assert!(!re.provenance.degraded(), "{}", re.provenance);
    assert!(re.estimate.vp > 0.0 && re.estimate.vp < 1.0);
}
