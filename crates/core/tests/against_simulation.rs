//! End-to-end validation of the closed-form metrics against the transient
//! simulator on randomized coupled circuits — a miniature of the paper's
//! Tables 1–3 run as a test.
//!
//! Checked properties (the paper's headline claims):
//!
//! * metric II with the default λ is a **conservative** `Vp` estimate
//!   (allowing the paper's own −5% numerical-tolerance convention);
//! * both metrics land within a sane multiplicative band of the golden
//!   `Vp` and `Wn`;
//! * the area (first moment) of the simulated pulse matches `f1` — the
//!   quantity both metrics preserve exactly.

#![allow(clippy::unwrap_used)] // test code; helpers sit outside #[test] fns

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xtalk_circuit::{signal::InputSignal, NetId, NetRole, Network, NetworkBuilder};
use xtalk_core::{MetricKind, NoiseAnalyzer};
use xtalk_sim::{measure_noise, SimOptions, TransientSim};

/// Random two-pin coupling circuit in a realistic 0.25 µm-like range.
fn random_two_pin(rng: &mut StdRng) -> (Network, NetId) {
    let mut b = NetworkBuilder::new();
    let v = b.add_net("v", NetRole::Victim);
    let a = b.add_net("a", NetRole::Aggressor);

    let segs = rng.random_range(2..6);
    let r_seg = rng.random_range(5.0..80.0);
    let c_seg = rng.random_range(2e-15..15e-15);
    let cc_seg = rng.random_range(2e-15..25e-15);

    let mut vprev = b.add_node(v, "v0");
    b.add_driver(v, vprev, rng.random_range(50.0..1500.0)).unwrap();
    let mut aprev = b.add_node(a, "a0");
    b.add_driver(a, aprev, rng.random_range(50.0..1500.0)).unwrap();
    for i in 1..=segs {
        let vn = b.add_node(v, format!("v{i}"));
        let an = b.add_node(a, format!("a{i}"));
        b.add_resistor(vprev, vn, r_seg).unwrap();
        b.add_resistor(aprev, an, r_seg).unwrap();
        b.add_ground_cap(vn, c_seg).unwrap();
        b.add_ground_cap(an, c_seg).unwrap();
        b.add_coupling_cap(vn, an, cc_seg).unwrap();
        vprev = vn;
        aprev = an;
    }
    b.add_sink(vprev, rng.random_range(2e-15..40e-15)).unwrap();
    b.add_sink(aprev, rng.random_range(2e-15..40e-15)).unwrap();
    b.set_victim_output(vprev);
    let net = b.build().unwrap();
    let agg = net.aggressor_nets().next().unwrap().0;
    (net, agg)
}

struct Case {
    golden_vp: f64,
    golden_wn: f64,
    golden_area: f64,
    vp1: f64,
    vp2: f64,
    wn1: f64,
    wn2: f64,
    f1: f64,
}

fn run_case(rng: &mut StdRng) -> Option<Case> {
    let (net, agg) = random_two_pin(rng);
    let input = InputSignal::rising_ramp(0.0, rng.random_range(3e-11..4e-10));

    let analyzer = NoiseAnalyzer::new(&net).unwrap();
    let est1 = analyzer.analyze(agg, &input, MetricKind::One).ok()?;
    let est2 = analyzer.analyze(agg, &input, MetricKind::Two).ok()?;
    let f = analyzer.output_moments(agg, &input).unwrap();

    let sim = TransientSim::new(&net).unwrap();
    let opts = SimOptions::auto(&net, &[(agg, input)]);
    let res = sim.run(&[(agg, input)], &opts).unwrap();
    let golden = measure_noise(res.probe(net.victim_output()).unwrap(), 1.0).ok()?;
    if golden.vp < 1e-4 {
        return None; // numerically negligible pulses are not meaningful
    }
    Some(Case {
        golden_vp: golden.vp,
        golden_wn: golden.wn,
        golden_area: golden.area,
        vp1: est1.vp,
        vp2: est2.vp,
        wn1: est1.wn,
        wn2: est2.wn,
        f1: f.f1(),
    })
}

#[test]
fn metrics_track_simulation_over_random_circuits() {
    let mut rng = StdRng::seed_from_u64(0xda7e2002);
    let mut cases = Vec::new();
    while cases.len() < 60 {
        if let Some(c) = run_case(&mut rng) {
            cases.push(c);
        }
    }

    let mut metric2_conservative = 0usize;
    for (i, c) in cases.iter().enumerate() {
        // Area identity: simulated pulse area = f1 (to integrator accuracy).
        assert!(
            (c.golden_area - c.f1).abs() < 2e-2 * c.f1,
            "case {i}: area {} vs f1 {}",
            c.golden_area,
            c.f1
        );
        // Both metrics within a sane band of golden (paper: max ~85%).
        for (name, vp) in [("I", c.vp1), ("II", c.vp2)] {
            let err = (vp - c.golden_vp) / c.golden_vp;
            assert!(
                (-0.6..2.0).contains(&err),
                "case {i}: metric {name} vp error {err} ({vp} vs {})",
                c.golden_vp
            );
        }
        for (name, wn) in [("I", c.wn1), ("II", c.wn2)] {
            let err = (wn - c.golden_wn) / c.golden_wn;
            assert!(
                (-0.7..2.0).contains(&err),
                "case {i}: metric {name} wn error {err}"
            );
        }
        // Paper convention: within -5% still counts as conservative.
        if c.vp2 >= 0.95 * c.golden_vp {
            metric2_conservative += 1;
        }
    }
    // Metric II must be (essentially) always an upper bound for Vp.
    assert!(
        metric2_conservative == cases.len(),
        "metric II failed conservatism on {}/{} cases",
        cases.len() - metric2_conservative,
        cases.len()
    );
}
