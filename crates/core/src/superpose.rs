//! Worst-case multi-aggressor superposition with timing windows
//! (paper §3.5; method of its ref. \[4\]).
//!
//! Each aggressor contributes a template noise pulse whose position can
//! slide within a timing window (the interval of feasible input arrival
//! times from timing analysis). The combined worst case aligns the pulses
//! as destructively as the windows permit and superposes them in the time
//! domain.
//!
//! Using the piecewise-linear template for each contribution, the
//! "best-aligned value at observation time `T`" of each aggressor is a
//! piecewise-linear *plateau* function of `T` (flat at `Vp` while the
//! window lets the peak reach `T`, the template flanks outside). The
//! maximum of a sum of piecewise-linear functions is attained at a
//! breakpoint, so the search below is exact, closed-form, and fast —
//! `O(k²)` for `k` aggressors.
//!
//! The paper stops at the combined peak (combined width/transition times
//! are listed as future work); [`worst_case`] reports the peak and its
//! alignment, and [`combined_value_at`] exposes the underlying envelope
//! for callers who want to sample the aligned waveform.

use crate::NoiseEstimate;

/// Feasible translation range for one aggressor's noise pulse, relative
/// to the arrival used when its estimate was computed.
///
/// A window of `[0, 0]` pins the pulse (no timing freedom).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingWindow {
    /// Most negative allowed shift (≤ `max_shift`).
    pub min_shift: f64,
    /// Most positive allowed shift.
    pub max_shift: f64,
}

impl TimingWindow {
    /// A window allowing shifts in `[min_shift, max_shift]`.
    ///
    /// # Panics
    ///
    /// Panics if `min_shift > max_shift` or either bound is not finite.
    pub fn new(min_shift: f64, max_shift: f64) -> Self {
        assert!(
            min_shift.is_finite() && max_shift.is_finite() && min_shift <= max_shift,
            "timing window must be a finite, ordered interval"
        );
        TimingWindow {
            min_shift,
            max_shift,
        }
    }

    /// The fully constrained window (no freedom).
    pub fn pinned() -> Self {
        TimingWindow::new(0.0, 0.0)
    }
}

/// Result of the worst-case alignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CombinedNoise {
    /// Worst-case combined peak amplitude (× `Vdd`, ≥ 0).
    pub vp: f64,
    /// Observation time at which the worst case occurs.
    pub at: f64,
    /// Number of contributions whose plateau covers the worst-case time
    /// (aggressors aligned at full peak).
    pub aligned: usize,
}

/// Best-aligned contribution of one pulse at observation time `t`:
/// `max over shift ∈ window of template(t − shift)` for the PWL template
/// of `estimate`. Exact for unimodal templates.
fn plateau_value(estimate: &NoiseEstimate, window: &TimingWindow, t: f64) -> f64 {
    let lo = estimate.tp + window.min_shift; // earliest achievable peak time
    let hi = estimate.tp + window.max_shift; // latest achievable peak time
    if t < lo {
        // Peak cannot reach back to t; best is the rising flank of the
        // earliest placement (peak pinned at `lo`).
        estimate.template_value(t - (lo - estimate.tp))
    } else if t > hi {
        estimate.template_value(t - (hi - estimate.tp))
    } else {
        estimate.vp
    }
}

/// Worst-case combined peak of same-polarity noise pulses with timing
/// windows.
///
/// Pass only contributions of one polarity (combine positive and negative
/// spikes separately; an opposite-polarity aggressor can always stay quiet
/// in the worst case). Returns `vp = 0` for an empty list.
///
/// # Panics
///
/// Panics if `contributions` mixes polarities.
///
/// # Examples
///
/// ```
/// use xtalk_core::superpose::{worst_case, TimingWindow};
/// use xtalk_core::NoiseEstimate;
///
/// let pulse = |tp: f64| NoiseEstimate {
///     vp: 0.1, t0: tp - 1e-10, t1: 1e-10, t2: 1e-10, tp,
///     wn: 2e-10, m: 1.0, polarity: 1.0,
/// };
/// // Wide windows: both peaks align → sum.
/// let wide = TimingWindow::new(-1e-9, 1e-9);
/// let combined = worst_case(&[(pulse(0.0), wide), (pulse(5e-10), wide)]);
/// assert!((combined.vp - 0.2).abs() < 1e-12);
/// assert_eq!(combined.aligned, 2);
///
/// // Pinned far apart: no overlap → max of the two.
/// let pinned = TimingWindow::pinned();
/// let apart = worst_case(&[(pulse(0.0), pinned), (pulse(5e-10), pinned)]);
/// assert!((apart.vp - 0.1).abs() < 1e-12);
/// ```
pub fn worst_case(contributions: &[(NoiseEstimate, TimingWindow)]) -> CombinedNoise {
    if contributions.is_empty() {
        return CombinedNoise {
            vp: 0.0,
            at: 0.0,
            aligned: 0,
        };
    }
    let pol = contributions[0].0.polarity;
    assert!(
        contributions.iter().all(|(e, _)| e.polarity == pol),
        "combine one polarity at a time"
    );

    // Candidate observation times: every breakpoint of every plateau.
    let mut candidates = Vec::with_capacity(contributions.len() * 4);
    for (e, w) in contributions {
        let lo = e.tp + w.min_shift;
        let hi = e.tp + w.max_shift;
        candidates.push(lo - e.t1);
        candidates.push(lo);
        candidates.push(hi);
        candidates.push(hi + e.t2);
    }

    let mut best = CombinedNoise {
        vp: f64::NEG_INFINITY,
        at: 0.0,
        aligned: 0,
    };
    for &t in &candidates {
        let mut sum = 0.0;
        let mut aligned = 0;
        for (e, w) in contributions {
            let v = plateau_value(e, w, t);
            sum += v;
            if (v - e.vp).abs() <= 1e-12 * e.vp {
                aligned += 1;
            }
        }
        if sum > best.vp {
            best = CombinedNoise {
                vp: sum,
                at: t,
                aligned,
            };
        }
    }
    best
}

/// Combined envelope value at observation time `t` under worst-case
/// alignment (the function whose maximum [`worst_case`] finds).
pub fn combined_value_at(contributions: &[(NoiseEstimate, TimingWindow)], t: f64) -> f64 {
    contributions
        .iter()
        .map(|(e, w)| plateau_value(e, w, t))
        .sum()
}

/// Least-aligned contribution of one pulse at observation time `t`:
/// `min over shift ∈ window of template(t − shift)` — what an
/// *opposite-polarity* aggressor contributes in the worst case (it is
/// timed as far away from `t` as its window allows). For a unimodal
/// template the minimum over an interval of shifts is attained at a window
/// endpoint.
fn anti_plateau_value(estimate: &NoiseEstimate, window: &TimingWindow, t: f64) -> f64 {
    let at = |shift: f64| estimate.template_value(t - shift);
    at(window.min_shift).min(at(window.max_shift))
}

/// Width of the worst-case combined pulse (extension: the paper lists
/// combined-waveform width as future research — "no methods exist which
/// are capable of estimating the worst-case pulse-width … for the
/// combined noise waveform").
///
/// First each pulse is *pinned* at its worst-case placement (the shift
/// inside its window that brings its peak closest to `at`, exactly the
/// alignment [`worst_case`]'s maximum realizes); the resulting combined
/// waveform — a genuine sum of shifted PWL templates — is then measured
/// at `level ×` its peak around `at`, and the level-width extrapolated to
/// the full swing. With `level = 0.1` this matches the golden-measurement
/// convention.
///
/// # Panics
///
/// Panics unless `0 < level < 1`.
pub fn combined_width(
    contributions: &[(NoiseEstimate, TimingWindow)],
    at: f64,
    level: f64,
) -> f64 {
    assert!(level > 0.0 && level < 1.0, "level must be inside (0, 1)");
    if contributions.is_empty() {
        return 0.0;
    }
    // Realized worst-case shifts: peaks as close to `at` as allowed.
    let shifted: Vec<NoiseEstimate> = contributions
        .iter()
        .map(|(e, w)| {
            let shift = (at - e.tp).clamp(w.min_shift, w.max_shift);
            let mut s = *e;
            s.t0 += shift;
            s.tp += shift;
            s
        })
        .collect();
    let value_at =
        |t: f64| -> f64 { shifted.iter().map(|e| e.template_value(t)).sum() };
    let peak = value_at(at);
    if peak <= 0.0 {
        return 0.0;
    }
    let threshold = level * peak;

    // The combined waveform is piecewise linear with breakpoints at each
    // pulse's corners; walk outward from `at` to the crossings.
    let mut breakpoints: Vec<f64> = Vec::with_capacity(shifted.len() * 3 + 1);
    for e in &shifted {
        breakpoints.extend([e.t0, e.tp, e.t0 + e.t1 + e.t2]);
    }
    breakpoints.push(at);
    breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));

    let crossing = |t0: f64, t1: f64| -> f64 {
        let (v0, v1) = (value_at(t0), value_at(t1));
        if (v1 - v0).abs() < 1e-300 {
            t0
        } else {
            t0 + (threshold - v0) / (v1 - v0) * (t1 - t0)
        }
    };
    let mut right = *breakpoints.last().expect("non-empty");
    let mut prev = at;
    for &t in breakpoints.iter().filter(|&&t| t > at) {
        if value_at(t) < threshold {
            right = crossing(prev, t);
            break;
        }
        prev = t;
    }
    let mut left = breakpoints[0];
    let mut prev = at;
    for &t in breakpoints.iter().rev().filter(|&&t| t < at) {
        if value_at(t) < threshold {
            left = crossing(prev, t);
            break;
        }
        prev = t;
    }
    // Extrapolate the level-width to the full swing, as the golden
    // measurement does.
    (right - left) / (1.0 - level)
}

/// Worst-case combined peak when the aggressor set mixes polarities
/// (paper §3.5: "a mixture of rising and falling aggressor inputs").
///
/// For the worst *positive* spike, same-polarity pulses align as
/// adversarially as their windows allow while opposite-polarity pulses
/// are timed as far away as theirs allow (their unavoidable residue is
/// subtracted); symmetrically for the worst negative spike. Returns
/// `(worst_positive, worst_negative)`, both with non-negative `vp`.
///
/// # Examples
///
/// ```
/// use xtalk_core::superpose::{worst_case_mixed, TimingWindow};
/// use xtalk_core::NoiseEstimate;
///
/// let pulse = |polarity: f64| NoiseEstimate {
///     vp: 0.1, t0: 0.0, t1: 1e-10, t2: 1e-10, tp: 1e-10,
///     wn: 2e-10, m: 1.0, polarity,
/// };
/// // One rising, one falling, full freedom: they never overlap in the
/// // worst case, so each polarity's worst spike is a single pulse.
/// let wide = TimingWindow::new(-1e-9, 1e-9);
/// let (pos, neg) = worst_case_mixed(&[(pulse(1.0), wide), (pulse(-1.0), wide)]);
/// assert!((pos.vp - 0.1).abs() < 1e-12);
/// assert!((neg.vp - 0.1).abs() < 1e-12);
/// ```
pub fn worst_case_mixed(
    contributions: &[(NoiseEstimate, TimingWindow)],
) -> (CombinedNoise, CombinedNoise) {
    let one_side = |polarity: f64| -> CombinedNoise {
        let allies: Vec<(NoiseEstimate, TimingWindow)> = contributions
            .iter()
            .filter(|(e, _)| e.polarity == polarity)
            .cloned()
            .collect();
        if allies.is_empty() {
            return CombinedNoise {
                vp: 0.0,
                at: 0.0,
                aligned: 0,
            };
        }
        let foes: Vec<(NoiseEstimate, TimingWindow)> = contributions
            .iter()
            .filter(|(e, _)| e.polarity != polarity)
            .cloned()
            .collect();

        // Candidates: plateau breakpoints of the allies plus the foes'
        // extreme placements (the objective is piecewise linear in t).
        let mut candidates = Vec::new();
        for (e, w) in &allies {
            let lo = e.tp + w.min_shift;
            let hi = e.tp + w.max_shift;
            candidates.extend([lo - e.t1, lo, hi, hi + e.t2]);
        }
        for (e, w) in &foes {
            for shift in [w.min_shift, w.max_shift] {
                candidates.extend([
                    e.t0 + shift,
                    e.tp + shift,
                    e.t0 + e.wn + shift,
                ]);
            }
        }

        let mut best = CombinedNoise {
            vp: f64::NEG_INFINITY,
            at: 0.0,
            aligned: 0,
        };
        for &t in &candidates {
            let mut sum = 0.0;
            let mut aligned = 0;
            for (e, w) in &allies {
                let v = plateau_value(e, w, t);
                sum += v;
                if (v - e.vp).abs() <= 1e-12 * e.vp {
                    aligned += 1;
                }
            }
            for (e, w) in &foes {
                sum -= anti_plateau_value(e, w, t);
            }
            if sum > best.vp {
                best = CombinedNoise {
                    vp: sum,
                    at: t,
                    aligned,
                };
            }
        }
        best.vp = best.vp.max(0.0);
        best
    };
    (one_side(1.0), one_side(-1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse(tp: f64, vp: f64, t1: f64, t2: f64) -> NoiseEstimate {
        NoiseEstimate {
            vp,
            t0: tp - t1,
            t1,
            t2,
            tp,
            wn: t1 + t2,
            m: t2 / t1,
            polarity: 1.0,
        }
    }

    #[test]
    fn single_pulse_peak_is_its_own_worst_case() {
        let p = pulse(1e-10, 0.2, 5e-11, 1e-10);
        let c = worst_case(&[(p, TimingWindow::pinned())]);
        assert!((c.vp - 0.2).abs() < 1e-15);
        assert!((c.at - 1e-10).abs() < 1e-15);
        assert_eq!(c.aligned, 1);
    }

    #[test]
    fn overlapping_windows_sum_peaks() {
        let a = pulse(0.0, 0.15, 1e-10, 1e-10);
        let b = pulse(3e-10, 0.1, 1e-10, 2e-10);
        let w = TimingWindow::new(-5e-10, 5e-10);
        let c = worst_case(&[(a, w), (b, w)]);
        assert!((c.vp - 0.25).abs() < 1e-12);
        assert_eq!(c.aligned, 2);
    }

    #[test]
    fn pinned_disjoint_pulses_do_not_sum() {
        let a = pulse(0.0, 0.15, 1e-11, 1e-11);
        let b = pulse(1e-9, 0.1, 1e-11, 1e-11);
        let c = worst_case(&[(a, TimingWindow::pinned()), (b, TimingWindow::pinned())]);
        assert!((c.vp - 0.15).abs() < 1e-12);
        assert_eq!(c.aligned, 1);
    }

    #[test]
    fn partial_overlap_gives_intermediate_value() {
        // Peaks pinned 1 t1 apart: at a's peak, b contributes half its rise.
        let a = pulse(1e-10, 0.2, 1e-10, 1e-10);
        let b = pulse(2e-10, 0.2, 2e-10, 2e-10);
        let c = worst_case(&[(a, TimingWindow::pinned()), (b, TimingWindow::pinned())]);
        assert!(c.vp > 0.2 + 1e-6, "some overlap must help: {}", c.vp);
        assert!(c.vp < 0.4 - 1e-6, "full alignment impossible: {}", c.vp);
    }

    #[test]
    fn window_slack_exactly_bridging_the_gap_sums() {
        let a = pulse(0.0, 0.1, 1e-10, 1e-10);
        let b = pulse(4e-10, 0.1, 1e-10, 1e-10);
        // b may shift earlier by up to 4e-10: exactly enough.
        let c = worst_case(&[
            (a, TimingWindow::pinned()),
            (b, TimingWindow::new(-4e-10, 0.0)),
        ]);
        assert!((c.vp - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_zero() {
        let c = worst_case(&[]);
        assert_eq!(c.vp, 0.0);
        assert_eq!(c.aligned, 0);
    }

    #[test]
    #[should_panic(expected = "one polarity")]
    fn mixed_polarity_panics() {
        let a = pulse(0.0, 0.1, 1e-10, 1e-10);
        let mut b = a;
        b.polarity = -1.0;
        worst_case(&[(a, TimingWindow::pinned()), (b, TimingWindow::pinned())]);
    }

    fn signed_pulse(tp: f64, vp: f64, polarity: f64) -> NoiseEstimate {
        NoiseEstimate {
            vp,
            t0: tp - 1e-10,
            t1: 1e-10,
            t2: 1e-10,
            tp,
            wn: 2e-10,
            m: 1.0,
            polarity,
        }
    }

    #[test]
    fn mixed_with_freedom_separates_polarities() {
        let wide = TimingWindow::new(-1e-9, 1e-9);
        let (pos, neg) = worst_case_mixed(&[
            (signed_pulse(0.0, 0.2, 1.0), wide),
            (signed_pulse(0.0, 0.15, 1.0), wide),
            (signed_pulse(0.0, 0.1, -1.0), wide),
        ]);
        // Positive pulses align, negative one is timed away.
        assert!((pos.vp - 0.35).abs() < 1e-12, "{}", pos.vp);
        assert_eq!(pos.aligned, 2);
        assert!((neg.vp - 0.1).abs() < 1e-12);
    }

    #[test]
    fn pinned_opposite_pulse_subtracts() {
        // Both pulses pinned at the same instant: the falling one eats
        // into the rising one's worst positive spike.
        let pinned = TimingWindow::pinned();
        let (pos, neg) = worst_case_mixed(&[
            (signed_pulse(1e-10, 0.2, 1.0), pinned),
            (signed_pulse(1e-10, 0.08, -1.0), pinned),
        ]);
        assert!((pos.vp - 0.12).abs() < 1e-12, "{}", pos.vp);
        assert!(neg.vp < 0.08 - 1e-12, "{}", neg.vp);
    }

    #[test]
    fn mixed_dominant_negative_side_clamps_positive_to_zero() {
        let pinned = TimingWindow::pinned();
        let (pos, _) = worst_case_mixed(&[
            (signed_pulse(1e-10, 0.05, 1.0), pinned),
            (signed_pulse(1e-10, 0.3, -1.0), pinned),
        ]);
        // A huge pinned opposite pulse can null the positive worst case
        // but never make it negative.
        assert_eq!(pos.vp, 0.0);
    }

    #[test]
    fn mixed_single_polarity_matches_worst_case() {
        let w = TimingWindow::new(-2e-10, 2e-10);
        let cs = [
            (signed_pulse(0.0, 0.1, 1.0), w),
            (signed_pulse(3e-10, 0.2, 1.0), w),
        ];
        let plain = worst_case(&cs);
        let (pos, neg) = worst_case_mixed(&cs);
        assert!((plain.vp - pos.vp).abs() < 1e-12);
        assert_eq!(neg.vp, 0.0);
    }

    #[test]
    fn combined_width_of_single_pinned_triangle_matches_template() {
        // A single triangle at 10% level, extrapolated: exactly Wn.
        let p = pulse(1e-10, 0.2, 1e-10, 2e-10);
        let cs = [(p, TimingWindow::pinned())];
        let c = worst_case(&cs);
        let w = combined_width(&cs, c.at, 0.1);
        assert!(
            (w - p.wn).abs() < 1e-3 * p.wn,
            "width {w} vs template {}",
            p.wn
        );
    }

    #[test]
    fn combined_width_grows_when_pulses_overlap_partially() {
        let a = pulse(1e-10, 0.2, 1e-10, 1e-10);
        let b = pulse(2.5e-10, 0.2, 1e-10, 1e-10);
        let pinned = TimingWindow::pinned();
        let cs = [(a, pinned), (b, pinned)];
        let c = worst_case(&cs);
        let w = combined_width(&cs, c.at, 0.1);
        // Two staggered pulses make a wider combined bump than either alone.
        assert!(w > a.wn, "combined {w} vs single {}", a.wn);
    }

    #[test]
    fn combined_width_with_full_alignment_matches_larger_pulse_scale() {
        let a = pulse(0.0, 0.2, 1e-10, 1e-10);
        let b = pulse(5e-10, 0.1, 2e-10, 2e-10);
        let wide = TimingWindow::new(-1e-9, 1e-9);
        let cs = [(a, wide), (b, wide)];
        let c = worst_case(&cs);
        let w = combined_width(&cs, c.at, 0.1);
        // Aligned sum is at least as wide as the narrow pulse and no wider
        // than the sum of both bases.
        assert!(w >= a.wn);
        assert!(w <= a.wn + b.wn);
    }

    #[test]
    fn combined_width_empty_is_zero() {
        assert_eq!(combined_width(&[], 0.0, 0.1), 0.0);
    }

    #[test]
    fn envelope_matches_plateau_geometry() {
        let p = pulse(1e-10, 0.2, 5e-11, 1e-10);
        let w = TimingWindow::new(0.0, 1e-10);
        let cs = [(p, w)];
        // On the plateau.
        assert!((combined_value_at(&cs, 1.5e-10) - 0.2).abs() < 1e-12);
        // Half way down the rising flank before the earliest peak.
        assert!((combined_value_at(&cs, 1e-10 - 2.5e-11) - 0.1).abs() < 1e-12);
        // Beyond the fall of the latest placement.
        assert_eq!(combined_value_at(&cs, 1e-9), 0.0);
    }
}
