//! Template noise waveforms (paper §3.1, Figure 2).
//!
//! The metrics work by matching the first three output moments against one
//! of two simplified waveforms:
//!
//! * [`PwlTemplate`] — triangular pulse: linear rise over `T1`, linear fall
//!   over `T2 = m·T1` (metric I);
//! * [`LinExpTemplate`] — linear rise over `T1`, exponential decay with
//!   time constant `τ₂ = m·T1/λ` (metric II), eq. (2).
//!
//! Each template knows its exact Laplace-domain moments `e1, e2, e3`
//! (eqs. 21–23 and 26–28) and can evaluate itself in the time domain —
//! which is exactly what the property tests exploit: the closed-form
//! moments must equal numerically integrated ones, and a metric fed a
//! template's own moments must reconstruct the template.

/// Triangular (piecewise-linear) noise template of metric I.
///
/// # Examples
///
/// ```
/// use xtalk_core::template::PwlTemplate;
///
/// let t = PwlTemplate::new(1e-10, 5e-11, 2.0, 0.3);
/// assert_eq!(t.value(1e-10), 0.0);           // arrival
/// assert!((t.value(1.5e-10) - 0.3).abs() < 1e-15); // peak at T0+T1
/// let [e1, _, _] = t.moments();
/// assert!((e1 - 0.5 * 0.3 * 1.5e-10).abs() < 1e-24); // area
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PwlTemplate {
    /// Arrival time `T0`.
    pub t0: f64,
    /// Rise time `T1`.
    pub t1: f64,
    /// Shape ratio `m = T2/T1`.
    pub m: f64,
    /// Peak `Vp`.
    pub vp: f64,
}

impl PwlTemplate {
    /// Creates a template.
    ///
    /// # Panics
    ///
    /// Panics unless `t1 > 0`, `m > 0`, `vp > 0` and all are finite.
    pub fn new(t0: f64, t1: f64, m: f64, vp: f64) -> Self {
        assert!(t0.is_finite(), "t0 must be finite");
        assert!(t1.is_finite() && t1 > 0.0, "t1 must be positive");
        assert!(m.is_finite() && m > 0.0, "m must be positive");
        assert!(vp.is_finite() && vp > 0.0, "vp must be positive");
        PwlTemplate { t0, t1, m, vp }
    }

    /// Fall time `T2 = m·T1`.
    pub fn t2(&self) -> f64 {
        self.m * self.t1
    }

    /// Pulse width `T1 + T2`.
    pub fn wn(&self) -> f64 {
        self.t1 * (1.0 + self.m)
    }

    /// Peak time `T0 + T1`.
    pub fn tp(&self) -> f64 {
        self.t0 + self.t1
    }

    /// Template value at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        let dt = t - self.t0;
        if dt <= 0.0 {
            0.0
        } else if dt <= self.t1 {
            self.vp * dt / self.t1
        } else {
            let fall = dt - self.t1;
            (self.vp * (1.0 - fall / self.t2())).max(0.0)
        }
    }

    /// Closed-form moments `[e1, e2, e3]` (paper eqs. 21–23).
    pub fn moments(&self) -> [f64; 3] {
        let (t0, t1, m, vp) = (self.t0, self.t1, self.m, self.vp);
        let e1 = (m + 1.0) / 2.0 * vp * t1;
        let e2 = -(m + 1.0) / 6.0 * vp * t1 * ((m + 2.0) * t1 + 3.0 * t0);
        let e3 = (m + 1.0) / 24.0
            * vp
            * t1
            * ((m * m + 3.0 * m + 3.0) * t1 * t1
                + 4.0 * (m + 2.0) * t0 * t1
                + 6.0 * t0 * t0);
        [e1, e2, e3]
    }
}

/// Linear-rise / exponential-decay noise template of metric II (eq. 2).
///
/// The decay time constant is `τ₂ = T2/λ = m·T1/λ`, with `λ` converting
/// between the 10–90% extrapolated transition time and the exponential
/// time constant (eq. 7; default [`crate::LAMBDA`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinExpTemplate {
    /// Arrival time `T0`.
    pub t0: f64,
    /// Rise time `T1`.
    pub t1: f64,
    /// Shape ratio `m = T2/T1`.
    pub m: f64,
    /// Transition-time/shape factor `λ`.
    pub lambda: f64,
    /// Peak `Vp`.
    pub vp: f64,
}

impl LinExpTemplate {
    /// Creates a template.
    ///
    /// # Panics
    ///
    /// Panics unless `t1 > 0`, `m > 0`, `lambda > 0`, `vp > 0` and all are
    /// finite.
    pub fn new(t0: f64, t1: f64, m: f64, lambda: f64, vp: f64) -> Self {
        assert!(t0.is_finite(), "t0 must be finite");
        assert!(t1.is_finite() && t1 > 0.0, "t1 must be positive");
        assert!(m.is_finite() && m > 0.0, "m must be positive");
        assert!(lambda.is_finite() && lambda > 0.0, "lambda must be positive");
        assert!(vp.is_finite() && vp > 0.0, "vp must be positive");
        LinExpTemplate {
            t0,
            t1,
            m,
            lambda,
            vp,
        }
    }

    /// Decay time constant `τ₂ = m·T1/λ`.
    pub fn tau2(&self) -> f64 {
        self.m * self.t1 / self.lambda
    }

    /// Equivalent second transition time `T2 = λ·τ₂ = m·T1`.
    pub fn t2(&self) -> f64 {
        self.m * self.t1
    }

    /// Pulse width `T1 + T2` (eq. 53 convention).
    pub fn wn(&self) -> f64 {
        self.t1 * (1.0 + self.m)
    }

    /// Peak time `T0 + T1`.
    pub fn tp(&self) -> f64 {
        self.t0 + self.t1
    }

    /// Template value at time `t` (eq. 2).
    pub fn value(&self, t: f64) -> f64 {
        let dt = t - self.t0;
        if dt <= 0.0 {
            0.0
        } else if dt <= self.t1 {
            self.vp * dt / self.t1
        } else {
            self.vp * (-(dt - self.t1) / self.tau2()).exp()
        }
    }

    /// Closed-form moments `[e1, e2, e3]` (paper eqs. 26–28), with
    /// `α = m/λ`:
    ///
    /// ```text
    /// e1 =  Vp·T1·(α + 1/2)
    /// e2 = −Vp·T1·[(α² + α + 1/3)·T1 + (α + 1/2)·T0]
    /// e3 =  Vp·T1·[(α³ + α² + α/2 + 1/8)·T1²
    ///              + (α² + α + 1/3)·T1·T0 + (α + 1/2)·T0²/2]
    /// ```
    pub fn moments(&self) -> [f64; 3] {
        let (t0, t1, vp) = (self.t0, self.t1, self.vp);
        let a = self.m / self.lambda;
        let e1 = vp * t1 * (a + 0.5);
        let e2 = -vp * t1 * ((a * a + a + 1.0 / 3.0) * t1 + (a + 0.5) * t0);
        let e3 = vp
            * t1
            * ((a * a * a + a * a + a / 2.0 + 1.0 / 8.0) * t1 * t1
                + (a * a + a + 1.0 / 3.0) * t1 * t0
                + 0.5 * (a + 0.5) * t0 * t0);
        [e1, e2, e3]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically integrates `[∫v, −∫t·v, ∫t²·v/2]` for comparison with
    /// the closed forms.
    fn numeric_moments(value: impl Fn(f64) -> f64, t_end: f64) -> [f64; 3] {
        let n = 2_000_000;
        let dt = t_end / n as f64;
        let mut m = [0.0f64; 3];
        for k in 0..n {
            let t = (k as f64 + 0.5) * dt;
            let v = value(t) * dt;
            m[0] += v;
            m[1] -= t * v;
            m[2] += 0.5 * t * t * v;
        }
        m
    }

    #[test]
    fn pwl_moments_match_quadrature() {
        let t = PwlTemplate::new(2e-10, 1e-10, 2.5, 0.4);
        let analytic = t.moments();
        let numeric = numeric_moments(|x| t.value(x), 2e-9);
        for k in 0..3 {
            assert!(
                (analytic[k] - numeric[k]).abs() < 1e-5 * analytic[k].abs(),
                "moment {k}: {} vs {}",
                analytic[k],
                numeric[k]
            );
        }
    }

    #[test]
    fn linexp_moments_match_quadrature() {
        let t = LinExpTemplate::new(1e-10, 8e-11, 1.7, crate::LAMBDA, 0.25);
        let analytic = t.moments();
        // Exponential tail: integrate far out.
        let numeric = numeric_moments(|x| t.value(x), 6e-9);
        for k in 0..3 {
            assert!(
                (analytic[k] - numeric[k]).abs() < 1e-4 * analytic[k].abs(),
                "moment {k}: {} vs {}",
                analytic[k],
                numeric[k]
            );
        }
    }

    #[test]
    fn pwl_geometry() {
        let t = PwlTemplate::new(1e-10, 5e-11, 2.0, 0.3);
        assert_eq!(t.t2(), 1e-10);
        assert!((t.wn() - 1.5e-10).abs() < 1e-24);
        assert_eq!(t.tp(), 1.5e-10);
        assert_eq!(t.value(0.0), 0.0);
        assert!((t.value(t.tp()) - 0.3).abs() < 1e-15);
        assert_eq!(t.value(1e-9), 0.0); // beyond the fall
    }

    #[test]
    fn linexp_tail_decays_with_tau2() {
        let t = LinExpTemplate::new(0.0, 1e-10, 2.0, crate::LAMBDA, 0.5);
        let tau = t.tau2();
        let v1 = t.value(1e-10 + tau);
        assert!((v1 - 0.5 * (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn linexp_transition_time_consistency() {
        // T2 = λ·τ2 by construction.
        let t = LinExpTemplate::new(0.0, 1e-10, 1.3, crate::LAMBDA, 0.5);
        assert!((t.t2() - t.lambda * t.tau2()).abs() < 1e-22);
    }

    #[test]
    #[should_panic(expected = "m must be positive")]
    fn zero_m_panics() {
        PwlTemplate::new(0.0, 1e-10, 0.0, 0.1);
    }
}
