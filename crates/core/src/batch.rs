//! Structure-of-arrays batched evaluation of the closed-form metrics.
//!
//! Sweeps and audits evaluate the paper's metrics over thousands of cases.
//! Going through [`crate::NoiseAnalyzer`] per case pays a struct round-trip
//! and an atomic observability counter per estimate; this module instead
//! stores the moment lanes `f1, f2, f3` (plus polarity and input rise
//! time) in flat arrays and runs the metric arithmetic — the paper's five
//! basic operations `+ − × ÷ √` — lane by lane over them, amortizing the
//! counters over the whole batch.
//!
//! **Bit-equivalence contract:** for every lane `i`,
//! [`EstimateBatch::result`] returns exactly what
//! [`crate::NoiseAnalyzer::estimate_for`] returns for the same moments,
//! rise time and metric kind — same values bit for bit, same error
//! variant and payload. The kernels share the lane-level formula bodies
//! with the scalar entry points (`metric1::estimate_raw`,
//! `metric2::estimate_raw`, `output::t_w_raw`), so the equivalence holds
//! by construction; the audit's SoA-vs-scalar invariant family and the
//! crate's proptests re-verify it on random cases.
//!
//! # Examples
//!
//! ```
//! use xtalk_core::{MetricKind, MomentBatch, NoiseAnalyzer, OutputMoments};
//!
//! let f = OutputMoments::from_raw(1e-11, -2e-21, 2.6e-31, 1.0)?;
//! let mut batch = MomentBatch::new();
//! batch.push(&f, 1e-10);
//! let est = batch.estimates(MetricKind::Two);
//! assert_eq!(
//!     est.result(0)?,
//!     NoiseAnalyzer::estimate_for(&f, 1e-10, MetricKind::Two)?,
//! );
//! # Ok::<(), xtalk_core::MetricError>(())
//! ```

use crate::analyzer::MetricKind;
use crate::{
    metric1, metric2, output, shape_ratio_m, MetricError, NoiseBounds, NoiseEstimate,
    OutputMoments, LAMBDA,
};

/// Flat-array (structure-of-arrays) storage of per-case output moments —
/// the input side of the batched metric kernels.
#[derive(Debug, Clone, Default)]
pub struct MomentBatch {
    f1: Vec<f64>,
    f2: Vec<f64>,
    f3: Vec<f64>,
    polarity: Vec<f64>,
    t_r: Vec<f64>,
}

impl MomentBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `n` lanes.
    pub fn with_capacity(n: usize) -> Self {
        MomentBatch {
            f1: Vec::with_capacity(n),
            f2: Vec::with_capacity(n),
            f3: Vec::with_capacity(n),
            polarity: Vec::with_capacity(n),
            t_r: Vec::with_capacity(n),
        }
    }

    /// Appends one lane: the case's output moments plus the input's
    /// effective rise time (`≤ 0` = ideal step).
    pub fn push(&mut self, f: &OutputMoments, t_r: f64) {
        self.f1.push(f.f1());
        self.f2.push(f.f2());
        self.f3.push(f.f3());
        self.polarity.push(f.polarity());
        self.t_r.push(t_r);
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.f1.len()
    }

    /// `true` when the batch holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.f1.is_empty()
    }

    /// Evaluates the chosen metric over every lane.
    ///
    /// Per lane this performs the same dispatch as
    /// [`crate::NoiseAnalyzer::estimate_for`]: positive rise time seeds the
    /// shape ratio from eq. (54), otherwise the symmetric `m = 1` shape is
    /// used. Failed lanes carry their [`MetricError`] in the result's
    /// status array instead of aborting the batch.
    pub fn estimates(&self, kind: MetricKind) -> EstimateBatch {
        let n = self.len();
        let mut out = EstimateBatch::nan_filled(kind, n);
        let mut counted = 0u64;
        for i in 0..n {
            match self.eval_lane(i, kind, &mut counted) {
                Ok(e) => out.set(i, &e),
                Err(err) => out.status[i] = Some(err),
            }
        }
        if counted > 0 {
            match kind {
                MetricKind::One | MetricKind::OneSymmetric => {
                    xtalk_obs::counter!("core.metric1.estimates").add(counted);
                }
                MetricKind::Two => {
                    xtalk_obs::counter!("core.metric2.estimates").add(counted);
                }
            }
        }
        xtalk_obs::counter!(perf: "core.batch.lanes").add(n as u64);
        out
    }

    /// Metric I parameter bounds (eqs. 37–40) over every lane.
    pub fn bounds(&self) -> BoundsBatch {
        let n = self.len();
        let mut out = BoundsBatch::nan_filled(n);
        for i in 0..n {
            match metric1::bounds_raw(self.f1[i], self.f2[i], self.f3[i]) {
                Ok(b) => out.set(i, &b),
                Err(err) => out.status[i] = Some(err),
            }
        }
        if n > 0 {
            xtalk_obs::counter!("core.metric1.bounds").add(n as u64);
        }
        xtalk_obs::counter!(perf: "core.batch.lanes").add(n as u64);
        out
    }

    /// One lane of [`MomentBatch::estimates`]: the exact scalar dispatch of
    /// [`crate::NoiseAnalyzer::estimate_for`], counting (for the Det
    /// counters) each lane that reaches a metric's formula body — the same
    /// lanes the scalar path would count.
    fn eval_lane(
        &self,
        i: usize,
        kind: MetricKind,
        counted: &mut u64,
    ) -> Result<NoiseEstimate, MetricError> {
        let (f1, f2, f3) = (self.f1[i], self.f2[i], self.f3[i]);
        let (pol, t_r) = (self.polarity[i], self.t_r[i]);
        match kind {
            MetricKind::One => {
                if t_r > 0.0 {
                    let m = shape_ratio_m(output::t_w_raw(f1, f2, f3)?, t_r)?;
                    *counted += 1;
                    metric1::estimate_raw(f1, f2, f3, pol, m)
                } else {
                    *counted += 1;
                    metric1::estimate_raw(f1, f2, f3, pol, 1.0)
                }
            }
            MetricKind::OneSymmetric => {
                *counted += 1;
                metric1::estimate_raw(f1, f2, f3, pol, 1.0)
            }
            MetricKind::Two => {
                if t_r > 0.0 {
                    let m = shape_ratio_m(output::t_w_raw(f1, f2, f3)?, t_r)?;
                    *counted += 1;
                    metric2::estimate_raw(LAMBDA, f1, f2, f3, pol, m)
                } else {
                    *counted += 1;
                    metric2::estimate_raw(LAMBDA, f1, f2, f3, pol, 1.0)
                }
            }
        }
    }
}

/// Flat-array results of a batched metric evaluation. Failed lanes hold
/// `NaN` in the value arrays and their error in [`EstimateBatch::status`].
#[derive(Debug, Clone)]
pub struct EstimateBatch {
    kind: MetricKind,
    /// Peak amplitudes `Vp` per lane.
    pub vp: Vec<f64>,
    /// Arrival times `T0` per lane.
    pub t0: Vec<f64>,
    /// Rising transition times `T1` per lane.
    pub t1: Vec<f64>,
    /// Falling transition times `T2` per lane.
    pub t2: Vec<f64>,
    /// Peak times `Tp` per lane.
    pub tp: Vec<f64>,
    /// Pulse widths `Wn` per lane.
    pub wn: Vec<f64>,
    /// Shape ratios `m` per lane.
    pub m: Vec<f64>,
    /// Pulse polarities per lane.
    pub polarity: Vec<f64>,
    /// `None` = lane evaluated; `Some(err)` = the scalar path's error.
    pub status: Vec<Option<MetricError>>,
}

impl EstimateBatch {
    fn nan_filled(kind: MetricKind, n: usize) -> Self {
        EstimateBatch {
            kind,
            vp: vec![f64::NAN; n],
            t0: vec![f64::NAN; n],
            t1: vec![f64::NAN; n],
            t2: vec![f64::NAN; n],
            tp: vec![f64::NAN; n],
            wn: vec![f64::NAN; n],
            m: vec![f64::NAN; n],
            polarity: vec![f64::NAN; n],
            status: vec![None; n],
        }
    }

    fn set(&mut self, i: usize, e: &NoiseEstimate) {
        self.vp[i] = e.vp;
        self.t0[i] = e.t0;
        self.t1[i] = e.t1;
        self.t2[i] = e.t2;
        self.tp[i] = e.tp;
        self.wn[i] = e.wn;
        self.m[i] = e.m;
        self.polarity[i] = e.polarity;
    }

    /// The metric kind this batch evaluated.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.status.len()
    }

    /// `true` when the batch holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }

    /// `true` when lane `i` evaluated successfully.
    pub fn is_ok(&self, i: usize) -> bool {
        self.status[i].is_none()
    }

    /// Number of successfully evaluated lanes.
    pub fn ok_count(&self) -> usize {
        self.status.iter().filter(|s| s.is_none()).count()
    }

    /// Lane `i` as the scalar result it is bit-identical to.
    ///
    /// # Errors
    ///
    /// The lane's [`MetricError`] when it failed to evaluate.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn result(&self, i: usize) -> Result<NoiseEstimate, MetricError> {
        match &self.status[i] {
            Some(err) => Err(err.clone()),
            None => Ok(NoiseEstimate {
                vp: self.vp[i],
                t0: self.t0[i],
                t1: self.t1[i],
                t2: self.t2[i],
                tp: self.tp[i],
                wn: self.wn[i],
                m: self.m[i],
                polarity: self.polarity[i],
            }),
        }
    }
}

/// Flat-array results of batched Metric I bounds (eqs. 37–40). Failed
/// lanes hold `NaN` and their error in [`BoundsBatch::status`].
#[derive(Debug, Clone)]
pub struct BoundsBatch {
    /// Lower `Vp` bounds per lane.
    pub vp_lo: Vec<f64>,
    /// Upper `Vp` bounds per lane.
    pub vp_hi: Vec<f64>,
    /// Lower `T0` bounds per lane.
    pub t0_lo: Vec<f64>,
    /// Upper `T0` bounds per lane.
    pub t0_hi: Vec<f64>,
    /// Lower `Tp` bounds per lane.
    pub tp_lo: Vec<f64>,
    /// Upper `Tp` bounds per lane.
    pub tp_hi: Vec<f64>,
    /// Lower `Wn` bounds per lane.
    pub wn_lo: Vec<f64>,
    /// Upper `Wn` bounds per lane.
    pub wn_hi: Vec<f64>,
    /// `None` = lane evaluated; `Some(err)` = the scalar path's error.
    pub status: Vec<Option<MetricError>>,
}

impl BoundsBatch {
    fn nan_filled(n: usize) -> Self {
        BoundsBatch {
            vp_lo: vec![f64::NAN; n],
            vp_hi: vec![f64::NAN; n],
            t0_lo: vec![f64::NAN; n],
            t0_hi: vec![f64::NAN; n],
            tp_lo: vec![f64::NAN; n],
            tp_hi: vec![f64::NAN; n],
            wn_lo: vec![f64::NAN; n],
            wn_hi: vec![f64::NAN; n],
            status: vec![None; n],
        }
    }

    fn set(&mut self, i: usize, b: &NoiseBounds) {
        self.vp_lo[i] = b.vp.0;
        self.vp_hi[i] = b.vp.1;
        self.t0_lo[i] = b.t0.0;
        self.t0_hi[i] = b.t0.1;
        self.tp_lo[i] = b.tp.0;
        self.tp_hi[i] = b.tp.1;
        self.wn_lo[i] = b.wn.0;
        self.wn_hi[i] = b.wn.1;
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.status.len()
    }

    /// `true` when the batch holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }

    /// `true` when lane `i` evaluated successfully.
    pub fn is_ok(&self, i: usize) -> bool {
        self.status[i].is_none()
    }

    /// Lane `i` as the scalar result it is bit-identical to.
    ///
    /// # Errors
    ///
    /// The lane's [`MetricError`] when it failed to evaluate.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn result(&self, i: usize) -> Result<NoiseBounds, MetricError> {
        match &self.status[i] {
            Some(err) => Err(err.clone()),
            None => Ok(NoiseBounds {
                vp: (self.vp_lo[i], self.vp_hi[i]),
                t0: (self.t0_lo[i], self.t0_hi[i]),
                tp: (self.tp_lo[i], self.tp_hi[i]),
                wn: (self.wn_lo[i], self.wn_hi[i]),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{LinExpTemplate, PwlTemplate};
    use crate::{MetricOne, NoiseAnalyzer};

    /// Bit-level equality between a batch lane and the scalar reference:
    /// `Ok` fields must match to the bit, errors must be the same variant
    /// with the same payload (compared via `Debug`, so NaN payloads work).
    fn assert_lane_matches(
        got: &Result<NoiseEstimate, MetricError>,
        want: &Result<NoiseEstimate, MetricError>,
    ) {
        match (got, want) {
            (Ok(g), Ok(w)) => {
                for (name, a, b) in [
                    ("vp", g.vp, w.vp),
                    ("t0", g.t0, w.t0),
                    ("t1", g.t1, w.t1),
                    ("t2", g.t2, w.t2),
                    ("tp", g.tp, w.tp),
                    ("wn", g.wn, w.wn),
                    ("m", g.m, w.m),
                    ("polarity", g.polarity, w.polarity),
                ] {
                    assert_eq!(a.to_bits(), b.to_bits(), "{name}: {a} vs {b}");
                }
            }
            (Err(g), Err(w)) => assert_eq!(format!("{g:?}"), format!("{w:?}")),
            _ => panic!("ok/err mismatch: {got:?} vs {want:?}"),
        }
    }

    fn lanes() -> Vec<(OutputMoments, f64)> {
        let mut out = Vec::new();
        for &(t0, t1, m, vp) in &[
            (0.0, 1e-10, 1.0, 0.1),
            (2e-10, 5e-11, 3.0, 0.45),
            (1e-11, 2e-10, 0.2, 0.08),
            (5e-10, 7e-11, 10.0, 0.3),
        ] {
            let [e1, e2, e3] = PwlTemplate::new(t0, t1, m, vp).moments();
            for &tr in &[0.0, 2e-11, 1e-10, 5e-10] {
                out.push((OutputMoments::from_raw(e1, e2, e3, 1.0).unwrap(), tr));
            }
            let [e1, e2, e3] = LinExpTemplate::new(t0, t1, m, LAMBDA, vp).moments();
            out.push((OutputMoments::from_raw(e1, e2, e3, -1.0).unwrap(), 8e-11));
        }
        // Degenerate lanes: cancellation-clamped zero width and genuinely
        // non-physical moments, so the error paths are covered too.
        let (area, c) = (2e-11, 3e-10);
        let f3 = area * c * c / 2.0 * (1.0 - 1e-13);
        out.push((
            OutputMoments::from_raw(area, -area * c, f3, 1.0).unwrap(),
            1e-10,
        ));
        out.push((
            OutputMoments::from_raw(1e-11, -1e-21, 1e-33, 1.0).unwrap(),
            1e-10,
        ));
        out
    }

    #[test]
    fn estimates_are_bit_identical_to_scalar_for_all_kinds() {
        let lanes = lanes();
        let mut batch = MomentBatch::with_capacity(lanes.len());
        for (f, tr) in &lanes {
            batch.push(f, *tr);
        }
        for kind in [MetricKind::One, MetricKind::OneSymmetric, MetricKind::Two] {
            let est = batch.estimates(kind);
            assert_eq!(est.len(), lanes.len());
            assert_eq!(est.kind(), kind);
            for (i, (f, tr)) in lanes.iter().enumerate() {
                let want = NoiseAnalyzer::estimate_for(f, *tr, kind);
                assert_lane_matches(&est.result(i), &want);
                assert_eq!(est.is_ok(i), want.is_ok(), "lane {i}");
            }
        }
    }

    #[test]
    fn bounds_are_bit_identical_to_scalar() {
        let lanes = lanes();
        let mut batch = MomentBatch::with_capacity(lanes.len());
        for (f, tr) in &lanes {
            batch.push(f, *tr);
        }
        let bounds = batch.bounds();
        for (i, (f, _)) in lanes.iter().enumerate() {
            match (bounds.result(i), MetricOne::bounds(f)) {
                (Ok(g), Ok(w)) => {
                    for (a, b) in [
                        (g.vp, w.vp),
                        (g.t0, w.t0),
                        (g.tp, w.tp),
                        (g.wn, w.wn),
                    ] {
                        assert_eq!(a.0.to_bits(), b.0.to_bits());
                        assert_eq!(a.1.to_bits(), b.1.to_bits());
                    }
                }
                (Err(g), Err(w)) => assert_eq!(format!("{g:?}"), format!("{w:?}")),
                (g, w) => panic!("ok/err mismatch: {g:?} vs {w:?}"),
            }
        }
    }

    #[test]
    fn failed_lanes_hold_nan_and_count_as_not_ok() {
        let f = OutputMoments::from_raw(1e-11, -1e-21, 1e-33, 1.0).unwrap();
        let mut batch = MomentBatch::new();
        batch.push(&f, 1e-10);
        let est = batch.estimates(MetricKind::Two);
        assert!(!est.is_ok(0));
        assert_eq!(est.ok_count(), 0);
        assert!(est.vp[0].is_nan());
        assert!(matches!(
            est.result(0),
            Err(MetricError::NonPhysicalMoments { .. })
        ));
    }

    #[test]
    fn empty_batch_is_empty() {
        let batch = MomentBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        let est = batch.estimates(MetricKind::One);
        assert!(est.is_empty());
        let bounds = batch.bounds();
        assert!(bounds.is_empty());
    }
}
