use crate::{
    MetricError, MetricOne, MetricTwo, NoiseBounds, NoiseEstimate, OutputMoments,
};
use xtalk_circuit::{signal::InputSignal, NetId, Network, NodeId};
use xtalk_moments::MomentEngine;

/// Which closed-form metric to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MetricKind {
    /// Metric I with `m` from eq. (54); symmetric `m = 1` for steps.
    One,
    /// Metric I with the fixed symmetric shape `m = 1` (eqs. 41–46).
    OneSymmetric,
    /// Metric II with the default `λ` — the paper's recommended metric.
    #[default]
    Two,
}

/// High-level facade: network in, noise estimates out.
///
/// Owns a factored [`MomentEngine`] for the network, so per-aggressor
/// estimates cost a few `O(n²)` solves plus constant-time metric formulas.
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct NoiseAnalyzer<'a> {
    network: &'a Network,
    engine: MomentEngine,
}

impl<'a> NoiseAnalyzer<'a> {
    /// Builds the analyzer (factors the MNA system once).
    ///
    /// # Errors
    ///
    /// Propagates moment-engine construction failures.
    pub fn new(network: &'a Network) -> Result<Self, MetricError> {
        Ok(NoiseAnalyzer {
            network,
            engine: MomentEngine::new(network)?,
        })
    }

    /// The analyzed network.
    pub fn network(&self) -> &Network {
        self.network
    }

    /// The underlying moment engine (for baselines and diagnostics).
    pub fn engine(&self) -> &MomentEngine {
        &self.engine
    }

    /// Exact transfer Taylor coefficients `h0..h3` from `aggressor` to the
    /// victim output.
    ///
    /// # Errors
    ///
    /// Propagates moment-engine failures.
    pub fn transfer_taylor(&self, aggressor: NetId) -> Result<Vec<f64>, MetricError> {
        Ok(self
            .engine
            .transfer_taylor(aggressor, self.network.victim_output(), 4)?)
    }

    /// Output moments `f1..f3` for one aggressor and input, observed at the
    /// victim output (eqs. 11–14).
    ///
    /// # Errors
    ///
    /// [`MetricError::NoNoise`] when the aggressor couples nothing into
    /// the observation node.
    pub fn output_moments(
        &self,
        aggressor: NetId,
        input: &InputSignal,
    ) -> Result<OutputMoments, MetricError> {
        self.output_moments_at(aggressor, input, self.network.victim_output())
    }

    /// Like [`NoiseAnalyzer::output_moments`], observed at an arbitrary
    /// victim node.
    ///
    /// # Errors
    ///
    /// As [`NoiseAnalyzer::output_moments`].
    pub fn output_moments_at(
        &self,
        aggressor: NetId,
        input: &InputSignal,
        node: NodeId,
    ) -> Result<OutputMoments, MetricError> {
        let h = self.engine.transfer_taylor(aggressor, node, 4)?;
        OutputMoments::from_transfer(&h, input)
    }

    /// Full closed-form noise estimate for one aggressor switching.
    ///
    /// # Errors
    ///
    /// Propagates moment and metric errors ([`MetricError::NoNoise`],
    /// [`MetricError::NonPhysicalMoments`], …).
    pub fn analyze(
        &self,
        aggressor: NetId,
        input: &InputSignal,
        kind: MetricKind,
    ) -> Result<NoiseEstimate, MetricError> {
        self.analyze_at(aggressor, input, kind, self.network.victim_output())
    }

    /// Like [`NoiseAnalyzer::analyze`], observed at an arbitrary victim
    /// node (e.g. a non-critical sink of a multi-fanout victim).
    ///
    /// # Errors
    ///
    /// As [`NoiseAnalyzer::analyze`].
    pub fn analyze_at(
        &self,
        aggressor: NetId,
        input: &InputSignal,
        kind: MetricKind,
        node: NodeId,
    ) -> Result<NoiseEstimate, MetricError> {
        let f = self.output_moments_at(aggressor, input, node)?;
        Self::estimate_from_moments(&f, input, kind)
    }

    /// The paper's *fully closed-form* pipeline: the transfer coefficients
    /// come from the tree formulas (`a1`, `b1`, `b2` — refs. \[11\]\[13\]; no
    /// matrix solve anywhere) instead of the exact MNA recursion. A few
    /// percent less accurate than [`NoiseAnalyzer::analyze`] (the
    /// second-order numerator terms are truncated, as in the paper), but
    /// `O(n + k²)` per net with five basic operations only.
    ///
    /// # Errors
    ///
    /// As [`NoiseAnalyzer::analyze`].
    pub fn analyze_closed_form(
        &self,
        aggressor: NetId,
        input: &InputSignal,
        kind: MetricKind,
    ) -> Result<NoiseEstimate, MetricError> {
        let fit = xtalk_moments::tree::closed_form_fit(
            self.network,
            aggressor,
            self.network.victim_output(),
        );
        let f = OutputMoments::from_transfer(&fit.taylor(), input)?;
        Self::estimate_from_moments(&f, input, kind)
    }

    fn estimate_from_moments(
        f: &OutputMoments,
        input: &InputSignal,
        kind: MetricKind,
    ) -> Result<NoiseEstimate, MetricError> {
        Self::estimate_for(f, input.effective_rise_time(), kind)
    }

    /// Single-case metric dispatch on already-computed output moments:
    /// `t_r` is the input's effective rise time (`≤ 0` = ideal step, which
    /// falls back to the symmetric shape `m = 1`). This is the scalar
    /// reference the structure-of-arrays evaluator in [`crate::batch`] is
    /// bit-identical to.
    ///
    /// # Errors
    ///
    /// Propagates the metric errors of [`MetricOne`] / [`MetricTwo`].
    pub fn estimate_for(
        f: &OutputMoments,
        t_r: f64,
        kind: MetricKind,
    ) -> Result<NoiseEstimate, MetricError> {
        match kind {
            MetricKind::One => {
                if t_r > 0.0 {
                    MetricOne::estimate_auto(f, t_r)
                } else {
                    MetricOne::estimate_symmetric(f)
                }
            }
            MetricKind::OneSymmetric => MetricOne::estimate_symmetric(f),
            MetricKind::Two => {
                let metric = MetricTwo::default();
                if t_r > 0.0 {
                    metric.estimate_auto(f, t_r)
                } else {
                    metric.estimate(f, 1.0)
                }
            }
        }
    }

    /// Estimates for every listed aggressor (one switching at a time —
    /// combine with [`crate::superpose`] for the worst case).
    ///
    /// Aggressors with no coupling into the output are skipped rather than
    /// reported as errors.
    ///
    /// # Errors
    ///
    /// Propagates non-`NoNoise` failures.
    pub fn analyze_all(
        &self,
        inputs: &[(NetId, InputSignal)],
        kind: MetricKind,
    ) -> Result<Vec<(NetId, NoiseEstimate)>, MetricError> {
        let mut out = Vec::with_capacity(inputs.len());
        for (net, input) in inputs {
            match self.analyze(*net, input, kind) {
                Ok(est) => out.push((*net, est)),
                Err(MetricError::NoNoise) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Closed-form parameter bounds (eqs. 37–40) for one aggressor.
    ///
    /// # Errors
    ///
    /// As [`NoiseAnalyzer::output_moments`].
    pub fn bounds(
        &self,
        aggressor: NetId,
        input: &InputSignal,
    ) -> Result<NoiseBounds, MetricError> {
        let f = self.output_moments(aggressor, input)?;
        MetricOne::bounds(&f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_circuit::{NetRole, NetworkBuilder};

    fn two_aggressor_network() -> (Network, Vec<NetId>) {
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a1 = b.add_net("a1", NetRole::Aggressor);
        let a2 = b.add_net("a2", NetRole::Aggressor);
        let v0 = b.add_node(v, "v0");
        let v1 = b.add_node(v, "v1");
        let a1n = b.add_node(a1, "a1n");
        let a2n = b.add_node(a2, "a2n");
        b.add_driver(v, v0, 300.0).unwrap();
        b.add_driver(a1, a1n, 150.0).unwrap();
        b.add_driver(a2, a2n, 150.0).unwrap();
        b.add_resistor(v0, v1, 80.0).unwrap();
        b.add_ground_cap(v1, 5e-15).unwrap();
        b.add_sink(v1, 10e-15).unwrap();
        b.add_sink(a1n, 10e-15).unwrap();
        b.add_sink(a2n, 10e-15).unwrap();
        b.add_coupling_cap(a1n, v1, 15e-15).unwrap();
        b.add_coupling_cap(a2n, v0, 8e-15).unwrap();
        let net = b.build().unwrap();
        let aggs = net.aggressor_nets().map(|(id, _)| id).collect();
        (net, aggs)
    }

    #[test]
    fn all_metric_kinds_produce_consistent_estimates() {
        let (net, aggs) = two_aggressor_network();
        let analyzer = NoiseAnalyzer::new(&net).unwrap();
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        for kind in [MetricKind::One, MetricKind::OneSymmetric, MetricKind::Two] {
            let est = analyzer.analyze(aggs[0], &input, kind).unwrap();
            assert!(est.vp > 0.0 && est.vp < 1.0, "{kind:?}: vp = {}", est.vp);
            assert!((est.tp - (est.t0 + est.t1)).abs() < 1e-9 * est.t1);
            assert!((est.wn - (est.t1 + est.t2)).abs() < 1e-9 * est.wn);
        }
    }

    #[test]
    fn estimates_respect_bounds() {
        let (net, aggs) = two_aggressor_network();
        let analyzer = NoiseAnalyzer::new(&net).unwrap();
        let input = InputSignal::rising_ramp(0.0, 1.2e-10);
        let bounds = analyzer.bounds(aggs[0], &input).unwrap();
        for kind in [MetricKind::One, MetricKind::OneSymmetric] {
            let est = analyzer.analyze(aggs[0], &input, kind).unwrap();
            assert!(bounds.contains(&est), "{kind:?}: {est:?} vs {bounds:?}");
        }
    }

    #[test]
    fn closer_coupling_gives_larger_noise() {
        // a1 couples at the output node, a2 at the driver node: a1's noise
        // at the output must be larger (coupling-location effect).
        let (net, aggs) = two_aggressor_network();
        let analyzer = NoiseAnalyzer::new(&net).unwrap();
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        let near = analyzer.analyze(aggs[0], &input, MetricKind::Two).unwrap();
        let far = analyzer.analyze(aggs[1], &input, MetricKind::Two).unwrap();
        assert!(near.vp > far.vp, "{} vs {}", near.vp, far.vp);
    }

    #[test]
    fn analyze_all_returns_each_aggressor() {
        let (net, aggs) = two_aggressor_network();
        let analyzer = NoiseAnalyzer::new(&net).unwrap();
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        let all = analyzer
            .analyze_all(
                &[(aggs[0], input), (aggs[1], input)],
                MetricKind::Two,
            )
            .unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn closed_form_pipeline_tracks_exact_moments() {
        let (net, aggs) = two_aggressor_network();
        let analyzer = NoiseAnalyzer::new(&net).unwrap();
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        for kind in [MetricKind::One, MetricKind::Two] {
            let exact = analyzer.analyze(aggs[0], &input, kind).unwrap();
            let closed = analyzer.analyze_closed_form(aggs[0], &input, kind).unwrap();
            // Same a1 (both exact); b2 truncation perturbs the rest a little.
            assert!(
                (closed.vp - exact.vp).abs() < 0.3 * exact.vp,
                "{kind:?}: {} vs {}",
                closed.vp,
                exact.vp
            );
            assert!((closed.wn - exact.wn).abs() < 0.5 * exact.wn);
            assert!(closed.t1 > 0.0 && closed.t2 > 0.0);
        }
    }

    #[test]
    fn falling_input_flips_polarity() {
        let (net, aggs) = two_aggressor_network();
        let analyzer = NoiseAnalyzer::new(&net).unwrap();
        let rise = analyzer
            .analyze(aggs[0], &InputSignal::rising_ramp(0.0, 1e-10), MetricKind::Two)
            .unwrap();
        let fall = analyzer
            .analyze(aggs[0], &InputSignal::falling_ramp(0.0, 1e-10), MetricKind::Two)
            .unwrap();
        assert_eq!(rise.vp, fall.vp);
        assert_eq!(rise.polarity, 1.0);
        assert_eq!(fall.polarity, -1.0);
        assert_eq!(fall.signed_vp(), -rise.vp);
    }

    #[test]
    fn step_input_falls_back_to_symmetric_shape() {
        let (net, aggs) = two_aggressor_network();
        let analyzer = NoiseAnalyzer::new(&net).unwrap();
        let est = analyzer
            .analyze(aggs[0], &InputSignal::step(0.0), MetricKind::One)
            .unwrap();
        assert!((est.m - 1.0).abs() < 1e-12);
        assert!(est.vp > 0.0);
    }

    #[test]
    fn observation_node_matters() {
        let (net, aggs) = two_aggressor_network();
        let analyzer = NoiseAnalyzer::new(&net).unwrap();
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        let driver_node = net.victim_net().driver().node;
        let at_driver = analyzer
            .analyze_at(aggs[0], &input, MetricKind::Two, driver_node)
            .unwrap();
        let at_output = analyzer.analyze(aggs[0], &input, MetricKind::Two).unwrap();
        // Coupling sits at the output node; the driver node sees less.
        assert!(at_driver.vp < at_output.vp);
    }
}
