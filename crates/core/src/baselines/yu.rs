use super::BaselineEstimate;
use crate::MetricError;
use xtalk_circuit::signal::InputSignal;
use xtalk_moments::TwoPoleFit;

/// Yu & Kuh's improved one-pole model (paper ref. \[17\]).
///
/// The transfer function is reduced to a single matched pole
/// `H(s) ≈ a1·s/(1 + b_eff·s)` with `b_eff = −h2/h1` (first-order moment
/// matching), and the saturated-ramp response is evaluated analytically:
/// the peak occurs at the end of the input transition,
///
/// ```text
/// Vp = (a1/t_r)·(1 − e^{−t_r/b_eff})
/// ```
///
/// The model is *not* conservative: a second pole always spreads the pulse
/// and lowers the peak relative to reality on the rising side but the
/// single pole can also undershoot — the tables show errors of both signs.
/// Only `Vp` is reported (the tables' other rows are N/A).
///
/// # Errors
///
/// * [`MetricError::StepInputNeedsExplicitM`] — ideal step input.
/// * [`MetricError::BaselineUnstable`] — non-positive effective pole.
pub fn yu_one_pole(h: &[f64], input: &InputSignal) -> Result<BaselineEstimate, MetricError> {
    assert!(h.len() >= 3, "need transfer Taylor coefficients h0..h2");
    let tr = input.transition();
    if !(tr.is_finite() && tr > 0.0) {
        return Err(MetricError::StepInputNeedsExplicitM);
    }
    let a1 = h[1];
    if a1 == 0.0 {
        return Err(MetricError::NoNoise);
    }
    let b_eff = -h[2] / a1;
    if !(b_eff.is_finite() && b_eff > 0.0) {
        return Err(MetricError::BaselineUnstable {
            baseline: "yu-one-pole",
        });
    }
    let vp = (a1.abs() / tr) * (1.0 - (-tr / b_eff).exp());
    Ok(BaselineEstimate {
        vp: Some(vp),
        ..BaselineEstimate::default()
    })
}

/// Yu & Kuh's two-pole matching model (paper ref. \[17\]).
///
/// The two-pole fit is evaluated in the time domain for the saturated ramp
/// and its peak located numerically (the model itself is closed-form; the
/// peak is not — one of the shortcomings motivating the paper). Reports
/// `Vp` and `Tp`.
///
/// # Errors
///
/// * [`MetricError::StepInputNeedsExplicitM`] — ideal step input.
/// * [`MetricError::BaselineUnstable`] — complex or positive poles: the
///   instability failure mode the paper attributes to this model class.
///
/// # Examples
///
/// ```
/// use xtalk_circuit::signal::InputSignal;
/// use xtalk_core::baselines::yu_two_pole;
/// use xtalk_moments::TwoPoleFit;
///
/// let fit = TwoPoleFit::from_coeffs(1e-11, 2.5e-10, 1e-20); // two real poles
/// let est = yu_two_pole(&fit, &InputSignal::rising_ramp(0.0, 1e-10))?;
/// assert!(est.vp.unwrap() > 0.0);
/// assert!(est.tp.unwrap() > 0.0);
/// # Ok::<(), xtalk_core::MetricError>(())
/// ```
pub fn yu_two_pole(
    fit: &TwoPoleFit,
    input: &InputSignal,
) -> Result<BaselineEstimate, MetricError> {
    let tr = input.transition();
    if !(tr.is_finite() && tr > 0.0) {
        return Err(MetricError::StepInputNeedsExplicitM);
    }
    match fit.ramp_peak(tr) {
        Some((tp, vp)) => Ok(BaselineEstimate {
            vp: Some(vp.abs()),
            tp: Some(input.arrival() + tp),
            ..BaselineEstimate::default()
        }),
        None => Err(MetricError::BaselineUnstable {
            baseline: "yu-two-pole",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_pole_matches_analytic_formula() {
        let (a1, b1) = (2e-11, 1.5e-10);
        let h = [0.0, a1, -a1 * b1, 0.0];
        let tr = 1e-10;
        let est = yu_one_pole(&h, &InputSignal::rising_ramp(0.0, tr)).unwrap();
        let expect = a1 / tr * (1.0 - (-tr / b1).exp());
        assert!((est.vp.unwrap() - expect).abs() < 1e-12 * expect);
        assert!(est.tp.is_none());
    }

    #[test]
    fn one_pole_under_devgan_bound() {
        let (a1, b1) = (2e-11, 1.5e-10);
        let h = [0.0, a1, -a1 * b1, 0.0];
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        let one_pole = yu_one_pole(&h, &input).unwrap().vp.unwrap();
        let devgan = crate::baselines::devgan(a1, &input).unwrap().vp.unwrap();
        assert!(one_pole < devgan);
    }

    #[test]
    fn two_pole_reports_peak_and_time() {
        let fit = TwoPoleFit::from_coeffs(1e-11, 3e-10, 1.5e-20);
        let input = InputSignal::rising_ramp(5e-11, 1e-10);
        let est = yu_two_pole(&fit, &input).unwrap();
        // Arrival shifts the reported peak time.
        assert!(est.tp.unwrap() > 5e-11);
        assert!(est.vp.unwrap() > 0.0);
        assert!(est.wn.is_none());
    }

    #[test]
    fn two_pole_unstable_fit_is_an_error() {
        // Complex poles: b1² < 4 b2.
        let fit = TwoPoleFit::from_coeffs(1e-11, 1e-10, 1e-19);
        assert!(matches!(
            yu_two_pole(&fit, &InputSignal::rising_ramp(0.0, 1e-10)),
            Err(MetricError::BaselineUnstable { .. })
        ));
    }

    #[test]
    fn steps_rejected_by_both() {
        let h = [0.0, 1e-11, -2e-21, 0.0];
        assert!(matches!(
            yu_one_pole(&h, &InputSignal::step(0.0)),
            Err(MetricError::StepInputNeedsExplicitM)
        ));
        let fit = TwoPoleFit::from_coeffs(1e-11, 3e-10, 1.5e-20);
        assert!(matches!(
            yu_two_pole(&fit, &InputSignal::step(0.0)),
            Err(MetricError::StepInputNeedsExplicitM)
        ));
    }

    #[test]
    fn one_pole_degenerate_cases() {
        assert!(matches!(
            yu_one_pole(&[0.0, 0.0, 0.0], &InputSignal::rising_ramp(0.0, 1e-10)),
            Err(MetricError::NoNoise)
        ));
        // Positive h2 → negative pole constant → unstable.
        assert!(matches!(
            yu_one_pole(&[0.0, 1e-11, 2e-21], &InputSignal::rising_ramp(0.0, 1e-10)),
            Err(MetricError::BaselineUnstable { .. })
        ));
    }
}
