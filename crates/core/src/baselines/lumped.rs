use super::BaselineEstimate;
use crate::MetricError;
use xtalk_circuit::{signal::InputSignal, NetId, Network};
use xtalk_moments::TwoPoleFit;

/// Lumped-π reference model (the Figure 5 contrast case).
///
/// Both nets are collapsed to a single node each: the victim keeps its
/// driver resistance `Rd_v` and total grounded capacitance `C_v`, the
/// aggressor likewise, and the full coupling capacitance `C_c` bridges the
/// two. The resulting two-node circuit is *exactly* two-pole, with
///
/// ```text
/// a1 = Rd_v·C_c
/// b1 = Rd_v·(C_v + C_c) + Rd_a·(C_a + C_c)
/// b2 = Rd_v·Rd_a·[(C_v + C_c)·(C_a + C_c) − C_c²]
/// ```
///
/// so the ramp response is evaluated analytically. By construction the
/// model is blind to the coupling *location* along the victim — the paper's
/// Figure 5 shows it reporting the same peak for every placement while the
/// distributed metrics track the real trend.
///
/// # Errors
///
/// * [`MetricError::NoNoise`] — no coupling between the two nets.
/// * [`MetricError::StepInputNeedsExplicitM`] — ideal step input.
/// * [`MetricError::BaselineUnstable`] — degenerate lumped fit (cannot
///   occur for physical element values).
///
/// # Panics
///
/// Panics if `aggressor` is out of bounds for `network`.
pub fn lumped_pi(
    network: &Network,
    aggressor: NetId,
    input: &InputSignal,
) -> Result<BaselineEstimate, MetricError> {
    let victim = network.victim();
    let cc: f64 = network
        .couplings_between(aggressor, victim)
        .map(|(_, _, f)| f)
        .sum();
    if cc <= 0.0 {
        return Err(MetricError::NoNoise);
    }
    let tr = input.transition();
    if !(tr.is_finite() && tr > 0.0) {
        return Err(MetricError::StepInputNeedsExplicitM);
    }

    // Grounded capacitance per net (wire + sinks + couplings to *other*
    // nets treated as grounded, per the usual lumping convention).
    let grounded_cap = |net: NetId| -> f64 {
        let mut c = 0.0;
        for gc in network.ground_caps() {
            if network.node_net(gc.node) == net {
                c += gc.farads;
            }
        }
        for s in network.net(net).sinks() {
            c += s.farads;
        }
        let pair = |x: NetId, y: NetId| (x == victim && y == aggressor) || (x == aggressor && y == victim);
        for other in network.nets().map(|(id, _)| id) {
            if other != net && !pair(net, other) {
                for (_, _, f) in network.couplings_between(net, other) {
                    c += f;
                }
            }
        }
        c
    };
    let rd_v = network.victim_net().driver().ohms;
    let rd_a = network.net(aggressor).driver().ohms;
    let c_v = grounded_cap(victim);
    let c_a = grounded_cap(aggressor);

    let a1 = rd_v * cc;
    let b1 = rd_v * (c_v + cc) + rd_a * (c_a + cc);
    let b2 = rd_v * rd_a * ((c_v + cc) * (c_a + cc) - cc * cc);
    let fit = TwoPoleFit::from_coeffs(a1, b1, b2);
    match fit.ramp_peak(tr) {
        Some((tp, vp)) => Ok(BaselineEstimate {
            vp: Some(vp.abs()),
            tp: Some(input.arrival() + tp),
            ..BaselineEstimate::default()
        }),
        None => Err(MetricError::BaselineUnstable {
            baseline: "lumped-pi",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_circuit::{NetRole, NetworkBuilder};

    /// Two-segment victim with coupling at a configurable position.
    fn two_pin(coupling_on_far_node: bool) -> (Network, NetId) {
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let v0 = b.add_node(v, "v0");
        let v1 = b.add_node(v, "v1");
        let v2 = b.add_node(v, "v2");
        let a0 = b.add_node(a, "a0");
        b.add_driver(v, v0, 200.0).unwrap();
        b.add_driver(a, a0, 100.0).unwrap();
        b.add_resistor(v0, v1, 50.0).unwrap();
        b.add_resistor(v1, v2, 50.0).unwrap();
        b.add_ground_cap(v1, 10e-15).unwrap();
        b.add_sink(v2, 10e-15).unwrap();
        b.add_sink(a0, 10e-15).unwrap();
        let target = if coupling_on_far_node { v2 } else { v1 };
        b.add_coupling_cap(a0, target, 20e-15).unwrap();
        b.set_victim_output(v2);
        let net = b.build().unwrap();
        let agg = net.aggressor_nets().next().unwrap().0;
        (net, agg)
    }

    #[test]
    fn lumped_model_is_location_blind() {
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        let (near, agg_n) = two_pin(false);
        let (far, agg_f) = two_pin(true);
        let vp_near = lumped_pi(&near, agg_n, &input).unwrap().vp.unwrap();
        let vp_far = lumped_pi(&far, agg_f, &input).unwrap().vp.unwrap();
        assert!(
            (vp_near - vp_far).abs() < 1e-12 * vp_near,
            "lumped model must not see coupling location: {vp_near} vs {vp_far}"
        );
    }

    #[test]
    fn no_coupling_is_no_noise() {
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let v0 = b.add_node(v, "v0");
        let a0 = b.add_node(a, "a0");
        b.add_driver(v, v0, 100.0).unwrap();
        b.add_driver(a, a0, 100.0).unwrap();
        b.add_sink(v0, 1e-15).unwrap();
        b.add_sink(a0, 1e-15).unwrap();
        // Note: networks without any coupling are legal.
        let net = b.build().unwrap();
        let agg = net.aggressor_nets().next().unwrap().0;
        assert!(matches!(
            lumped_pi(&net, agg, &InputSignal::rising_ramp(0.0, 1e-10)),
            Err(MetricError::NoNoise)
        ));
    }

    #[test]
    fn peak_positive_and_reasonable() {
        let (net, agg) = two_pin(true);
        let est = lumped_pi(&net, agg, &InputSignal::rising_ramp(0.0, 1e-10)).unwrap();
        let vp = est.vp.unwrap();
        assert!(vp > 0.0 && vp < 1.0, "vp = {vp}");
    }
}
