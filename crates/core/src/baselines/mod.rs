//! Prior-art crosstalk metrics — the comparison columns of the paper's
//! Tables 1–3 and the lumped-π reference of Figure 5.
//!
//! Each baseline captures only a subset of the waveform parameters (the
//! tables' "N/A" entries); [`BaselineEstimate`] models that with options.
//! All estimates are magnitudes of the rising-equivalent pulse, like the
//! new metrics.
//!
//! | Baseline | `Vp` | `Tp` | `Wn` | notes |
//! |----------|------|------|------|-------|
//! | [`devgan`] (ref. 7) | ✓ | — | — | absolute upper bound, unbounded error |
//! | [`vittal`] (ref. 13) | ✓ | — | ✓ | `Vp = a1/b1`, `Wn = b1` |
//! | [`yu_one_pole`] (ref. 17) | ✓ | — | — | saturated-ramp one-pole model |
//! | [`yu_two_pole`] (ref. 17) | ✓ | ✓ | — | may be unstable (no estimate) |
//! | [`lumped_pi`] | ✓ | ✓ | — | location-blind reference |

mod devgan;
mod lumped;
mod vittal;
mod yu;

pub use devgan::devgan;
pub use lumped::lumped_pi;
pub use vittal::vittal;
pub use yu::{yu_one_pole, yu_two_pole};

/// A (possibly partial) noise estimate from a baseline metric. `None`
/// fields are the parameters the method does not capture — the "N/A"
/// entries in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BaselineEstimate {
    /// Peak amplitude (× `Vdd`, positive), if captured.
    pub vp: Option<f64>,
    /// Peak-occurrence time, if captured.
    pub tp: Option<f64>,
    /// Pulse width, if captured.
    pub wn: Option<f64>,
    /// First transition time, if captured.
    pub t1: Option<f64>,
    /// Second transition time, if captured.
    pub t2: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_not_applicable() {
        let e = BaselineEstimate::default();
        assert!(e.vp.is_none() && e.tp.is_none() && e.wn.is_none());
        assert!(e.t1.is_none() && e.t2.is_none());
    }
}
