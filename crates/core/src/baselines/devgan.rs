use super::BaselineEstimate;
use crate::MetricError;
use xtalk_circuit::signal::{InputSignal, Waveshape, EXP_TRANSITION_FACTOR};

/// Devgan's coupled-noise upper bound (paper ref. \[7\], ICCAD'97).
///
/// The victim node voltage is bounded by the aggressor's maximum slew
/// driven through the coupling network's DC transfer of `dV/dt`:
/// `Vp ≤ a1 · max|dV_i/dt|`, with `a1 = h1` the first transfer moment
/// (the same Σ Cc·Rx the original paper expresses by tree traversal).
///
/// For a saturated ramp the max slew is `1/t_r`; for the exponential
/// shapes it is `1/τ = ln 9 / t_r`. The bound is *absolute* (always
/// conservative) but its error is unbounded as `t_r` shrinks below the
/// circuit time constants — the paper's tables show ≈+1300% worst case.
///
/// # Errors
///
/// [`MetricError::StepInputNeedsExplicitM`] for an ideal step (`t_r = 0`),
/// where the bound degenerates to `+∞`.
///
/// # Examples
///
/// ```
/// use xtalk_circuit::signal::InputSignal;
/// use xtalk_core::baselines::devgan;
///
/// let est = devgan(2e-11, &InputSignal::rising_ramp(0.0, 1e-10))?;
/// assert!((est.vp.unwrap() - 0.2).abs() < 1e-12); // a1/tr
/// assert_eq!(est.wn, None);                       // not captured
/// # Ok::<(), xtalk_core::MetricError>(())
/// ```
pub fn devgan(a1: f64, input: &InputSignal) -> Result<BaselineEstimate, MetricError> {
    let tr = input.transition();
    if !(tr.is_finite() && tr > 0.0) {
        return Err(MetricError::StepInputNeedsExplicitM);
    }
    let max_slew = match input.shape() {
        Waveshape::RisingRamp | Waveshape::FallingRamp => 1.0 / tr,
        Waveshape::RisingExp | Waveshape::FallingExp => EXP_TRANSITION_FACTOR / tr,
        Waveshape::Step => unreachable!("step has tr == 0"),
    };
    Ok(BaselineEstimate {
        vp: Some(a1.abs() * max_slew),
        ..BaselineEstimate::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_bound_is_a1_over_tr() {
        let est = devgan(1e-11, &InputSignal::rising_ramp(0.0, 2e-10)).unwrap();
        assert!((est.vp.unwrap() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn exp_bound_uses_initial_slope() {
        let tr = 2e-10;
        let est = devgan(1e-11, &InputSignal::rising_exp(0.0, tr)).unwrap();
        let tau = tr / EXP_TRANSITION_FACTOR;
        assert!((est.vp.unwrap() - 1e-11 / tau).abs() < 1e-9 * est.vp.unwrap());
    }

    #[test]
    fn step_is_rejected() {
        assert!(matches!(
            devgan(1e-11, &InputSignal::step(0.0)),
            Err(MetricError::StepInputNeedsExplicitM)
        ));
    }

    #[test]
    fn bound_grows_as_input_sharpens() {
        let slow = devgan(1e-11, &InputSignal::rising_ramp(0.0, 1e-9)).unwrap();
        let fast = devgan(1e-11, &InputSignal::rising_ramp(0.0, 1e-11)).unwrap();
        assert!(fast.vp.unwrap() > 50.0 * slow.vp.unwrap());
    }
}
