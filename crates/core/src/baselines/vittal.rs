use super::BaselineEstimate;
use xtalk_circuit::signal::InputSignal;

/// Vittal et al.'s simplified metric (paper ref. \[13\]).
///
/// The full derivation gives `Wn = B1 − A2/A1`, where `A_k`/`B_k` are the
/// numerator/denominator coefficients of the *output* waveform
/// `V_o(s) = V_i(s)·H(s)` (figure 1 of the paper). Because `a2` has no
/// convenient closed form, the practically used simplification (quoted in
/// the paper's §2.1.2) is
///
/// ```text
/// Wn ≈ B1        Vp ≈ A1/B1
/// ```
///
/// with `A1 = a1·g0 = a1` and `B1 = b1 − g1 = b1 + t0 + t_r/2` for a ramp
/// (`b1` = the circuit's shared denominator coefficient, the sum of
/// open-circuit time constants of [`xtalk_moments::tree::open_circuit_b1`];
/// `g1` = the input's first Taylor coefficient). Dropping the `−A2/A1`
/// sharpening makes `Wn` a systematic over-estimate (the paper's tables
/// show ≈65% average width error) while `Vp = A1/B1` stays conservative
/// for far-end coupling but loses the upper-bound property at the near
/// end.
///
/// # Panics
///
/// Panics if `b1` is not positive.
///
/// # Examples
///
/// ```
/// use xtalk_circuit::signal::InputSignal;
/// use xtalk_core::baselines::vittal;
///
/// let input = InputSignal::rising_ramp(0.0, 1e-10);
/// let est = vittal(1e-11, 1.5e-10, &input);
/// assert_eq!(est.wn, Some(2e-10)); // b1 + tr/2
/// assert!((est.vp.unwrap() - 0.05).abs() < 1e-12);
/// assert_eq!(est.tp, None);
/// ```
pub fn vittal(a1: f64, b1: f64, input: &InputSignal) -> BaselineEstimate {
    assert!(b1.is_finite() && b1 > 0.0, "b1 must be positive");
    let g = input.taylor_g();
    let wn = b1 - g[1];
    BaselineEstimate {
        vp: Some(a1.abs() / wn),
        wn: Some(wn),
        ..BaselineEstimate::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_vp_and_wn_only() {
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        let est = vittal(3e-11, 1e-10, &input);
        // B1 = 1e-10 + 0.5e-10.
        assert!((est.wn.unwrap() - 1.5e-10).abs() < 1e-22);
        assert!((est.vp.unwrap() - 0.2).abs() < 1e-12);
        assert!(est.tp.is_none() && est.t1.is_none() && est.t2.is_none());
    }

    #[test]
    fn vp_times_wn_is_a1() {
        // The metric conserves the pulse area: Vp·Wn = A1 = a1.
        let input = InputSignal::rising_ramp(0.0, 2e-10);
        let est = vittal(3e-11, 1.5e-10, &input);
        assert!((est.vp.unwrap() * est.wn.unwrap() - 3e-11).abs() < 1e-22);
    }

    #[test]
    fn arrival_time_widens_b1() {
        let early = vittal(1e-11, 1e-10, &InputSignal::rising_ramp(0.0, 1e-10));
        let late = vittal(1e-11, 1e-10, &InputSignal::rising_ramp(5e-11, 1e-10));
        assert!(late.wn.unwrap() > early.wn.unwrap());
        assert!(late.vp.unwrap() < early.vp.unwrap());
    }

    #[test]
    #[should_panic(expected = "b1 must be positive")]
    fn non_positive_b1_panics() {
        vittal(1e-11, 0.0, &InputSignal::rising_ramp(0.0, 1e-10));
    }
}
