use crate::MetricError;
use xtalk_circuit::signal::InputSignal;

/// The first three moments `f1, f2, f3` of the victim output waveform
/// `V_o(s) = (1/s)·(f1·s + f2·s² + f3·s³ + …)`, plus the pulse polarity.
///
/// These are the *only* circuit quantities the closed-form metrics
/// consume. They combine the transfer-function Taylor coefficients `h_k`
/// (from `xtalk-moments`) with the input-signal coefficients `g_k`
/// (eq. 9) through the paper's eqs. (11)–(14):
///
/// ```text
/// f1 = h1·g0
/// f2 = h1·g1 + h2·g0
/// f3 = h1·g2 + h2·g1 + h3·g0
/// ```
///
/// Physically (for the rising-equivalent pulse): `f1` is the pulse area,
/// `−f2/f1` its centroid, and `36·f3/f1 − 18·(f2/f1)²` the squared
/// characteristic width `T_W²` of eq. (34) (18× the pulse variance).
///
/// # Examples
///
/// ```
/// use xtalk_circuit::signal::InputSignal;
/// use xtalk_core::OutputMoments;
///
/// // h = [0, a1, -a1*b1, a1*(b1²-b2)] for a1=1e-11, b1=2e-10, b2=5e-21.
/// let h = [0.0, 1e-11, -2e-21, 3.5e-31];
/// let input = InputSignal::rising_ramp(0.0, 1e-10);
/// let f = OutputMoments::from_transfer(&h, &input).unwrap();
/// assert_eq!(f.f1(), 1e-11);
/// assert!(f.t_w().unwrap() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutputMoments {
    f1: f64,
    f2: f64,
    f3: f64,
    polarity: f64,
}

/// Moments smaller than this fraction of "any coupling at all" are treated
/// as no noise. `f1` has units V·s; interconnect noise areas live far above
/// 1e-30.
const F1_FLOOR: f64 = 1e-30;

/// Relative tolerance classifying a non-positive `T_W²` radicand as
/// floating-point cancellation (clamped to zero) rather than genuinely
/// non-physical moments (rejected). The radicand's two terms each carry a
/// handful of ulp of rounding error; 1e-12 of their magnitude covers that
/// with two orders of margin.
const CANCELLATION_TOL: f64 = 1e-12;

impl OutputMoments {
    /// Combines transfer-function Taylor coefficients `h = [h0, h1, h2, h3]`
    /// with an input signal (eqs. 11–14). `h0` must be 0 (noise transfer);
    /// the polarity comes from the input shape.
    ///
    /// # Errors
    ///
    /// [`MetricError::NoNoise`] when `h1·g0` vanishes (no coupling).
    pub fn from_transfer(h: &[f64], input: &InputSignal) -> Result<Self, MetricError> {
        assert!(
            h.len() >= 4,
            "need transfer Taylor coefficients up to order 3"
        );
        let g = input.taylor_g();
        let f1 = h[1] * g[0];
        let f2 = h[1] * g[1] + h[2] * g[0];
        let f3 = h[1] * g[2] + h[2] * g[1] + h[3] * g[0];
        Self::from_raw(f1, f2, f3, input.noise_polarity())
    }

    /// Wraps raw moments (e.g. computed by an external tool).
    ///
    /// # Errors
    ///
    /// [`MetricError::NoNoise`] when `f1` is not positive (the
    /// rising-equivalent pulse must have positive area);
    /// [`MetricError::NonFiniteQuantity`] when `f2` or `f3` is NaN or
    /// infinite (corrupt external moments must not propagate).
    pub fn from_raw(f1: f64, f2: f64, f3: f64, polarity: f64) -> Result<Self, MetricError> {
        if !(f1.is_finite() && f1 > F1_FLOOR) {
            return Err(MetricError::NoNoise);
        }
        if !f2.is_finite() {
            return Err(MetricError::NonFiniteQuantity { field: "f2", value: f2 });
        }
        if !f3.is_finite() {
            return Err(MetricError::NonFiniteQuantity { field: "f3", value: f3 });
        }
        Ok(OutputMoments {
            f1,
            f2,
            f3,
            polarity: if polarity < 0.0 { -1.0 } else { 1.0 },
        })
    }

    /// Pulse area `f1` (V·s, normalized supply).
    pub fn f1(&self) -> f64 {
        self.f1
    }

    /// Second moment `f2` (= −area × centroid).
    pub fn f2(&self) -> f64 {
        self.f2
    }

    /// Third moment `f3` (= area × second moment / 2).
    pub fn f3(&self) -> f64 {
        self.f3
    }

    /// Pulse polarity: `+1.0` or `−1.0`.
    pub fn polarity(&self) -> f64 {
        self.polarity
    }

    /// Pulse centroid `−f2/f1` (s).
    pub fn centroid(&self) -> f64 {
        -self.f2 / self.f1
    }

    /// Characteristic pulse width `T_W = √(36·f3/f1 − 18·(f2/f1)²)`
    /// (eq. 34).
    ///
    /// The radicand is a difference of two like-sized positive terms, so
    /// exact moments of a vanishingly narrow pulse can land a few ulp
    /// *below* zero from cancellation alone. Such values are clamped to
    /// zero (returning `T_W = 0`) instead of being rejected; radicands
    /// negative beyond cancellation distance remain a hard error. Callers
    /// that divide by `T_W` must treat zero as degenerate — the metric
    /// entry points return [`MetricError::DegenerateWidth`] for it.
    ///
    /// # Errors
    ///
    /// [`MetricError::NonPhysicalMoments`] when the radicand is negative
    /// beyond floating-point cancellation distance, or not finite.
    pub fn t_w(&self) -> Result<f64, MetricError> {
        t_w_raw(self.f1, self.f2, self.f3)
    }
}

/// Lane-level form of [`OutputMoments::t_w`] shared with [`crate::batch`]:
/// identical operation sequence, raw moments in.
pub(crate) fn t_w_raw(f1: f64, f2: f64, f3: f64) -> Result<f64, MetricError> {
    let r = f2 / f1;
    let positive_term = 36.0 * f3 / f1;
    let negative_term = 18.0 * r * r;
    let tw2 = positive_term - negative_term;
    if tw2 > 0.0 && tw2.is_finite() {
        return Ok(tw2.sqrt());
    }
    // Cancellation guard: each term carries O(eps) relative error, so
    // a radicand within eps-distance of zero (relative to the terms'
    // magnitude) is "zero" — clamp rather than reject.
    let scale = positive_term.abs().max(negative_term);
    if tw2.is_finite() && tw2.abs() <= CANCELLATION_TOL * scale {
        Ok(0.0)
    } else {
        Err(MetricError::NonPhysicalMoments { tw_squared: tw2 })
    }
}

/// Estimates the template shape ratio `m = T2/T1` from the characteristic
/// width and the input transition time (eq. 54):
///
/// ```text
/// m = ( √(4·(T_W/t_r)² − 3) − 1 ) / 2
/// ```
///
/// seeded by `T1 = t_r` in the piecewise-linear model. The estimate is
/// clamped to `[M_MIN, M_MAX] = [1e-3, 1e3]`: very slow inputs push the
/// discriminant negative (the template degenerates to `T2 → 0`) and ideal
/// steps push `m → ∞`; both ends remain well inside the metric formulas'
/// valid range `0 < m < ∞`.
///
/// # Errors
///
/// [`MetricError::StepInputNeedsExplicitM`] when `t_r ≤ 0`.
///
/// # Examples
///
/// ```
/// use xtalk_core::shape_ratio_m;
///
/// // T_W = 2·t_r → m = (√13 − 1)/2 ≈ 1.3028.
/// let m = shape_ratio_m(2e-10, 1e-10).unwrap();
/// assert!((m - 1.302775637731995).abs() < 1e-12);
/// ```
pub fn shape_ratio_m(t_w: f64, t_r: f64) -> Result<f64, MetricError> {
    const M_MIN: f64 = 1e-3;
    const M_MAX: f64 = 1e3;
    if !(t_r.is_finite() && t_r > 0.0) {
        return Err(MetricError::StepInputNeedsExplicitM);
    }
    let ratio = t_w / t_r;
    let disc = 4.0 * ratio * ratio - 3.0;
    let m = if !disc.is_finite() {
        // ratio² overflowed (huge T_W against a denormal t_r): the
        // step-like end of the range, same as any ratio past the cap.
        M_MAX
    } else if disc <= 1.0 {
        // T_W ≤ t_r: the PWL seed gives m ≤ 0; degenerate to a sharp fall.
        M_MIN
    } else {
        ((disc.sqrt() - 1.0) / 2.0).clamp(M_MIN, M_MAX)
    };
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_combine_h_and_g_per_eqs_15_to_18() {
        // Rising ramp at t0=0: the paper's simplified eqs. (15)-(18).
        let (a1, b1, b2, tr) = (1e-11, 2e-10, 6e-21, 1e-10);
        let h = [0.0, a1, -a1 * b1, a1 * (b1 * b1 - b2)];
        let f = OutputMoments::from_transfer(&h, &InputSignal::rising_ramp(0.0, tr)).unwrap();
        assert_eq!(f.f1(), a1);
        let f2_expect = -a1 * (b1 + tr / 2.0);
        assert!((f.f2() - f2_expect).abs() < 1e-12 * f2_expect.abs());
        let f3_expect = a1 * (b1 * b1 - b2 + b1 * tr / 2.0 + tr * tr / 6.0);
        assert!((f.f3() - f3_expect).abs() < 1e-12 * f3_expect.abs());
        assert_eq!(f.polarity(), 1.0);
    }

    #[test]
    fn falling_input_flips_polarity_only() {
        let h = [0.0, 1e-11, -2e-21, 3.5e-31];
        let rise = OutputMoments::from_transfer(&h, &InputSignal::rising_ramp(0.0, 1e-10)).unwrap();
        let fall =
            OutputMoments::from_transfer(&h, &InputSignal::falling_ramp(0.0, 1e-10)).unwrap();
        assert_eq!(rise.f1(), fall.f1());
        assert_eq!(rise.f2(), fall.f2());
        assert_eq!(fall.polarity(), -1.0);
    }

    #[test]
    fn zero_coupling_is_no_noise() {
        let h = [0.0, 0.0, 0.0, 0.0];
        assert!(matches!(
            OutputMoments::from_transfer(&h, &InputSignal::rising_ramp(0.0, 1e-10)),
            Err(MetricError::NoNoise)
        ));
    }

    #[test]
    fn t_w_is_sqrt18_times_pulse_sigma() {
        // Construct moments of a known pulse: area A, centroid c, variance v:
        // f1 = A, f2 = -A c, f3 = A(v + c²)/2.
        let (area, c, var) = (2e-11, 3e-10, 4e-20);
        let f = OutputMoments::from_raw(area, -area * c, area * (var + c * c) / 2.0, 1.0).unwrap();
        assert!((f.centroid() - c).abs() < 1e-20);
        let tw = f.t_w().unwrap();
        assert!((tw - (18.0 * var).sqrt()).abs() < 1e-12 * tw);
    }

    #[test]
    fn non_physical_moments_rejected() {
        // Variance would be negative — far beyond cancellation distance.
        let f = OutputMoments::from_raw(1e-11, -1e-21, 1e-33, 1.0).unwrap();
        assert!(matches!(
            f.t_w(),
            Err(MetricError::NonPhysicalMoments { .. })
        ));
    }

    #[test]
    fn cancellation_negative_radicand_clamps_to_zero_width() {
        // A zero-variance pulse: f3 = f1·c²/2 exactly, so the radicand is
        // 36·c²/2 − 18·c² = 0 analytically. Perturb f3 down by one part in
        // 1e13 — well above rounding noise, still inside the cancellation
        // tolerance — and the radicand lands a hair below zero. That must
        // clamp, not reject.
        let (area, c) = (2e-11, 3e-10);
        let f3 = area * c * c / 2.0 * (1.0 - 1e-13);
        let f = OutputMoments::from_raw(area, -area * c, f3, 1.0).unwrap();
        assert_eq!(f.t_w().unwrap(), 0.0);
        // One part in 1e6 is genuinely negative: rejected.
        let f3 = area * c * c / 2.0 * (1.0 - 1e-6);
        let f = OutputMoments::from_raw(area, -area * c, f3, 1.0).unwrap();
        assert!(matches!(
            f.t_w(),
            Err(MetricError::NonPhysicalMoments { .. })
        ));
    }

    #[test]
    fn non_finite_higher_moments_rejected_up_front() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                OutputMoments::from_raw(1e-11, bad, 1e-31, 1.0),
                Err(MetricError::NonFiniteQuantity { field: "f2", .. })
            ));
            assert!(matches!(
                OutputMoments::from_raw(1e-11, -1e-21, bad, 1.0),
                Err(MetricError::NonFiniteQuantity { field: "f3", .. })
            ));
        }
    }

    #[test]
    fn shape_ratio_overflow_clamps_to_cap() {
        // T_W/t_r overflows f64 when squared: eq. (54) degenerates to the
        // step-like cap instead of propagating an infinite discriminant.
        let m = shape_ratio_m(1e200, 1e-200).unwrap();
        assert_eq!(m, 1e3);
    }

    #[test]
    fn shape_ratio_special_values() {
        // T_W = t_r → disc = 1 → clamped to the floor.
        assert!((shape_ratio_m(1e-10, 1e-10).unwrap() - 1e-3).abs() < 1e-15);
        // T_W = √3·t_r → m = 1 (the symmetric special case, eqs. 41-46).
        let m = shape_ratio_m(3.0f64.sqrt() * 1e-10, 1e-10).unwrap();
        assert!((m - 1.0).abs() < 1e-9);
        // Steps need explicit m.
        assert!(matches!(
            shape_ratio_m(1e-10, 0.0),
            Err(MetricError::StepInputNeedsExplicitM)
        ));
        // Huge ratio clamps at the cap.
        assert_eq!(shape_ratio_m(1.0, 1e-12).unwrap(), 1e3);
    }
}
