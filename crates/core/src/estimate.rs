use crate::MetricError;

/// A complete closed-form characterization of a noise pulse — the output
/// of [`crate::MetricOne`] / [`crate::MetricTwo`].
///
/// All times in seconds, `vp` normalized to the supply and always
/// positive; `polarity` carries the pulse sign. The invariants
/// `tp = t0 + t1` and `wn = t1 + t2` hold by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseEstimate {
    /// Peak amplitude (× `Vdd`, positive).
    pub vp: f64,
    /// Noise arrival time (start of the rising flank).
    pub t0: f64,
    /// First (rising) transition time.
    pub t1: f64,
    /// Second (falling) transition time (`= m·t1`).
    pub t2: f64,
    /// Peak-occurrence time `t0 + t1`.
    pub tp: f64,
    /// Pulse width `t1 + t2`.
    pub wn: f64,
    /// Template shape ratio `m = t2/t1` used for the estimate.
    pub m: f64,
    /// Pulse polarity: `+1.0` or `−1.0`.
    pub polarity: f64,
}

impl NoiseEstimate {
    /// Area of the template pulse, `vp·wn/2` (V·s) — equals the matched
    /// first moment `f1` for the piecewise-linear template and serves as
    /// the paper's energy proxy.
    pub fn area(&self) -> f64 {
        0.5 * self.vp * self.wn
    }

    /// Signed peak, `polarity × vp`.
    pub fn signed_vp(&self) -> f64 {
        self.polarity * self.vp
    }

    /// Value of the estimate's piecewise-linear template waveform at
    /// time `t` (unsigned; combine with [`NoiseEstimate::signed_vp`]'s
    /// sign convention for plotting). Zero outside `[t0, t0 + wn]`.
    ///
    /// # Examples
    ///
    /// ```
    /// # let e = xtalk_core::NoiseEstimate {
    /// #     vp: 0.2, t0: 0.0, t1: 1e-10, t2: 1e-10, tp: 1e-10,
    /// #     wn: 2e-10, m: 1.0, polarity: 1.0,
    /// # };
    /// assert_eq!(e.template_value(1e-10), 0.2);     // the peak
    /// assert_eq!(e.template_value(5e-11), 0.1);     // mid-rise
    /// assert_eq!(e.template_value(1e-9), 0.0);      // after the fall
    /// ```
    pub fn template_value(&self, t: f64) -> f64 {
        let rel = t - self.t0;
        if rel <= 0.0 {
            0.0
        } else if rel <= self.t1 {
            self.vp * rel / self.t1
        } else {
            (self.vp * (1.0 - (rel - self.t1) / self.t2)).max(0.0)
        }
    }

    /// `true` when the pulse peak exceeds `threshold` (× `Vdd`) — the
    /// screening predicate used by routers and noise-repair loops.
    ///
    /// # Examples
    ///
    /// ```
    /// # let e = xtalk_core::NoiseEstimate {
    /// #     vp: 0.2, t0: 0.0, t1: 1e-10, t2: 1e-10, tp: 1e-10,
    /// #     wn: 2e-10, m: 1.0, polarity: 1.0,
    /// # };
    /// assert!(e.violates(0.15));
    /// assert!(!e.violates(0.25));
    /// ```
    pub fn violates(&self, threshold: f64) -> bool {
        self.vp > threshold
    }

    /// Post-evaluation validation gate shared by the metric entry points:
    /// every waveform field must be finite, and the peak and transition
    /// times strictly positive. The closed forms satisfy this for all
    /// physical inputs, but extreme — individually valid — shape ratios
    /// or moments can overflow (`vp → ∞`) or underflow (`t1 → 0`) the
    /// intermediate arithmetic; this turns such escapes into structured
    /// errors instead of letting non-finite estimates propagate.
    pub(crate) fn validated(self) -> Result<Self, MetricError> {
        for (field, value) in [
            ("vp", self.vp),
            ("t0", self.t0),
            ("t1", self.t1),
            ("t2", self.t2),
            ("tp", self.tp),
            ("wn", self.wn),
            ("m", self.m),
        ] {
            if !value.is_finite() {
                return Err(MetricError::NonFiniteQuantity { field, value });
            }
        }
        for (field, value) in [("vp", self.vp), ("t1", self.t1), ("t2", self.t2)] {
            if value <= 0.0 {
                return Err(MetricError::DegenerateEstimate { field, value });
            }
        }
        Ok(self)
    }
}

/// Closed-form lower/upper bounds on the waveform parameters over the full
/// shape-ratio range `0 < m < ∞` (paper eqs. 37–40). The `Vp` and `Wn`
/// bounds are tight: the spread is ≈13% and ≈15% respectively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseBounds {
    /// `Vp` bounds: `(√3/2)·2f1/T_W ≤ Vp ≤ 2f1/T_W`.
    pub vp: (f64, f64),
    /// `T0` bounds (eq. 38).
    pub t0: (f64, f64),
    /// `Tp` bounds (eq. 39).
    pub tp: (f64, f64),
    /// `Wn` bounds: `T_W ≤ Wn ≤ (2/√3)·T_W` (eq. 40).
    pub wn: (f64, f64),
}

impl NoiseBounds {
    /// `true` when every parameter of `estimate` lies inside the bounds
    /// (inclusive, with a tiny tolerance for rounding).
    pub fn contains(&self, estimate: &NoiseEstimate) -> bool {
        let tol = 1e-9;
        let inside = |(lo, hi): (f64, f64), v: f64| {
            let span = (hi - lo).abs().max(hi.abs()).max(1e-300);
            v >= lo - tol * span && v <= hi + tol * span
        };
        inside(self.vp, estimate.vp)
            && inside(self.t0, estimate.t0)
            && inside(self.tp, estimate.tp)
            && inside(self.wn, estimate.wn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NoiseEstimate {
        NoiseEstimate {
            vp: 0.3,
            t0: 1e-10,
            t1: 5e-11,
            t2: 1e-10,
            tp: 1.5e-10,
            wn: 1.5e-10,
            m: 2.0,
            polarity: -1.0,
        }
    }

    #[test]
    fn area_is_half_base_times_height() {
        let e = sample();
        assert!((e.area() - 0.5 * 0.3 * 1.5e-10).abs() < 1e-24);
    }

    #[test]
    fn signed_peak_carries_polarity() {
        assert_eq!(sample().signed_vp(), -0.3);
    }

    #[test]
    fn violates_compares_magnitude() {
        assert!(sample().violates(0.2));
        assert!(!sample().violates(0.3));
    }

    #[test]
    fn bounds_containment() {
        let b = NoiseBounds {
            vp: (0.25, 0.35),
            t0: (0.5e-10, 1.5e-10),
            tp: (1e-10, 2e-10),
            wn: (1e-10, 2e-10),
        };
        assert!(b.contains(&sample()));
        let mut outside = sample();
        outside.vp = 0.4;
        assert!(!b.contains(&outside));
    }
}
