//! Receiver noise-rejection judgment — why the paper insists on
//! characterizing more than the peak.
//!
//! A noise spike only causes a functional failure if the receiving gate
//! both *sees* it (amplitude above its DC threshold) and receives enough
//! *energy* to flip its output node ("the pulse width is a measure of
//! energy … noise energy ha\[s\] similar importance for circuit performance
//! as the peak amplitude of the crosstalk noise has for functional
//! failure", §1). The classic receiver noise-rejection curve captures
//! this: tall-but-narrow pulses are tolerated, wide pulses are not.
//!
//! [`NoiseRejection`] implements the two-parameter rejection model:
//! a DC threshold `v_th` plus a critical charge `q_crit` (V·s of pulse
//! area the receiver integrates before flipping). Judging a
//! [`NoiseEstimate`] therefore needs exactly the pair (`Vp`, `Wn`) the
//! new metrics provide — a peak-only metric cannot evaluate it.

use crate::NoiseEstimate;

/// Verdict of a receiver on a noise pulse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseVerdict {
    /// Below the DC threshold: can never propagate.
    Safe,
    /// Above the threshold but too little energy to flip the receiver:
    /// tolerated, though noise margins are consumed.
    Marginal,
    /// Amplitude and energy both sufficient: a functional failure.
    Failure,
}

/// Two-parameter receiver noise-rejection model.
///
/// # Examples
///
/// ```
/// use xtalk_core::receiver::{NoiseRejection, NoiseVerdict};
/// use xtalk_core::NoiseEstimate;
///
/// let rx = NoiseRejection::new(0.3, 30e-12); // 30% Vdd, 30 fVs critical
/// let pulse = |vp: f64, wn: f64| NoiseEstimate {
///     vp, t0: 0.0, t1: wn / 2.0, t2: wn / 2.0, tp: wn / 2.0,
///     wn, m: 1.0, polarity: 1.0,
/// };
/// assert_eq!(rx.judge(&pulse(0.2, 1e-9)), NoiseVerdict::Safe);
/// assert_eq!(rx.judge(&pulse(0.5, 2e-11)), NoiseVerdict::Marginal);
/// assert_eq!(rx.judge(&pulse(0.5, 1e-9)), NoiseVerdict::Failure);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseRejection {
    v_th: f64,
    q_crit: f64,
}

impl NoiseRejection {
    /// Builds a rejection model from the DC threshold (× `Vdd`) and the
    /// critical pulse area (V·s).
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite and
    /// `v_th < 1`.
    pub fn new(v_th: f64, q_crit: f64) -> Self {
        assert!(
            v_th.is_finite() && v_th > 0.0 && v_th < 1.0,
            "DC threshold must be inside (0, 1) x Vdd"
        );
        assert!(
            q_crit.is_finite() && q_crit > 0.0,
            "critical charge must be positive"
        );
        NoiseRejection { v_th, q_crit }
    }

    /// DC threshold (× `Vdd`).
    pub fn v_th(&self) -> f64 {
        self.v_th
    }

    /// Critical pulse area (V·s).
    pub fn q_crit(&self) -> f64 {
        self.q_crit
    }

    /// Judges a noise estimate against the rejection curve.
    pub fn judge(&self, estimate: &NoiseEstimate) -> NoiseVerdict {
        if estimate.vp <= self.v_th {
            NoiseVerdict::Safe
        } else if estimate.area() <= self.q_crit {
            NoiseVerdict::Marginal
        } else {
            NoiseVerdict::Failure
        }
    }

    /// The rejection curve itself: the widest tolerable pulse at a given
    /// amplitude, `Wn_max(vp) = 2·q_crit/vp` above the threshold, `∞`
    /// (represented as `f64::INFINITY`) below it.
    ///
    /// # Panics
    ///
    /// Panics unless `vp` is positive and finite.
    pub fn max_width(&self, vp: f64) -> f64 {
        assert!(vp.is_finite() && vp > 0.0, "amplitude must be positive");
        if vp <= self.v_th {
            f64::INFINITY
        } else {
            2.0 * self.q_crit / vp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse(vp: f64, wn: f64) -> NoiseEstimate {
        NoiseEstimate {
            vp,
            t0: 0.0,
            t1: wn / 2.0,
            t2: wn / 2.0,
            tp: wn / 2.0,
            wn,
            m: 1.0,
            polarity: 1.0,
        }
    }

    #[test]
    fn low_amplitude_is_always_safe() {
        let rx = NoiseRejection::new(0.25, 10e-12);
        assert_eq!(rx.judge(&pulse(0.25, 1e-6)), NoiseVerdict::Safe);
        assert_eq!(rx.max_width(0.2), f64::INFINITY);
    }

    #[test]
    fn narrow_spikes_are_tolerated() {
        let rx = NoiseRejection::new(0.25, 10e-12);
        // 0.5 Vdd but only 0.5*0.5*20ps = 5 fVs < 10 fVs.
        assert_eq!(rx.judge(&pulse(0.5, 20e-12)), NoiseVerdict::Marginal);
    }

    #[test]
    fn wide_tall_pulses_fail() {
        let rx = NoiseRejection::new(0.25, 10e-12);
        assert_eq!(rx.judge(&pulse(0.5, 1e-10)), NoiseVerdict::Failure);
    }

    #[test]
    fn rejection_curve_boundary_is_consistent_with_judge() {
        let rx = NoiseRejection::new(0.25, 10e-12);
        let vp = 0.4;
        let boundary = rx.max_width(vp);
        assert_eq!(rx.judge(&pulse(vp, boundary * 0.999)), NoiseVerdict::Marginal);
        assert_eq!(rx.judge(&pulse(vp, boundary * 1.001)), NoiseVerdict::Failure);
    }

    #[test]
    fn curve_is_monotone_decreasing_in_amplitude() {
        let rx = NoiseRejection::new(0.25, 10e-12);
        assert!(rx.max_width(0.3) > rx.max_width(0.5));
        assert!(rx.max_width(0.5) > rx.max_width(0.9));
    }

    #[test]
    #[should_panic(expected = "inside (0, 1)")]
    fn threshold_validated() {
        NoiseRejection::new(1.5, 1e-12);
    }
}
