//! Closed-form crosstalk noise metrics for physical design.
//!
//! This crate implements the contribution of *Chen & Marek-Sadowska,
//! "Closed-Form Crosstalk Noise Metrics for Physical Design Applications"
//! (DATE 2002)*: two metrics that characterize the **complete** coupling
//! noise waveform on a victim net — peak amplitude `Vp`, arrival `T0`,
//! transition times `T1`/`T2`, peak time `Tp` and width `Wn` — using only
//! the five basic operations `+ − × ÷ √` on the first three moments of the
//! output waveform. No exponentials, no iteration: cheap enough for router
//! cost functions and optimization inner loops.
//!
//! # The method
//!
//! The victim output in the Laplace domain is
//! `V_o(s) = (1/s)(f₁s + f₂s² + f₃s³ + …)` with moments obtained from the
//! circuit ([`OutputMoments`], eqs. 11–14: transfer Taylor coefficients ×
//! input signal coefficients). A template waveform is then *moment-matched*
//! to `f₁, f₂, f₃`:
//!
//! * [`MetricOne`] — piecewise-linear (triangular) template, eqs. (30)–(36),
//!   with tight bounds over the shape ratio `m = T2/T1` (eqs. 37–40);
//! * [`MetricTwo`] — linear rise + exponential decay template with shape
//!   factor `λ ≈ 2.7465` (eq. 7), eqs. (48)–(53): the paper's best metric
//!   and a conservative upper bound for `Vp` in all coupling scenarios.
//!
//! The [`baselines`] module implements the prior-art metrics that the
//! paper's evaluation tables compare against (Devgan, Vittal, Yu's one- and
//! two-pole models, lumped-π).
//!
//! # Examples
//!
//! End-to-end analysis with the high-level [`NoiseAnalyzer`]:
//!
//! ```
//! use xtalk_circuit::{signal::InputSignal, NetRole, NetworkBuilder};
//! use xtalk_core::{MetricKind, NoiseAnalyzer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetworkBuilder::new();
//! let v = b.add_net("victim", NetRole::Victim);
//! let a = b.add_net("agg", NetRole::Aggressor);
//! let vn = b.add_node(v, "v0");
//! let an = b.add_node(a, "a0");
//! b.add_driver(v, vn, 500.0)?;
//! b.add_driver(a, an, 500.0)?;
//! b.add_sink(vn, 20e-15)?;
//! b.add_sink(an, 20e-15)?;
//! b.add_coupling_cap(vn, an, 30e-15)?;
//! let network = b.build()?;
//!
//! let analyzer = NoiseAnalyzer::new(&network)?;
//! let noise = analyzer.analyze(a, &InputSignal::rising_ramp(0.0, 100e-12), MetricKind::Two)?;
//! assert!(noise.vp > 0.0 && noise.vp < 1.0);
//! assert!(noise.wn > 0.0);
//! assert!((noise.tp - (noise.t0 + noise.t1)).abs() < 1e-18);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
pub mod baselines;
pub mod batch;
mod error;
mod estimate;
pub mod memo;
mod metric1;
mod metric2;
mod output;
pub mod receiver;
pub mod resilience;
pub mod superpose;
pub mod template;

pub use analyzer::{MetricKind, NoiseAnalyzer};
pub use batch::{BoundsBatch, EstimateBatch, MomentBatch};
pub use error::MetricError;
pub use estimate::{NoiseBounds, NoiseEstimate};
pub use metric1::MetricOne;
pub use metric2::{MetricTwo, LAMBDA};
pub use output::{shape_ratio_m, OutputMoments};
pub use resilience::{
    FallbackPolicy, Provenance, RobustAnalyzer, RobustError, RobustEstimate, Rung, RungError,
    RungFailure, SanityError,
};
