//! Memoized metric stages keyed by moment bit patterns.
//!
//! The closed-form metrics are pure functions of `(f1, f2, f3, polarity,
//! t_r, kind)`. Inside a what-if loop most deltas leave most
//! victim–aggressor pairs untouched, so their output moments — and hence
//! their estimates — recur with *bit-identical* inputs. [`StageMemo`]
//! caches the metric stage behind keys built from the raw `f64` bit
//! patterns: a hit returns the stored value verbatim, which makes the
//! memoized pipeline trivially bit-identical to the unmemoized one.
//!
//! Keys use [`f64::to_bits`], so `-0.0 ≠ 0.0` and values one ulp apart
//! are distinct keys. That is deliberate: the cache must never smooth
//! over a difference the full recompute would see.
//!
//! # Examples
//!
//! ```
//! use xtalk_core::memo::StageMemo;
//! use xtalk_core::{MetricKind, OutputMoments};
//!
//! let f = OutputMoments::from_raw(1e-11, -2e-21, 3.5e-31, 1.0).unwrap();
//! let mut memo = StageMemo::new();
//! let (first, hit1) = memo.estimate(&f, 1e-10, MetricKind::Two);
//! let (again, hit2) = memo.estimate(&f, 1e-10, MetricKind::Two);
//! assert!(!hit1 && hit2);
//! assert_eq!(first.unwrap(), again.unwrap());
//! assert_eq!(memo.stats().hits + memo.stats().misses, 2);
//! ```

use crate::{
    MetricError, MetricKind, MetricOne, NoiseAnalyzer, NoiseBounds, NoiseEstimate, OutputMoments,
};
use std::collections::HashMap;

/// Hashable bit-pattern key for one estimate query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct EstimateKey {
    f1: u64,
    f2: u64,
    f3: u64,
    polarity: u64,
    t_r: u64,
    kind: u8,
}

/// Hashable bit-pattern key for one bounds query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BoundsKey {
    f1: u64,
    f2: u64,
    f3: u64,
}

fn kind_tag(kind: MetricKind) -> u8 {
    match kind {
        MetricKind::One => 0,
        MetricKind::OneSymmetric => 1,
        MetricKind::Two => 2,
    }
}

/// Hit/miss accounting for one [`StageMemo`] (monotonic totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that ran the closed-form formulas (and populated the cache).
    pub misses: u64,
}

impl MemoStats {
    /// Total queries — always `hits + misses`.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Memo table over the metric stages of the noise pipeline
/// ([`NoiseAnalyzer::estimate_for`] and [`MetricOne::bounds`]).
///
/// Error outcomes are cached too: a non-physical moment combination keeps
/// failing identically on replay, and recomputing it would only repeat
/// the same rejection.
#[derive(Debug, Default)]
pub struct StageMemo {
    estimates: HashMap<EstimateKey, Result<NoiseEstimate, MetricError>>,
    bounds: HashMap<BoundsKey, Result<NoiseBounds, MetricError>>,
    stats: MemoStats,
}

impl StageMemo {
    /// An empty memo table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Memoized [`NoiseAnalyzer::estimate_for`]. Returns the estimate and
    /// whether it was served from cache.
    pub fn estimate(
        &mut self,
        f: &OutputMoments,
        t_r: f64,
        kind: MetricKind,
    ) -> (Result<NoiseEstimate, MetricError>, bool) {
        let key = EstimateKey {
            f1: f.f1().to_bits(),
            f2: f.f2().to_bits(),
            f3: f.f3().to_bits(),
            polarity: f.polarity().to_bits(),
            t_r: t_r.to_bits(),
            kind: kind_tag(kind),
        };
        if let Some(cached) = self.estimates.get(&key) {
            self.stats.hits += 1;
            return (cached.clone(), true);
        }
        self.stats.misses += 1;
        let value = NoiseAnalyzer::estimate_for(f, t_r, kind);
        self.estimates.insert(key, value.clone());
        (value, false)
    }

    /// Memoized [`MetricOne::bounds`]. Returns the bounds and whether they
    /// were served from cache.
    pub fn bounds(&mut self, f: &OutputMoments) -> (Result<NoiseBounds, MetricError>, bool) {
        let key = BoundsKey {
            f1: f.f1().to_bits(),
            f2: f.f2().to_bits(),
            f3: f.f3().to_bits(),
        };
        if let Some(cached) = self.bounds.get(&key) {
            self.stats.hits += 1;
            return (cached.clone(), true);
        }
        self.stats.misses += 1;
        let value = MetricOne::bounds(f);
        self.bounds.insert(key, value.clone());
        (value, false)
    }

    /// Monotonic hit/miss totals (survive [`StageMemo::clear`]).
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Number of distinct cached entries across both stages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.estimates.len() + self.bounds.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty() && self.bounds.is_empty()
    }

    /// Drops all cached entries (accounting is preserved).
    pub fn clear(&mut self) {
        self.estimates.clear();
        self.bounds.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments() -> OutputMoments {
        OutputMoments::from_raw(1e-11, -2e-21, 3.5e-31, 1.0).unwrap()
    }

    #[test]
    fn hit_returns_stored_value_verbatim() {
        let f = moments();
        let mut memo = StageMemo::new();
        let (a, hit_a) = memo.estimate(&f, 1e-10, MetricKind::Two);
        let (b, hit_b) = memo.estimate(&f, 1e-10, MetricKind::Two);
        assert!(!hit_a && hit_b);
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(a.vp.to_bits(), b.vp.to_bits());
        assert_eq!(a.wn.to_bits(), b.wn.to_bits());
        let direct = NoiseAnalyzer::estimate_for(&f, 1e-10, MetricKind::Two).unwrap();
        assert_eq!(a.vp.to_bits(), direct.vp.to_bits());
    }

    #[test]
    fn distinct_inputs_are_distinct_keys() {
        let f = moments();
        let mut memo = StageMemo::new();
        let _ = memo.estimate(&f, 1e-10, MetricKind::Two);
        let _ = memo.estimate(&f, 1e-10, MetricKind::One);
        let _ = memo.estimate(&f, 2e-10, MetricKind::Two);
        let g = OutputMoments::from_raw(1.0000000000000002e-11, -2e-21, 3.5e-31, 1.0).unwrap();
        let _ = memo.estimate(&g, 1e-10, MetricKind::Two);
        assert_eq!(memo.stats().misses, 4);
        assert_eq!(memo.stats().hits, 0);
        assert_eq!(memo.len(), 4);
    }

    #[test]
    fn bounds_are_memoized_and_exact() {
        let f = moments();
        let mut memo = StageMemo::new();
        let (a, hit_a) = memo.bounds(&f);
        let (b, hit_b) = memo.bounds(&f);
        assert!(!hit_a && hit_b);
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(a.vp.1.to_bits(), b.vp.1.to_bits());
        let direct = MetricOne::bounds(&f).unwrap();
        assert_eq!(a.wn.0.to_bits(), direct.wn.0.to_bits());
    }

    #[test]
    fn errors_are_cached_like_values() {
        // Moments with a negative T_W² radicand are non-physical — the
        // second query must be a hit carrying the same error.
        let f = OutputMoments::from_raw(1e-11, -2e-21, 1e-33, 1.0).unwrap();
        let mut memo = StageMemo::new();
        let (e1, h1) = memo.estimate(&f, 1e-10, MetricKind::Two);
        let (e2, h2) = memo.estimate(&f, 1e-10, MetricKind::Two);
        assert!(e1.is_err(), "expected a metric error, got {e1:?}");
        assert!(!h1 && h2);
        assert_eq!(e1, e2);
    }

    #[test]
    fn accounting_adds_up_and_clear_preserves_it() {
        let f = moments();
        let mut memo = StageMemo::new();
        for _ in 0..5 {
            let _ = memo.estimate(&f, 1e-10, MetricKind::Two);
        }
        let _ = memo.bounds(&f);
        let s = memo.stats();
        assert_eq!(s.queries(), 6);
        assert_eq!(s.hits, 4);
        assert_eq!(s.misses, 2);
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.stats().queries(), 6);
        let (_, hit) = memo.estimate(&f, 1e-10, MetricKind::Two);
        assert!(!hit, "clear drops entries");
    }
}
