use crate::{shape_ratio_m, MetricError, NoiseEstimate, OutputMoments};

/// Default transition-time shape factor `λ = 1.25·(ln 10 − ln 10/9)
/// = 1.25·ln 9 ≈ 2.7465` (paper eq. 7): the conversion between the 10–90%
/// extrapolated transition time and an exponential's time constant.
pub const LAMBDA: f64 = 2.746530721670274; // 1.25 * ln(9)

/// **New noise metric II** (paper §3.4): moment matching against the
/// linear-rise / exponential-decay template.
///
/// With `α = m/λ`, the closed-form solution (eqs. 48–53) is
///
/// ```text
/// T1 = (2α+1) / √(72α⁴ + 72α³ + 24α² + 6α + 1) · T_W
/// Vp = 2·f1 / ((2α+1)·T1)
/// T0 = −f2/f1 − (6α² + 6α + 2)/(6α + 3) · T1
/// Tp = −f2/f1 − (6α² − 1)/(6α + 3) · T1
/// T2 = m·T1      τ₂ = α·T1      Wn = (m+1)·T1
/// ```
///
/// The shape ratio `m` is seeded from the piecewise-linear model via
/// eq. (54). With the default `λ` this metric is the paper's best: a
/// conservative upper bound for the peak amplitude in *all* coupling
/// scenarios (near-end included), tighter than every prior-art bound.
///
/// # Examples
///
/// Matching a linear-exponential pulse's own moments reconstructs it:
///
/// ```
/// use xtalk_core::{template::LinExpTemplate, MetricTwo, OutputMoments, LAMBDA};
///
/// let pulse = LinExpTemplate::new(1e-10, 4e-11, 1.5, LAMBDA, 0.2);
/// let [e1, e2, e3] = pulse.moments();
/// let f = OutputMoments::from_raw(e1, e2, e3, 1.0)?;
/// let est = MetricTwo::default().estimate(&f, 1.5)?;
/// assert!((est.vp - 0.2).abs() < 1e-9);
/// assert!((est.t1 - 4e-11).abs() < 1e-20);
/// # Ok::<(), xtalk_core::MetricError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricTwo {
    lambda: f64,
}

impl Default for MetricTwo {
    /// Metric II with the paper's default `λ` (eq. 7).
    fn default() -> Self {
        MetricTwo { lambda: LAMBDA }
    }
}

impl MetricTwo {
    /// Metric II with a custom `λ` (the paper notes the estimate quality
    /// depends on it; the default gives the absolute `Vp` upper bound).
    ///
    /// # Panics
    ///
    /// Panics unless `lambda` is positive and finite.
    pub fn with_lambda(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive and finite"
        );
        MetricTwo { lambda }
    }

    /// The shape factor in use.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Evaluates eqs. (48)–(53) for a given shape ratio `m`.
    ///
    /// # Errors
    ///
    /// * [`MetricError::BadShapeRatio`] — `m` not positive/finite.
    /// * [`MetricError::NonPhysicalMoments`] — `T_W²` negative beyond
    ///   cancellation distance.
    /// * [`MetricError::DegenerateWidth`] — `T_W` clamped to zero.
    /// * [`MetricError::NonFiniteQuantity`] /
    ///   [`MetricError::DegenerateEstimate`] — `T1` underflowed to zero or
    ///   the quartic `m` polynomial overflowed, which would otherwise emit
    ///   infinite `Vp`/`T1`/`T2`; callers like
    ///   [`crate::RobustAnalyzer`] route these through the fallback chain
    ///   with the failure recorded in the provenance.
    pub fn estimate(&self, f: &OutputMoments, m: f64) -> Result<NoiseEstimate, MetricError> {
        xtalk_obs::counter!("core.metric2.estimates").add(1);
        estimate_raw(self.lambda, f.f1(), f.f2(), f.f3(), f.polarity(), m)
    }

    /// Evaluates the metric with `m` from eq. (54) seeded by the input
    /// transition time.
    ///
    /// # Errors
    ///
    /// Propagates [`MetricTwo::estimate`] errors and
    /// [`MetricError::StepInputNeedsExplicitM`] for `t_r ≤ 0`.
    pub fn estimate_auto(&self, f: &OutputMoments, t_r: f64) -> Result<NoiseEstimate, MetricError> {
        let m = shape_ratio_m(f.t_w()?, t_r)?;
        self.estimate(f, m)
    }
}

/// Lane-level body of [`MetricTwo::estimate`] shared with [`crate::batch`]:
/// identical operation sequence minus the observability counter.
pub(crate) fn estimate_raw(
    lambda: f64,
    f1: f64,
    f2: f64,
    f3: f64,
    polarity: f64,
    m: f64,
) -> Result<NoiseEstimate, MetricError> {
    if !(m.is_finite() && m > 0.0) {
        return Err(MetricError::BadShapeRatio { m });
    }
    let tw = crate::output::t_w_raw(f1, f2, f3)?;
    if tw <= 0.0 {
        return Err(MetricError::DegenerateWidth { t_w: tw });
    }
    let a = m / lambda;
    let poly = 72.0 * a.powi(4) + 72.0 * a.powi(3) + 24.0 * a * a + 6.0 * a + 1.0;
    let t1 = (2.0 * a + 1.0) / poly.sqrt() * tw;
    let vp = 2.0 * f1 / ((2.0 * a + 1.0) * t1);
    let c = -f2 / f1;
    let t0 = c - (6.0 * a * a + 6.0 * a + 2.0) / (6.0 * a + 3.0) * t1;
    let tp = c - (6.0 * a * a - 1.0) / (6.0 * a + 3.0) * t1;
    let t2 = m * t1;
    NoiseEstimate {
        vp,
        t0,
        t1,
        t2,
        tp,
        wn: (m + 1.0) * t1,
        m,
        polarity,
    }
    .validated()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::LinExpTemplate;

    fn moments_of(t: &LinExpTemplate) -> OutputMoments {
        let [e1, e2, e3] = t.moments();
        OutputMoments::from_raw(e1, e2, e3, 1.0).unwrap()
    }

    #[test]
    fn round_trip_reconstructs_template_exactly() {
        for &(t0, t1, m, vp) in &[
            (0.0, 1e-10, 1.0, 0.1),
            (2e-10, 5e-11, 3.0, 0.45),
            (1e-11, 2e-10, 0.3, 0.08),
            (4e-10, 7e-11, 8.0, 0.3),
        ] {
            let tpl = LinExpTemplate::new(t0, t1, m, LAMBDA, vp);
            let est = MetricTwo::default().estimate(&moments_of(&tpl), m).unwrap();
            assert!((est.vp - vp).abs() < 1e-9 * vp, "vp: {} vs {vp}", est.vp);
            assert!((est.t1 - t1).abs() < 1e-9 * t1, "t1: {} vs {t1}", est.t1);
            assert!(
                (est.t0 - t0).abs() < 1e-8 * (t0.abs() + t1),
                "t0: {} vs {t0}",
                est.t0
            );
            assert!((est.t2 - m * t1).abs() < 1e-9 * m * t1);
        }
    }

    #[test]
    fn round_trip_with_custom_lambda() {
        let lambda = 3.5;
        let tpl = LinExpTemplate::new(1e-10, 6e-11, 2.0, lambda, 0.3);
        let est = MetricTwo::with_lambda(lambda)
            .estimate(&moments_of(&tpl), 2.0)
            .unwrap();
        assert!((est.vp - 0.3).abs() < 1e-9 * 0.3);
        assert!((est.t1 - 6e-11).abs() < 1e-20);
    }

    #[test]
    fn tp_is_t0_plus_t1() {
        // eq. 52 must be consistent with eq. 50: Tp − T0 = T1.
        let tpl = LinExpTemplate::new(2e-10, 9e-11, 1.2, LAMBDA, 0.2);
        let f = moments_of(&tpl);
        for &m in &[0.1, 0.7, 1.2, 3.0, 20.0] {
            let est = MetricTwo::default().estimate(&f, m).unwrap();
            assert!(
                (est.tp - (est.t0 + est.t1)).abs() < 1e-9 * est.t1,
                "m = {m}: tp − t0 = {} vs t1 = {}",
                est.tp - est.t0,
                est.t1
            );
        }
    }

    #[test]
    fn area_is_preserved_by_matching() {
        // e1 matching: Vp·T1·(α + 1/2) = f1, i.e. the template area under
        // the linear+exponential pulse equals f1.
        let tpl = LinExpTemplate::new(0.0, 1e-10, 2.0, LAMBDA, 0.25);
        let f = moments_of(&tpl);
        for &m in &[0.2, 1.0, 2.0, 10.0] {
            let est = MetricTwo::default().estimate(&f, m).unwrap();
            let a = m / LAMBDA;
            let area = est.vp * est.t1 * (a + 0.5);
            assert!((area - f.f1()).abs() < 1e-9 * f.f1());
        }
    }

    #[test]
    fn default_lambda_matches_eq_7() {
        let expect = 1.25 * (1.0f64 / 0.1).ln() - 1.25 * (1.0f64 / 0.9).ln();
        assert!((LAMBDA - expect).abs() < 1e-12);
        assert!((LAMBDA - 2.7465).abs() < 1e-4);
        assert_eq!(MetricTwo::default().lambda(), LAMBDA);
    }

    #[test]
    fn bad_shape_ratio_rejected() {
        let tpl = LinExpTemplate::new(0.0, 1e-10, 1.0, LAMBDA, 0.2);
        let f = moments_of(&tpl);
        assert!(matches!(
            MetricTwo::default().estimate(&f, -2.0),
            Err(MetricError::BadShapeRatio { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn zero_lambda_panics() {
        MetricTwo::with_lambda(0.0);
    }

    #[test]
    fn overflowing_shape_ratio_is_a_structured_error_not_inf() {
        // m = 1e300 passes the positivity gate but a⁴ overflows: poly =
        // inf, t1 = 0, vp = inf — the pre-fix escape. The validation gate
        // must return a structured error instead of non-finite metrics.
        let tpl = LinExpTemplate::new(0.0, 1e-10, 1.0, LAMBDA, 0.2);
        let f = moments_of(&tpl);
        let err = MetricTwo::default().estimate(&f, 1e300).unwrap_err();
        assert!(
            matches!(
                err,
                MetricError::NonFiniteQuantity { .. } | MetricError::DegenerateEstimate { .. }
            ),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn zero_width_moments_are_a_structured_degenerate_error() {
        // Cancellation-clamped T_W = 0: vp = 2·f1/((2a+1)·t1) would divide
        // by zero; the guard returns DegenerateWidth first.
        let (area, c) = (2e-11, 3e-10);
        let f3 = area * c * c / 2.0 * (1.0 - 1e-13);
        let f = OutputMoments::from_raw(area, -area * c, f3, 1.0).unwrap();
        assert!(matches!(
            MetricTwo::default().estimate(&f, 1.0),
            Err(MetricError::DegenerateWidth { .. })
        ));
        assert!(matches!(
            MetricTwo::default().estimate_auto(&f, 1e-10),
            Err(MetricError::DegenerateWidth { .. })
        ));
    }
}
