//! Degraded-mode analysis: a policy-driven fallback chain with provenance.
//!
//! The closed-form metrics are exact *given physical moments*, but real
//! flows feed them parasitics from extractors, SPICE decks and reduction
//! heuristics that are occasionally degenerate: truncated moment series,
//! non-causal centroids, step inputs that cannot seed eq. (54), coupling
//! so extreme the template peak exceeds the supply. A screening flow must
//! not abort on the one pathological net out of a million — it must
//! degrade to a cruder but well-defined answer and *say so*.
//!
//! [`RobustAnalyzer`] wraps [`NoiseAnalyzer`] with a four-rung fallback
//! chain, ordered by fidelity:
//!
//! 1. [`Rung::MetricTwo`] — Metric II with `m` strictly seeded from the
//!    input transition time via eq. (54) (the paper's recommended metric).
//! 2. [`Rung::MetricOneSymmetric`] — Metric I's symmetric `m = 1` special
//!    case (eqs. 41–46); needs no transition time, so it covers ideal
//!    steps.
//! 3. [`Rung::Bounds`] — the conservative envelope of the closed-form
//!    `m → 0` / `m → ∞` parameter bounds (eqs. 37–40): highest peak,
//!    widest pulse, latest peak time. Covers moments whose *point*
//!    estimates fail sanity checks while the envelope is still causal.
//! 4. [`Rung::LumpedPi`] — the location-blind lumped-π baseline. The only
//!    rung that does not depend on the output moments at all, so it
//!    survives [`MetricError::NonPhysicalMoments`].
//!
//! Every estimate that clears a rung is sanity-checked (all fields
//! finite, transition times positive, causal peak, `Vp ∈ [0, 1]`); a rung
//! whose output fails the checks counts as failed and the chain descends.
//! The returned [`RobustEstimate`] carries a [`Provenance`] record: the
//! rung that produced it, every rung that failed and why, and whether the
//! peak was clamped. [`FallbackPolicy::strict`] turns any degradation
//! into a structured error instead.
//!
//! # Examples
//!
//! ```
//! use xtalk_circuit::{signal::InputSignal, NetRole, NetworkBuilder, units::*};
//! use xtalk_core::{RobustAnalyzer, Rung};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetworkBuilder::new();
//! let vic = b.add_net("victim", NetRole::Victim);
//! let agg = b.add_net("agg", NetRole::Aggressor);
//! let v0 = b.add_node(vic, "v0");
//! let v1 = b.add_node(vic, "v1");
//! b.add_driver(vic, v0, 150.0 * OHM)?;
//! b.add_resistor(v0, v1, 60.0 * OHM)?;
//! b.add_ground_cap(v1, ff(25.0))?;
//! b.add_sink(v1, ff(15.0))?;
//! let a0 = b.add_node(agg, "a0");
//! b.add_driver(agg, a0, 100.0 * OHM)?;
//! b.add_sink(a0, ff(15.0))?;
//! b.add_coupling_cap(a0, v1, ff(40.0))?;
//! let network = b.build()?;
//!
//! let analyzer = RobustAnalyzer::new(&network)?;
//! let result = analyzer.analyze(agg, &InputSignal::rising_ramp(0.0, 1e-10))?;
//! assert_eq!(result.provenance.rung(), Rung::MetricTwo);
//! assert!(!result.provenance.degraded());
//! assert!(result.estimate.vp > 0.0 && result.estimate.vp <= 1.0);
//! # Ok(())
//! # }
//! ```

use crate::baselines::lumped_pi;
use crate::{MetricError, MetricOne, MetricTwo, NoiseAnalyzer, NoiseBounds, NoiseEstimate, OutputMoments};
use std::error::Error;
use std::fmt;
use xtalk_circuit::{signal::InputSignal, NetId, Network, NodeId, Severity, ValidationReport};

/// One rung of the fallback chain, in descending fidelity order
/// (`MetricTwo` is the best, `LumpedPi` the crudest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rung {
    /// Metric II (eqs. 48–53) with `m` seeded from eq. (54).
    MetricTwo,
    /// Metric I, symmetric `m = 1` special case (eqs. 41–46).
    MetricOneSymmetric,
    /// Conservative envelope of the parameter bounds (eqs. 37–40).
    Bounds,
    /// Lumped-π baseline (moment-free, location-blind).
    LumpedPi,
}

impl Rung {
    /// The full chain, best fidelity first.
    pub const CHAIN: [Rung; 4] = [
        Rung::MetricTwo,
        Rung::MetricOneSymmetric,
        Rung::Bounds,
        Rung::LumpedPi,
    ];

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Rung::MetricTwo => "metric II",
            Rung::MetricOneSymmetric => "metric I (m = 1)",
            Rung::Bounds => "parameter bounds envelope",
            Rung::LumpedPi => "lumped-pi baseline",
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A post-hoc sanity check an estimate failed.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SanityError {
    /// A waveform field is NaN or infinite.
    NonFinite {
        /// Field name (`"vp"`, `"t0"`, …).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A transition time (`t1` or `t2`) is not positive.
    NonPositiveTransition {
        /// Field name.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The peak occurs before the aggressor input even switches.
    NonCausalPeak {
        /// Estimated peak time.
        tp: f64,
        /// Aggressor input arrival time.
        arrival: f64,
    },
    /// The peak amplitude lies outside `[0, 1]` (× `Vdd`).
    PeakOutOfRange {
        /// The offending peak.
        vp: f64,
    },
}

impl fmt::Display for SanityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanityError::NonFinite { field, value } => {
                write!(f, "{field} = {value} is not finite")
            }
            SanityError::NonPositiveTransition { field, value } => {
                write!(f, "transition time {field} = {value} is not positive")
            }
            SanityError::NonCausalPeak { tp, arrival } => {
                write!(f, "peak at {tp} s precedes the input arrival {arrival} s")
            }
            SanityError::PeakOutOfRange { vp } => {
                write!(f, "peak vp = {vp} outside [0, 1] x Vdd")
            }
        }
    }
}

/// Why a specific rung failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RungError {
    /// The metric computation itself returned an error.
    Metric(MetricError),
    /// The metric produced an estimate that failed a sanity check.
    Sanity(SanityError),
}

impl fmt::Display for RungError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RungError::Metric(e) => write!(f, "{e}"),
            RungError::Sanity(e) => write!(f, "sanity check failed: {e}"),
        }
    }
}

/// One failed rung of the chain: which rung, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct RungFailure {
    /// The rung that failed.
    pub rung: Rung,
    /// Why it failed.
    pub error: RungError,
}

impl fmt::Display for RungFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.rung, self.error)
    }
}

/// How the chain degrades. The default policy walks all four rungs and
/// clamps out-of-range peaks; [`FallbackPolicy::strict`] refuses any
/// degradation.
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackPolicy {
    /// Fail on the first rung failure instead of descending the chain.
    /// Also rejects networks whose validation report carries *warnings*
    /// (errors always reject).
    pub strict: bool,
    /// Accept an otherwise-sane estimate whose peak exceeds the supply by
    /// clamping `vp` into `[0, 1]` (recorded in the provenance). When
    /// `false`, such estimates fail [`SanityError::PeakOutOfRange`].
    pub clamp_vp: bool,
    /// Clamp a noise arrival `t0` that precedes both the input arrival
    /// and `t = 0` up to that floor, re-deriving `t1`/`t2` so the
    /// identities `tp = t0 + t1` and `wn = t1 + t2` (and the physical
    /// `tp`, `wn` themselves) are preserved. Every clamp is recorded in
    /// [`Provenance::timing_clamps`]. A slightly early `t0` is a template
    /// artifact the paper accepts — clamping keeps downstream consumers
    /// (timing windows, report tables) free of negative times without
    /// changing the peak or width.
    pub clamp_timing: bool,
    /// The lowest-fidelity rung the chain may descend to.
    pub floor: Rung,
}

impl Default for FallbackPolicy {
    fn default() -> Self {
        FallbackPolicy {
            strict: false,
            clamp_vp: true,
            clamp_timing: true,
            floor: Rung::LumpedPi,
        }
    }
}

impl FallbackPolicy {
    /// Full-fidelity-or-error: the first failure (including a validation
    /// warning or a would-be clamp) is returned as a structured error.
    pub fn strict() -> Self {
        FallbackPolicy {
            strict: true,
            clamp_vp: false,
            clamp_timing: false,
            floor: Rung::MetricTwo,
        }
    }
}

/// Where an estimate came from: the rung that produced it, every rung
/// that failed before it (and why), and post-hoc adjustments.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    rung: Rung,
    failures: Vec<RungFailure>,
    clamped: bool,
    timing_clamps: Vec<&'static str>,
    validation_warnings: usize,
}

impl Provenance {
    /// The rung that produced the estimate.
    pub fn rung(&self) -> Rung {
        self.rung
    }

    /// The rungs that failed before one succeeded, in chain order.
    pub fn failures(&self) -> &[RungFailure] {
        &self.failures
    }

    /// `true` when the peak was clamped into `[0, 1]`.
    pub fn clamped(&self) -> bool {
        self.clamped
    }

    /// Names of the timing quantities adjusted by the post-hoc timing
    /// clamp (see [`FallbackPolicy::clamp_timing`]), in the order they
    /// were applied; empty when nothing was clamped. Like validation
    /// warnings, timing clamps alone do not count as degradation — a
    /// slightly early template `t0` is routine.
    pub fn timing_clamps(&self) -> &[&'static str] {
        &self.timing_clamps
    }

    /// Number of validation *warnings* on the analyzed network (errors
    /// reject the network outright at construction).
    pub fn validation_warnings(&self) -> usize {
        self.validation_warnings
    }

    /// `true` when the estimate did not come from the full-fidelity path:
    /// a rung below [`Rung::MetricTwo`] produced it, or the peak was
    /// clamped. Validation warnings alone do not count as degradation.
    pub fn degraded(&self) -> bool {
        self.rung != Rung::MetricTwo || self.clamped || !self.failures.is_empty()
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.degraded() {
            write!(f, "{} (full fidelity)", self.rung)?;
        } else {
            write!(f, "degraded to {}", self.rung)?;
            if self.clamped {
                write!(f, " (vp clamped to 1)")?;
            }
            for failure in &self.failures {
                write!(f, "; {failure}")?;
            }
        }
        if !self.timing_clamps.is_empty() {
            write!(f, "; timing clamped: {}", self.timing_clamps.join(", "))?;
        }
        if self.validation_warnings > 0 {
            write!(f, "; {} validation warning(s)", self.validation_warnings)?;
        }
        Ok(())
    }
}

/// A noise estimate plus the [`Provenance`] that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustEstimate {
    /// The waveform estimate (possibly from a fallback rung).
    pub estimate: NoiseEstimate,
    /// Which rung produced it and what failed along the way.
    pub provenance: Provenance,
}

/// Structured failure of the degraded-mode pipeline: either the inputs
/// were rejected up front, or every permitted rung failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RobustError {
    /// `Network::validate` found errors (or, under a strict policy,
    /// warnings). The report lists every finding.
    InvalidNetwork(ValidationReport),
    /// The underlying moment engine could not be constructed.
    Engine(MetricError),
    /// Strict policy: the first rung failed and degradation is forbidden.
    StrictDegradation(RungFailure),
    /// Every rung down to the policy floor failed.
    Exhausted(Vec<RungFailure>),
}

impl RobustError {
    /// True when the analysis failed *only* because the configuration
    /// produces no noise at all (every involved rung reported
    /// [`MetricError::NoNoise`]) — e.g. a victim with no switching
    /// aggressor. Callers screening many aggressors treat this as a
    /// legitimate zero-noise contribution rather than a failure.
    #[must_use]
    pub fn is_no_noise(&self) -> bool {
        let no_noise =
            |f: &RungFailure| matches!(f.error, RungError::Metric(MetricError::NoNoise));
        match self {
            RobustError::Engine(MetricError::NoNoise) => true,
            RobustError::StrictDegradation(f) => no_noise(f),
            RobustError::Exhausted(fails) => !fails.is_empty() && fails.iter().all(no_noise),
            _ => false,
        }
    }
}

impl fmt::Display for RobustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RobustError::InvalidNetwork(report) => {
                write!(f, "network failed validation:\n{report}")
            }
            RobustError::Engine(e) => write!(f, "moment engine construction failed: {e}"),
            RobustError::StrictDegradation(failure) => {
                write!(f, "strict policy forbids degradation: {failure}")
            }
            RobustError::Exhausted(failures) => {
                write!(f, "every fallback rung failed:")?;
                for failure in failures {
                    write!(f, " [{failure}]")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for RobustError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RobustError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MetricError> for RobustError {
    fn from(e: MetricError) -> Self {
        RobustError::Engine(e)
    }
}

/// [`NoiseAnalyzer`] wrapped in validation gating and the fallback chain.
///
/// Construction runs [`Network::validate`] and rejects networks with
/// error-severity findings; every analysis walks the rung chain under the
/// configured [`FallbackPolicy`] and returns a provenance-tagged
/// [`RobustEstimate`] or a structured [`RobustError`] — never a panic.
#[derive(Debug)]
pub struct RobustAnalyzer<'a> {
    inner: NoiseAnalyzer<'a>,
    policy: FallbackPolicy,
    validation: ValidationReport,
}

impl<'a> RobustAnalyzer<'a> {
    /// Builds the analyzer with the default (fully degrading) policy.
    ///
    /// # Errors
    ///
    /// [`RobustError::InvalidNetwork`] when validation finds errors;
    /// [`RobustError::Engine`] when the moment engine cannot be built.
    pub fn new(network: &'a Network) -> Result<Self, RobustError> {
        Self::with_policy(network, FallbackPolicy::default())
    }

    /// Builds the analyzer with an explicit policy.
    ///
    /// # Errors
    ///
    /// As [`RobustAnalyzer::new`]; under [`FallbackPolicy::strict`],
    /// warning-severity findings also reject the network.
    pub fn with_policy(network: &'a Network, policy: FallbackPolicy) -> Result<Self, RobustError> {
        let validation = network.validate();
        let rejected = validation.has_errors() || (policy.strict && !validation.is_clean());
        if rejected {
            return Err(RobustError::InvalidNetwork(validation));
        }
        let inner = NoiseAnalyzer::new(network).map_err(RobustError::Engine)?;
        Ok(RobustAnalyzer {
            inner,
            policy,
            validation,
        })
    }

    /// The wrapped full-fidelity analyzer.
    pub fn inner(&self) -> &NoiseAnalyzer<'a> {
        &self.inner
    }

    /// The active policy.
    pub fn policy(&self) -> &FallbackPolicy {
        &self.policy
    }

    /// The construction-time validation report (warnings only — errors
    /// would have rejected the network).
    pub fn validation(&self) -> &ValidationReport {
        &self.validation
    }

    /// Provenance-tagged estimate for one aggressor at the victim output.
    ///
    /// # Errors
    ///
    /// [`RobustError::Exhausted`] when every permitted rung fails,
    /// [`RobustError::StrictDegradation`] under a strict policy.
    pub fn analyze(
        &self,
        aggressor: NetId,
        input: &InputSignal,
    ) -> Result<RobustEstimate, RobustError> {
        self.analyze_at(aggressor, input, self.inner.network().victim_output())
    }

    /// Like [`RobustAnalyzer::analyze`], observed at an arbitrary victim
    /// node.
    ///
    /// # Errors
    ///
    /// As [`RobustAnalyzer::analyze`].
    pub fn analyze_at(
        &self,
        aggressor: NetId,
        input: &InputSignal,
        node: NodeId,
    ) -> Result<RobustEstimate, RobustError> {
        let moments = self.inner.output_moments_at(aggressor, input, node);
        self.chain(moments, aggressor, input)
    }

    /// Per-aggressor results for a batch — one entry per input, failures
    /// collected instead of aborting the batch.
    pub fn analyze_all(
        &self,
        inputs: &[(NetId, InputSignal)],
    ) -> Vec<(NetId, Result<RobustEstimate, RobustError>)> {
        inputs
            .iter()
            .map(|(net, input)| (*net, self.analyze(*net, input)))
            .collect()
    }

    /// Walks the rung chain over precomputed output moments.
    fn chain(
        &self,
        moments: Result<OutputMoments, MetricError>,
        aggressor: NetId,
        input: &InputSignal,
    ) -> Result<RobustEstimate, RobustError> {
        let mut failures = Vec::new();
        for rung in Rung::CHAIN {
            if rung > self.policy.floor {
                break;
            }
            let attempt = self.try_rung(rung, &moments, aggressor, input);
            match attempt {
                Ok(mut estimate) => match sanity_check(&estimate, input) {
                    Ok(()) => {
                        return Ok(self.accept(estimate, rung, failures, false, input));
                    }
                    // The range check runs last, so an out-of-range peak
                    // means everything else about the estimate is sane.
                    Err(SanityError::PeakOutOfRange { .. })
                        if self.policy.clamp_vp && !self.policy.strict =>
                    {
                        estimate.vp = estimate.vp.clamp(0.0, 1.0);
                        return Ok(self.accept(estimate, rung, failures, true, input));
                    }
                    Err(sanity) => failures.push(RungFailure {
                        rung,
                        error: RungError::Sanity(sanity),
                    }),
                },
                Err(e) => failures.push(RungFailure {
                    rung,
                    error: RungError::Metric(e),
                }),
            }
            if self.policy.strict {
                let first = failures.remove(0);
                xtalk_obs::counter!("resilience.strict_refusals").add(1);
                return Err(RobustError::StrictDegradation(first));
            }
        }
        xtalk_obs::counter!("resilience.exhausted").add(1);
        Err(RobustError::Exhausted(failures))
    }

    fn accept(
        &self,
        mut estimate: NoiseEstimate,
        rung: Rung,
        failures: Vec<RungFailure>,
        clamped: bool,
        input: &InputSignal,
    ) -> RobustEstimate {
        let timing_clamps = if self.policy.clamp_timing {
            clamp_timing(&mut estimate, input.arrival().min(0.0))
        } else {
            Vec::new()
        };
        // Which rung answered, and what was adjusted on the way out — the
        // degradation-rate telemetry the CI health gate watches
        // (`resilience.rung.lumped` must stay 0 on healthy fixtures).
        match rung {
            Rung::MetricTwo => xtalk_obs::counter!("resilience.rung.metric2").add(1),
            Rung::MetricOneSymmetric => {
                xtalk_obs::counter!("resilience.rung.metric1_m1").add(1);
            }
            Rung::Bounds => xtalk_obs::counter!("resilience.rung.bounds").add(1),
            Rung::LumpedPi => xtalk_obs::counter!("resilience.rung.lumped").add(1),
        }
        if clamped {
            xtalk_obs::counter!("resilience.vp_clamps").add(1);
        }
        if !timing_clamps.is_empty() {
            xtalk_obs::counter!("resilience.timing_clamps").add(1);
        }
        RobustEstimate {
            estimate,
            provenance: Provenance {
                rung,
                failures,
                clamped,
                timing_clamps,
                validation_warnings: self
                    .validation
                    .with_severity(Severity::Warning)
                    .count(),
            },
        }
    }

    fn try_rung(
        &self,
        rung: Rung,
        moments: &Result<OutputMoments, MetricError>,
        aggressor: NetId,
        input: &InputSignal,
    ) -> Result<NoiseEstimate, MetricError> {
        match rung {
            Rung::MetricTwo => {
                let f = moments.clone()?;
                // Strictly seed m from eq. (54): ideal steps fail here
                // (StepInputNeedsExplicitM) and degrade to the symmetric
                // rung, which needs no transition time.
                MetricTwo::default().estimate_auto(&f, input.effective_rise_time())
            }
            Rung::MetricOneSymmetric => MetricOne::estimate_symmetric(&moments.clone()?),
            Rung::Bounds => {
                let f = moments.clone()?;
                let bounds = MetricOne::bounds(&f)?;
                Ok(envelope_estimate(&bounds, f.polarity()))
            }
            Rung::LumpedPi => {
                let unstable = MetricError::BaselineUnstable {
                    baseline: "lumped-pi",
                };
                let base = lumped_pi(self.inner.network(), aggressor, input)?;
                let vp = base.vp.ok_or(unstable.clone())?;
                let tp = base.tp.ok_or(unstable.clone())?;
                let t1 = tp - input.arrival();
                if !(t1.is_finite() && t1 > 0.0) {
                    return Err(unstable);
                }
                // The baseline captures only (Vp, Tp); fill in a symmetric
                // triangle peaking at Tp so downstream consumers get a
                // complete waveform.
                Ok(NoiseEstimate {
                    vp,
                    t0: input.arrival(),
                    t1,
                    t2: t1,
                    tp,
                    wn: 2.0 * t1,
                    m: 1.0,
                    polarity: input.noise_polarity(),
                })
            }
        }
    }
}

/// The conservative corner of the closed-form bounds (eqs. 37–40):
/// highest peak, widest pulse, latest peak time, symmetric flanks. The
/// invariants `tp = t0 + t1` and `wn = t1 + t2` are kept by deriving `t0`
/// from the chosen `tp` and `t1`.
fn envelope_estimate(bounds: &NoiseBounds, polarity: f64) -> NoiseEstimate {
    let wn = bounds.wn.1;
    let t1 = wn / 2.0;
    let tp = bounds.tp.1;
    NoiseEstimate {
        vp: bounds.vp.1,
        t0: tp - t1,
        t1,
        t2: t1,
        tp,
        wn,
        m: 1.0,
        polarity,
    }
}

/// Clamps a noise arrival that precedes `floor` (`min(arrival, 0)`) up to
/// it, recording which fields changed. The physical quantities — peak
/// time `tp` and width `wn` — are preserved to within one rounding step;
/// `t1` and `t2` are re-derived (`t1' = tp − floor`, `t2' = wn − t1'`) and
/// `tp`/`wn` recomputed from the parts so `tp = t0 + t1` and
/// `wn = t1 + t2` hold *exactly* post-clamp. Since `t0 < floor ≤ tp`
/// implies `0 < t1' < t1` and `t2' > t2 > 0`, the adjusted transition
/// times stay positive; the one unclampable corner (`tp` exactly at the
/// floor, which would need `t1' = 0`) is left untouched.
fn clamp_timing(e: &mut NoiseEstimate, floor: f64) -> Vec<&'static str> {
    let mut clamps = Vec::new();
    if e.t0 < floor {
        let t1 = e.tp - floor;
        if t1 > 0.0 {
            e.t0 = floor;
            e.t1 = t1;
            e.t2 = e.wn - t1;
            e.tp = floor + t1;
            e.wn = t1 + e.t2;
            e.m = e.t2 / e.t1;
            clamps.push("t0");
            clamps.push("t1");
            clamps.push("t2");
        }
    }
    clamps
}

/// Post-hoc checks, ordered so the recoverable failure (peak out of
/// range) is reported only when everything else passed.
fn sanity_check(e: &NoiseEstimate, input: &InputSignal) -> Result<(), SanityError> {
    for (field, value) in [
        ("vp", e.vp),
        ("t0", e.t0),
        ("t1", e.t1),
        ("t2", e.t2),
        ("tp", e.tp),
        ("wn", e.wn),
        ("m", e.m),
        ("polarity", e.polarity),
    ] {
        if !value.is_finite() {
            return Err(SanityError::NonFinite { field, value });
        }
    }
    for (field, value) in [("t1", e.t1), ("t2", e.t2)] {
        if value <= 0.0 {
            return Err(SanityError::NonPositiveTransition { field, value });
        }
    }
    // t0 may legitimately sit slightly before the arrival (a template
    // artifact the paper accepts), but a *peak* before the input switches
    // is non-causal.
    if e.tp < input.arrival() {
        return Err(SanityError::NonCausalPeak {
            tp: e.tp,
            arrival: input.arrival(),
        });
    }
    if !(0.0..=1.0).contains(&e.vp) {
        return Err(SanityError::PeakOutOfRange { vp: e.vp });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_circuit::{NetRole, NetworkBuilder};

    fn coupled_network() -> (Network, NetId) {
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let v0 = b.add_node(v, "v0");
        let v1 = b.add_node(v, "v1");
        let a0 = b.add_node(a, "a0");
        b.add_driver(v, v0, 300.0).unwrap();
        b.add_driver(a, a0, 150.0).unwrap();
        b.add_resistor(v0, v1, 80.0).unwrap();
        b.add_ground_cap(v0, 5e-15).unwrap();
        b.add_ground_cap(v1, 5e-15).unwrap();
        b.add_sink(v1, 10e-15).unwrap();
        b.add_sink(a0, 10e-15).unwrap();
        b.add_coupling_cap(a0, v1, 15e-15).unwrap();
        (b.build().unwrap(), a)
    }

    #[test]
    fn healthy_network_uses_metric_two_with_clean_provenance() {
        let (net, agg) = coupled_network();
        let analyzer = RobustAnalyzer::new(&net).unwrap();
        let r = analyzer
            .analyze(agg, &InputSignal::rising_ramp(0.0, 1e-10))
            .unwrap();
        assert_eq!(r.provenance.rung(), Rung::MetricTwo);
        assert!(r.provenance.failures().is_empty());
        assert!(!r.provenance.degraded());
        assert!(!r.provenance.clamped());
        assert!(r.estimate.vp > 0.0 && r.estimate.vp <= 1.0);
        assert!(r.provenance.to_string().contains("full fidelity"));
    }

    #[test]
    fn step_input_degrades_to_symmetric_metric_one() {
        // Eq. (54) cannot seed m for an ideal step, so the chain records a
        // StepInputNeedsExplicitM failure on rung 1 and lands on rung 2.
        let (net, agg) = coupled_network();
        let analyzer = RobustAnalyzer::new(&net).unwrap();
        let r = analyzer.analyze(agg, &InputSignal::step(0.0)).unwrap();
        assert_eq!(r.provenance.rung(), Rung::MetricOneSymmetric);
        assert!(r.provenance.degraded());
        assert_eq!(r.provenance.failures().len(), 1);
        assert_eq!(r.provenance.failures()[0].rung, Rung::MetricTwo);
        assert!(matches!(
            r.provenance.failures()[0].error,
            RungError::Metric(MetricError::StepInputNeedsExplicitM)
        ));
        // The symmetric rung emits m = 1; the timing clamp may re-derive m
        // from the clamped flanks, but the identities must stay exact.
        if r.provenance.timing_clamps().is_empty() {
            assert!((r.estimate.m - 1.0).abs() < 1e-12);
        }
        assert_eq!(r.estimate.tp, r.estimate.t0 + r.estimate.t1);
        assert_eq!(r.estimate.wn, r.estimate.t1 + r.estimate.t2);
    }

    #[test]
    fn non_causal_point_estimates_degrade_to_bounds_envelope() {
        // A slightly positive f2 puts the centroid before the arrival.
        // With a fast ramp, eq. (54) seeds a large m, so both point
        // estimates peak at or before the centroid — non-causal — while
        // the bounds envelope's latest peak time c + T_W/3 is still
        // causal.
        let (net, agg) = coupled_network();
        let analyzer = RobustAnalyzer::new(&net).unwrap();
        let input = InputSignal::rising_ramp(0.0, 1e-12);
        let f1 = 1e-11;
        let c = -1e-11; // centroid slightly negative: non-causal peak
        let tw = 1e-10;
        let f3 = (tw * tw / 18.0 + c * c) * f1 / 2.0;
        let moments = OutputMoments::from_raw(f1, -f1 * c, f3, 1.0);
        let r = analyzer.chain(moments, agg, &input).unwrap();
        assert_eq!(r.provenance.rung(), Rung::Bounds);
        assert_eq!(r.provenance.failures().len(), 2);
        for failure in r.provenance.failures() {
            assert!(matches!(
                failure.error,
                RungError::Sanity(SanityError::NonCausalPeak { .. })
            ));
        }
        assert!(r.estimate.tp >= 0.0);
        assert!(r.estimate.vp > 0.0 && r.estimate.vp <= 1.0);
    }

    #[test]
    fn non_physical_moments_degrade_to_lumped_baseline() {
        // T_W² < 0 kills every moment-based rung; only the moment-free
        // lumped-π baseline survives.
        let (net, agg) = coupled_network();
        let analyzer = RobustAnalyzer::new(&net).unwrap();
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        let moments = OutputMoments::from_raw(1e-11, -1e-21, 1e-33, 1.0);
        let r = analyzer.chain(moments, agg, &input).unwrap();
        assert_eq!(r.provenance.rung(), Rung::LumpedPi);
        assert_eq!(r.provenance.failures().len(), 3);
        for failure in r.provenance.failures() {
            assert!(matches!(
                failure.error,
                RungError::Metric(MetricError::NonPhysicalMoments { .. })
            ));
        }
        assert!(r.estimate.vp > 0.0 && r.estimate.t1 > 0.0);
        assert!(r.provenance.to_string().contains("degraded to lumped-pi"));
    }

    #[test]
    fn moment_error_exhausts_the_whole_chain_when_lumped_fails_too() {
        // A step input breaks eq. (54) *and* the lumped baseline (which
        // needs a positive transition time); bad moments kill the rest.
        let (net, agg) = coupled_network();
        let analyzer = RobustAnalyzer::new(&net).unwrap();
        let moments = OutputMoments::from_raw(1e-11, -1e-21, 1e-33, 1.0);
        let err = analyzer
            .chain(moments, agg, &InputSignal::step(0.0))
            .unwrap_err();
        match err {
            RobustError::Exhausted(failures) => assert_eq!(failures.len(), 4),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn oversized_peak_is_clamped_and_recorded() {
        // Huge area over a narrow width: vp = 2·f1/T_W > 1.
        let (net, agg) = coupled_network();
        let analyzer = RobustAnalyzer::new(&net).unwrap();
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        let f1 = 1e-9; // 100× a realistic noise area
        let c = 2e-10;
        let tw = 1e-10;
        let f3 = (tw * tw / 18.0 + c * c) * f1 / 2.0;
        let moments = OutputMoments::from_raw(f1, -f1 * c, f3, 1.0);
        let r = analyzer.chain(moments, agg, &input).unwrap();
        assert_eq!(r.estimate.vp, 1.0);
        assert!(r.provenance.clamped());
        assert!(r.provenance.degraded());
        assert_eq!(r.provenance.rung(), Rung::MetricTwo);
    }

    #[test]
    fn early_template_arrival_is_clamped_with_identities_preserved() {
        // Moments whose centroid sits close to t = 0 put the template's
        // extrapolated t0 before the input switches. The default policy
        // clamps t0 up to 0, preserving tp and wn and re-deriving t1/t2 so
        // the identities hold exactly — and records the clamp.
        let (net, agg) = coupled_network();
        let analyzer = RobustAnalyzer::new(&net).unwrap();
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        let f1 = 1e-11;
        let c = 6e-11; // centroid barely after the arrival
        let tw = 3e-10; // wide pulse: t0 = c − extent lands negative
        let f3 = (tw * tw / 18.0 + c * c) * f1 / 2.0;
        let moments = OutputMoments::from_raw(f1, -f1 * c, f3, 1.0);
        let r = analyzer.chain(moments, agg, &input).unwrap();
        let e = &r.estimate;
        assert_eq!(e.t0, 0.0, "t0 clamped to the arrival floor");
        assert!(r.provenance.timing_clamps().contains(&"t0"));
        assert!(e.t1 > 0.0 && e.t2 > 0.0);
        assert_eq!(e.tp, e.t0 + e.t1, "tp identity exact post-clamp");
        assert_eq!(e.wn, e.t1 + e.t2, "wn identity exact post-clamp");
        assert!((e.m - e.t2 / e.t1).abs() <= 1e-12 * e.m);
        // A timing clamp alone is not degradation (like validation
        // warnings) — the estimate still came from the best rung.
        assert!(!r.provenance.degraded());
        assert!(r.provenance.to_string().contains("timing clamped: t0"));

        // The same moments with clamping disabled keep the raw template.
        let policy = FallbackPolicy {
            clamp_timing: false,
            ..FallbackPolicy::default()
        };
        let analyzer = RobustAnalyzer::with_policy(&net, policy).unwrap();
        let moments = OutputMoments::from_raw(f1, -f1 * c, f3, 1.0);
        let raw = analyzer.chain(moments, agg, &input).unwrap();
        assert!(raw.estimate.t0 < 0.0);
        assert!(raw.provenance.timing_clamps().is_empty());
    }

    #[test]
    fn causal_arrival_is_not_touched_by_the_timing_clamp() {
        // A centroid far past the arrival with a narrow pulse keeps t0
        // comfortably positive — the clamp must be a no-op.
        let (net, agg) = coupled_network();
        let analyzer = RobustAnalyzer::new(&net).unwrap();
        let input = InputSignal::rising_ramp(0.0, 1e-10);
        let f1 = 1e-11;
        let c = 5e-10;
        let tw = 1e-10;
        let f3 = (tw * tw / 18.0 + c * c) * f1 / 2.0;
        let moments = OutputMoments::from_raw(f1, -f1 * c, f3, 1.0);
        let r = analyzer.chain(moments, agg, &input).unwrap();
        assert!(r.estimate.t0 > 0.0);
        assert!(r.provenance.timing_clamps().is_empty());
        assert!(!r.provenance.to_string().contains("timing clamped"));
        assert!(r.estimate.t1 > 0.0 && r.estimate.t2 > 0.0);
        assert!((r.estimate.tp - (r.estimate.t0 + r.estimate.t1)).abs() <= 1e-12 * r.estimate.t1);
    }

    #[test]
    fn negative_arrival_keeps_its_own_floor() {
        // An input switching at t = −50 ps may legitimately produce noise
        // before t = 0; the floor is min(arrival, 0), not 0.
        let (net, agg) = coupled_network();
        let analyzer = RobustAnalyzer::new(&net).unwrap();
        let r = analyzer
            .analyze(agg, &InputSignal::rising_ramp(-5e-11, 1e-10))
            .unwrap();
        assert!(r.estimate.t0 >= -5e-11 - 1e-24);
        assert!(r.estimate.t1 > 0.0 && r.estimate.t2 > 0.0);
    }

    #[test]
    fn strict_policy_errors_instead_of_degrading() {
        let (net, agg) = coupled_network();
        let analyzer = RobustAnalyzer::with_policy(&net, FallbackPolicy::strict()).unwrap();
        // Healthy ramp still works at full fidelity.
        let ok = analyzer
            .analyze(agg, &InputSignal::rising_ramp(0.0, 1e-10))
            .unwrap();
        assert!(!ok.provenance.degraded());
        // A step would degrade: strict mode refuses.
        let err = analyzer.analyze(agg, &InputSignal::step(0.0)).unwrap_err();
        match err {
            RobustError::StrictDegradation(failure) => {
                assert_eq!(failure.rung, Rung::MetricTwo);
            }
            other => panic!("expected StrictDegradation, got {other:?}"),
        }
    }

    #[test]
    fn policy_floor_limits_the_descent() {
        let (net, agg) = coupled_network();
        let policy = FallbackPolicy {
            floor: Rung::MetricOneSymmetric,
            ..FallbackPolicy::default()
        };
        let analyzer = RobustAnalyzer::with_policy(&net, policy).unwrap();
        // Non-physical moments would need the lumped rung; the floor
        // stops the chain after rung 2.
        let moments = OutputMoments::from_raw(1e-11, -1e-21, 1e-33, 1.0);
        let err = analyzer
            .chain(moments, agg, &InputSignal::rising_ramp(0.0, 1e-10))
            .unwrap_err();
        match err {
            RobustError::Exhausted(failures) => assert_eq!(failures.len(), 2),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_network_is_rejected_at_construction() {
        let mut b = NetworkBuilder::permissive();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let v0 = b.add_node(v, "v0");
        let a0 = b.add_node(a, "a0");
        b.add_driver(v, v0, f64::NAN).unwrap();
        b.add_driver(a, a0, 150.0).unwrap();
        b.add_ground_cap(v0, 5e-15).unwrap();
        b.add_sink(v0, 10e-15).unwrap();
        b.add_sink(a0, 10e-15).unwrap();
        b.add_coupling_cap(a0, v0, 15e-15).unwrap();
        let net = b.build().unwrap();
        match RobustAnalyzer::new(&net) {
            Err(RobustError::InvalidNetwork(report)) => assert!(report.has_errors()),
            other => panic!("expected InvalidNetwork, got {other:?}"),
        }
    }

    #[test]
    fn strict_policy_rejects_networks_with_warnings() {
        // An uncoupled victim is a warning — fine by default, fatal in
        // strict mode.
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let v0 = b.add_node(v, "v0");
        let a0 = b.add_node(a, "a0");
        b.add_driver(v, v0, 300.0).unwrap();
        b.add_driver(a, a0, 150.0).unwrap();
        b.add_ground_cap(v0, 5e-15).unwrap();
        b.add_sink(v0, 10e-15).unwrap();
        b.add_ground_cap(a0, 5e-15).unwrap();
        b.add_sink(a0, 10e-15).unwrap();
        let net = b.build().unwrap();
        assert!(RobustAnalyzer::new(&net).is_ok());
        assert!(matches!(
            RobustAnalyzer::with_policy(&net, FallbackPolicy::strict()),
            Err(RobustError::InvalidNetwork(_))
        ));
    }

    #[test]
    fn validation_warnings_are_carried_into_provenance() {
        // A capacitance-free interior node on the victim draws a
        // FloatingNode warning (the driver root is exempt); the default
        // policy analyzes anyway and reports it.
        let mut b = NetworkBuilder::new();
        let v = b.add_net("v", NetRole::Victim);
        let a = b.add_net("a", NetRole::Aggressor);
        let v0 = b.add_node(v, "v0");
        let v1 = b.add_node(v, "v1");
        let v2 = b.add_node(v, "v2");
        let a0 = b.add_node(a, "a0");
        b.add_driver(v, v0, 300.0).unwrap();
        b.add_driver(a, a0, 150.0).unwrap();
        b.add_ground_cap(v0, 2e-15).unwrap();
        b.add_resistor(v0, v1, 40.0).unwrap(); // v1: no capacitance at all
        b.add_resistor(v1, v2, 40.0).unwrap();
        b.add_ground_cap(v2, 5e-15).unwrap();
        b.add_sink(v2, 10e-15).unwrap();
        b.add_sink(a0, 10e-15).unwrap();
        b.add_coupling_cap(a0, v2, 15e-15).unwrap();
        let net = b.build().unwrap();
        let agg = a;
        let analyzer = RobustAnalyzer::new(&net).unwrap();
        let warnings = analyzer
            .validation()
            .with_severity(Severity::Warning)
            .count();
        assert!(warnings >= 1);
        let r = analyzer
            .analyze(agg, &InputSignal::rising_ramp(0.0, 1e-10))
            .unwrap();
        assert_eq!(r.provenance.validation_warnings(), warnings);
        assert!(!r.provenance.degraded());
        assert!(r.provenance.to_string().contains("validation warning"));
    }

    #[test]
    fn analyze_all_collects_per_aggressor_results() {
        let (net, agg) = coupled_network();
        let analyzer = RobustAnalyzer::new(&net).unwrap();
        let results = analyzer.analyze_all(&[
            (agg, InputSignal::rising_ramp(0.0, 1e-10)),
            (agg, InputSignal::step(0.0)),
        ]);
        assert_eq!(results.len(), 2);
        assert!(!results[0].1.as_ref().unwrap().provenance.degraded());
        assert!(results[1].1.as_ref().unwrap().provenance.degraded());
    }

    #[test]
    fn error_messages_are_specific() {
        let failure = RungFailure {
            rung: Rung::MetricTwo,
            error: RungError::Metric(MetricError::NoNoise),
        };
        assert!(failure.to_string().contains("metric II"));
        let err = RobustError::Exhausted(vec![failure.clone()]);
        assert!(err.to_string().contains("every fallback rung failed"));
        let strict = RobustError::StrictDegradation(failure);
        assert!(strict.to_string().contains("strict policy"));
        let sanity = SanityError::PeakOutOfRange { vp: 1.5 };
        assert!(sanity.to_string().contains("1.5"));
    }
}
