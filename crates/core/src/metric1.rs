use crate::{shape_ratio_m, MetricError, NoiseBounds, NoiseEstimate, OutputMoments};

/// **New noise metric I** (paper §3.3): moment matching against the
/// piecewise-linear (triangular) template.
///
/// Given the output moments `f1, f2, f3` and a shape ratio `m = T2/T1`,
/// the closed-form solution (eqs. 30–36) is
///
/// ```text
/// T_W = √(36·f3/f1 − 18·(f2/f1)²)
/// Vp  = √(m²+m+1)/(m+1) · 2·f1/T_W
/// T1  = T_W/√(m²+m+1)            T2 = m·T1
/// T0  = −f2/f1 − (m+2)/(3·√(m²+m+1)) · T_W
/// Tp  = T0 + T1                  Wn = (m+1)·T1
/// ```
///
/// Only `+ − × ÷ √` appear — the defining property of the paper's metrics.
///
/// # Examples
///
/// Matching a triangular pulse's own moments reconstructs it exactly:
///
/// ```
/// use xtalk_core::{template::PwlTemplate, MetricOne, OutputMoments};
///
/// let pulse = PwlTemplate::new(1e-10, 4e-11, 2.0, 0.25);
/// let [e1, e2, e3] = pulse.moments();
/// let f = OutputMoments::from_raw(e1, e2, e3, 1.0)?;
/// let est = MetricOne::estimate(&f, 2.0)?;
/// assert!((est.vp - 0.25).abs() < 1e-9);
/// assert!((est.t1 - 4e-11).abs() < 1e-20);
/// assert!((est.t0 - 1e-10).abs() < 1e-19);
/// # Ok::<(), xtalk_core::MetricError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MetricOne;

impl MetricOne {
    /// Evaluates eqs. (30)–(36) for a given shape ratio `m`.
    ///
    /// # Errors
    ///
    /// * [`MetricError::BadShapeRatio`] — `m` not positive/finite.
    /// * [`MetricError::NonPhysicalMoments`] — `T_W²` negative beyond
    ///   cancellation distance (eq. 34).
    /// * [`MetricError::DegenerateWidth`] — `T_W` clamped to zero
    ///   (cancellation-negative radicand): no template fits a zero-width
    ///   pulse.
    /// * [`MetricError::NonFiniteQuantity`] /
    ///   [`MetricError::DegenerateEstimate`] — the arithmetic overflowed
    ///   or underflowed at an extreme `m`/moment combination.
    pub fn estimate(f: &OutputMoments, m: f64) -> Result<NoiseEstimate, MetricError> {
        xtalk_obs::counter!("core.metric1.estimates").add(1);
        estimate_raw(f.f1(), f.f2(), f.f3(), f.polarity(), m)
    }

    /// Evaluates the metric with `m` estimated from the input transition
    /// time via eq. (54).
    ///
    /// # Errors
    ///
    /// Propagates [`MetricOne::estimate`] errors and
    /// [`MetricError::StepInputNeedsExplicitM`] for `t_r ≤ 0`.
    pub fn estimate_auto(f: &OutputMoments, t_r: f64) -> Result<NoiseEstimate, MetricError> {
        let m = shape_ratio_m(f.t_w()?, t_r)?;
        Self::estimate(f, m)
    }

    /// The symmetric special case `m = 1` (`T1 = T2`), eqs. (41)–(46).
    ///
    /// # Errors
    ///
    /// Propagates [`MetricOne::estimate`] errors.
    pub fn estimate_symmetric(f: &OutputMoments) -> Result<NoiseEstimate, MetricError> {
        Self::estimate(f, 1.0)
    }

    /// Closed-form bounds over all shape ratios `0 < m < ∞`
    /// (eqs. 37–40).
    ///
    /// # Errors
    ///
    /// Propagates the `T_W` computation errors;
    /// [`MetricError::DegenerateWidth`] when `T_W` clamped to zero;
    /// [`MetricError::NonFiniteQuantity`] when `2·f1/T_W` overflows.
    pub fn bounds(f: &OutputMoments) -> Result<NoiseBounds, MetricError> {
        xtalk_obs::counter!("core.metric1.bounds").add(1);
        bounds_raw(f.f1(), f.f2(), f.f3())
    }
}

/// Lane-level body of [`MetricOne::estimate`] shared with [`crate::batch`]:
/// identical operation sequence minus the observability counter (the batch
/// evaluator amortizes it over the whole batch).
pub(crate) fn estimate_raw(
    f1: f64,
    f2: f64,
    f3: f64,
    polarity: f64,
    m: f64,
) -> Result<NoiseEstimate, MetricError> {
    if !(m.is_finite() && m > 0.0) {
        return Err(MetricError::BadShapeRatio { m });
    }
    let tw = crate::output::t_w_raw(f1, f2, f3)?;
    if tw <= 0.0 {
        return Err(MetricError::DegenerateWidth { t_w: tw });
    }
    let root = (m * m + m + 1.0).sqrt();
    let vp = root / (m + 1.0) * 2.0 * f1 / tw;
    let t1 = tw / root;
    let t2 = m * t1;
    let t0 = -f2 / f1 - (m + 2.0) / (3.0 * root) * tw;
    NoiseEstimate {
        vp,
        t0,
        t1,
        t2,
        tp: t0 + t1,
        wn: (m + 1.0) * t1,
        m,
        polarity,
    }
    .validated()
}

/// Lane-level body of [`MetricOne::bounds`] shared with [`crate::batch`].
pub(crate) fn bounds_raw(f1: f64, f2: f64, f3: f64) -> Result<NoiseBounds, MetricError> {
    let tw = crate::output::t_w_raw(f1, f2, f3)?;
    if tw <= 0.0 {
        return Err(MetricError::DegenerateWidth { t_w: tw });
    }
    let c = -f2 / f1;
    let base = 2.0 * f1 / tw;
    if !base.is_finite() {
        return Err(MetricError::NonFiniteQuantity {
            field: "vp_bound",
            value: base,
        });
    }
    Ok(NoiseBounds {
        vp: (3.0f64.sqrt() / 2.0 * base, base),
        t0: (c - 2.0 / 3.0 * tw, c - 1.0 / 3.0 * tw),
        tp: (c - tw / 3.0, c + tw / 3.0),
        wn: (tw, 2.0 / 3.0f64.sqrt() * tw),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::PwlTemplate;

    fn moments_of(t: &PwlTemplate) -> OutputMoments {
        let [e1, e2, e3] = t.moments();
        OutputMoments::from_raw(e1, e2, e3, 1.0).unwrap()
    }

    #[test]
    fn round_trip_reconstructs_template_exactly() {
        // The key exactness property: matching a triangle's own moments
        // with the correct m returns the triangle.
        for &(t0, t1, m, vp) in &[
            (0.0, 1e-10, 1.0, 0.1),
            (2e-10, 5e-11, 3.0, 0.45),
            (1e-11, 2e-10, 0.2, 0.08),
            (5e-10, 7e-11, 10.0, 0.3),
        ] {
            let tpl = PwlTemplate::new(t0, t1, m, vp);
            let est = MetricOne::estimate(&moments_of(&tpl), m).unwrap();
            assert!((est.vp - vp).abs() < 1e-9 * vp, "vp: {} vs {vp}", est.vp);
            assert!((est.t1 - t1).abs() < 1e-9 * t1, "t1: {} vs {t1}", est.t1);
            assert!(
                (est.t0 - t0).abs() < 1e-9 * (t0.abs() + t1),
                "t0: {} vs {t0}",
                est.t0
            );
            assert!((est.t2 - m * t1).abs() < 1e-9 * m * t1);
            assert!((est.wn - tpl.wn()).abs() < 1e-9 * tpl.wn());
            assert!((est.tp - tpl.tp()).abs() < 1e-9 * tpl.tp().abs().max(t1));
        }
    }

    #[test]
    fn symmetric_case_matches_eqs_41_to_46() {
        let tpl = PwlTemplate::new(3e-10, 1e-10, 1.0, 0.2);
        let f = moments_of(&tpl);
        let est = MetricOne::estimate_symmetric(&f).unwrap();
        let tw = f.t_w().unwrap();
        // eq. 41: Vp = √3 f1 / T_W
        assert!((est.vp - 3.0f64.sqrt() * f.f1() / tw).abs() < 1e-12);
        // eq. 45: Tp = −f2/f1
        assert!((est.tp - f.centroid()).abs() < 1e-20);
        // eq. 46: Wn = 2/√3 · T_W
        assert!((est.wn - 2.0 / 3.0f64.sqrt() * tw).abs() < 1e-20);
    }

    #[test]
    fn invariants_hold_for_any_m() {
        let tpl = PwlTemplate::new(1e-10, 1e-10, 2.0, 0.3);
        let f = moments_of(&tpl);
        for &m in &[0.01, 0.1, 0.5, 1.0, 2.0, 7.0, 100.0] {
            let est = MetricOne::estimate(&f, m).unwrap();
            assert!((est.tp - (est.t0 + est.t1)).abs() < 1e-18);
            assert!((est.wn - (est.t1 + est.t2)).abs() < 1e-18);
            assert!((est.t2 / est.t1 - m).abs() < 1e-9 * m);
            // Area is preserved by moment matching: Vp·Wn/2 = f1.
            assert!((est.area() - f.f1()).abs() < 1e-9 * f.f1());
        }
    }

    #[test]
    fn estimates_stay_within_bounds_for_all_m() {
        let tpl = PwlTemplate::new(2e-10, 8e-11, 1.5, 0.25);
        let f = moments_of(&tpl);
        let bounds = MetricOne::bounds(&f).unwrap();
        for &m in &[1e-3, 0.05, 0.3, 1.0, 4.0, 50.0, 1e3] {
            let est = MetricOne::estimate(&f, m).unwrap();
            assert!(bounds.contains(&est), "m = {m}: {est:?} vs {bounds:?}");
        }
    }

    #[test]
    fn bounds_are_attained_in_the_limits() {
        let tpl = PwlTemplate::new(0.0, 1e-10, 1.0, 0.2);
        let f = moments_of(&tpl);
        let b = MetricOne::bounds(&f).unwrap();
        // m → 0: Vp → upper bound, Wn → lower bound.
        let est0 = MetricOne::estimate(&f, 1e-9).unwrap();
        assert!((est0.vp - b.vp.1).abs() < 1e-6 * b.vp.1);
        assert!((est0.wn - b.wn.0).abs() < 1e-6 * b.wn.0);
        // m → ∞: Vp → upper bound again (the minimum is at m = 1).
        let est_inf = MetricOne::estimate(&f, 1e9).unwrap();
        assert!((est_inf.vp - b.vp.1).abs() < 1e-6 * b.vp.1);
        // m = 1 attains the Vp lower bound and the Wn upper bound.
        let est1 = MetricOne::estimate(&f, 1.0).unwrap();
        assert!((est1.vp - b.vp.0).abs() < 1e-9 * b.vp.0);
        assert!((est1.wn - b.wn.1).abs() < 1e-9 * b.wn.1);
    }

    #[test]
    fn vp_bound_spread_is_about_13_percent() {
        let tpl = PwlTemplate::new(0.0, 1e-10, 1.0, 0.2);
        let f = moments_of(&tpl);
        let b = MetricOne::bounds(&f).unwrap();
        let spread = (b.vp.1 - b.vp.0) / b.vp.1;
        assert!((spread - (1.0 - 3.0f64.sqrt() / 2.0)).abs() < 1e-12);
        assert!(spread < 0.14 && spread > 0.12);
        let wn_spread = (b.wn.1 - b.wn.0) / b.wn.0;
        assert!(wn_spread < 0.16 && wn_spread > 0.15);
    }

    #[test]
    fn bad_shape_ratio_rejected() {
        let tpl = PwlTemplate::new(0.0, 1e-10, 1.0, 0.2);
        let f = moments_of(&tpl);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                MetricOne::estimate(&f, bad),
                Err(MetricError::BadShapeRatio { .. })
            ));
        }
    }

    #[test]
    fn zero_width_moments_are_a_structured_degenerate_error() {
        // Cancellation-clamped T_W = 0 (radicand a hair below zero): the
        // estimate, bounds and auto paths all return DegenerateWidth
        // instead of dividing by zero.
        let (area, c) = (2e-11, 3e-10);
        let f3 = area * c * c / 2.0 * (1.0 - 1e-13);
        let f = OutputMoments::from_raw(area, -area * c, f3, 1.0).unwrap();
        assert_eq!(f.t_w().unwrap(), 0.0);
        assert!(matches!(
            MetricOne::estimate(&f, 1.0),
            Err(MetricError::DegenerateWidth { .. })
        ));
        assert!(matches!(
            MetricOne::bounds(&f),
            Err(MetricError::DegenerateWidth { .. })
        ));
        assert!(matches!(
            MetricOne::estimate_auto(&f, 1e-10),
            Err(MetricError::DegenerateWidth { .. })
        ));
    }

    #[test]
    fn genuinely_negative_radicand_still_rejected_as_non_physical() {
        // The other branch of the discriminant guard: far-negative T_W².
        let f = OutputMoments::from_raw(1e-11, -1e-21, 1e-33, 1.0).unwrap();
        assert!(matches!(
            MetricOne::estimate(&f, 1.0),
            Err(MetricError::NonPhysicalMoments { .. })
        ));
    }

    #[test]
    fn overflowing_arithmetic_is_a_structured_error_not_nan() {
        // m = 1e300 is finite and positive — it passes the shape-ratio
        // gate — but m² overflows: root = inf, t1 = 0, vp = inf. The
        // post-validation gate must catch it.
        let tpl = PwlTemplate::new(0.0, 1e-10, 1.0, 0.2);
        let f = moments_of(&tpl);
        let err = MetricOne::estimate(&f, 1e300).unwrap_err();
        assert!(
            matches!(
                err,
                MetricError::NonFiniteQuantity { .. } | MetricError::DegenerateEstimate { .. }
            ),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn auto_m_uses_eq_54() {
        let tpl = PwlTemplate::new(0.0, 1e-10, 2.0, 0.2);
        let f = moments_of(&tpl);
        let tr = 1.2e-10;
        let est = MetricOne::estimate_auto(&f, tr).unwrap();
        let m_expect = shape_ratio_m(f.t_w().unwrap(), tr).unwrap();
        assert!((est.m - m_expect).abs() < 1e-12);
    }
}
